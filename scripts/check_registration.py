#!/usr/bin/env python3
"""Assert every tests/*_test.cc is registered with ctest, and that the
bench snapshot pipeline has no holes.

A test file that exists on disk but never reaches ctest — dropped from
tests/CMakeLists.txt, or a binary that failed gtest discovery — passes CI
silently forever. This check closes that hole: it reads the registered test
list from `ctest --show-only=json-v1` in the build directory, maps each
test's command back to its executable, and requires at least one registered
test for every tests/*_test.cc stem.

The bench side has the mirror-image holes, also closed here:
  * a bench/bench_*.cpp that never constructs a BenchJson writes no
    machine-readable snapshot, so the bench gate cannot see it regress;
  * a committed bench/BENCH_<name>.json whose producing BenchJson name no
    longer exists anywhere is a stale snapshot the gate would "enforce"
    against nothing;
  * a bench/bench_*.cpp missing from bench/CMakeLists.txt never builds.

Standard library only; run from the repository root (scripts/check.sh's
`registration` stage does).
"""

import argparse
import json
import os
import re
import subprocess
import sys


def registered_executables(build_dir: str) -> set:
    """Basenames of test executables ctest would actually run."""
    proc = subprocess.run(
        ["ctest", "--show-only=json-v1"],
        cwd=build_dir,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"ctest --show-only failed in {build_dir!r}")
    model = json.loads(proc.stdout)
    names = set()
    for test in model.get("tests", []):
        command = test.get("command")
        if not command:
            continue
        exe = os.path.basename(command[0])
        # gtest_discover_tests adds a <target>_NOT_BUILT placeholder when the
        # binary is missing; it must not count as registration.
        if exe.endswith("_NOT_BUILT"):
            continue
        names.add(exe)
    return names


BENCH_JSON_RE = re.compile(r'BenchJson\s+\w+\s*\(\s*"([^"]+)"\s*\)')


def check_bench_registration(bench_dir: str) -> list:
    """Returns a list of problem strings (empty = clean)."""
    problems = []
    sources = sorted(
        f for f in os.listdir(bench_dir)
        if f.startswith("bench_") and f.endswith(".cpp")
    )
    if not sources:
        return [f"no bench_*.cpp files under {bench_dir!r}"]

    try:
        with open(os.path.join(bench_dir, "CMakeLists.txt")) as f:
            cmake = f.read()
    except OSError as e:
        return [f"cannot read {bench_dir}/CMakeLists.txt: {e}"]

    # BenchJson snapshot name(s) each source writes (BENCH_<name>.json).
    produced = {}  # snapshot name -> source file
    for src in sources:
        stem = src[: -len(".cpp")]
        with open(os.path.join(bench_dir, src)) as f:
            text = f.read()
        names = BENCH_JSON_RE.findall(text)
        if not names:
            problems.append(
                f"{bench_dir}/{src}: no BenchJson construction — the target "
                "writes no BENCH_<name>.json, so the bench gate cannot "
                "enforce it"
            )
        for name in names:
            if name in produced:
                problems.append(
                    f"{bench_dir}/{src}: BenchJson name {name!r} already "
                    f"produced by {produced[name]} — snapshots would clobber "
                    "each other"
                )
            else:
                produced[name] = src
        # Build registration: the target must appear in bench/CMakeLists.txt
        # as a word (sirius_bench(<stem>) or add_executable(<stem> ...)).
        if not re.search(rf"\b{re.escape(stem)}\b", cmake):
            problems.append(
                f"{bench_dir}/{src}: target {stem!r} not registered in "
                f"{bench_dir}/CMakeLists.txt"
            )

    # Stale-snapshot detection: every committed BENCH_<name>.json must have a
    # live producing target.
    for f in sorted(os.listdir(bench_dir)):
        if not (f.startswith("BENCH_") and f.endswith(".json")):
            continue
        name = f[len("BENCH_"):-len(".json")]
        if name not in produced:
            problems.append(
                f"{bench_dir}/{f}: stale snapshot — no bench_*.cpp "
                f"constructs BenchJson({name!r})"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--tests-dir", default="tests")
    parser.add_argument("--bench-dir", default="bench")
    args = parser.parse_args()

    stems = sorted(
        f[: -len(".cc")]
        for f in os.listdir(args.tests_dir)
        if f.endswith("_test.cc")
    )
    if not stems:
        raise SystemExit(f"no *_test.cc files under {args.tests_dir!r}")

    registered = registered_executables(args.build_dir)
    missing = [s for s in stems if s not in registered]
    for stem in stems:
        status = "ok" if stem not in missing else "MISSING"
        print(f"{stem:<28} {status}")
    if missing:
        print(
            f"\n{len(missing)} test file(s) exist under {args.tests_dir}/ but "
            "are not registered with ctest (check tests/CMakeLists.txt):",
            file=sys.stderr,
        )
        for stem in missing:
            print(f"  {stem}", file=sys.stderr)
        return 1
    print(f"\nall {len(stems)} test files registered")

    problems = check_bench_registration(args.bench_dir)
    if problems:
        print(f"\n{len(problems)} bench registration problem(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("bench targets, snapshots, and BenchJson names all consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
