#!/usr/bin/env python3
"""Assert every tests/*_test.cc is registered with ctest.

A test file that exists on disk but never reaches ctest — dropped from
tests/CMakeLists.txt, or a binary that failed gtest discovery — passes CI
silently forever. This check closes that hole: it reads the registered test
list from `ctest --show-only=json-v1` in the build directory, maps each
test's command back to its executable, and requires at least one registered
test for every tests/*_test.cc stem.

Standard library only; run from the repository root (scripts/check.sh's
`registration` stage does).
"""

import argparse
import json
import os
import subprocess
import sys


def registered_executables(build_dir: str) -> set:
    """Basenames of test executables ctest would actually run."""
    proc = subprocess.run(
        ["ctest", "--show-only=json-v1"],
        cwd=build_dir,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"ctest --show-only failed in {build_dir!r}")
    model = json.loads(proc.stdout)
    names = set()
    for test in model.get("tests", []):
        command = test.get("command")
        if not command:
            continue
        exe = os.path.basename(command[0])
        # gtest_discover_tests adds a <target>_NOT_BUILT placeholder when the
        # binary is missing; it must not count as registration.
        if exe.endswith("_NOT_BUILT"):
            continue
        names.add(exe)
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--tests-dir", default="tests")
    args = parser.parse_args()

    stems = sorted(
        f[: -len(".cc")]
        for f in os.listdir(args.tests_dir)
        if f.endswith("_test.cc")
    )
    if not stems:
        raise SystemExit(f"no *_test.cc files under {args.tests_dir!r}")

    registered = registered_executables(args.build_dir)
    missing = [s for s in stems if s not in registered]
    for stem in stems:
        status = "ok" if stem not in missing else "MISSING"
        print(f"{stem:<28} {status}")
    if missing:
        print(
            f"\n{len(missing)} test file(s) exist under {args.tests_dir}/ but "
            "are not registered with ctest (check tests/CMakeLists.txt):",
            file=sys.stderr,
        )
        for stem in missing:
            print(f"  {stem}", file=sys.stderr)
        return 1
    print(f"\nall {len(stems)} test files registered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
