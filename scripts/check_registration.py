#!/usr/bin/env python3
"""Assert every tests/*_test.cc is registered with ctest, that the bench
snapshot pipeline has no holes, and that check.sh stages and the CI
workflow stay in sync.

A test file that exists on disk but never reaches ctest — dropped from
tests/CMakeLists.txt, or a binary that failed gtest discovery — passes CI
silently forever. This check closes that hole: it reads the registered test
list from `ctest --show-only=json-v1` in the build directory, maps each
test's command back to its executable, and requires at least one registered
test for every tests/*_test.cc stem.

The bench side has the mirror-image holes, also closed here:
  * a bench/bench_*.cpp that never constructs a BenchJson writes no
    machine-readable snapshot, so the bench gate cannot see it regress;
  * a committed bench/BENCH_<name>.json whose producing BenchJson name no
    longer exists anywhere is a stale snapshot the gate would "enforce"
    against nothing;
  * a bench/bench_*.cpp missing from bench/CMakeLists.txt never builds.

The CI pipeline has the same class of hole one level up: scripts/check.sh
is the single source of truth for what "all checks" means, but GitHub only
runs the stages ci.yml names. A stage added to check.sh but never wired
into a workflow job silently runs nowhere except laptops; a workflow job
invoking a stage check.sh no longer defines fails every push. The sync
check enforces the bijection both ways: every stage printed by
`scripts/check.sh --list` must appear as a `check.sh --stage <name>`
invocation in .github/workflows/*.yml, and every `--stage` invocation
there must name a listed stage. The checker self-tests against a seeded
mismatch fixture (both directions) before trusting its own pass verdict.

Standard library only; run from the repository root (scripts/check.sh's
`registration` stage does).
"""

import argparse
import json
import os
import re
import subprocess
import sys


def registered_executables(build_dir: str) -> set:
    """Basenames of test executables ctest would actually run."""
    proc = subprocess.run(
        ["ctest", "--show-only=json-v1"],
        cwd=build_dir,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"ctest --show-only failed in {build_dir!r}")
    model = json.loads(proc.stdout)
    names = set()
    for test in model.get("tests", []):
        command = test.get("command")
        if not command:
            continue
        exe = os.path.basename(command[0])
        # gtest_discover_tests adds a <target>_NOT_BUILT placeholder when the
        # binary is missing; it must not count as registration.
        if exe.endswith("_NOT_BUILT"):
            continue
        names.add(exe)
    return names


BENCH_JSON_RE = re.compile(r'BenchJson\s+\w+\s*\(\s*"([^"]+)"\s*\)')


def check_bench_registration(bench_dir: str) -> list:
    """Returns a list of problem strings (empty = clean)."""
    problems = []
    sources = sorted(
        f for f in os.listdir(bench_dir)
        if f.startswith("bench_") and f.endswith(".cpp")
    )
    if not sources:
        return [f"no bench_*.cpp files under {bench_dir!r}"]

    try:
        with open(os.path.join(bench_dir, "CMakeLists.txt")) as f:
            cmake = f.read()
    except OSError as e:
        return [f"cannot read {bench_dir}/CMakeLists.txt: {e}"]

    # BenchJson snapshot name(s) each source writes (BENCH_<name>.json).
    produced = {}  # snapshot name -> source file
    for src in sources:
        stem = src[: -len(".cpp")]
        with open(os.path.join(bench_dir, src)) as f:
            text = f.read()
        names = BENCH_JSON_RE.findall(text)
        if not names:
            problems.append(
                f"{bench_dir}/{src}: no BenchJson construction — the target "
                "writes no BENCH_<name>.json, so the bench gate cannot "
                "enforce it"
            )
        for name in names:
            if name in produced:
                problems.append(
                    f"{bench_dir}/{src}: BenchJson name {name!r} already "
                    f"produced by {produced[name]} — snapshots would clobber "
                    "each other"
                )
            else:
                produced[name] = src
        # Build registration: the target must appear in bench/CMakeLists.txt
        # as a word (sirius_bench(<stem>) or add_executable(<stem> ...)).
        if not re.search(rf"\b{re.escape(stem)}\b", cmake):
            problems.append(
                f"{bench_dir}/{src}: target {stem!r} not registered in "
                f"{bench_dir}/CMakeLists.txt"
            )

    # Stale-snapshot detection: every committed BENCH_<name>.json must have a
    # live producing target.
    for f in sorted(os.listdir(bench_dir)):
        if not (f.startswith("BENCH_") and f.endswith(".json")):
            continue
        name = f[len("BENCH_"):-len(".json")]
        if name not in produced:
            problems.append(
                f"{bench_dir}/{f}: stale snapshot — no bench_*.cpp "
                f"constructs BenchJson({name!r})"
            )
    return problems


STAGE_INVOCATION_RE = re.compile(r"check\.sh\s+--stage\s+([A-Za-z0-9_-]+)")


def listed_stages(check_sh: str) -> list:
    """Stage names from `check.sh --list` (first token of each line)."""
    proc = subprocess.run(
        ["bash", check_sh, "--list"], capture_output=True, text=True
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"{check_sh} --list failed")
    stages = []
    for line in proc.stdout.splitlines():
        parts = line.split()
        if parts:
            stages.append(parts[0])
    if not stages:
        raise SystemExit(f"{check_sh} --list printed no stages")
    return stages


def workflow_stage_invocations(workflow_dir: str) -> dict:
    """Maps stage name -> [workflow files invoking `check.sh --stage` it]."""
    invocations = {}
    try:
        files = sorted(os.listdir(workflow_dir))
    except OSError as e:
        raise SystemExit(f"cannot read {workflow_dir!r}: {e}")
    for f in files:
        if not (f.endswith(".yml") or f.endswith(".yaml")):
            continue
        with open(os.path.join(workflow_dir, f)) as fh:
            text = fh.read()
        for stage in STAGE_INVOCATION_RE.findall(text):
            invocations.setdefault(stage, []).append(f)
    return invocations


def check_stage_workflow_sync(stages: list, invocations: dict,
                              workflow_dir: str) -> list:
    """Returns problem strings for any stage/workflow mismatch (empty = ok)."""
    problems = []
    for stage in stages:
        if stage not in invocations:
            problems.append(
                f"stage {stage!r} is defined by scripts/check.sh but no "
                f"workflow under {workflow_dir} invokes "
                f"`check.sh --stage {stage}` — it runs nowhere in CI"
            )
    for stage, files in sorted(invocations.items()):
        if stage not in stages:
            problems.append(
                f"{', '.join(files)}: invokes `check.sh --stage {stage}` "
                "but scripts/check.sh --list defines no such stage — the "
                "job fails on every push"
            )
    return problems


def sync_self_test() -> None:
    """The sync check must catch a seeded mismatch in both directions."""
    stages = ["build", "lint", "serve"]
    # Fixture: 'serve' is defined but never invoked; 'benchh' (typo) is
    # invoked but not defined. A correct checker reports exactly those two.
    fixture = {
        "ci.yml": "      - run: ./scripts/check.sh --stage build\n"
                  "      - run: ./scripts/check.sh --stage lint\n"
                  "      - run: ./scripts/check.sh --stage benchh\n",
    }
    invocations = {}
    for f, text in fixture.items():
        for stage in STAGE_INVOCATION_RE.findall(text):
            invocations.setdefault(stage, []).append(f)
    problems = check_stage_workflow_sync(stages, invocations, "<fixture>")
    if len(problems) != 2 or not any("serve" in p for p in problems) or \
            not any("benchh" in p for p in problems):
        raise SystemExit(
            "stage/workflow sync self-test failed: the checker did not "
            f"flag the seeded mismatch fixture (got: {problems})"
        )
    # And a clean fixture must pass.
    if check_stage_workflow_sync(["build"], {"build": ["ci.yml"]}, "<fixture>"):
        raise SystemExit(
            "stage/workflow sync self-test failed: a clean fixture was flagged"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--tests-dir", default="tests")
    parser.add_argument("--bench-dir", default="bench")
    parser.add_argument("--check-sh", default="scripts/check.sh")
    parser.add_argument("--workflow-dir", default=".github/workflows")
    args = parser.parse_args()

    stems = sorted(
        f[: -len(".cc")]
        for f in os.listdir(args.tests_dir)
        if f.endswith("_test.cc")
    )
    if not stems:
        raise SystemExit(f"no *_test.cc files under {args.tests_dir!r}")

    registered = registered_executables(args.build_dir)
    missing = [s for s in stems if s not in registered]
    for stem in stems:
        status = "ok" if stem not in missing else "MISSING"
        print(f"{stem:<28} {status}")
    if missing:
        print(
            f"\n{len(missing)} test file(s) exist under {args.tests_dir}/ but "
            "are not registered with ctest (check tests/CMakeLists.txt):",
            file=sys.stderr,
        )
        for stem in missing:
            print(f"  {stem}", file=sys.stderr)
        return 1
    print(f"\nall {len(stems)} test files registered")

    problems = check_bench_registration(args.bench_dir)
    if problems:
        print(f"\n{len(problems)} bench registration problem(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("bench targets, snapshots, and BenchJson names all consistent")

    sync_self_test()
    stages = listed_stages(args.check_sh)
    invocations = workflow_stage_invocations(args.workflow_dir)
    problems = check_stage_workflow_sync(stages, invocations,
                                         args.workflow_dir)
    if problems:
        print(f"\n{len(problems)} stage/workflow sync problem(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"all {len(stages)} check.sh stages wired into CI workflows "
          "(and no stale --stage invocations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
