#!/usr/bin/env python3
"""Gate deterministic bench output against committed snapshots.

The simulated benches are deterministic under their fixed seeds, so their
BENCH_*.json output is a regression oracle: a placement change that silently
halves multi-GPU throughput shows up as a qps_sim drift long before anyone
reads a chart. This gate compares freshly-produced JSON against the
snapshots committed under bench/:

  * every committed bench/BENCH_*.json must have a fresh counterpart;
  * integers (completed/shed/leak counters) must match exactly;
  * floats (simulated-time medians, qps, speedups) must agree within a
    relative tolerance, 10% by default — headroom for harmless modeling
    tweaks, far tighter than any real regression;
  * strings/bools and the overall shape (keys, row counts) must match.

Standard library only. Typical use (scripts/check.sh's bench-gate stage):

  SIRIUS_BENCH_JSON_DIR=out build/bench/bench_serve_multi_gpu
  python3 scripts/bench_gate.py --fresh out --baseline bench

A bench improvement that moves numbers past tolerance is re-snapshotted by
copying the fresh file over the committed one — with the change explained in
the same commit.
"""

import argparse
import glob
import json
import os
import sys


def compare(path: str, baseline, fresh, tolerance: float, errors: list) -> None:
    """Appends a human-readable line to `errors` for every divergence."""
    if type(baseline) is not type(fresh):
        errors.append(
            f"{path}: type changed "
            f"({type(baseline).__name__} -> {type(fresh).__name__})"
        )
        return
    if isinstance(baseline, dict):
        for key in baseline:
            if key not in fresh:
                errors.append(f"{path}.{key}: missing from fresh output")
            else:
                compare(f"{path}.{key}", baseline[key], fresh[key], tolerance,
                        errors)
        for key in fresh:
            if key not in baseline:
                errors.append(f"{path}.{key}: not in snapshot (re-snapshot?)")
    elif isinstance(baseline, list):
        if len(baseline) != len(fresh):
            errors.append(
                f"{path}: row count {len(baseline)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            compare(f"{path}[{i}]", b, f, tolerance, errors)
    elif isinstance(baseline, bool) or isinstance(baseline, (int, str)):
        if baseline != fresh:
            errors.append(f"{path}: {baseline!r} -> {fresh!r} (exact match required)")
    elif isinstance(baseline, float):
        denom = max(abs(baseline), abs(fresh), 1e-12)
        rel = abs(baseline - fresh) / denom
        if rel > tolerance:
            errors.append(
                f"{path}: {baseline} -> {fresh} "
                f"({rel * 100:.1f}% > {tolerance * 100:.0f}% tolerance)")
    elif baseline != fresh:
        errors.append(f"{path}: {baseline!r} -> {fresh!r}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compare fresh BENCH_*.json against committed snapshots.")
    parser.add_argument("--fresh", required=True,
                        help="directory holding freshly-produced BENCH_*.json")
    parser.add_argument("--baseline", default="bench",
                        help="directory holding committed snapshots")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for floats (default 0.10)")
    args = parser.parse_args()

    snapshots = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not snapshots:
        print(f"no BENCH_*.json snapshots under {args.baseline!r}",
              file=sys.stderr)
        return 1

    failed = False
    for snap_path in snapshots:
        name = os.path.basename(snap_path)
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            print(f"{name:<32} MISSING (bench did not produce fresh output)")
            failed = True
            continue
        with open(snap_path) as f:
            baseline = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        errors: list = []
        compare(name, baseline, fresh, args.tolerance, errors)
        if errors:
            print(f"{name:<32} FAIL ({len(errors)} divergence(s))")
            for e in errors[:20]:
                print(f"    {e}")
            if len(errors) > 20:
                print(f"    ... and {len(errors) - 20} more")
            failed = True
        else:
            print(f"{name:<32} ok")

    if failed:
        print("\nbench gate FAILED: fresh output diverges from committed "
              "snapshots (see above; re-snapshot only with an explanation)",
              file=sys.stderr)
        return 1
    print(f"\nbench gate passed ({len(snapshots)} snapshot(s), "
          f"{args.tolerance * 100:.0f}% float tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
