#!/usr/bin/env bash
# Single CI entry point: build, full test suite, lint pass, race-checked
# engine run, and an AddressSanitizer build exercising the chaos suite.
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}
ASAN_BUILD=${ASAN_BUILD_DIR:-build-asan}
TSAN_BUILD=${TSAN_BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}

echo "==> configure + build ($BUILD)"
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"

echo "==> tier-1 test suite"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "==> sirius_lint (ctest -L lint: repo walk + rule unit tests)"
ctest --test-dir "$BUILD" -L lint --output-on-failure

echo "==> observability suite (ctest -L obs: trace/metrics/exporters)"
ctest --test-dir "$BUILD" -L obs --output-on-failure -j "$JOBS"

echo "==> differential suite (ctest -L differential: GPU vs CPU cell-by-cell)"
ctest --test-dir "$BUILD" -L differential --output-on-failure -j "$JOBS"

echo "==> serving layer (ctest -L serve: admission/fairness/cache/chaos)"
ctest --test-dir "$BUILD" -L serve --output-on-failure -j "$JOBS"

echo "==> ThreadSanitizer build + serving-layer suite"
cmake -B "$TSAN_BUILD" -S . -DSIRIUS_SANITIZE=thread >/dev/null
cmake --build "$TSAN_BUILD" -j "$JOBS" --target serve_test serve_chaos_test
"$TSAN_BUILD"/tests/serve_test >/dev/null
"$TSAN_BUILD"/tests/serve_chaos_test >/dev/null

echo "==> race-checked engine run (SIRIUS_RACE_CHECK=1)"
SIRIUS_RACE_CHECK=1 "$BUILD"/tests/race_check_test >/dev/null
SIRIUS_RACE_CHECK=1 "$BUILD"/tests/sirius_engine_test >/dev/null

echo "==> AddressSanitizer build + chaos/race suites"
cmake -B "$ASAN_BUILD" -S . -DSIRIUS_SANITIZE=address >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS"
ctest --test-dir "$ASAN_BUILD" -L fault --output-on-failure -j "$JOBS"
SIRIUS_RACE_CHECK=1 "$ASAN_BUILD"/tests/race_check_test >/dev/null

echo "==> all checks passed"
