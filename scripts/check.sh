#!/usr/bin/env bash
# Tiered CI entry point. Every check is a named stage; run them all (the
# default), or pick one with --stage <name> — exactly what the GitHub
# workflow's jobs do, so CI and a laptop run the same commands.
#
#   scripts/check.sh                 # every stage, in order
#   scripts/check.sh --list          # stage names + what they cover
#   scripts/check.sh --stage serve   # one stage (repeatable)
#
# Tests always run through ctest (--no-tests=error), never by invoking
# binaries directly: a test that silently fell out of the build fails the
# stage instead of being skipped. Per-stage wall-clock timings are printed
# as a summary table at the end; the exit code is non-zero if any stage
# failed. A stage failure skips the stages after it (their result shows as
# "skipped" in the table).
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}
ASAN_BUILD=${ASAN_BUILD_DIR:-build-asan}
TSAN_BUILD=${TSAN_BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}

STAGES=(build registration lint analyze obs differential fusion ssb serve cluster spill race tsan asan bench-gate)

stage_desc() {
  case "$1" in
    build)        echo "configure + build + full tier-1 ctest suite" ;;
    registration) echo "every tests/*_test.cc is registered with ctest" ;;
    lint)         echo "sirius_lint repo walk + rule unit tests (ctest -L lint)" ;;
    analyze)      echo "sirius_analyze whole-program flow checks (ctest -L analyze)" ;;
    obs)          echo "observability suite (ctest -L obs)" ;;
    differential) echo "GPU vs CPU cell-by-cell suite (ctest -L differential)" ;;
    fusion)       echo "fused pipeline execution: selection-view units + engine fusion suite + ablation bench vs snapshot" ;;
    ssb)          echo "SSB workload family: generator determinism + skew/string variants + bench" ;;
    serve)        echo "serving layer: admission/fairness/placement/chaos (ctest -L serve)" ;;
    cluster)      echo "federated serving: routing/replication/chaos + bench vs snapshot" ;;
    spill)        echo "tiered memory: spill governance + fault recovery (ctest -L spill)" ;;
    race)         echo "race-checked device runs (SIRIUS_RACE_CHECK=1, ctest -L race)" ;;
    tsan)         echo "ThreadSanitizer build + serving-layer suite" ;;
    asan)         echo "AddressSanitizer build + chaos/race suites" ;;
    bench-gate)   echo "deterministic benches vs committed bench/BENCH_*.json snapshots" ;;
    *)            echo "unknown" ;;
  esac
}

ensure_build() {
  cmake -B "$BUILD" -S . >/dev/null
  cmake --build "$BUILD" -j "$JOBS"
}

stage_build() {
  ensure_build
  ctest --test-dir "$BUILD" --output-on-failure --no-tests=error -j "$JOBS"
}

stage_registration() {
  ensure_build
  python3 scripts/check_registration.py --build-dir "$BUILD"
}

stage_lint() {
  ensure_build
  ctest --test-dir "$BUILD" -L lint --output-on-failure --no-tests=error
}

stage_analyze() {
  ensure_build
  ctest --test-dir "$BUILD" -L analyze --output-on-failure --no-tests=error
}

stage_obs() {
  ensure_build
  ctest --test-dir "$BUILD" -L obs --output-on-failure --no-tests=error -j "$JOBS"
}

stage_differential() {
  ensure_build
  ctest --test-dir "$BUILD" -L differential --output-on-failure --no-tests=error -j "$JOBS"
}

stage_fusion() {
  ensure_build
  # The fused-execution surface in one stage: the selection-view contract
  # units, the engine fusion suite (compiler/explain/fallback/out-of-core),
  # and the fused-vs-materialized ablation bench gated against its committed
  # snapshot alone (the full cross-bench gate is the bench-gate stage).
  ctest --test-dir "$BUILD" -L fusion --output-on-failure --no-tests=error -j "$JOBS"
  local out="$BUILD/bench-json-fusion" base="$BUILD/bench-baseline-fusion"
  rm -rf "$out" "$base" && mkdir -p "$out" "$base"
  cp bench/BENCH_ablation_fusion.json "$base/"
  cmake --build "$BUILD" -j "$JOBS" --target bench_ablation_fusion >/dev/null
  SIRIUS_BENCH_JSON_DIR="$out" "$BUILD/bench/bench_ablation_fusion"
  python3 scripts/bench_gate.py --fresh "$out" --baseline "$base"
}

stage_ssb() {
  ensure_build
  # Everything SSB-specific in one stage: generator determinism (golden
  # checksums), the randomized skew/string-length property sweeps, the
  # GPU-vs-CPU differential across all variants, and the mixed-tenant bench
  # gated against its committed snapshot alone (the full cross-bench gate is
  # the bench-gate stage).
  ctest --test-dir "$BUILD" -R 'Ssb|DbgenDeterminism' \
    --output-on-failure --no-tests=error -j "$JOBS"
  local out="$BUILD/bench-json-ssb" base="$BUILD/bench-baseline-ssb"
  rm -rf "$out" "$base" && mkdir -p "$out" "$base"
  cp bench/BENCH_ssb.json "$base/"
  cmake --build "$BUILD" -j "$JOBS" --target bench_ssb >/dev/null
  SIRIUS_BENCH_JSON_DIR="$out" "$BUILD/bench/bench_ssb"
  python3 scripts/bench_gate.py --fresh "$out" --baseline "$base"
}

stage_serve() {
  ensure_build
  ctest --test-dir "$BUILD" -L serve --output-on-failure --no-tests=error -j "$JOBS"
}

stage_cluster() {
  ensure_build
  # The federated tier in one stage: routing/replication/invalidation units,
  # the cluster.* chaos sweeps, and the hit-anywhere-vs-coordinator bench
  # gated against its committed snapshot alone (the full cross-bench gate is
  # the bench-gate stage).
  ctest --test-dir "$BUILD" -L cluster --output-on-failure --no-tests=error -j "$JOBS"
  local out="$BUILD/bench-json-cluster" base="$BUILD/bench-baseline-cluster"
  rm -rf "$out" "$base" && mkdir -p "$out" "$base"
  cp bench/BENCH_serve_cluster.json "$base/"
  cmake --build "$BUILD" -j "$JOBS" --target bench_serve_cluster >/dev/null
  SIRIUS_BENCH_JSON_DIR="$out" "$BUILD/bench/bench_serve_cluster"
  python3 scripts/bench_gate.py --fresh "$out" --baseline "$base"
}

stage_spill() {
  ensure_build
  ctest --test-dir "$BUILD" -L spill --output-on-failure --no-tests=error -j "$JOBS"
}

stage_race() {
  ensure_build
  SIRIUS_RACE_CHECK=1 \
    ctest --test-dir "$BUILD" -L race --output-on-failure --no-tests=error -j "$JOBS"
}

stage_tsan() {
  cmake -B "$TSAN_BUILD" -S . -DSIRIUS_SANITIZE=thread >/dev/null
  cmake --build "$TSAN_BUILD" -j "$JOBS"
  ctest --test-dir "$TSAN_BUILD" -L serve --output-on-failure --no-tests=error -j "$JOBS"
}

stage_asan() {
  cmake -B "$ASAN_BUILD" -S . -DSIRIUS_SANITIZE=address >/dev/null
  cmake --build "$ASAN_BUILD" -j "$JOBS"
  # "fault" covers the chaos suites (including the serve.place placement
  # faults); "race" re-runs the checked device tests under ASan.
  SIRIUS_RACE_CHECK=1 \
    ctest --test-dir "$ASAN_BUILD" -L 'fault|race' --output-on-failure --no-tests=error -j "$JOBS"
}

stage_bench_gate() {
  ensure_build
  local out="$BUILD/bench-json"
  rm -rf "$out" && mkdir -p "$out"
  local b
  for b in bench_fig4_tpch_single_node bench_ablation_fusion bench_serve \
           bench_serve_multi_gpu bench_serve_cluster bench_spill_sweep \
           bench_ssb; do
    cmake --build "$BUILD" -j "$JOBS" --target "$b" >/dev/null
    echo "--- $b"
    SIRIUS_BENCH_JSON_DIR="$out" "$BUILD/bench/$b"
  done
  python3 scripts/bench_gate.py --fresh "$out" --baseline bench
}

usage() {
  echo "usage: $0 [--stage <name>]... [--list]"
  echo "stages: ${STAGES[*]}"
}

SELECTED=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --list)
      for s in "${STAGES[@]}"; do
        printf '%-14s %s\n' "$s" "$(stage_desc "$s")"
      done
      exit 0
      ;;
    --stage)
      [[ $# -ge 2 ]] || { usage >&2; exit 2; }
      found=0
      for s in "${STAGES[@]}"; do [[ "$s" == "$2" ]] && found=1; done
      [[ $found == 1 ]] || { echo "unknown stage: $2" >&2; usage >&2; exit 2; }
      SELECTED+=("$2")
      shift 2
      ;;
    -h|--help) usage; exit 0 ;;
    *) echo "unknown argument: $1" >&2; usage >&2; exit 2 ;;
  esac
done
[[ ${#SELECTED[@]} -gt 0 ]] || SELECTED=("${STAGES[@]}")

RESULTS=()
TIMES=()
FAILED=0
for s in "${SELECTED[@]}"; do
  if [[ $FAILED != 0 ]]; then
    RESULTS+=("skipped")
    TIMES+=("-")
    continue
  fi
  echo "==> $s: $(stage_desc "$s")"
  start=$(date +%s)
  if "stage_${s//-/_}"; then
    RESULTS+=("ok")
  else
    RESULTS+=("FAIL")
    FAILED=1
  fi
  TIMES+=("$(( $(date +%s) - start ))s")
done

echo
printf '%-14s %-8s %s\n' "stage" "result" "wall"
printf '%-14s %-8s %s\n' "-----" "------" "----"
for i in "${!SELECTED[@]}"; do
  printf '%-14s %-8s %s\n' "${SELECTED[$i]}" "${RESULTS[$i]}" "${TIMES[$i]}"
done
if [[ $FAILED != 0 ]]; then
  echo "FAILED"
  exit 1
fi
echo "all checks passed"
