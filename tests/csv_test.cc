// Tests for CSV import/export (the host database's disk path, §3.2.3).
#include <fstream>

#include <gtest/gtest.h>

#include <cstdio>

#include "host/csv.h"
#include "host/database.h"

namespace sirius::host {
namespace {

using format::Column;
using format::Schema;

TEST(CsvParseTest, ExplicitSchema) {
  Schema schema({{"id", format::Int64()},
                 {"price", format::Decimal(2)},
                 {"day", format::Date32()},
                 {"name", format::String()}});
  auto t = ParseCsv(
               "id,price,day,name\n"
               "1,19.99,1995-03-15,widget\n"
               "2,5.50,1996-01-01,gadget\n",
               schema)
               .ValueOrDie();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->column(0)->data<int64_t>()[1], 2);
  EXPECT_EQ(t->column(1)->GetScalar(0).ToString(), "19.99");
  EXPECT_EQ(t->column(2)->GetScalar(1).ToString(), "1996-01-01");
  EXPECT_EQ(t->column(3)->StringAt(0), "widget");
}

TEST(CsvParseTest, QuotingAndEscapes) {
  Schema schema({{"s", format::String()}, {"n", format::Int64()}});
  auto t = ParseCsv(
               "s,n\n"
               "\"a,b\",1\n"
               "\"say \"\"hi\"\"\",2\n",
               schema)
               .ValueOrDie();
  EXPECT_EQ(t->column(0)->StringAt(0), "a,b");
  EXPECT_EQ(t->column(0)->StringAt(1), "say \"hi\"");
}

TEST(CsvParseTest, NullTokens) {
  Schema schema({{"n", format::Int64()}, {"s", format::String()}});
  auto t = ParseCsv("n,s\n1,x\n,\n", schema).ValueOrDie();
  EXPECT_TRUE(t->column(0)->IsNull(1));
  EXPECT_TRUE(t->column(1)->IsNull(1));
  // A quoted empty cell is an empty string, not NULL.
  auto t2 = ParseCsv("n,s\n1,\"\"\n", schema).ValueOrDie();
  EXPECT_FALSE(t2->column(1)->IsNull(0));
  EXPECT_EQ(t2->column(1)->StringAt(0), "");
}

TEST(CsvParseTest, Errors) {
  Schema schema({{"n", format::Int64()}});
  EXPECT_FALSE(ParseCsv("n\nabc\n", schema).ok());       // bad int
  EXPECT_FALSE(ParseCsv("n\n1,2\n", schema).ok());       // ragged row
  EXPECT_FALSE(ParseCsv("n\n\"open\n", schema).ok());    // unterminated quote
  Schema date_schema({{"d", format::Date32()}});
  EXPECT_FALSE(ParseCsv("d\n1995-13-77\n", date_schema).ok());
}

TEST(CsvInferTest, TypeLattice) {
  auto t = ParseCsvInferSchema(
               "i,f,d,s,q\n"
               "1,1.5,1995-01-01,abc,\"7\"\n"
               "2,2,1996-02-02,1x,\"8\"\n")
               .ValueOrDie();
  EXPECT_EQ(t->schema().field(0).type, format::Int64());
  EXPECT_EQ(t->schema().field(1).type.id, format::TypeId::kFloat64);
  EXPECT_EQ(t->schema().field(2).type.id, format::TypeId::kDate32);
  EXPECT_EQ(t->schema().field(3).type.id, format::TypeId::kString);
  // Quoted cells force string even if numeric-looking.
  EXPECT_EQ(t->schema().field(4).type.id, format::TypeId::kString);
}

TEST(CsvInferTest, AllNullColumnIsString) {
  auto t = ParseCsvInferSchema("a,b\n1,\n2,\n").ValueOrDie();
  EXPECT_EQ(t->schema().field(1).type.id, format::TypeId::kString);
  EXPECT_TRUE(t->column(1)->IsNull(0));
}

TEST(CsvRoundTripTest, FormatThenParse) {
  auto t = format::Table::Make(
               Schema({{"id", format::Int64()},
                       {"note", format::String()},
                       {"price", format::Decimal(2)}}),
               {Column::FromInt64({1, 2}, {true, false}),
                Column::FromStrings({"plain", "has,comma"}),
                Column::FromDecimal({150, 2599}, 2)})
               .ValueOrDie();
  auto text = FormatCsv(t).ValueOrDie();
  Schema schema = t->schema();
  auto back = ParseCsv(text, schema).ValueOrDie();
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_TRUE(back->column(0)->IsNull(1));
  EXPECT_EQ(back->column(1)->StringAt(1), "has,comma");
  EXPECT_EQ(back->column(2)->GetScalar(1).ToString(), "25.99");
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = "/tmp/sirius_csv_test.csv";
  auto t = format::Table::Make(Schema({{"x", format::Int64()}}),
                               {Column::FromInt64({10, 20, 30})})
               .ValueOrDie();
  SIRIUS_CHECK_OK(WriteCsv(t, path));
  auto back = ReadCsv(path, t->schema()).ValueOrDie();
  EXPECT_TRUE(back->Equals(*t));
  auto inferred = ReadCsvInferSchema(path).ValueOrDie();
  EXPECT_TRUE(inferred->Equals(*t));
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsv("/tmp/definitely_missing_zzz.csv", t->schema()).ok());
}

TEST(CsvFileTest, QueryableAfterImport) {
  const std::string path = "/tmp/sirius_csv_query_test.csv";
  {
    std::string text =
        "city,pop\n"
        "madison,270000\n"
        "\"new york\",8300000\n"
        "zurich,430000\n";
    std::ofstream out(path);
    out << text;
  }
  host::Database db;
  auto t = ReadCsvInferSchema(path).ValueOrDie();
  SIRIUS_CHECK_OK(db.CreateTable("cities", t));
  auto r = db.Query("select city from cities where pop > 400000 order by city")
               .ValueOrDie();
  ASSERT_EQ(r.table->num_rows(), 2u);
  EXPECT_EQ(r.table->column(0)->StringAt(0), "new york");
  EXPECT_EQ(r.table->column(0)->StringAt(1), "zurich");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sirius::host
