// Property-style tests: GDF kernels and the SQL engine checked against
// brute-force reference implementations on randomized inputs, swept over
// sizes/cardinalities/null-densities with parameterized gtest.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>

#include "expr/eval.h"
#include "format/builder.h"
#include "gdf/copying.h"
#include "gdf/filter.h"
#include "gdf/groupby.h"
#include "gdf/join.h"
#include "gdf/partition.h"
#include "gdf/sort.h"
#include "host/database.h"
#include "ssb/dbgen.h"
#include "ssb/queries.h"

namespace sirius {
namespace {

using format::Column;
using format::ColumnPtr;
using format::Schema;
using format::Table;
using format::TablePtr;

gdf::Context Ctx() {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

struct RandomConfig {
  size_t rows;
  int64_t cardinality;
  double null_fraction;
  uint32_t seed;
};

std::string ConfigName(const ::testing::TestParamInfo<RandomConfig>& info) {
  return "rows" + std::to_string(info.param.rows) + "_card" +
         std::to_string(info.param.cardinality) + "_nulls" +
         std::to_string(static_cast<int>(info.param.null_fraction * 100)) +
         "_seed" + std::to_string(info.param.seed);
}

/// Random nullable int64 column with values in [0, cardinality).
ColumnPtr RandomColumn(const RandomConfig& cfg, uint32_t salt) {
  std::mt19937_64 rng(cfg.seed * 7919 + salt);
  format::ColumnBuilder b(format::Int64());
  for (size_t i = 0; i < cfg.rows; ++i) {
    if (cfg.null_fraction > 0 &&
        (rng() % 1000) < static_cast<uint64_t>(cfg.null_fraction * 1000)) {
      b.AppendNull();
    } else {
      b.AppendInt(static_cast<int64_t>(rng() % cfg.cardinality));
    }
  }
  return b.Finish();
}

class KernelPropertyTest : public ::testing::TestWithParam<RandomConfig> {};

// --- Join vs nested-loop reference ---------------------------------------

TEST_P(KernelPropertyTest, HashJoinMatchesNestedLoop) {
  auto cfg = GetParam();
  auto left = RandomColumn(cfg, 1);
  auto right = RandomColumn({cfg.rows / 2 + 1, cfg.cardinality,
                             cfg.null_fraction, cfg.seed},
                            2);
  auto ctx = Ctx();
  gdf::JoinOptions options;
  auto result = gdf::HashJoin(ctx, {left}, {right}, options).ValueOrDie();

  // Reference: nested loop.
  std::multiset<std::pair<int64_t, int64_t>> expected, actual;
  for (size_t i = 0; i < left->length(); ++i) {
    if (left->IsNull(i)) continue;
    for (size_t j = 0; j < right->length(); ++j) {
      if (right->IsNull(j)) continue;
      if (left->data<int64_t>()[i] == right->data<int64_t>()[j]) {
        expected.insert({static_cast<int64_t>(i), static_cast<int64_t>(j)});
      }
    }
  }
  for (size_t k = 0; k < result.left_indices.size(); ++k) {
    actual.insert({result.left_indices[k], result.right_indices[k]});
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(KernelPropertyTest, SemiPlusAntiPartitionLeft) {
  auto cfg = GetParam();
  auto left = RandomColumn(cfg, 3);
  auto right = RandomColumn({cfg.rows / 3 + 1, cfg.cardinality,
                             cfg.null_fraction, cfg.seed},
                            4);
  auto ctx = Ctx();
  gdf::JoinOptions semi, anti;
  semi.type = gdf::JoinType::kSemi;
  anti.type = gdf::JoinType::kAnti;
  auto s = gdf::HashJoin(ctx, {left}, {right}, semi).ValueOrDie();
  auto a = gdf::HashJoin(ctx, {left}, {right}, anti).ValueOrDie();
  // Semi and anti results partition the left row set exactly.
  std::set<gdf::index_t> seen;
  for (auto i : s.left_indices) EXPECT_TRUE(seen.insert(i).second);
  for (auto i : a.left_indices) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), left->length());
}

// --- Group-by vs map reference --------------------------------------------

TEST_P(KernelPropertyTest, GroupBySumMatchesReference) {
  auto cfg = GetParam();
  auto keys = RandomColumn(cfg, 5);
  auto vals = RandomColumn({cfg.rows, 1000, 0.0, cfg.seed}, 6);
  auto values =
      Table::Make(Schema({{"v", format::Int64()}}), {vals}).ValueOrDie();
  auto ctx = Ctx();
  std::vector<gdf::AggRequest> aggs{{gdf::AggKind::kSum, 0, "s"},
                                    {gdf::AggKind::kCountStar, -1, "c"}};
  auto out =
      gdf::GroupByAggregate(ctx, {keys}, {"k"}, values, aggs).ValueOrDie();

  // Reference map: NULL key modeled as a sentinel.
  std::map<int64_t, std::pair<int64_t, int64_t>> expected;  // key -> (sum, n)
  constexpr int64_t kNullKey = INT64_MIN;
  for (size_t i = 0; i < keys->length(); ++i) {
    int64_t k = keys->IsNull(i) ? kNullKey : keys->data<int64_t>()[i];
    expected[k].first += vals->data<int64_t>()[i];
    expected[k].second += 1;
  }
  ASSERT_EQ(out->num_rows(), expected.size());
  for (size_t g = 0; g < out->num_rows(); ++g) {
    int64_t k = out->column(0)->IsNull(g) ? kNullKey
                                          : out->column(0)->data<int64_t>()[g];
    ASSERT_TRUE(expected.count(k)) << k;
    EXPECT_EQ(out->ColumnByName("s")->data<int64_t>()[g], expected[k].first);
    EXPECT_EQ(out->ColumnByName("c")->data<int64_t>()[g], expected[k].second);
  }
}

// --- Sort invariants -------------------------------------------------------

TEST_P(KernelPropertyTest, SortIsOrderedPermutation) {
  auto cfg = GetParam();
  auto keys = RandomColumn(cfg, 7);
  auto ctx = Ctx();
  auto order = gdf::SortIndices(ctx, {keys}).ValueOrDie();
  ASSERT_EQ(order.size(), keys->length());
  // Permutation.
  std::vector<bool> seen(order.size(), false);
  for (auto i : order) {
    ASSERT_GE(i, 0);
    ASSERT_LT(static_cast<size_t>(i), seen.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  // Non-decreasing with NULLs last.
  bool seen_null = false;
  for (size_t k = 1; k < order.size(); ++k) {
    bool prev_null = keys->IsNull(order[k - 1]);
    bool cur_null = keys->IsNull(order[k]);
    seen_null |= prev_null;
    if (seen_null) {
      EXPECT_TRUE(cur_null);  // once NULLs start, they continue
    } else if (!cur_null) {
      EXPECT_LE(keys->data<int64_t>()[order[k - 1]],
                keys->data<int64_t>()[order[k]]);
    }
  }
}

TEST_P(KernelPropertyTest, SortStability) {
  auto cfg = GetParam();
  auto keys = RandomColumn(cfg, 8);
  auto ctx = Ctx();
  auto order = gdf::SortIndices(ctx, {keys}).ValueOrDie();
  for (size_t k = 1; k < order.size(); ++k) {
    bool n1 = keys->IsNull(order[k - 1]), n2 = keys->IsNull(order[k]);
    bool equal = (n1 && n2) ||
                 (!n1 && !n2 &&
                  keys->data<int64_t>()[order[k - 1]] ==
                      keys->data<int64_t>()[order[k]]);
    if (equal) {
      EXPECT_LT(order[k - 1], order[k]);  // original order preserved
    }
  }
}

// --- Filter / partition invariants ----------------------------------------

TEST_P(KernelPropertyTest, FilterKeepsExactlyMatchingRows) {
  auto cfg = GetParam();
  auto keys = RandomColumn(cfg, 9);
  auto t = Table::Make(Schema({{"k", format::Int64()}}), {keys}).ValueOrDie();
  auto pred = expr::Lt(expr::ColRef("k"), expr::LitInt(cfg.cardinality / 2));
  SIRIUS_CHECK_OK(expr::Bind(pred, t->schema()));
  auto mask = expr::Evaluate(*pred, *t).ValueOrDie();
  auto ctx = Ctx();
  auto out = gdf::ApplyBooleanMask(ctx, t, mask).ValueOrDie();
  size_t expected = 0;
  for (size_t i = 0; i < keys->length(); ++i) {
    if (!keys->IsNull(i) && keys->data<int64_t>()[i] < cfg.cardinality / 2) {
      ++expected;
    }
  }
  EXPECT_EQ(out->num_rows(), expected);
  for (size_t i = 0; i < out->num_rows(); ++i) {
    EXPECT_LT(out->column(0)->data<int64_t>()[i], cfg.cardinality / 2);
  }
}

TEST_P(KernelPropertyTest, PartitionsAreDisjointAndComplete) {
  auto cfg = GetParam();
  auto keys = RandomColumn(cfg, 10);
  auto t = Table::Make(Schema({{"k", format::Int64()}}), {keys}).ValueOrDie();
  auto ctx = Ctx();
  auto parts = gdf::HashPartition(ctx, t, {0}, 5).ValueOrDie();
  size_t total = 0;
  std::map<int64_t, std::set<size_t>> key_to_parts;
  for (size_t p = 0; p < parts.size(); ++p) {
    total += parts[p]->num_rows();
    for (size_t i = 0; i < parts[p]->num_rows(); ++i) {
      if (!parts[p]->column(0)->IsNull(i)) {
        key_to_parts[parts[p]->column(0)->data<int64_t>()[i]].insert(p);
      }
    }
  }
  EXPECT_EQ(total, t->num_rows());
  for (const auto& [k, ps] : key_to_parts) {
    EXPECT_EQ(ps.size(), 1u) << "key " << k << " in multiple partitions";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelPropertyTest,
    ::testing::Values(RandomConfig{50, 8, 0.0, 1},
                      RandomConfig{500, 50, 0.0, 2},
                      RandomConfig{500, 50, 0.2, 3},
                      RandomConfig{2000, 4, 0.1, 4},
                      RandomConfig{2000, 5000, 0.0, 5},
                      RandomConfig{1, 1, 0.0, 6},
                      RandomConfig{100, 3, 0.9, 7}),
    ConfigName);

// --- SQL-level properties ---------------------------------------------------

class SqlPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(GetParam());
    format::ColumnBuilder k(format::Int64()), v(format::Int64()),
        g(format::String());
    const size_t n = 400;
    for (size_t i = 0; i < n; ++i) {
      k.AppendInt(static_cast<int64_t>(rng() % 40));
      if (rng() % 10 == 0) {
        v.AppendNull();
      } else {
        v.AppendInt(static_cast<int64_t>(rng() % 100));
      }
      g.AppendString(std::string(1, static_cast<char>('a' + rng() % 5)));
    }
    auto t = Table::Make(Schema({{"k", format::Int64()},
                                 {"v", format::Int64()},
                                 {"g", format::String()}}),
                         {k.Finish(), v.Finish(), g.Finish()})
                 .ValueOrDie();
    SIRIUS_CHECK_OK(db_.CreateTable("t", t));
  }

  int64_t ScalarInt(const std::string& sql) {
    auto r = db_.Query(sql);
    SIRIUS_CHECK_OK(r.status());
    SIRIUS_CHECK(r.ValueOrDie().table->num_rows() == 1);
    return r.ValueOrDie().table->column(0)->GetScalar(0).int_value();
  }

  host::Database db_;
};

TEST_P(SqlPropertyTest, GroupSumsAddUpToGlobalSum) {
  int64_t global = ScalarInt("select sum(v) from t");
  auto groups = db_.Query("select g, sum(v) as s from t group by g").ValueOrDie();
  int64_t total = 0;
  for (size_t i = 0; i < groups.table->num_rows(); ++i) {
    if (!groups.table->column(1)->IsNull(i)) {
      total += groups.table->column(1)->data<int64_t>()[i];
    }
  }
  EXPECT_EQ(total, global);
}

TEST_P(SqlPropertyTest, FilterPartitionsCount) {
  int64_t all = ScalarInt("select count(*) from t");
  int64_t lo = ScalarInt("select count(*) from t where v < 50");
  int64_t hi = ScalarInt("select count(*) from t where v >= 50");
  int64_t nulls = ScalarInt("select count(*) from t where v is null");
  EXPECT_EQ(lo + hi + nulls, all);  // NULL comparisons are neither side
}

TEST_P(SqlPropertyTest, DistinctCountMatchesGroupCount) {
  int64_t distinct = ScalarInt("select count(distinct k) from t");
  auto grouped =
      db_.Query("select k, count(*) from t group by k").ValueOrDie();
  EXPECT_EQ(static_cast<size_t>(distinct), grouped.table->num_rows());
}

TEST_P(SqlPropertyTest, SemiJoinSubsetOfLeft) {
  int64_t all = ScalarInt("select count(*) from t");
  int64_t semi = ScalarInt(
      "select count(*) from t where k in (select k from t where v > 90)");
  int64_t anti = ScalarInt(
      "select count(*) from t where k not in (select k from t where v > 90)");
  EXPECT_LE(semi, all);
  EXPECT_EQ(semi + anti, all);
}

TEST_P(SqlPropertyTest, OrderByLimitIsPrefixOfFullSort) {
  auto full = db_.Query("select k, v from t order by v desc, k").ValueOrDie();
  auto top = db_.Query("select k, v from t order by v desc, k limit 10")
                 .ValueOrDie();
  ASSERT_LE(top.table->num_rows(), 10u);
  for (size_t i = 0; i < top.table->num_rows(); ++i) {
    EXPECT_TRUE(top.table->column(0)->GetScalar(i) ==
                full.table->column(0)->GetScalar(i));
    EXPECT_TRUE(top.table->column(1)->GetScalar(i) ==
                full.table->column(1)->GetScalar(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// --- SSB generator vs scalar reference oracles ----------------------------
//
// Fifty seeded draws sweep the generator's knobs (Zipf skew 0-2.5,
// string-heavy on/off, pad lengths 8-96). For each draw, group-by
// cardinalities and join selectivities computed by the SQL engine over the
// generated tables must match reference values computed by direct scalar
// scans of the same table bytes — and padding must never change a group-by
// cardinality relative to the unpadded generation.

class SsbGeneratorPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  ssb::SsbOptions DrawOptions() const {
    const uint32_t draw = GetParam();
    ssb::SsbOptions options;
    options.sf = 0.002;
    options.skew = static_cast<double>(draw % 6) * 0.5;  // 0 .. 2.5
    options.string_heavy = draw % 2 == 1;
    options.string_pad = 8 + static_cast<int>((draw * 7) % 89);  // 8 .. 96
    options.seed = draw;
    return options;
  }

  static size_t DistinctStrings(const Table& t, const std::string& column) {
    std::set<std::string> values;
    const Column& col = *t.ColumnByName(column);
    for (size_t i = 0; i < t.num_rows(); ++i) {
      values.insert(std::string(col.StringAt(i)));
    }
    return values.size();
  }

  static int64_t ScalarInt(host::Database* db, const std::string& sql) {
    auto r = db->Query(sql);
    SIRIUS_CHECK_OK(r.status());
    SIRIUS_CHECK(r.ValueOrDie().table->num_rows() == 1);
    return r.ValueOrDie().table->column(0)->GetScalar(0).int_value();
  }
};

TEST_P(SsbGeneratorPropertyTest, GroupByCardinalityMatchesScalarOracle) {
  host::Database db;
  ASSERT_TRUE(ssb::LoadSsb(&db, DrawOptions()).ok());
  const struct {
    const char* table;
    const char* column;
  } kCases[] = {{"ssb_customer", "c_city"},
                {"ssb_supplier", "s_nation"},
                {"ssb_part", "p_brand1"},
                {"dwdate", "d_yearmonth"}};
  for (const auto& c : kCases) {
    TablePtr raw = db.catalog().GetTable(c.table).ValueOrDie();
    const size_t oracle = DistinctStrings(*raw, c.column);
    auto grouped = db.Query(std::string("select ") + c.column +
                            ", count(*) from " + c.table + " group by " +
                            c.column);
    ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
    EXPECT_EQ(grouped.ValueOrDie().table->num_rows(), oracle)
        << c.table << "." << c.column;
  }
}

TEST_P(SsbGeneratorPropertyTest, PaddingPreservesGroupByCardinality) {
  ssb::SsbOptions padded = DrawOptions();
  padded.string_heavy = true;
  ssb::SsbOptions plain = padded;
  plain.string_heavy = false;
  const struct {
    const char* table;
    const char* column;
  } kCases[] = {{"ssb_customer", "c_city"},
                {"ssb_supplier", "s_city"},
                {"ssb_part", "p_brand1"}};
  for (const auto& c : kCases) {
    TablePtr a = ssb::GenerateTable(c.table, padded).ValueOrDie();
    TablePtr b = ssb::GenerateTable(c.table, plain).ValueOrDie();
    EXPECT_EQ(DistinctStrings(*a, c.column), DistinctStrings(*b, c.column))
        << c.table << "." << c.column << " pad " << padded.string_pad;
  }
}

TEST_P(SsbGeneratorPropertyTest, JoinSelectivityMatchesScalarOracle) {
  host::Database db;
  ASSERT_TRUE(ssb::LoadSsb(&db, DrawOptions()).ok());
  TablePtr lineorder = db.catalog().GetTable("lineorder").ValueOrDie();
  const auto& lo = *lineorder;
  auto fact_column = [&](const char* name) {
    return lo.ColumnByName(name)->data<int64_t>();
  };

  // Keys of each dimension subset, gathered by direct scan.
  auto dim_keys = [&](const char* table, const char* key,
                      const char* filter_col, const char* filter_val) {
    TablePtr t = db.catalog().GetTable(table).ValueOrDie();
    const auto* keys = t->ColumnByName(key)->data<int64_t>();
    const Column& f = *t->ColumnByName(filter_col);
    std::set<int64_t> out;
    for (size_t i = 0; i < t->num_rows(); ++i) {
      if (f.StringAt(i) == filter_val) out.insert(keys[i]);
    }
    return out;
  };

  // Supplier side: Zipf skew concentrates lo_suppkey, so the oracle count
  // moves with the draw's skew — the engine has to agree exactly anyway.
  {
    const std::set<int64_t> asia =
        dim_keys("ssb_supplier", "s_suppkey", "s_region", "ASIA");
    const auto* supp = fact_column("lo_suppkey");
    int64_t oracle = 0;
    for (size_t i = 0; i < lo.num_rows(); ++i) {
      if (asia.count(supp[i]) != 0) ++oracle;
    }
    EXPECT_EQ(ScalarInt(&db,
                        "select count(*) from lineorder, ssb_supplier "
                        "where lo_suppkey = s_suppkey and s_region = 'ASIA'"),
              oracle);
  }

  // Customer side.
  {
    const std::set<int64_t> america =
        dim_keys("ssb_customer", "c_custkey", "c_region", "AMERICA");
    const auto* cust = fact_column("lo_custkey");
    int64_t oracle = 0;
    for (size_t i = 0; i < lo.num_rows(); ++i) {
      if (america.count(cust[i]) != 0) ++oracle;
    }
    EXPECT_EQ(
        ScalarInt(&db,
                  "select count(*) from lineorder, ssb_customer "
                  "where lo_custkey = c_custkey and c_region = 'AMERICA'"),
        oracle);
  }

  // Date side: every lo_orderdate resolves to exactly one calendar row, so
  // the unfiltered join must preserve the fact rowcount (FK integrity).
  {
    TablePtr dates = db.catalog().GetTable("dwdate").ValueOrDie();
    const auto* keys = dates->ColumnByName("d_datekey")->data<int64_t>();
    const auto* years = dates->ColumnByName("d_year")->data<int64_t>();
    std::set<int64_t> y1993;
    for (size_t i = 0; i < dates->num_rows(); ++i) {
      if (years[i] == 1993) y1993.insert(keys[i]);
    }
    const auto* od = fact_column("lo_orderdate");
    int64_t oracle = 0;
    for (size_t i = 0; i < lo.num_rows(); ++i) {
      if (y1993.count(od[i]) != 0) ++oracle;
    }
    EXPECT_EQ(ScalarInt(&db,
                        "select count(*) from lineorder, dwdate "
                        "where lo_orderdate = d_datekey and d_year = 1993"),
              oracle);
    EXPECT_EQ(ScalarInt(&db,
                        "select count(*) from lineorder, dwdate "
                        "where lo_orderdate = d_datekey"),
              static_cast<int64_t>(lo.num_rows()));
  }
}

INSTANTIATE_TEST_SUITE_P(Draws, SsbGeneratorPropertyTest,
                         ::testing::Range(0u, 50u),
                         [](const auto& info) {
                           return "draw" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sirius
