// Observability subsystem tests: TraceRecorder/Span/metrics unit behavior,
// engine and distributed query profiles (overlap, cache reuse, fault
// retries), exporter schema and determinism, and the tracing-overhead and
// ResetStats-race regressions.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "dist/cluster.h"
#include "engine/sirius.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/json.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

// ---------------------------------------------------------------------------
// TraceMatcher: assertion helper over a QueryProfile
// ---------------------------------------------------------------------------

/// Query-side of trace assertions: find spans by name prefix, category, or
/// track-name prefix, and check interval relations between them.
class TraceMatcher {
 public:
  explicit TraceMatcher(const obs::QueryProfile& profile) : p_(profile) {}

  /// TrackId of the exactly-named track, or -1.
  int Track(const std::string& name) const {
    for (size_t i = 0; i < p_.tracks.size(); ++i) {
      if (p_.tracks[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// True when the profile has a track whose name starts with `prefix`.
  bool HasTrackPrefixed(const std::string& prefix) const {
    for (const auto& t : p_.tracks) {
      if (t.rfind(prefix, 0) == 0) return true;
    }
    return false;
  }

  /// Spans matching a name prefix, optionally restricted to tracks whose
  /// name starts with `track_prefix`.
  std::vector<const obs::SpanRecord*> Named(
      const std::string& name_prefix, const std::string& track_prefix = "") const {
    std::vector<const obs::SpanRecord*> out;
    for (const auto& s : p_.spans) {
      if (s.name.rfind(name_prefix, 0) != 0) continue;
      if (!track_prefix.empty() &&
          TrackName(s.track).rfind(track_prefix, 0) != 0) {
        continue;
      }
      out.push_back(&s);
    }
    return out;
  }

  std::vector<const obs::SpanRecord*> InCategory(const std::string& cat) const {
    return p_.SpansInCategory(cat);
  }

  const std::string& TrackName(obs::TrackId id) const {
    static const std::string kUnknown = "?";
    if (id < 0 || static_cast<size_t>(id) >= p_.tracks.size()) return kUnknown;
    return p_.tracks[id];
  }

  /// True when some span in `candidates` starts strictly inside [a, b).
  static bool AnyStartsWithin(
      const std::vector<const obs::SpanRecord*>& candidates, double a, double b) {
    for (const auto* s : candidates) {
      if (s->start_s >= a && s->start_s < b) return true;
    }
    return false;
  }

 private:
  const obs::QueryProfile& p_;
};

// ---------------------------------------------------------------------------
// TraceRecorder / Span units
// ---------------------------------------------------------------------------

double FixedClockNow(const void* ctx) { return *static_cast<const double*>(ctx); }

obs::Clock FixedClock(const double* t, double base = 0.0) {
  obs::Clock c;
  c.now = FixedClockNow;
  c.ctx = t;
  c.base = base;
  return c;
}

TEST(TraceRecorderTest, RecordsAndCanonicallySorts) {
  obs::TraceRecorder rec;
  obs::TrackId a = rec.RegisterTrack("a");
  obs::TrackId b = rec.RegisterTrack("b");
  EXPECT_EQ(rec.RegisterTrack("a"), a);  // dedup by name

  rec.AddComplete(b, "late", "test", 2.0, 3.0);
  rec.AddComplete(a, "second", "test", 1.0, 2.0, {{"bytes", 64.0}});
  rec.AddComplete(a, "first", "test", 0.0, 1.0);
  rec.AddCounter("events", 2);
  rec.AddCounter("events");
  rec.SetGauge("depth", 4.0);

  obs::QueryProfile p = rec.Finish();
  ASSERT_EQ(p.spans.size(), 3u);
  // Sorted by (track, start, name), independent of insertion order.
  EXPECT_EQ(p.spans[0].name, "first");
  EXPECT_EQ(p.spans[1].name, "second");
  EXPECT_EQ(p.spans[2].name, "late");
  EXPECT_DOUBLE_EQ(p.spans[1].Attr("bytes"), 64.0);
  EXPECT_DOUBLE_EQ(p.spans[1].Attr("missing", -1.0), -1.0);
  EXPECT_EQ(p.Counter("events"), 3u);
  EXPECT_DOUBLE_EQ(p.gauges.at("depth"), 4.0);
  EXPECT_DOUBLE_EQ(p.MaxEnd(), 3.0);
  EXPECT_EQ(p.CountNamed("f"), 1u);
  EXPECT_EQ(p.CountCategory("test"), 3u);
}

TEST(TraceRecorderTest, CapacityOverflowDropsAndCounts) {
  obs::TraceRecorder::Options opt;
  opt.capacity = 2;
  obs::TraceRecorder rec(opt);
  obs::TrackId t = rec.RegisterTrack("t");
  rec.AddComplete(t, "a", "c", 0, 1);
  rec.AddComplete(t, "b", "c", 1, 2);
  rec.AddComplete(t, "dropped", "c", 2, 3);
  EXPECT_EQ(rec.dropped_spans(), 1u);
  obs::QueryProfile p = rec.Finish();
  EXPECT_EQ(p.spans.size(), 2u);
  EXPECT_EQ(p.dropped_spans, 1u);

  // Unbounded mode keeps everything.
  opt.capacity = 1;
  opt.unbounded = true;
  obs::TraceRecorder grow(opt);
  for (int i = 0; i < 10; ++i) grow.AddComplete(0, "s", "c", i, i + 1);
  EXPECT_EQ(grow.Finish().spans.size(), 10u);
}

TEST(TraceRecorderTest, SpanGuardEndsOnScopeExit) {
  obs::TraceRecorder rec;
  obs::TrackId t = rec.RegisterTrack("t");
  double now = 1.0;
  {
    obs::Span span(&rec, t, "scoped", "test", FixedClock(&now));
    span.SetAttr("k", 7.0);
    now = 5.0;  // clock advances while the span is open
  }
  obs::QueryProfile p = rec.Finish();
  ASSERT_EQ(p.spans.size(), 1u);
  EXPECT_DOUBLE_EQ(p.spans[0].start_s, 1.0);
  EXPECT_DOUBLE_EQ(p.spans[0].end_s, 5.0);
  EXPECT_DOUBLE_EQ(p.spans[0].Attr("k"), 7.0);

  // Null-recorder guards are inert; disabled recorders record nothing.
  double t0 = 0.0;
  obs::Span inert(nullptr, 0, "x", "y", FixedClock(&t0));
  inert.SetAttr("a", 1.0);
  obs::TraceRecorder::Options off;
  off.enabled = false;
  obs::TraceRecorder disabled(off);
  EXPECT_EQ(disabled.BeginSpan(0, "x", "y", 0.0), obs::kInvalidSpan);
  EXPECT_TRUE(disabled.Finish().spans.empty());
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, SnapshotAndReset) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("hits");
  c->Add(5);
  reg.SetGauge("ratio", 0.5);
  auto snap = reg.Snapshot();
  EXPECT_EQ(snap.at("hits"), 5u);
  EXPECT_DOUBLE_EQ(reg.Gauges().at("ratio"), 0.5);

  reg.Reset();
  EXPECT_EQ(reg.Snapshot().at("hits"), 0u);
  c->Add(2);
  EXPECT_EQ(reg.Snapshot().at("hits"), 2u);
}

// Regression for the ResetStats race: concurrent increments during
// Reset/Snapshot must never produce torn or underflowed (wrapped) values.
TEST(MetricsTest, ResetWhileWritersRunningNeverUnderflows) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("writes");
  constexpr uint64_t kPerThread = 20000;
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([c] {
      for (uint64_t j = 0; j < kPerThread; ++j) c->Add();
    });
  }
  // A snapshot that raced a reset the wrong way would wrap around to a
  // value near 2^64; everything below the true total is consistent.
  for (int i = 0; i < 200; ++i) {
    reg.Reset();
    uint64_t v = reg.Snapshot().at("writes");
    EXPECT_LE(v, kPerThread * kThreads);
  }
  for (auto& w : writers) w.join();
  reg.Reset();
  EXPECT_EQ(reg.Snapshot().at("writes"), 0u);
  c->Add(3);
  EXPECT_EQ(reg.Snapshot().at("writes"), 3u);
}

// ---------------------------------------------------------------------------
// Single-node engine profiles
// ---------------------------------------------------------------------------

host::Database* EngineDb() {
  static host::Database* db = [] {
    auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.002));
    return d;
  }();
  return db;
}

TEST(EngineTraceTest, ProfileCoversPipelinesKernelsAndBuffer) {
  engine::SiriusEngine engine(EngineDb(), {});
  auto plan = EngineDb()->PlanSql(tpch::Query(3)).ValueOrDie();
  auto result = engine.ExecutePlan(plan).ValueOrDie();
  ASSERT_NE(result.profile, nullptr);

  TraceMatcher m(*result.profile);
  EXPECT_GE(m.Track("engine"), 0);
  EXPECT_TRUE(m.HasTrackPrefixed("stream-"));
  EXPECT_GT(result.profile->CountCategory("pipeline"), 0u);
  EXPECT_GT(result.profile->CountCategory("kernel"), 0u);
  EXPECT_GT(result.profile->CountCategory("buffer"), 0u);  // cold scans load

  // The enclosing "query" span covers the whole simulated execution.
  auto query = m.Named("query");
  ASSERT_FALSE(query.empty());
  EXPECT_NEAR(query[0]->end_s, result.timeline.total_seconds(), 1e-9);

  // Kernel spans carry the cost-model prediction alongside the charge.
  auto kernels = result.profile->SpansInCategory("kernel");
  ASSERT_FALSE(kernels.empty());
  for (const auto* k : kernels) {
    EXPECT_GT(k->Attr("charged_s"), 0.0);
    EXPECT_GE(k->Attr("charged_s"), k->Attr("predicted_s") * 0.999);
  }
}

TEST(EngineTraceTest, SecondRunHitsCacheWithoutLoadSpans) {
  engine::SiriusEngine engine(EngineDb(), {});
  auto plan = EngineDb()->PlanSql(tpch::Query(6)).ValueOrDie();
  auto cold = engine.ExecutePlan(plan).ValueOrDie();
  ASSERT_NE(cold.profile, nullptr);
  EXPECT_GT(cold.profile->CountNamed("load:"), 0u);

  auto warm = engine.ExecutePlan(plan).ValueOrDie();
  ASSERT_NE(warm.profile, nullptr);
  EXPECT_GT(warm.profile->Counter("buffer.hits"), 0u);
  EXPECT_EQ(warm.profile->CountNamed("load:"), 0u);
  EXPECT_EQ(warm.profile->CountCategory("buffer"), 0u);
  // Warm runs are also faster in simulated time (no host-link transfer).
  EXPECT_LT(warm.timeline.total_seconds(), cold.timeline.total_seconds());
}

TEST(EngineTraceTest, TracingOffYieldsNoProfileAndIdenticalTiming) {
  auto plan = EngineDb()->PlanSql(tpch::Query(3)).ValueOrDie();

  engine::SiriusEngine::Options on;
  engine::SiriusEngine traced(EngineDb(), on);
  auto with = traced.ExecutePlan(plan).ValueOrDie();
  ASSERT_NE(with.profile, nullptr);

  engine::SiriusEngine::Options off;
  off.tracing = false;
  engine::SiriusEngine untraced(EngineDb(), off);
  auto without = untraced.ExecutePlan(plan).ValueOrDie();
  EXPECT_EQ(without.profile, nullptr);

  // Tracing observes the simulated clock but never advances it: simulated
  // time must be *identical* (the acceptance budget is <5%; this is 0).
  EXPECT_DOUBLE_EQ(with.timeline.total_seconds(),
                   without.timeline.total_seconds());
  EXPECT_TRUE(with.table->Equals(*without.table));
}

TEST(EngineTraceTest, ExportIsDeterministicAcrossRuns) {
  auto plan = EngineDb()->PlanSql(tpch::Query(3)).ValueOrDie();
  auto export_once = [&] {
    engine::SiriusEngine engine(EngineDb(), {});
    auto result = engine.ExecutePlan(plan).ValueOrDie();
    return obs::ToChromeTraceJson(*result.profile);
  };
  std::string first = export_once();
  std::string second = export_once();
  // Same plan, same seed, fresh engine: byte-identical trace despite the
  // worker pool executing pipelines in nondeterministic wall-clock order.
  EXPECT_EQ(first, second);
}

TEST(EngineTraceTest, ResetStatsZeroesSnapshotWhileCountersStayMonotone) {
  engine::SiriusEngine engine(EngineDb(), {});
  auto plan = EngineDb()->PlanSql(tpch::Query(1)).ValueOrDie();
  (void)engine.ExecutePlan(plan).ValueOrDie();
  EXPECT_EQ(engine.stats().queries, 1u);

  engine.ResetStats();
  auto zeroed = engine.stats();
  EXPECT_EQ(zeroed.queries, 0u);
  EXPECT_EQ(zeroed.oom_events, 0u);
  EXPECT_EQ(zeroed.evictions_under_pressure, 0u);

  (void)engine.ExecutePlan(plan).ValueOrDie();
  EXPECT_EQ(engine.stats().queries, 1u);
}

// ---------------------------------------------------------------------------
// Distributed profiles
// ---------------------------------------------------------------------------

dist::DorisCluster::Options TraceClusterOptions() {
  dist::DorisCluster::Options options;
  options.num_nodes = 4;
  // Force shuffles (no broadcast shortcut): Q3's joins then exercise the
  // all-to-all path whose overlap the trace should expose.
  options.broadcast_threshold_bytes = 1;
  return options;
}

void LoadCluster(dist::DorisCluster* cluster, double sf = 0.005) {
  for (const auto& name : tpch::TableNames()) {
    auto t = tpch::GenerateTable(name, sf).ValueOrDie();
    SIRIUS_CHECK_OK(cluster->LoadPartitioned(name, t));
  }
}

TEST(DistTraceTest, ShuffleOverlapsDownstreamFragments) {
  dist::DorisCluster cluster(TraceClusterOptions());
  LoadCluster(&cluster);
  auto result = cluster.Query(tpch::Query(3)).ValueOrDie();
  ASSERT_NE(result.profile, nullptr);
  TraceMatcher m(*result.profile);

  // All four layers report: kernels, buffer loads, collectives, fragments.
  EXPECT_GT(result.profile->CountCategory("kernel"), 0u);
  EXPECT_GT(result.profile->CountCategory("buffer"), 0u);
  EXPECT_GT(result.profile->CountCategory("collective"), 0u);
  EXPECT_GT(result.profile->CountCategory("fragment"), 0u);
  EXPECT_GE(m.Track("link"), 0);
  EXPECT_GE(m.Track("coordinator"), 0);
  EXPECT_TRUE(m.HasTrackPrefixed("node-"));

  auto shuffles = m.Named("collective:sccl.alltoall", "link");
  ASSERT_FALSE(shuffles.empty()) << "Q3 with broadcast disabled must shuffle";

  // Per-rank collective completion: at least one downstream fragment span
  // (a build/probe on a lightly-loaded rank) starts while the slowest rank
  // is still inside some shuffle — the overlap GPU schedulers chase.
  auto fragments = m.Named("op:", "node-");
  ASSERT_FALSE(fragments.empty());
  bool overlap = false;
  for (const auto* s : shuffles) {
    overlap = overlap ||
              TraceMatcher::AnyStartsWithin(fragments, s->start_s, s->end_s);
  }
  EXPECT_TRUE(overlap);

  // Collective spans carry their traffic (an empty intermediate may ship 0
  // bytes, but at least one Q3 shuffle moves real rows).
  double max_bytes = 0.0;
  for (const auto* s : shuffles) max_bytes = std::max(max_bytes, s->Attr("bytes"));
  EXPECT_GT(max_bytes, 0.0);
}

TEST(DistTraceTest, SecondRunServesScansFromNodeCaches) {
  dist::DorisCluster cluster(TraceClusterOptions());
  LoadCluster(&cluster);
  auto cold = cluster.Query(tpch::Query(3)).ValueOrDie();
  ASSERT_NE(cold.profile, nullptr);
  EXPECT_GT(cold.profile->CountNamed("load:"), 0u);
  EXPECT_GT(cold.profile->Counter("buffer.misses"), 0u);

  auto warm = cluster.Query(tpch::Query(3)).ValueOrDie();
  ASSERT_NE(warm.profile, nullptr);
  EXPECT_GT(warm.profile->Counter("buffer.hits"), 0u);
  EXPECT_EQ(warm.profile->Counter("buffer.misses"), 0u);
  EXPECT_EQ(warm.profile->CountNamed("load:"), 0u);
  EXPECT_TRUE(cold.table->Equals(*warm.table));
}

TEST(DistTraceTest, TransientLinkFaultShowsExactlyTheReportedRetries) {
  fault::FaultInjector injector(/*seed=*/7);
  auto options = TraceClusterOptions();
  options.injector = &injector;
  dist::DorisCluster cluster(options);
  LoadCluster(&cluster);

  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;  // transient: retry layer heals it
  spec.max_triggers = 2;
  fault::ScopedFault fault(&injector, "sccl.alltoall", spec);

  auto result = cluster.Query(tpch::Query(3)).ValueOrDie();
  ASSERT_NE(result.profile, nullptr);
  EXPECT_EQ(result.recovery.collective_retries, 2);

  // One retry span per healed attempt, no more, no fewer.
  TraceMatcher m(*result.profile);
  auto retries = m.Named("retry:sccl.alltoall", "link");
  EXPECT_EQ(retries.size(),
            static_cast<size_t>(result.recovery.collective_retries));
  EXPECT_EQ(result.profile->CountCategory("retry"),
            static_cast<size_t>(result.recovery.collective_retries));
  for (const auto* r : retries) EXPECT_GT(r->duration_s(), 0.0);
}

TEST(DistTraceTest, NodeDeathLeavesRecoveryMarkers) {
  fault::FaultInjector injector(/*seed=*/11);
  auto options = TraceClusterOptions();
  options.injector = &injector;
  dist::DorisCluster cluster(options);
  LoadCluster(&cluster, 0.003);

  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.max_triggers = 1;
  fault::ScopedFault fault(&injector, "dist.fragment", spec);

  auto result = cluster.Query(tpch::Query(1)).ValueOrDie();
  ASSERT_NE(result.profile, nullptr);
  EXPECT_EQ(result.recovery.node_failures, 1);
  EXPECT_EQ(result.recovery.query_retries, 1);
  TraceMatcher m(*result.profile);
  EXPECT_EQ(m.Named("recovery:node-").size(), 1u);
  EXPECT_EQ(m.Named("recovery:query-retry").size(), 1u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExportTest, ChromeTraceValidatesAgainstEventSchema) {
  dist::DorisCluster cluster(TraceClusterOptions());
  LoadCluster(&cluster);
  auto result = cluster.Query(tpch::Query(3)).ValueOrDie();
  ASSERT_NE(result.profile, nullptr);

  std::string json = obs::ToChromeTraceJson(*result.profile);
  auto doc = plan::Json::Parse(json).ValueOrDie();
  ASSERT_TRUE(doc.Has("traceEvents"));
  const auto& events = doc["traceEvents"];
  ASSERT_EQ(events.kind(), plan::Json::Kind::kArray);
  ASSERT_GT(events.size(), 0u);

  std::set<std::string> cats;
  std::set<std::string> thread_names;
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& e = events.at(i);
    ASSERT_TRUE(e.Has("name"));
    ASSERT_TRUE(e.Has("ph"));
    ASSERT_TRUE(e.Has("pid"));
    ASSERT_TRUE(e.Has("tid"));
    const std::string ph = e["ph"].AsString();
    if (ph == "M") {
      EXPECT_EQ(e["name"].AsString(), "thread_name");
      thread_names.insert(e["args"]["name"].AsString());
      continue;
    }
    ASSERT_TRUE(e.Has("ts"));
    ASSERT_TRUE(e.Has("cat"));
    EXPECT_GE(e["ts"].AsDouble(), 0.0);
    if (ph == "X") {
      ASSERT_TRUE(e.Has("dur"));
      EXPECT_GE(e["dur"].AsDouble(), 0.0);
    } else {
      EXPECT_EQ(ph, "i");
    }
    cats.insert(e["cat"].AsString());
  }
  // Spans from every instrumented layer make it into the export.
  EXPECT_TRUE(cats.count("kernel"));
  EXPECT_TRUE(cats.count("buffer"));
  EXPECT_TRUE(cats.count("collective"));
  EXPECT_TRUE(cats.count("fragment"));
  // One simulated lane per node plus the link and the coordinator.
  EXPECT_TRUE(thread_names.count("link"));
  EXPECT_TRUE(thread_names.count("coordinator"));
  EXPECT_TRUE(thread_names.count("node-0"));
  EXPECT_TRUE(thread_names.count("node-3"));
}

TEST(ExportTest, TextSummaryListsCategoriesAndCounters) {
  engine::SiriusEngine engine(EngineDb(), {});
  auto plan = EngineDb()->PlanSql(tpch::Query(6)).ValueOrDie();
  auto result = engine.ExecutePlan(plan).ValueOrDie();
  std::string text = obs::ToTextSummary(*result.profile);
  EXPECT_NE(text.find("kernel"), std::string::npos);
  EXPECT_NE(text.find("pipeline"), std::string::npos);
  EXPECT_NE(text.find("buffer.misses"), std::string::npos);
}

}  // namespace
}  // namespace sirius
