// Pipeline-compiler unit tests (§3.2.2's execution model) and TPC-H
// result-invariant checks that hold at any scale factor.

#include <gtest/gtest.h>

#include "engine/pipeline.h"
#include "engine/sirius.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

class PipelineCompilerTest : public ::testing::Test {
 protected:
  static host::Database* db() {
    static host::Database* instance = [] {
      auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
      SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.002));
      return d;
    }();
    return instance;
  }

  std::vector<engine::Pipeline> Compile(int q, int* result_id) {
    auto plan = db()->PlanSql(tpch::Query(q)).ValueOrDie();
    std::vector<engine::Pipeline> pipelines;
    *result_id = engine::PipelineCompiler::Compile(plan, &pipelines).ValueOrDie();
    // Keep the plan alive for the duration of the test via a static pool.
    static std::vector<plan::PlanPtr> keepalive;
    keepalive.push_back(plan);
    return pipelines;
  }
};

TEST_F(PipelineCompilerTest, EveryPipelineHasASource) {
  for (int q = 1; q <= 22; ++q) {
    int result_id = 0;
    auto pipelines = Compile(q, &result_id);
    ASSERT_FALSE(pipelines.empty()) << "Q" << q;
    ASSERT_GE(result_id, 0);
    ASSERT_LT(static_cast<size_t>(result_id), pipelines.size());
    for (const auto& p : pipelines) {
      EXPECT_TRUE(p.source_scan != nullptr || p.source_pipeline >= 0)
          << "Q" << q << " pipeline " << p.id;
    }
  }
}

TEST_F(PipelineCompilerTest, DependenciesAreAcyclicAndComplete) {
  for (int q = 1; q <= 22; ++q) {
    int result_id = 0;
    auto pipelines = Compile(q, &result_id);
    for (const auto& p : pipelines) {
      for (int d : p.dependencies) {
        ASSERT_GE(d, 0) << "Q" << q;
        ASSERT_LT(static_cast<size_t>(d), pipelines.size()) << "Q" << q;
        EXPECT_NE(d, p.id) << "Q" << q << ": self-dependency";
      }
      // Every probe step's build pipeline is a declared dependency.
      for (const auto& s : p.steps) {
        if (s.build_pipeline >= 0) {
          EXPECT_NE(std::find(p.dependencies.begin(), p.dependencies.end(),
                              s.build_pipeline),
                    p.dependencies.end())
              << "Q" << q;
        }
      }
      // A source pipeline is a dependency too.
      if (p.source_pipeline >= 0) {
        EXPECT_NE(std::find(p.dependencies.begin(), p.dependencies.end(),
                            p.source_pipeline),
                  p.dependencies.end())
            << "Q" << q;
      }
    }
  }
}

TEST_F(PipelineCompilerTest, BreakersTerminatePipelines) {
  // Q3: joins + aggregate + sort + limit => at least 4 pipelines, and sinks
  // for aggregate/sort/limit appear exactly once each.
  int result_id = 0;
  auto pipelines = Compile(3, &result_id);
  EXPECT_GE(pipelines.size(), 4u);
  int aggs = 0, sorts = 0, limits = 0;
  for (const auto& p : pipelines) {
    aggs += p.sink == engine::SinkKind::kAggregate;
    sorts += p.sink == engine::SinkKind::kSort;
    limits += p.sink == engine::SinkKind::kLimit;
  }
  EXPECT_EQ(aggs, 1);
  EXPECT_EQ(sorts, 1);
  EXPECT_EQ(limits, 1);
}

// ---------------------------------------------------------------------------
// TPC-H result invariants (scale-independent sanity beyond cross-engine
// agreement)
// ---------------------------------------------------------------------------

class TpchInvariantTest : public ::testing::Test {
 protected:
  static host::Database* db() {
    static host::Database* instance = [] {
      auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
      SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.01));
      return d;
    }();
    return instance;
  }

  format::TablePtr Run(const std::string& sql) {
    auto r = db()->Query(sql);
    SIRIUS_CHECK_OK(r.status());
    return r.ValueOrDie().table;
  }
};

TEST_F(TpchInvariantTest, Q1CountsSumToFilteredLineitems) {
  auto q1 = Run(tpch::Query(1));
  int64_t total = 0;
  auto count_col = q1->ColumnByName("count_order");
  for (size_t i = 0; i < q1->num_rows(); ++i) {
    total += count_col->data<int64_t>()[i];
  }
  auto direct = Run(
      "select count(*) as c from lineitem "
      "where l_shipdate <= date '1998-12-01' - interval '90' day");
  EXPECT_EQ(total, direct->column(0)->data<int64_t>()[0]);
}

TEST_F(TpchInvariantTest, Q1AveragesConsistentWithSums) {
  auto q1 = Run(tpch::Query(1));
  for (size_t i = 0; i < q1->num_rows(); ++i) {
    double sum_qty = q1->ColumnByName("sum_qty")->GetScalar(i).AsDouble();
    double avg_qty = q1->ColumnByName("avg_qty")->data<double>()[i];
    double n = static_cast<double>(
        q1->ColumnByName("count_order")->data<int64_t>()[i]);
    EXPECT_NEAR(avg_qty, sum_qty / n, 1e-6);
  }
}

TEST_F(TpchInvariantTest, Q6RevenueMatchesManualComputation) {
  auto q6 = Run(tpch::Query(6));
  // Recompute from the base table with a different query shape.
  auto manual = Run(
      "select sum(l_extendedprice * l_discount) as revenue "
      "from lineitem "
      "where l_shipdate >= date '1994-01-01' "
      "and l_shipdate <= date '1994-12-31' "
      "and l_discount >= 0.05 and l_discount <= 0.07 "
      "and l_quantity <= 23");
  EXPECT_TRUE(q6->column(0)->GetScalar(0) == manual->column(0)->GetScalar(0));
}

TEST_F(TpchInvariantTest, Q4IsSubsetOfAllPriorities) {
  auto q4 = Run(tpch::Query(4));
  EXPECT_LE(q4->num_rows(), 5u);  // at most the five order priorities
  auto all = Run(
      "select o_orderpriority, count(*) as c from orders "
      "where o_orderdate >= date '1993-07-01' "
      "and o_orderdate < date '1993-10-01' "
      "group by o_orderpriority order by o_orderpriority");
  // Each EXISTS-filtered count is bounded by the unfiltered one.
  for (size_t i = 0; i < q4->num_rows(); ++i) {
    auto prio = q4->column(0)->GetScalar(i);
    for (size_t j = 0; j < all->num_rows(); ++j) {
      if (all->column(0)->GetScalar(j) == prio) {
        EXPECT_LE(q4->column(1)->data<int64_t>()[i],
                  all->column(1)->data<int64_t>()[j]);
      }
    }
  }
}

TEST_F(TpchInvariantTest, Q18ThresholdHolds) {
  auto q18 = Run(tpch::Query(18));
  auto qty = q18->ColumnByName("total_qty");
  for (size_t i = 0; i < q18->num_rows(); ++i) {
    EXPECT_GT(qty->GetScalar(i).AsDouble(), 300.0);
  }
}

TEST_F(TpchInvariantTest, LimitsRespected) {
  EXPECT_LE(Run(tpch::Query(2))->num_rows(), 100u);
  EXPECT_LE(Run(tpch::Query(3))->num_rows(), 10u);
  EXPECT_LE(Run(tpch::Query(10))->num_rows(), 20u);
  EXPECT_LE(Run(tpch::Query(18))->num_rows(), 100u);
  EXPECT_LE(Run(tpch::Query(21))->num_rows(), 100u);
}

TEST_F(TpchInvariantTest, SortOrdersRespected) {
  auto q3 = Run(tpch::Query(3));  // order by revenue desc, o_orderdate
  auto revenue = q3->ColumnByName("revenue");
  for (size_t i = 1; i < q3->num_rows(); ++i) {
    EXPECT_GE(revenue->GetScalar(i - 1).AsDouble(),
              revenue->GetScalar(i).AsDouble());
  }
}

}  // namespace
}  // namespace sirius
