// Tests for the lightweight compression codecs (FOR-bitpack, dictionary)
// used by the Sirius caching region (§3.4).

#include <gtest/gtest.h>

#include <random>

#include "format/builder.h"
#include "format/encoding.h"
#include "tpch/dbgen.h"

namespace sirius::format {
namespace {

void ExpectRoundTrip(const ColumnPtr& col, Codec expected_codec) {
  auto encoded = Encode(col).ValueOrDie();
  EXPECT_EQ(encoded.codec(), expected_codec) << CodecName(encoded.codec());
  auto decoded = Decode(encoded).ValueOrDie();
  EXPECT_TRUE(decoded->Equals(*col));
}

TEST(BitpackTest, BitsFor) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
  EXPECT_EQ(BitsFor(UINT64_MAX), 64);
}

TEST(BitpackTest, PackUnpackWidths) {
  for (int width : {1, 3, 7, 8, 13, 31, 33, 63}) {
    std::mt19937_64 rng(width);
    const size_t n = 257;
    std::vector<uint64_t> values(n);
    uint64_t mask = width == 64 ? UINT64_MAX : ((uint64_t{1} << width) - 1);
    for (auto& v : values) v = rng() & mask;
    std::vector<uint8_t> packed((n * width + 7) / 8 + 8, 0);
    BitpackInto(values.data(), n, width, packed.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(BitpackRead(packed.data(), i, width), values[i])
          << "width " << width << " index " << i;
    }
  }
}

TEST(EncodingTest, IntForBitpackRoundTrip) {
  ExpectRoundTrip(Column::FromInt64({100, 101, 105, 100, 199}),
                  Codec::kForBitpack);
  ExpectRoundTrip(Column::FromInt64({-5, 0, 5}), Codec::kForBitpack);
  ExpectRoundTrip(Column::FromInt64({7, 7, 7, 7}), Codec::kForBitpack);  // 0 bits
  ExpectRoundTrip(Column::FromInt64({}), Codec::kForBitpack);
  ExpectRoundTrip(Column::FromInt32({1, 2, 1 << 20}), Codec::kForBitpack);
  ExpectRoundTrip(Column::FromDate({8035, 9298, 10000}), Codec::kForBitpack);
  ExpectRoundTrip(Column::FromDecimal({199, 5000, 1}, 2), Codec::kForBitpack);
  ExpectRoundTrip(Column::FromBool({true, false, true}), Codec::kForBitpack);
}

TEST(EncodingTest, NullsSurvive) {
  ExpectRoundTrip(Column::FromInt64({1, 0, 3}, {true, false, true}),
                  Codec::kForBitpack);
  // A null slot's physical value must not widen the bit range.
  format::ColumnBuilder b(Int64());
  b.AppendInt(10);
  b.AppendNull();
  b.AppendInt(12);
  auto col = b.Finish();
  auto encoded = Encode(col).ValueOrDie();
  EXPECT_LE(encoded.CompressedBytes(), 64u);
  EXPECT_TRUE(Decode(encoded).ValueOrDie()->Equals(*col));
}

TEST(EncodingTest, NarrowRangeCompressesHard) {
  std::vector<int64_t> v(10000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = 1000000 + static_cast<int64_t>(i % 7);
  auto col = Column::FromInt64(v);
  auto encoded = Encode(col).ValueOrDie();
  // 3 bits/value vs 64: ratio > 15x.
  EXPECT_GT(encoded.CompressionRatio(), 15.0);
  EXPECT_TRUE(Decode(encoded).ValueOrDie()->Equals(*col));
}

TEST(EncodingTest, DictForLowCardinalityStrings) {
  std::vector<std::string> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 2 == 0 ? "AIR" : "TRUCK");
  auto col = Column::FromStrings(v);
  auto encoded = Encode(col).ValueOrDie();
  EXPECT_EQ(encoded.codec(), Codec::kDict);
  EXPECT_GT(encoded.CompressionRatio(), 10.0);
  EXPECT_TRUE(Decode(encoded).ValueOrDie()->Equals(*col));
}

TEST(EncodingTest, DictWithNulls) {
  ExpectRoundTrip(Column::FromStrings({"a", "b", "a", "x", "a", "b"},
                                      {true, false, true, true, false, true}),
                  Codec::kDict);
}

TEST(EncodingTest, HighCardinalityStringsStayPlain) {
  std::vector<std::string> v;
  for (int i = 0; i < 200; ++i) v.push_back("unique_value_" + std::to_string(i));
  ExpectRoundTrip(Column::FromStrings(v), Codec::kPlain);
}

TEST(EncodingTest, DoublesStayPlain) {
  ExpectRoundTrip(Column::FromDouble({1.5, 2.5, -3.25}), Codec::kPlain);
}

TEST(EncodingTest, EmptyStringColumn) {
  ExpectRoundTrip(Column::FromStrings({}), Codec::kDict);
}

TEST(EncodingTest, TpchColumnsCompress) {
  // The whole-table ratio on TPC-H should be in lightweight-compression
  // territory (the §3.4 / FastLanes premise).
  auto lineitem = tpch::GenerateTable("lineitem", 0.002).ValueOrDie();
  uint64_t plain = 0, compressed = 0;
  for (size_t c = 0; c < lineitem->num_columns(); ++c) {
    auto e = Encode(lineitem->column(c)).ValueOrDie();
    plain += e.PlainBytes();
    compressed += e.CompressedBytes();
    auto decoded = Decode(e).ValueOrDie();
    EXPECT_TRUE(decoded->Equals(*lineitem->column(c)))
        << lineitem->schema().field(c).name;
  }
  double ratio = static_cast<double>(plain) / static_cast<double>(compressed);
  EXPECT_GT(ratio, 2.0) << "whole-lineitem ratio " << ratio;
}

TEST(EncodingTest, RandomizedRoundTripSweep) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    format::ColumnBuilder b(Int64());
    size_t n = rng() % 500;
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 7 == 0) {
        b.AppendNull();
      } else {
        b.AppendInt(static_cast<int64_t>(rng()) >> (rng() % 40));
      }
    }
    auto col = b.Finish();
    auto decoded = Decode(Encode(col).ValueOrDie()).ValueOrDie();
    EXPECT_TRUE(decoded->Equals(*col)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sirius::format
