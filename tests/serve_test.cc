// Tests for the serving layer: admission control sheds with retry hints and
// never leaks reservations; the fair scheduler converges to tenant weights;
// deadlines cancel queries mid-pipeline (engine-side) and in the queue;
// the result cache short-circuits repeated SQL and invalidates on catalog
// writes; latency histograms are deterministic for a fixed seed; and the
// headline acceptance: a 64-client closed loop on one simulated GH200
// sustains >= 1.5x the queries-per-simulated-second of a serialized server.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "engine/sirius.h"
#include "serve/load_gen.h"
#include "serve/query_cache.h"
#include "serve/scheduler.h"
#include "serve/serve.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using serve::LoadGenerator;
using serve::LoadOptions;
using serve::LoadReport;
using serve::QueryOutcome;
using serve::QueryServer;
using serve::QueryState;
using serve::ServeOptions;
using serve::SubmitOptions;

constexpr double kSf = 0.01;
// Model SF1 on SF0.01 data: real kernels stay fast while modeled
// intermediates stay well inside the GH200 processing region even when
// dozens of queries hold admissions concurrently.
constexpr double kDataScale = 1.0 / kSf;

host::Database* SharedDb() {
  static host::Database* db = [] {
    host::Database::Options options;
    options.data_scale = kDataScale;
    auto* d = new host::Database(options);  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

engine::SiriusEngine* SharedEngine() {
  static engine::SiriusEngine* eng = [] {
    engine::SiriusEngine::Options options;
    options.data_scale = kDataScale;
    return new engine::SiriusEngine(SharedDb(), options);  // sirius-lint: allow(raw-new-delete): leaked singleton
  }();
  return eng;
}

/// Runs each query in `mix` once so the device column cache is warm and
/// subsequent timings are deterministic.
void WarmEngine(const std::vector<int>& mix) {
  for (int q : mix) {
    auto plan = SharedDb()->PlanSql(tpch::Query(q));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto r = SharedEngine()->ExecutePlan(plan.ValueOrDie());
    ASSERT_TRUE(r.ok()) << "warm Q" << q << ": " << r.status().ToString();
  }
}

TEST(NormalizeSqlTest, CanonicalizesCaseAndWhitespace) {
  EXPECT_EQ(serve::NormalizeSql("SELECT  *\n FROM t"),
            serve::NormalizeSql("select * from t"));
  EXPECT_EQ(serve::NormalizeSql("  select 1  "), "select 1");
}

TEST(NormalizeSqlTest, PreservesStringLiterals) {
  const std::string norm =
      serve::NormalizeSql("SELECT * FROM t WHERE r = 'BRAZIL'");
  EXPECT_NE(norm.find("'BRAZIL'"), std::string::npos);
  EXPECT_NE(serve::NormalizeSql("select 'A'"), serve::NormalizeSql("select 'a'"));
}

TEST(RetryAfterTest, ParsesHintFromStatusMessage) {
  Status s = Status::ResourceExhausted("queue full; retry-after=0.25s");
  EXPECT_DOUBLE_EQ(serve::RetryAfterHint(s), 0.25);
  EXPECT_EQ(serve::RetryAfterHint(Status::ResourceExhausted("no hint")), 0);
}

TEST(FairSchedulerTest, StrideConvergesToWeights) {
  serve::FairScheduler sched;
  sched.RegisterTenant("gold", 3.0);
  sched.RegisterTenant("bronze", 1.0);
  for (uint64_t i = 0; i < 40; ++i) {
    sched.Enqueue({100 + i, "gold", 0, 0.0});
    sched.Enqueue({200 + i, "bronze", 0, 0.0});
  }
  int gold = 0, bronze = 0;
  serve::QueuedEntry e;
  // Uniform unit-cost queries: dispatch counts should track the 3:1 weights.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(sched.PopNext(0.0, &e));
    (e.tenant == "gold" ? gold : bronze)++;
    sched.Charge(e.tenant, 1.0);
  }
  EXPECT_GE(gold, 28);
  EXPECT_LE(bronze, 12);
  EXPECT_NEAR(sched.charged("gold") / std::max(sched.charged("bronze"), 1.0),
              3.0, 1.0);
}

TEST(FairSchedulerTest, InteractiveLaneDispatchesFirst) {
  serve::FairScheduler sched;
  sched.Enqueue({1, "t", 0, 0.0});
  sched.Enqueue({2, "t", 1, 0.0});
  sched.Enqueue({3, "u", 0, 0.0});
  serve::QueuedEntry e;
  ASSERT_TRUE(sched.PopNext(0.0, &e));
  EXPECT_EQ(e.query_id, 2u);  // priority lane preempts both batch entries
}

TEST(ServeAdmissionTest, RejectsOverBudgetReservation) {
  ServeOptions options;
  options.admission_budget_bytes = 1ull << 20;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  SubmitOptions sub;
  sub.reservation_bytes = 2ull << 20;  // twice the budget
  auto r = server.Submit(session, tpch::Query(6), sub);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_GT(serve::RetryAfterHint(r.status()), 0);
  EXPECT_EQ(server.reservations().reserved(), 0u);
  EXPECT_EQ(server.reservations().total_refused(), 1u);
  EXPECT_EQ(server.metrics().Snapshot().at("serve.tenant.acme.shed"), 1u);
}

TEST(ServeAdmissionTest, ShedsWhenQueueIsFull) {
  WarmEngine({6});
  ServeOptions options;
  options.num_streams = 1;  // force queueing behind the first dispatch
  options.max_queue_depth = 2;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  SubmitOptions sub;
  sub.arrival_s = 0;
  int admitted = 0, shed = 0;
  std::vector<serve::QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    auto r = server.Submit(session, tpch::Query(6), sub);
    if (r.ok()) {
      ++admitted;
      ids.push_back(r.ValueOrDie());
    } else {
      ASSERT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
      ++shed;
    }
  }
  // One dispatches immediately, two queue, the rest shed.
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(shed, 2);
  ASSERT_TRUE(server.DrainAll().ok());
  for (auto id : ids) {
    auto out = server.Resolve(id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.ValueOrDie().state, QueryState::kCompleted);
  }
  EXPECT_EQ(server.reservations().reserved(), 0u);
}

TEST(ServeTimeoutTest, DeadlineCancelsMidPipelineAndReleasesReservation) {
  WarmEngine({9});
  const uint64_t cancels_before = SharedEngine()->stats().deadline_cancels;
  ServeOptions options;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  SubmitOptions sub;
  sub.arrival_s = 0;
  sub.timeout_s = 20e-6;  // far below Q9's modeled runtime
  auto r = server.Submit(session, tpch::Query(9), sub);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = server.Resolve(r.ValueOrDie());
  ASSERT_TRUE(out.ok());
  const QueryOutcome& o = out.ValueOrDie();
  EXPECT_EQ(o.state, QueryState::kTimedOut);
  EXPECT_TRUE(o.status.IsTimeout()) << o.status.ToString();
  // Finish is pinned to the simulated deadline, not to any wall clock.
  EXPECT_DOUBLE_EQ(o.finish_s, o.arrival_s + sub.timeout_s);
  // The engine observed the deadline between pipeline steps.
  EXPECT_GT(SharedEngine()->stats().deadline_cancels, cancels_before);
  // The admission reservation was returned on the cancellation path.
  EXPECT_EQ(server.reservations().reserved(), 0u);
}

TEST(ServeTimeoutTest, QueueWaitCountsAgainstDeadline) {
  WarmEngine({1, 6});
  ServeOptions options;
  options.num_streams = 1;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  // A long query occupies the only stream...
  SubmitOptions first;
  first.arrival_s = 0;
  auto a = server.Submit(session, tpch::Query(1), first);
  ASSERT_TRUE(a.ok());
  // ...so a tight-deadline query behind it expires while still queued.
  SubmitOptions second;
  second.arrival_s = 0;
  second.timeout_s = 1e-6;
  auto b = server.Submit(session, tpch::Query(6), second);
  ASSERT_TRUE(b.ok());

  auto out_b = server.Resolve(b.ValueOrDie());
  ASSERT_TRUE(out_b.ok());
  EXPECT_EQ(out_b.ValueOrDie().state, QueryState::kTimedOut);
  EXPECT_EQ(out_b.ValueOrDie().stream, -1);  // never reached the device
  auto out_a = server.Resolve(a.ValueOrDie());
  ASSERT_TRUE(out_a.ok());
  EXPECT_EQ(out_a.ValueOrDie().state, QueryState::kCompleted);
  EXPECT_EQ(server.reservations().reserved(), 0u);
}

TEST(ServeCacheTest, ResultCacheHitSkipsExecution) {
  WarmEngine({1});
  ServeOptions options;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  auto first = server.Submit(session, tpch::Query(1));
  ASSERT_TRUE(first.ok());
  auto out1 = server.Resolve(first.ValueOrDie());
  ASSERT_TRUE(out1.ok());
  ASSERT_EQ(out1.ValueOrDie().state, QueryState::kCompleted);
  EXPECT_FALSE(out1.ValueOrDie().cache_hit);

  const uint64_t queries_before = SharedEngine()->stats().queries;
  // Different whitespace/case, same normalized key.
  std::string variant = tpch::Query(1);
  std::replace(variant.begin(), variant.end(), '\n', ' ');
  variant = "  " + variant + "   ";
  auto second = server.Submit(session, variant);
  ASSERT_TRUE(second.ok());
  auto out2 = server.Resolve(second.ValueOrDie());
  ASSERT_TRUE(out2.ok());
  const QueryOutcome& o2 = out2.ValueOrDie();
  EXPECT_EQ(o2.state, QueryState::kCompleted);
  EXPECT_TRUE(o2.cache_hit);
  EXPECT_EQ(o2.result_rows, out1.ValueOrDie().result_rows);
  EXPECT_DOUBLE_EQ(o2.latency_s(), server.options().cache_hit_cost_s);
  // No execution reached the engine.
  EXPECT_EQ(SharedEngine()->stats().queries, queries_before);
  EXPECT_GE(server.cache_stats().result_hits, 1u);
}

TEST(ServeCacheTest, CatalogWriteInvalidatesCachedResults) {
  WarmEngine({6});
  ServeOptions options;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  auto first = server.Submit(session, tpch::Query(6));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(server.Resolve(first.ValueOrDie()).ok());

  // Any catalog write may change any cached answer.
  auto extra = format::Table::Make(
      format::Schema({{"x", format::Int64()}}),
      {format::Column::FromInt64({1, 2, 3})});
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(
      SharedDb()->CreateTable("serve_cache_epoch", extra.ValueOrDie()).ok());

  auto second = server.Submit(session, tpch::Query(6));
  ASSERT_TRUE(second.ok());
  auto out = server.Resolve(second.ValueOrDie());
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.ValueOrDie().cache_hit);
  EXPECT_GE(server.cache_stats().invalidations, 1u);
}

TEST(ServeFairnessTest, DeviceTimeConvergesToTenantWeights) {
  WarmEngine({6});
  ServeOptions options;
  options.num_streams = 2;
  options.solo_utilization = 1.0;  // saturated device: fairness governs
  options.result_cache = false;
  options.max_queue_depth = 256;
  QueryServer server(SharedDb(), SharedEngine(), options);
  server.RegisterTenant("gold", 3.0);
  server.RegisterTenant("bronze", 1.0);

  LoadOptions load;
  load.num_clients = 8;
  load.queries_per_client = 6;
  load.query_mix = {6};  // uniform cost isolates the arbitration
  load.tenants = {"gold", "bronze"};
  load.bypass_cache = true;
  load.seed = 11;
  LoadGenerator gen(&server, load);
  auto report = gen.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadReport& r = report.ValueOrDie();
  ASSERT_EQ(r.completed, 48u);

  // Both tenants submit identical total work, so lifetime device seconds
  // are equal by construction; fairness is *when* the work runs. While both
  // backlogs compete, gold should receive ~3x the dispatch slots: in the
  // first half of the completion timeline gold dominates ~3:1, and gold
  // drains its backlog well before bronze drains its own.
  std::vector<QueryOutcome> done;
  for (const auto& out : server.Outcomes()) {
    if (out.state == QueryState::kCompleted) done.push_back(out);
  }
  std::sort(done.begin(), done.end(),
            [](const QueryOutcome& a, const QueryOutcome& b) {
              return a.finish_s < b.finish_s;
            });
  int gold_early = 0, bronze_early = 0;
  for (size_t i = 0; i < done.size() / 2; ++i) {
    (done[i].tenant == "gold" ? gold_early : bronze_early)++;
  }
  EXPECT_GE(gold_early, 2 * std::max(bronze_early, 1))
      << "first-half completions: gold " << gold_early << ", bronze "
      << bronze_early;
  double gold_last = 0, bronze_last = 0;
  for (const auto& out : done) {
    (out.tenant == "gold" ? gold_last : bronze_last) = out.finish_s;
  }
  EXPECT_LT(gold_last, 0.85 * bronze_last)
      << "gold backlog should drain well before bronze";
  EXPECT_EQ(server.reservations().reserved(), 0u);
}

TEST(ServeDeterminismTest, FixedSeedGivesIdenticalHistograms) {
  const std::vector<int> mix = {1, 3, 6, 12};
  WarmEngine(mix);
  auto run_once = [&]() -> LoadReport {
    ServeOptions options;
    options.result_cache = false;
    QueryServer server(SharedDb(), SharedEngine(), options);
    LoadOptions load;
    load.num_clients = 8;
    load.queries_per_client = 3;
    load.query_mix = mix;
    load.bypass_cache = true;
    load.seed = 7;
    LoadGenerator gen(&server, load);
    auto report = gen.Run();
    SIRIUS_CHECK(report.ok());
    return report.ValueOrDie();
  };
  LoadReport first = run_once();
  LoadReport second = run_once();
  ASSERT_EQ(first.latencies_ms.size(), second.latencies_ms.size());
  for (size_t i = 0; i < first.latencies_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.latencies_ms[i], second.latencies_ms[i]) << i;
  }
  EXPECT_DOUBLE_EQ(first.p99_ms, second.p99_ms);
  EXPECT_DOUBLE_EQ(first.qps, second.qps);
}

// The ISSUE acceptance: 64 closed-loop clients on one simulated GH200, a
// TPC-H mix, zero dropped reservations, p99 from simulated time, and >= 1.5x
// the queries-per-simulated-second of a serialized (one stream, no overlap)
// server.
TEST(ServeAcceptanceTest, ConcurrentBeatsSerializedByHalfAgain) {
  const std::vector<int> mix = {1, 3, 5, 6, 10, 12, 14, 19};
  WarmEngine(mix);

  auto run_mode = [&](int num_streams, double solo_utilization) -> LoadReport {
    ServeOptions options;
    options.num_streams = num_streams;
    options.solo_utilization = solo_utilization;
    options.result_cache = false;
    options.max_queue_depth = 256;
    QueryServer server(SharedDb(), SharedEngine(), options);
    LoadOptions load;
    load.num_clients = 64;
    load.queries_per_client = 2;
    load.query_mix = mix;
    load.bypass_cache = true;
    load.seed = 42;
    LoadGenerator gen(&server, load);
    auto report = gen.Run();
    SIRIUS_CHECK(report.ok());
    // Zero dropped reservations: every admission was granted and returned.
    SIRIUS_CHECK(server.reservations().reserved() == 0);
    SIRIUS_CHECK(server.reservations().total_refused() == 0);
    return report.ValueOrDie();
  };

  LoadReport serialized = run_mode(1, 1.0);
  LoadReport concurrent = run_mode(8, 0.45);

  EXPECT_EQ(serialized.completed, 128u);
  EXPECT_EQ(concurrent.completed, 128u);
  EXPECT_EQ(concurrent.shed, 0u);
  EXPECT_EQ(concurrent.failed, 0u);
  EXPECT_EQ(concurrent.timed_out, 0u);
  EXPECT_GT(concurrent.p99_ms, 0.0);
  EXPECT_GE(concurrent.p99_ms, concurrent.p50_ms);
  ASSERT_GT(serialized.qps, 0.0);
  const double speedup = concurrent.qps / serialized.qps;
  EXPECT_GE(speedup, 1.5) << "concurrent " << concurrent.qps
                          << " q/s vs serialized " << serialized.qps << " q/s";
}

}  // namespace
}  // namespace sirius
