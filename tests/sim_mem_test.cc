// Unit tests for the simulation substrate (device model, cost model,
// timeline, interconnects, trends) and the memory-resource hierarchy.

#include <gtest/gtest.h>

#include "mem/buffer.h"
#include "mem/memory_resource.h"
#include "sim/cost_model.h"
#include "sim/device.h"
#include "sim/interconnect.h"
#include "sim/timeline.h"
#include "sim/trends.h"

namespace sirius {
namespace {

// ---------------------------------------------------------------------------
// Devices & cost model
// ---------------------------------------------------------------------------

TEST(DeviceTest, ProfilesMatchPaperTable1) {
  auto gh = sim::Gh200Gpu();
  EXPECT_TRUE(gh.is_gpu());
  EXPECT_DOUBLE_EQ(gh.mem_bw_gbps, 3000.0);
  EXPECT_DOUBLE_EQ(gh.mem_capacity_gib, 92.0);
  EXPECT_DOUBLE_EQ(gh.price_per_hour, 3.2);

  auto c6a = sim::C6aMetal();
  EXPECT_FALSE(c6a.is_gpu());
  EXPECT_EQ(c6a.cores, 192);
  EXPECT_DOUBLE_EQ(c6a.mem_bw_gbps, 400.0);
  EXPECT_DOUBLE_EQ(c6a.price_per_hour, 7.344);

  auto a100 = sim::A100Gpu();
  EXPECT_DOUBLE_EQ(a100.mem_bw_gbps, 1550.0);
  EXPECT_DOUBLE_EQ(a100.mem_capacity_gib, 40.0);
}

TEST(DeviceTest, LookupByName) {
  EXPECT_EQ(sim::ProfileByName("A100").name, "A100-40GB");
  EXPECT_EQ(sim::ProfileByName("m7i.16xlarge").name, "m7i.16xlarge");
  EXPECT_EQ(sim::ProfileByName("c6a").name, "c6a.metal");
  EXPECT_EQ(sim::ProfileByName("???").name, "GH200-Hopper");  // default
}

TEST(CostModelTest, BandwidthTermDominatesLargeScans) {
  auto gpu = sim::Gh200Gpu();
  sim::KernelCost cost;
  cost.seq_bytes = 3ull * 1000 * 1000 * 1000;  // 3 GB at 3000 GB/s ~ 1 ms
  double t = sim::KernelSeconds(gpu, cost);
  EXPECT_NEAR(t, 1e-3, 2e-4);
}

TEST(CostModelTest, RandomAccessIsSlower) {
  auto gpu = sim::Gh200Gpu();
  sim::KernelCost seq, rnd;
  seq.seq_bytes = 1 << 28;
  rnd.rand_bytes = 1 << 28;
  EXPECT_GT(sim::KernelSeconds(gpu, rnd), sim::KernelSeconds(gpu, seq));
}

TEST(CostModelTest, LaunchOverheadDoesNotScaleWithData) {
  auto gpu = sim::Gh200Gpu();
  sim::KernelCost cost;
  cost.launches = 10;
  double base = sim::KernelSeconds(gpu, cost, /*data_scale=*/1.0);
  double scaled = sim::KernelSeconds(gpu, cost, /*data_scale=*/1000.0);
  EXPECT_DOUBLE_EQ(base, scaled);  // fixed terms are scale-free (§4.3 "Other")
}

TEST(CostModelTest, DataScaleMultipliesDataTerms) {
  auto gpu = sim::Gh200Gpu();
  sim::KernelCost cost;
  cost.seq_bytes = 1 << 20;
  cost.launches = 0;
  double t1 = sim::KernelSeconds(gpu, cost, 1.0);
  double t100 = sim::KernelSeconds(gpu, cost, 100.0);
  EXPECT_NEAR(t100 / t1, 100.0, 1e-6);
}

TEST(CostModelTest, GpuBeatsCpuOnBandwidth) {
  sim::KernelCost cost;
  cost.seq_bytes = 1ull << 30;
  EXPECT_LT(sim::KernelSeconds(sim::Gh200Gpu(), cost),
            sim::KernelSeconds(sim::M7i16xlarge(), cost));
}

TEST(CostModelTest, EngineEfficiencyDerates) {
  sim::Timeline fast_t, slow_t;
  sim::SimContext fast{sim::M7i16xlarge(), sim::ClickHouseProfile(), &fast_t, 1.0};
  sim::SimContext slow{sim::M7i16xlarge(), sim::DorisProfile(), &slow_t, 1.0};
  sim::KernelCost cost;
  cost.seq_bytes = 1 << 24;
  cost.launches = 0;
  fast.Charge(sim::OpCategory::kScan, cost);   // CH scan_eff 2.0
  slow.Charge(sim::OpCategory::kScan, cost);   // Doris scan_eff 0.45
  EXPECT_LT(fast_t.total_seconds(), slow_t.total_seconds());
}

TEST(CostModelTest, NullTimelineIsSafe) {
  sim::SimContext ctx;
  sim::KernelCost cost;
  cost.seq_bytes = 100;
  ctx.Charge(sim::OpCategory::kScan, cost);  // must not crash
  ctx.ChargeSeconds(sim::OpCategory::kOther, 1.0);
}

TEST(TimelineTest, ChargeAndBreakdown) {
  sim::Timeline t;
  t.Charge(sim::OpCategory::kJoin, 0.5);
  t.Charge(sim::OpCategory::kJoin, 0.25);
  t.Charge(sim::OpCategory::kFilter, 0.25);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t.seconds(sim::OpCategory::kJoin), 0.75);
  EXPECT_DOUBLE_EQ(t.seconds(sim::OpCategory::kScan), 0.0);
  t.Charge(sim::OpCategory::kScan, -1.0);  // non-positive charges ignored
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.0);
}

TEST(TimelineTest, AppendAndReset) {
  sim::Timeline a, b;
  a.Charge(sim::OpCategory::kScan, 1.0);
  b.Charge(sim::OpCategory::kScan, 2.0);
  b.Charge(sim::OpCategory::kExchange, 1.0);
  a.Append(b);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(a.seconds(sim::OpCategory::kScan), 3.0);
  a.Reset();
  EXPECT_DOUBLE_EQ(a.total_seconds(), 0.0);
}

TEST(TimelineTest, AdvanceToSynchronizes) {
  sim::Timeline t;
  t.Charge(sim::OpCategory::kScan, 1.0);
  t.AdvanceTo(3.0);  // barrier: waiting counts as exchange
  EXPECT_DOUBLE_EQ(t.total_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(t.seconds(sim::OpCategory::kExchange), 2.0);
  t.AdvanceTo(1.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(t.total_seconds(), 3.0);
}

TEST(InterconnectTest, TransferTimesOrdered) {
  uint64_t gb = 1ull << 30;
  EXPECT_GT(sim::Pcie3x16().TransferSeconds(gb), sim::Pcie4x16().TransferSeconds(gb));
  EXPECT_GT(sim::Pcie4x16().TransferSeconds(gb), sim::Pcie5x16().TransferSeconds(gb));
  EXPECT_GT(sim::Pcie6x16().TransferSeconds(gb), sim::NvlinkC2c().TransferSeconds(gb));
  // Latency floor on tiny messages.
  EXPECT_GT(sim::NvlinkC2c().TransferSeconds(1), 0.0);
}

TEST(TrendsTest, SeriesGrowAndCagrPositive) {
  for (const auto& series : sim::AllTrends()) {
    ASSERT_GE(series.points.size(), 3u) << series.name;
    EXPECT_GT(series.points.back().value, series.points.front().value)
        << series.name;
    EXPECT_GT(series.Cagr(), 0.0) << series.name;
    EXPECT_GT(series.DoublingYears(), 0.0) << series.name;
    for (size_t i = 1; i < series.points.size(); ++i) {
      EXPECT_GE(series.points[i].year, series.points[i - 1].year) << series.name;
    }
  }
}

TEST(TrendsTest, GpuMemoryReaches288) {
  auto mem = sim::GpuMemoryTrend();
  EXPECT_DOUBLE_EQ(mem.points.back().value, 288);  // B300 Ultra (§2.1)
}

// ---------------------------------------------------------------------------
// Memory resources
// ---------------------------------------------------------------------------

TEST(MemoryTest, SystemResourceTracksAndCaps) {
  mem::SystemMemoryResource r(1 << 20, "test");
  void* p1 = nullptr;
  SIRIUS_CHECK_OK(r.Allocate(1000, &p1));
  EXPECT_GE(r.bytes_allocated(), 1000u);
  void* p2 = nullptr;
  Status st = r.Allocate(2 << 20, &p2);
  EXPECT_TRUE(st.IsOutOfMemory());
  r.Deallocate(p1, 1000);
  EXPECT_EQ(r.bytes_allocated(), 0u);
}

TEST(MemoryTest, PoolReusesFreedBlocks) {
  mem::SystemMemoryResource upstream;
  mem::PoolMemoryResource pool(&upstream, 1 << 20);
  void* a = nullptr;
  SIRIUS_CHECK_OK(pool.Allocate(500, &a));
  pool.Deallocate(a, 500);
  void* b = nullptr;
  SIRIUS_CHECK_OK(pool.Allocate(400, &b));  // same 512-byte class
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.free_list_hits(), 1u);
  EXPECT_GT(pool.high_water_mark(), 0u);
}

TEST(MemoryTest, PoolExhaustionIsOom) {
  mem::SystemMemoryResource upstream;
  mem::PoolMemoryResource pool(&upstream, 4096);
  void* p = nullptr;
  EXPECT_TRUE(pool.Allocate(8192, &p).IsOutOfMemory());
  SIRIUS_CHECK_OK(pool.Allocate(2048, &p));
  void* q = nullptr;
  EXPECT_TRUE(pool.Allocate(4096, &q).IsOutOfMemory());
}

TEST(MemoryTest, TrackingCountsOperations) {
  mem::SystemMemoryResource upstream;
  mem::TrackingMemoryResource tracking(&upstream);
  void* p = nullptr;
  SIRIUS_CHECK_OK(tracking.Allocate(100, &p));
  SIRIUS_CHECK_OK(tracking.Allocate(200, &p));
  tracking.Deallocate(p, 200);
  EXPECT_EQ(tracking.num_allocations(), 2u);
  EXPECT_EQ(tracking.num_deallocations(), 1u);
  EXPECT_EQ(tracking.total_bytes_requested(), 300u);
}

TEST(MemoryTest, BufferRaii) {
  mem::SystemMemoryResource r;
  {
    auto b = mem::Buffer::AllocateZeroed(4096, &r).ValueOrDie();
    EXPECT_EQ(b.size(), 4096u);
    EXPECT_EQ(b.data()[0], 0);
    EXPECT_GE(r.bytes_allocated(), 4096u);
    auto moved = std::move(b);
    EXPECT_EQ(moved.size(), 4096u);
    EXPECT_EQ(b.size(), 0u);  // NOLINT(bugprone-use-after-move): move leaves empty
  }
  EXPECT_EQ(r.bytes_allocated(), 0u);
}

TEST(MemoryTest, ZeroSizedBuffer) {
  auto b = mem::Buffer::Allocate(0).ValueOrDie();
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace sirius
