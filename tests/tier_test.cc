// Tests for the tiered spill subsystem (HBM -> pinned host -> simulated
// NVMe): placement and fallback order, per-tenant quota governance with
// retry-after shedding, asynchronous writeback/prefetch overlap on per-lane
// horizons, hazard-tracker ordering edges, lifetime diagnostics when a tier
// dies under a pinned extent, and the serve-layer integration (quota shed,
// tier-loss re-admission).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "engine/sirius.h"
#include "fault/fault_injector.h"
#include "mem/buffer.h"
#include "mem/reservation.h"
#include "mem/tier.h"
#include "serve/serve.h"
#include "sim/timeline.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using mem::Reservation;
using mem::ReservationPool;
using mem::SpillSession;
using mem::Tier;
using mem::TierManager;

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1ull << 20;

TierManager::Options SmallTiers(uint64_t host_bytes, uint64_t nvme_bytes) {
  TierManager::Options o;
  o.host_capacity_bytes = host_bytes;
  o.nvme_capacity_bytes = nvme_bytes;
  return o;
}

// ---------------------------------------------------------------------------
// Placement and capacity
// ---------------------------------------------------------------------------

TEST(TierManagerTest, PlacesOnHostThenFallsToNvme) {
  TierManager tiers(SmallTiers(kMiB, 4 * kMiB));
  SpillSession session(&tiers);
  const uint64_t pinned_before = mem::PinnedHostInUse();

  auto a = session.RoundTrip(0, 768 * kKiB, 0.0).ValueOrDie();
  EXPECT_EQ(a.tier, Tier::kHost);
  EXPECT_EQ(mem::PinnedHostInUse(), pinned_before + 768 * kKiB);

  // The host tier has only 256 KiB left; the next extent falls to NVMe.
  auto b = session.RoundTrip(0, 768 * kKiB, 0.0).ValueOrDie();
  EXPECT_EQ(b.tier, Tier::kNvme);
  EXPECT_EQ(tiers.stats(Tier::kHost).spill_writes, 1u);
  EXPECT_EQ(tiers.stats(Tier::kNvme).spill_writes, 1u);
  EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 768 * kKiB);
  EXPECT_EQ(tiers.stats(Tier::kNvme).used_bytes, 768 * kKiB);

  // Draining the lane reads both extents back and releases their bytes.
  ASSERT_TRUE(session.Join(0, 0.0).ok());
  EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 0u);
  EXPECT_EQ(tiers.stats(Tier::kNvme).used_bytes, 0u);
  EXPECT_EQ(tiers.stats(Tier::kHost).spill_reads, 1u);
  EXPECT_EQ(tiers.stats(Tier::kNvme).spill_reads, 1u);
  EXPECT_EQ(mem::PinnedHostInUse(), pinned_before);
  EXPECT_EQ(tiers.stats(Tier::kHost).high_water_bytes, 768 * kKiB);
}

TEST(TierManagerTest, ExhaustingEveryTierIsDiagnosable) {
  TierManager tiers(SmallTiers(kKiB, kKiB));
  SpillSession session(&tiers);
  auto r = session.RoundTrip(0, 4 * kKiB, 0.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
  EXPECT_NE(r.status().message().find("exceeds every configured tier"),
            std::string::npos);
}

TEST(TierManagerTest, DisabledNvmeBoundsSpillToHostCapacity) {
  // nvme_capacity_bytes == 0 disables the tier: host is the only sink, and
  // overflowing it is a clean ResourceExhausted instead of unbounded growth.
  TierManager tiers(SmallTiers(kMiB, 0));
  SpillSession session(&tiers);
  ASSERT_TRUE(session.RoundTrip(0, 768 * kKiB, 0.0).ok());
  auto r = session.RoundTrip(0, 768 * kKiB, 0.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
  EXPECT_NE(r.status().message().find("exceeds every configured tier"),
            std::string::npos);
}

TEST(TierManagerTest, AbandonedSessionLeaksNoCapacityOrPinnedMemory) {
  TierManager tiers(SmallTiers(8 * kMiB, 8 * kMiB));
  const uint64_t pinned_before = mem::PinnedHostInUse();
  {
    SpillSession session(&tiers);
    ASSERT_TRUE(session.RoundTrip(0, kMiB, 0.0).ok());
    ASSERT_TRUE(session.RoundTrip(1, kMiB, 0.0).ok());
    // The query aborts: no Join. The session destructor must abandon the
    // staged extents.
  }
  EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 0u);
  EXPECT_EQ(tiers.stats(Tier::kNvme).used_bytes, 0u);
  EXPECT_EQ(mem::PinnedHostInUse(), pinned_before);
}

// ---------------------------------------------------------------------------
// Per-tenant quota governance
// ---------------------------------------------------------------------------

TEST(TierManagerTest, QuotaChargesCumulativelyAndShedsWithRetryAfter) {
  TierManager tiers;
  SpillSession session(&tiers);
  ReservationPool pool(2 * kKiB, "spill-quota:test");
  Reservation quota = Reservation::Take(&pool, 0).ValueOrDie();

  ASSERT_TRUE(session.RoundTrip(0, kKiB, 0.0, &quota).ok());
  EXPECT_EQ(pool.reserved(), kKiB);
  ASSERT_TRUE(session.RoundTrip(0, kKiB, 0.0, &quota).ok());
  EXPECT_EQ(pool.reserved(), 2 * kKiB);

  auto refused = session.RoundTrip(0, kKiB, 0.0, &quota);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted());
  EXPECT_NE(refused.status().message().find("tenant spill quota exhausted"),
            std::string::npos);
  EXPECT_GT(serve::RetryAfterHint(refused.status()), 0.0);
  // The refused extent was released: nothing extra resident, nothing charged.
  EXPECT_EQ(pool.reserved(), 2 * kKiB);
  EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 2 * kKiB);

  ASSERT_TRUE(session.Join(0, 0.0).ok());
  quota.Release();
  EXPECT_EQ(pool.reserved(), 0u);
}

// ---------------------------------------------------------------------------
// Overlap / backpressure timing
// ---------------------------------------------------------------------------

TEST(TierManagerTest, LaneOverlapsTransfersAndChargesOnlyBackpressure) {
  TierManager tiers;
  SpillSession session(&tiers);
  const uint64_t bytes = 64 * kMiB;
  const double w = tiers.WriteSeconds(Tier::kHost, bytes);
  const double r = tiers.ReadSeconds(Tier::kHost, bytes);

  // First trip: the lane is idle, compute never stalls; the transfer is
  // scheduled entirely in the background.
  auto a = session.RoundTrip(0, bytes, 0.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.stall_s, 0.0);
  EXPECT_DOUBLE_EQ(a.write_start_s, 0.0);
  EXPECT_DOUBLE_EQ(a.write_end_s, w);
  EXPECT_DOUBLE_EQ(a.read_end_s, w + r);

  // Second trip at the same instant: the lane is busy until the first
  // prefetch lands, so compute pays exactly that backpressure.
  auto b = session.RoundTrip(0, bytes, 0.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(b.stall_s, w + r);
  EXPECT_DOUBLE_EQ(b.write_start_s, w + r);
  EXPECT_DOUBLE_EQ(b.read_end_s, 2 * (w + r));

  // A different pipeline's lane has its own horizon: no cross-lane stall.
  auto c = session.RoundTrip(1, bytes, 0.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(c.stall_s, 0.0);

  // Joining lane 0 at time zero pays the full remaining drain.
  EXPECT_DOUBLE_EQ(session.Join(0, 0.0).ValueOrDie(), 2 * (w + r));
  // Joining again is free: the lane is already drained.
  EXPECT_DOUBLE_EQ(session.Join(0, 2 * (w + r)).ValueOrDie(), 0.0);
  ASSERT_TRUE(session.Join(1, 10 * (w + r)).ok());
}

TEST(TierManagerTest, NvmeExtentsPayBothLinks) {
  TierManager tiers;
  const double host_w = tiers.WriteSeconds(Tier::kHost, kMiB);
  const double nvme_w = tiers.WriteSeconds(Tier::kNvme, kMiB);
  // NVMe extents bounce through pinned-host staging: strictly more
  // expensive than the host tier on both directions.
  EXPECT_GT(nvme_w, host_w);
  EXPECT_GT(tiers.ReadSeconds(Tier::kNvme, kMiB),
            tiers.ReadSeconds(Tier::kHost, kMiB));
}

// ---------------------------------------------------------------------------
// Hazard-tracker ordering
// ---------------------------------------------------------------------------

TEST(TierManagerTest, WritebackPrefetchOrderingIsVisibleToHazardTracker) {
  sim::HazardTracker hazards;
  hazards.set_enabled(true);
  hazards.set_abort_on_violation(false);
  const sim::StreamId compute = hazards.CreateStream("compute");

  TierManager tiers;
  SpillSession session(&tiers);
  auto rt =
      session.RoundTrip(0, kMiB, 0.0, nullptr, &hazards, compute).ValueOrDie();

  // The round trip recorded edges compute -> spill stream -> compute, so a
  // compute-stream read of the staged extent is ordered after the prefetch.
  hazards.OnRead(compute, rt.generation, "consume staged extent");
  EXPECT_EQ(hazards.violation_count(), 0u);

  // A stream with no edge to the spill stream races the writeback: the
  // tracker must flag it deterministically.
  const sim::StreamId rogue = hazards.CreateStream("rogue");
  hazards.OnRead(rogue, rt.generation, "unordered read of staged extent");
  ASSERT_EQ(hazards.violation_count(), 1u);
  EXPECT_EQ(hazards.violations()[0].kind,
            sim::HazardTracker::ViolationKind::kWriteReadRace);
  ASSERT_TRUE(session.Join(0, rt.read_end_s).ok());
}

// ---------------------------------------------------------------------------
// Fault sites: write retry/fallback, read retry, tier loss
// ---------------------------------------------------------------------------

TEST(TierManagerTest, TransientWriteFaultRetriesInPlace) {
  FaultInjector inj;
  TierManager tiers(SmallTiers(8 * kMiB, 8 * kMiB), &inj);
  FaultSpec spec;
  spec.max_triggers = 1;
  inj.Arm("mem.spill.write", spec);
  SpillSession session(&tiers);
  auto rt = session.RoundTrip(0, kMiB, 0.0).ValueOrDie();
  EXPECT_EQ(rt.tier, Tier::kHost);  // healed in place, never fell over
  EXPECT_EQ(tiers.stats(Tier::kHost).write_retries, 1u);
  // The failed pass is re-charged: the write window covers two attempts.
  EXPECT_DOUBLE_EQ(rt.write_end_s, 2 * tiers.WriteSeconds(Tier::kHost, kMiB));
  ASSERT_TRUE(session.Join(0, rt.read_end_s).ok());
}

TEST(TierManagerTest, PersistentWriteFaultFallsToNextTier) {
  FaultInjector inj;
  TierManager tiers(SmallTiers(8 * kMiB, 8 * kMiB), &inj);
  FaultSpec spec;
  spec.max_triggers = 2;  // both host attempts fail; NVMe survives
  inj.Arm("mem.spill.write", spec);
  SpillSession session(&tiers);
  auto rt = session.RoundTrip(0, kMiB, 0.0).ValueOrDie();
  EXPECT_EQ(rt.tier, Tier::kNvme);
  EXPECT_EQ(tiers.stats(Tier::kHost).spill_writes, 0u);
  EXPECT_EQ(tiers.stats(Tier::kNvme).spill_writes, 1u);
  ASSERT_TRUE(session.Join(0, rt.read_end_s).ok());
}

TEST(TierManagerTest, NonTransientWriteFaultPropagatesImmediately) {
  FaultInjector inj;
  TierManager tiers(SmallTiers(8 * kMiB, 8 * kMiB), &inj);
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  inj.Arm("mem.spill.write", spec);
  SpillSession session(&tiers);
  auto r = session.RoundTrip(0, kMiB, 0.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("spill writeback"), std::string::npos);
  // Nothing stayed resident: the failed extent never committed.
  EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 0u);
}

TEST(TierManagerTest, TransientReadFaultRetriesAndChargesExtraPasses) {
  FaultInjector inj;
  TierManager tiers(SmallTiers(8 * kMiB, 8 * kMiB), &inj);
  SpillSession session(&tiers);
  auto rt = session.RoundTrip(0, kMiB, 0.0).ValueOrDie();
  FaultSpec spec;
  spec.max_triggers = 2;
  inj.Arm("mem.spill.read", spec);
  const double drain = session.Join(0, rt.read_end_s).ValueOrDie();
  EXPECT_DOUBLE_EQ(drain, 2 * tiers.ReadSeconds(Tier::kHost, kMiB));
  EXPECT_EQ(tiers.stats(Tier::kHost).read_retries, 2u);
  EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 0u);
}

TEST(TierManagerTest, PersistentReadFaultExhaustsItsBudgetCleanly) {
  FaultInjector inj;
  TierManager tiers(SmallTiers(8 * kMiB, 8 * kMiB), &inj);
  SpillSession session(&tiers);
  auto rt = session.RoundTrip(0, kMiB, 0.0).ValueOrDie();
  inj.Arm("mem.spill.read", FaultSpec{});  // unlimited
  auto r = session.Join(0, rt.read_end_s);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_NE(r.status().message().find("spill read-back"), std::string::npos);
  EXPECT_EQ(inj.stats("mem.spill.read").hits, 4u);  // bounded attempts
  // Even a failed read-back releases the tier bytes (the extent is gone
  // either way); capacity can never leak.
  EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 0u);
}

TEST(TierManagerTest, TierLossVoidsExtentsAndFlagsKernelHeldOnes) {
  auto& tracker = mem::LifetimeTracker::Global();
  const bool was_enabled = tracker.enabled();
  tracker.Reset();
  tracker.set_enabled(true);
  tracker.set_abort_on_violation(false);

  {
    TierManager tiers(SmallTiers(8 * kMiB, 0));
    SpillSession session(&tiers);
    auto a = session.RoundTrip(0, kMiB, 0.0).ValueOrDie();
    ASSERT_TRUE(session.RoundTrip(0, kMiB, 0.0).ok());

    // A kernel still borrows extent `a` when the tier dies mid-spill.
    tracker.OnPin(a.generation);
    tiers.MarkLost(Tier::kHost);
    EXPECT_TRUE(tiers.lost(Tier::kHost));
    EXPECT_EQ(tiers.stats(Tier::kHost).losses, 1u);
    EXPECT_EQ(tiers.stats(Tier::kHost).used_bytes, 0u);  // voided

    // Only the kernel-held extent is a free-while-pinned violation; the
    // session's own transfer pins were balanced before the void.
    ASSERT_EQ(tracker.violation_count(), 1u);
    EXPECT_EQ(tracker.violations()[0].kind,
              mem::LifetimeTracker::ViolationKind::kFreeWhilePinned);

    // The lane's Join reports the loss so the engine can revive and retry.
    auto join = session.Join(0, 1.0);
    ASSERT_FALSE(join.ok());
    EXPECT_TRUE(join.status().IsUnavailable());
    EXPECT_NE(join.status().message().find("spill tier lost"),
              std::string::npos);
    EXPECT_TRUE(session.tier_loss_seen());

    tiers.ReviveLostTiers();
    EXPECT_FALSE(tiers.lost(Tier::kHost));
  }

  tracker.Reset();
  tracker.set_enabled(was_enabled);
  tracker.set_abort_on_violation(true);
}

// ---------------------------------------------------------------------------
// Engine integration: tier-loss retry, split spill counters
// ---------------------------------------------------------------------------

constexpr double kSf = 0.005;

host::Database* SpillDb() {
  static host::Database* db = [] {
    auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

const format::TablePtr& CpuQ6() {
  static auto* table = [] {
    SpillDb()->SetAccelerator(nullptr);
    return new format::TablePtr(  // sirius-lint: allow(raw-new-delete): leaked singleton
        SpillDb()->Query(tpch::Query(6)).ValueOrDie().table);
  }();
  return *table;
}

TEST(TierEngineTest, EngineRevivesLostTiersAndRetriesOnce) {
  (void)CpuQ6();  // materialize the CPU reference first
  FaultInjector inj;
  engine::SiriusEngine::Options options;
  options.injector = &inj;
  options.out_of_core = true;
  engine::SiriusEngine engine(SpillDb(), options);
  FaultSpec oom;
  oom.code = StatusCode::kOutOfMemory;
  inj.Arm("engine.reserve", oom);  // every intermediate spills
  FaultSpec lost;
  lost.max_triggers = 2;  // transient: both tiers die once, then heal
  inj.Arm("mem.tier.lost", lost);

  SpillDb()->SetAccelerator(&engine);
  auto r = SpillDb()->Query(tpch::Query(6));
  SpillDb()->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.ValueOrDie().fell_back);  // the device healed itself
  EXPECT_TRUE(CpuQ6()->Equals(*r.ValueOrDie().table) ||
              CpuQ6()->EqualsUnordered(*r.ValueOrDie().table));

  const auto stats = engine.stats();
  EXPECT_EQ(stats.tier_loss_retries, 1u);
  EXPECT_GE(stats.spill_events, 1u);
  // The per-tier split preserves the aggregate.
  EXPECT_EQ(stats.spill_events, stats.spill_host + stats.spill_nvme);
  EXPECT_FALSE(engine.tiers().lost(Tier::kHost));
  EXPECT_FALSE(engine.tiers().lost(Tier::kNvme));
  EXPECT_EQ(engine.tiers().stats(Tier::kHost).used_bytes, 0u);
  EXPECT_EQ(engine.tiers().stats(Tier::kNvme).used_bytes, 0u);
}

TEST(TierEngineTest, SpillGaugesArePublishedAfterExecution) {
  FaultInjector inj;
  engine::SiriusEngine::Options options;
  options.injector = &inj;
  options.out_of_core = true;
  engine::SiriusEngine engine(SpillDb(), options);
  FaultSpec oom;
  oom.code = StatusCode::kOutOfMemory;
  oom.max_triggers = 1;
  inj.Arm("engine.reserve", oom);

  SpillDb()->SetAccelerator(&engine);
  auto r = SpillDb()->Query(tpch::Query(6));
  SpillDb()->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const auto gauges = engine.metrics().Gauges();
  ASSERT_TRUE(gauges.count("mem.tier.host.spilled_bytes"));
  EXPECT_GT(gauges.at("mem.tier.host.spilled_bytes"), 0.0);
  ASSERT_TRUE(gauges.count("mem.tier.host.used_bytes"));
  EXPECT_EQ(gauges.at("mem.tier.host.used_bytes"), 0.0);  // drained
  ASSERT_TRUE(gauges.count("mem.pinned_host.in_use_bytes"));
}

// ---------------------------------------------------------------------------
// Serving layer: quota shed with retry-after, tier-loss re-admission
// ---------------------------------------------------------------------------

TEST(ServeSpillGovernanceTest, QuotaExhaustedTenantShedsWhileOthersComplete) {
  FaultInjector inj;
  engine::SiriusEngine::Options eo;
  eo.injector = &inj;
  eo.out_of_core = true;
  engine::SiriusEngine engine(SpillDb(), eo);
  FaultSpec oom;
  oom.code = StatusCode::kOutOfMemory;
  inj.Arm("engine.reserve", oom);  // persistent: every intermediate spills

  serve::ServeOptions so;
  so.result_cache = false;
  serve::QueryServer server(SpillDb(), &engine, so);
  server.SetTenantSpillQuota("starved", 1);  // one byte: first spill refused

  const auto starved = server.OpenSession("starved");
  const auto healthy = server.OpenSession("healthy");
  serve::SubmitOptions sub;
  sub.keep_result = true;
  const auto starved_q =
      server.Submit(starved, tpch::Query(6), sub).ValueOrDie();
  const auto healthy_q =
      server.Submit(healthy, tpch::Query(6), sub).ValueOrDie();

  auto a = server.Resolve(starved_q).ValueOrDie();
  auto b = server.Resolve(healthy_q).ValueOrDie();

  EXPECT_EQ(a.state, serve::QueryState::kShed) << a.status.ToString();
  EXPECT_TRUE(a.status.IsResourceExhausted());
  EXPECT_NE(a.status.message().find("spill quota"), std::string::npos);
  EXPECT_GT(a.retry_after_s, 0.0);

  EXPECT_EQ(b.state, serve::QueryState::kCompleted) << b.status.ToString();
  EXPECT_TRUE(CpuQ6()->Equals(*b.table) || CpuQ6()->EqualsUnordered(*b.table));

  // Every quota charge was returned on both paths.
  EXPECT_EQ(server.spill_quota("starved").reserved(), 0u);
  EXPECT_EQ(server.spill_quota("healthy").reserved(), 0u);
  EXPECT_GT(server.spill_quota("healthy").total_granted(), 0u);
  EXPECT_EQ(server.metrics().GetCounter("serve.spill_quota_shed")->raw(), 1u);
  EXPECT_EQ(server.reservations().reserved(), 0u);
}

TEST(ServeSpillGovernanceTest, TierLossRequeueHealsTransientLoss) {
  (void)CpuQ6();
  FaultInjector inj;
  engine::SiriusEngine::Options eo;
  eo.injector = &inj;
  eo.out_of_core = true;
  engine::SiriusEngine engine(SpillDb(), eo);
  FaultSpec oom;
  oom.code = StatusCode::kOutOfMemory;
  inj.Arm("engine.reserve", oom);
  // Four triggers: the first execution burns two (host + NVMe die on its
  // spill placement), the engine's revive-and-retry burns two more, so the
  // query comes back Unavailable and the server must re-admit it. The
  // relaunched execution finds the site exhausted and completes.
  FaultSpec lost;
  lost.max_triggers = 4;
  inj.Arm("mem.tier.lost", lost);

  serve::ServeOptions so;
  so.result_cache = false;
  serve::QueryServer server(SpillDb(), &engine, so);
  const auto session = server.OpenSession("tenant");
  serve::SubmitOptions sub;
  sub.keep_result = true;
  const auto id = server.Submit(session, tpch::Query(6), sub).ValueOrDie();
  auto out = server.Resolve(id).ValueOrDie();

  EXPECT_EQ(out.state, serve::QueryState::kCompleted) << out.status.ToString();
  EXPECT_TRUE(CpuQ6()->Equals(*out.table) ||
              CpuQ6()->EqualsUnordered(*out.table));
  EXPECT_EQ(server.metrics().GetCounter("serve.tier_requeued")->raw(), 1u);
  EXPECT_EQ(server.reservations().reserved(), 0u);
  EXPECT_EQ(server.spill_quota("tenant").reserved(), 0u);
}

}  // namespace
}  // namespace sirius
