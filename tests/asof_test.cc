// Tests for the ASOF join (§3.4): kernel semantics, SQL syntax, plan round
// trip, cross-engine agreement, distributed execution.

#include <gtest/gtest.h>

#include "engine/sirius.h"
#include "dist/cluster.h"
#include "gdf/asof.h"
#include "format/builder.h"
#include "host/database.h"
#include "plan/substrait.h"

namespace sirius {
namespace {

using format::Column;
using format::ColumnPtr;

gdf::Context Ctx() {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

TEST(AsofKernelTest, BackwardMatchNoBy) {
  auto left_on = Column::FromInt64({5, 10, 1, 100});
  auto right_on = Column::FromInt64({2, 7, 20});
  auto ctx = Ctx();
  auto r = gdf::AsofJoin(ctx, left_on, right_on, {}, {}).ValueOrDie();
  ASSERT_EQ(r.left_indices.size(), 4u);
  // 5 -> 2 (idx 0); 10 -> 7 (idx 1); 1 -> none; 100 -> 20 (idx 2)
  EXPECT_EQ(r.right_indices[0], 0);
  EXPECT_EQ(r.right_indices[1], 1);
  EXPECT_EQ(r.right_indices[2], -1);
  EXPECT_EQ(r.right_indices[3], 2);
}

TEST(AsofKernelTest, ExactTimestampMatches) {
  auto left_on = Column::FromInt64({7});
  auto right_on = Column::FromInt64({7});
  auto ctx = Ctx();
  auto r = gdf::AsofJoin(ctx, left_on, right_on, {}, {}).ValueOrDie();
  EXPECT_EQ(r.right_indices[0], 0);  // <= is inclusive
}

TEST(AsofKernelTest, ByKeysSeparateGroups) {
  auto left_on = Column::FromInt64({10, 10});
  auto left_by = Column::FromStrings({"AAPL", "MSFT"});
  auto right_on = Column::FromInt64({5, 8, 9});
  auto right_by = Column::FromStrings({"AAPL", "MSFT", "GOOG"});
  auto ctx = Ctx();
  auto r =
      gdf::AsofJoin(ctx, left_on, right_on, {left_by}, {right_by}).ValueOrDie();
  EXPECT_EQ(r.right_indices[0], 0);  // AAPL@10 -> AAPL@5
  EXPECT_EQ(r.right_indices[1], 1);  // MSFT@10 -> MSFT@8 (not GOOG@9)
}

TEST(AsofKernelTest, PicksLatestOfManyAndTies) {
  auto left_on = Column::FromInt64({100});
  auto right_on = Column::FromInt64({10, 50, 50, 90, 101});
  auto ctx = Ctx();
  auto r = gdf::AsofJoin(ctx, left_on, right_on, {}, {}).ValueOrDie();
  EXPECT_EQ(r.right_indices[0], 3);  // 90 is the latest <= 100
}

TEST(AsofKernelTest, NullsNeverMatch) {
  auto left_on = Column::FromInt64({10, 0}, {true, false});
  auto right_on = Column::FromInt64({5, 0}, {true, false});
  auto ctx = Ctx();
  auto r = gdf::AsofJoin(ctx, left_on, right_on, {}, {}).ValueOrDie();
  EXPECT_EQ(r.right_indices[0], 0);
  EXPECT_EQ(r.right_indices[1], -1);  // NULL left time matches nothing
}

TEST(AsofKernelTest, StringOrderingRejected) {
  auto ctx = Ctx();
  auto s = Column::FromStrings({"x"});
  EXPECT_FALSE(gdf::AsofJoin(ctx, s, s, {}, {}).ok());
}

class AsofSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Trades and quotes, the canonical ASOF workload.
    auto trades =
        format::Table::Make(
            format::Schema({{"symbol", format::String()},
                            {"t_time", format::Int64()},
                            {"shares", format::Int64()}}),
            {Column::FromStrings({"AAPL", "AAPL", "MSFT", "MSFT"}),
             Column::FromInt64({3, 10, 4, 1}),
             Column::FromInt64({100, 200, 300, 400})})
            .ValueOrDie();
    auto quotes =
        format::Table::Make(
            format::Schema({{"q_symbol", format::String()},
                            {"q_time", format::Int64()},
                            {"price", format::Decimal(2)}}),
            {Column::FromStrings({"AAPL", "AAPL", "MSFT"}),
             Column::FromInt64({2, 8, 3}),
             Column::FromDecimal({15000, 15250, 30000}, 2)})
            .ValueOrDie();
    SIRIUS_CHECK_OK(db_.CreateTable("trades", trades));
    SIRIUS_CHECK_OK(db_.CreateTable("quotes", quotes));
  }

  const std::string sql_ =
      "select symbol, t_time, shares, price "
      "from trades asof join quotes "
      "on symbol = q_symbol and t_time >= q_time "
      "order by symbol, t_time";

  host::Database db_;
};

TEST_F(AsofSqlTest, SqlEndToEnd) {
  auto r = db_.Query(sql_).ValueOrDie();
  ASSERT_EQ(r.table->num_rows(), 4u);
  // AAPL@3 -> 150.00; AAPL@10 -> 152.50; MSFT@1 -> NULL; MSFT@4 -> 300.00
  auto price = r.table->ColumnByName("price");
  EXPECT_EQ(price->GetScalar(0).ToString(), "150.00");
  EXPECT_EQ(price->GetScalar(1).ToString(), "152.50");
  EXPECT_TRUE(price->IsNull(2));
  EXPECT_EQ(price->GetScalar(3).ToString(), "300.00");
}

TEST_F(AsofSqlTest, GpuEngineMatchesCpu) {
  auto cpu = db_.Query(sql_).ValueOrDie();
  engine::SiriusEngine eng(&db_, {});
  db_.SetAccelerator(&eng);
  auto gpu = db_.Query(sql_).ValueOrDie();
  db_.SetAccelerator(nullptr);
  EXPECT_TRUE(gpu.accelerated);
  EXPECT_TRUE(cpu.table->Equals(*gpu.table));
}

TEST_F(AsofSqlTest, SubstraitRoundTrip) {
  auto plan = db_.PlanSql(sql_).ValueOrDie();
  auto wire = plan::SerializePlan(plan);
  auto back = plan::DeserializePlan(wire, [&](const std::string& name) {
                return db_.catalog().GetTableSchema(name);
              }).ValueOrDie();
  EXPECT_EQ(back->ToString(), plan->ToString());
}

TEST_F(AsofSqlTest, OrderingConditionRequired) {
  auto r = db_.Query(
      "select symbol from trades asof join quotes on symbol = q_symbol");
  EXPECT_FALSE(r.ok());
}

TEST_F(AsofSqlTest, DistributedAsofMatchesSingleNode) {
  auto single = db_.Query(sql_).ValueOrDie();
  dist::DorisCluster::Options options;
  options.num_nodes = 2;
  dist::DorisCluster cluster(options);
  SIRIUS_CHECK_OK(cluster.LoadPartitioned(
      "trades", db_.catalog().GetTable("trades").ValueOrDie()));
  SIRIUS_CHECK_OK(cluster.LoadPartitioned(
      "quotes", db_.catalog().GetTable("quotes").ValueOrDie()));
  auto distributed = cluster.Query(sql_).ValueOrDie();
  EXPECT_TRUE(single.table->Equals(*distributed.table));
}

}  // namespace
}  // namespace sirius
