// Chaos tests for the fault-injection framework and the recovery paths it
// exercises: deterministic injector scheduling, SCCL retry/backoff, cluster
// control-plane recovery (node death, re-partitioning, quorum), and the GPU
// memory path (allocation pressure, evict-and-retry, out-of-core spill, CPU
// fallback). The sweep asserts the paper-level contract: under injected
// faults, queries either return answers identical to the fault-free run or
// fail with a clean Status — never crash, never leak temp tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "dist/cluster.h"
#include "engine/sirius.h"
#include "fault/fault_injector.h"
#include "mem/memory_resource.h"
#include "net/sccl.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using format::Column;
using format::TablePtr;

constexpr double kSf = 0.005;
const int kChaosQueries[] = {1, 3, 6};

TablePtr IntTable(std::vector<int64_t> v) {
  return format::Table::Make(format::Schema({{"x", format::Int64()}}),
                             {Column::FromInt64(std::move(v))})
      .ValueOrDie();
}

gdf::Context Ctx() {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

/// TPC-H tables generated once (dbgen is deterministic per scale factor).
const TablePtr& TpchTable(const std::string& name) {
  static auto* tables = [] {
    auto* m = new std::map<std::string, TablePtr>();  // sirius-lint: allow(raw-new-delete): leaked singleton
    for (const auto& n : tpch::TableNames()) {
      (*m)[n] = tpch::GenerateTable(n, kSf).ValueOrDie();
    }
    return m;
  }();
  return tables->at(name);
}

std::unique_ptr<dist::DorisCluster> MakeCluster(
    dist::DorisCluster::Options options) {
  options.num_nodes = 4;
  auto cluster = std::make_unique<dist::DorisCluster>(options);
  for (const auto& name : tpch::TableNames()) {
    SIRIUS_CHECK_OK(cluster->LoadPartitioned(name, TpchTable(name)));
  }
  return cluster;
}

/// Fault-free reference answers on an identical 4-node cluster.
const TablePtr& ReferenceResult(int q) {
  static auto* results = [] {
    auto* m = new std::map<int, TablePtr>();  // sirius-lint: allow(raw-new-delete): leaked singleton
    auto cluster = MakeCluster({});
    for (int query : kChaosQueries) {
      (*m)[query] = cluster->Query(tpch::Query(query)).ValueOrDie().table;
    }
    return m;
  }();
  return results->at(q);
}

void ExpectMatchesReference(int q, const TablePtr& table) {
  const TablePtr& ref = ReferenceResult(q);
  EXPECT_TRUE(ref->Equals(*table) || ref->EqualsUnordered(*table))
      << "Q" << q << " diverged under faults.\nreference:\n"
      << ref->ToString(8) << "\ngot:\n"
      << table->ToString(8);
}

// ---------------------------------------------------------------------------
// FaultInjector scheduling
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DisarmedSitePassesButCountsHits) {
  FaultInjector inj;
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(inj.Check("some.site").ok());
  EXPECT_EQ(inj.stats("some.site").hits, 3u);
  EXPECT_EQ(inj.stats("some.site").injected, 0u);
}

TEST(FaultInjectorTest, EveryNthScheduleIsDeterministic) {
  FaultInjector inj;
  FaultSpec spec;
  spec.skip_first = 2;
  spec.every_nth = 3;
  inj.Arm("s", spec);
  // Hits 1,2 skipped; eligible hits 3..: fires where (hit - 2) % 3 == 0.
  std::vector<bool> fired;
  for (int i = 0; i < 12; ++i) fired.push_back(!inj.Check("s").ok());
  std::vector<bool> expected(12, false);
  expected[4] = expected[7] = expected[10] = true;  // hits 5, 8, 11
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(inj.injected("s"), 3u);
}

TEST(FaultInjectorTest, MaxTriggersModelsTransientFault) {
  FaultInjector inj;
  FaultSpec spec;
  spec.every_nth = 1;
  spec.max_triggers = 2;
  inj.Arm("s", spec);
  EXPECT_FALSE(inj.Check("s").ok());
  EXPECT_FALSE(inj.Check("s").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(inj.Check("s").ok());
  EXPECT_EQ(inj.injected("s"), 2u);
}

TEST(FaultInjectorTest, ProbabilityScheduleReplaysUnderSeed) {
  FaultSpec spec;
  spec.probability = 0.5;
  auto run = [&](uint64_t seed) {
    FaultInjector inj(seed);
    inj.Arm("s", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!inj.Check("s").ok());
    return fired;
  };
  auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different schedule
  const size_t fired = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 50u);
  EXPECT_LT(fired, 150u);
}

TEST(FaultInjectorTest, InjectedStatusCarriesConfiguredCode) {
  FaultInjector inj;
  FaultSpec spec;
  spec.code = StatusCode::kTimeout;
  spec.message = "link watchdog expired";
  inj.Arm("s", spec);
  Status st = inj.Check("s");
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_TRUE(st.IsTransient());
  EXPECT_NE(st.ToString().find("link watchdog expired"), std::string::npos);
}

TEST(FaultInjectorTest, MasterSwitchDisablesInjection) {
  FaultInjector inj;
  inj.Arm("s", FaultSpec{});
  inj.set_enabled(false);
  EXPECT_TRUE(inj.Check("s").ok());
  inj.set_enabled(true);
  EXPECT_FALSE(inj.Check("s").ok());
}

TEST(FaultInjectorTest, ScopedFaultDisarmsOnExit) {
  FaultInjector inj;
  {
    fault::ScopedFault scoped(&inj, "s", FaultSpec{});
    EXPECT_TRUE(inj.IsArmed("s"));
    EXPECT_FALSE(inj.Check("s").ok());
  }
  EXPECT_FALSE(inj.IsArmed("s"));
  EXPECT_TRUE(inj.Check("s").ok());
}

TEST(FaultInjectorTest, KnownSitesCoverAllThreeLayers) {
  const auto sites = fault::KnownSites();
  auto has = [&](const char* s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  EXPECT_TRUE(has("sccl.alltoall"));
  EXPECT_TRUE(has("sccl.broadcast"));
  EXPECT_TRUE(has("sccl.gather"));
  EXPECT_TRUE(has("sccl.multicast"));
  EXPECT_TRUE(has("dist.fragment"));
  EXPECT_TRUE(has("dist.heartbeat"));
  EXPECT_TRUE(has("engine.reserve"));
  EXPECT_TRUE(has("mem.spill.write"));
  EXPECT_TRUE(has("mem.spill.read"));
  EXPECT_TRUE(has("mem.tier.lost"));
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
}

// ---------------------------------------------------------------------------
// SCCL retry/backoff
// ---------------------------------------------------------------------------

TEST(ScclRetryTest, TransientLinkFailureHealsWithBackoff) {
  auto t = IntTable({1, 2, 3});
  net::Communicator clean(4, sim::Infiniband400());
  const double fault_free_s = clean.Broadcast(t, 0, 1.0).ValueOrDie().seconds;

  FaultInjector inj;
  FaultSpec spec;
  spec.max_triggers = 2;  // transient: two failures, then the link heals
  inj.Arm("sccl.broadcast", spec);
  net::Communicator comm(4, sim::Infiniband400(), &inj);
  auto r = comm.Broadcast(t, 0, 1.0).ValueOrDie();
  EXPECT_EQ(r.retries, 2);
  EXPECT_GT(r.backoff_seconds, 0.0);
  // Backoff is charged as simulated time on top of the clean collective.
  EXPECT_NEAR(r.seconds, fault_free_s + r.backoff_seconds, 1e-12);
  for (const auto& p : r.per_rank) EXPECT_TRUE(p->Equals(*t));
}

TEST(ScclRetryTest, PersistentFailureExhaustsBudgetCleanly) {
  FaultInjector inj;
  inj.Arm("sccl.gather", FaultSpec{});  // unlimited Unavailable
  net::Communicator comm(3, sim::Infiniband400(), &inj);
  std::vector<TablePtr> tables{IntTable({1}), IntTable({2}), IntTable({3})};
  auto r = comm.Gather(tables, 0, Ctx(), 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_NE(r.status().ToString().find("failed after"), std::string::npos);
  // Default policy: 4 attempts, each consulting the site once.
  EXPECT_EQ(inj.stats("sccl.gather").hits, 4u);
  EXPECT_EQ(inj.injected("sccl.gather"), 4u);
}

TEST(ScclRetryTest, NonTransientFaultIsNotRetried) {
  FaultInjector inj;
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  inj.Arm("sccl.broadcast", spec);
  net::Communicator comm(2, sim::Infiniband400(), &inj);
  auto r = comm.Broadcast(IntTable({1}), 0, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().IsTransient());
  EXPECT_EQ(inj.stats("sccl.broadcast").hits, 1u);  // no second attempt
}

TEST(ScclRetryTest, TimeoutIsTransientToo) {
  FaultInjector inj;
  FaultSpec spec;
  spec.code = StatusCode::kTimeout;
  spec.max_triggers = 1;
  inj.Arm("sccl.alltoall", spec);
  net::Communicator comm(2, sim::Infiniband400(), &inj);
  std::vector<std::vector<TablePtr>> parts{
      {IntTable({1}), IntTable({2})},
      {IntTable({3}), IntTable({4})},
  };
  auto r = comm.AllToAll(parts, Ctx(), 1.0).ValueOrDie();
  EXPECT_EQ(r.retries, 1);
  EXPECT_TRUE(r.per_rank[0]->EqualsUnordered(*IntTable({1, 3})));
  EXPECT_TRUE(r.per_rank[1]->EqualsUnordered(*IntTable({2, 4})));
}

TEST(ScclRetryTest, RetryScheduleReplaysUnderSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector inj(seed);
    FaultSpec spec;
    spec.probability = 0.6;
    spec.max_triggers = 3;
    inj.Arm("sccl.broadcast", spec);
    net::Communicator comm(4, sim::Infiniband400(), &inj);
    auto r = comm.Broadcast(IntTable({1, 2}), 0, 1.0).ValueOrDie();
    return std::make_pair(r.retries, r.backoff_seconds);
  };
  auto a = run(7), b = run(7);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);  // jitter replays from the seed
}

// ---------------------------------------------------------------------------
// Cluster control-plane recovery
// ---------------------------------------------------------------------------

TEST(ClusterRecoveryTest, FragmentFailureKillsNodeAndRetriesOnSurvivors) {
  FaultInjector inj;
  dist::DorisCluster::Options options;
  options.injector = &inj;
  auto cluster = MakeCluster(options);
  FaultSpec spec;
  spec.max_triggers = 1;  // one fragment casualty, then healthy
  inj.Arm("dist.fragment", spec);

  auto r = cluster->Query(tpch::Query(3));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectMatchesReference(3, r.ValueOrDie().table);
  const auto& rec = r.ValueOrDie().recovery;
  EXPECT_EQ(rec.node_failures, 1);
  EXPECT_EQ(rec.query_retries, 1);
  EXPECT_GE(rec.re_partitions, 1);  // survivors got a fresh layout
  EXPECT_EQ(cluster->num_alive(), 3);
  EXPECT_EQ(cluster->temp_registry().active_count(), 0u);
}

TEST(ClusterRecoveryTest, HeartbeatExpiryRepartitionsBeforeDispatch) {
  FaultInjector inj;
  dist::DorisCluster::Options options;
  options.injector = &inj;
  auto cluster = MakeCluster(options);
  FaultSpec spec;
  spec.max_triggers = 1;
  inj.Arm("dist.heartbeat", spec);

  auto r = cluster->Query(tpch::Query(1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectMatchesReference(1, r.ValueOrDie().table);
  const auto& rec = r.ValueOrDie().recovery;
  EXPECT_EQ(rec.node_failures, 1);
  EXPECT_EQ(rec.query_retries, 0);  // caught before dispatch, no wasted run
  EXPECT_GE(rec.re_partitions, 1);
  EXPECT_EQ(cluster->num_alive(), 3);
}

TEST(ClusterRecoveryTest, CollectiveRetriesSurfaceInRecoveryStats) {
  FaultInjector inj;
  dist::DorisCluster::Options options;
  options.injector = &inj;
  auto cluster = MakeCluster(options);
  FaultSpec spec;
  spec.max_triggers = 2;
  inj.Arm("sccl.gather", spec);

  auto r = cluster->Query(tpch::Query(1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectMatchesReference(1, r.ValueOrDie().table);
  const auto& rec = r.ValueOrDie().recovery;
  EXPECT_GE(rec.collective_retries, 1);
  EXPECT_GT(rec.retry_backoff_seconds, 0.0);
  EXPECT_EQ(rec.node_failures, 0);
}

TEST(ClusterRecoveryTest, RetryBudgetExhaustedIsCleanError) {
  FaultInjector inj;
  dist::DorisCluster::Options options;
  options.injector = &inj;
  options.query_retry_budget = 1;
  auto cluster = MakeCluster(options);
  inj.Arm("dist.fragment", FaultSpec{});  // every attempt loses a node

  auto r = cluster->Query(tpch::Query(6));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_NE(r.status().ToString().find("retry budget"), std::string::npos);
  EXPECT_EQ(cluster->temp_registry().active_count(), 0u);
  EXPECT_EQ(cluster->num_alive(), 2);  // one death per attempt
}

TEST(ClusterRecoveryTest, BelowQuorumIsUnavailableWithoutDispatch) {
  FaultInjector inj;
  dist::DorisCluster::Options options;
  options.injector = &inj;
  options.quorum = 4;
  auto cluster = MakeCluster(options);
  FaultSpec spec;
  spec.max_triggers = 1;
  inj.Arm("dist.heartbeat", spec);

  auto r = cluster->Query(tpch::Query(1));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_NE(r.status().ToString().find("quorum"), std::string::npos);
  // The heartbeat loss was detected, data plane never ran.
  EXPECT_EQ(inj.stats("dist.fragment").hits, 0u);
}

TEST(ClusterRecoveryTest, AllNodesDeadIsUnavailable) {
  auto cluster = MakeCluster({});
  cluster->ExpireHeartbeats(/*now=*/1000.0, /*timeout=*/1.0);
  EXPECT_EQ(cluster->num_alive(), 0);
  auto r = cluster->Query(tpch::Query(6));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(ClusterRecoveryTest, FailedQueryLeavesNoTempTables) {
  FaultInjector inj;
  dist::DorisCluster::Options options;
  options.injector = &inj;
  // Model SF100 so Q3 shuffles both big sides instead of broadcasting
  // (matching the paper's distributed plan shape).
  options.data_scale = 100.0 / kSf;
  auto cluster = MakeCluster(options);

  // Warm run registers temp tables and must fully drain them.
  auto warm = cluster->Query(tpch::Query(3));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  const uint64_t registered_before = cluster->temp_registry().total_registered();
  EXPECT_GT(registered_before, 0u);
  EXPECT_EQ(cluster->temp_registry().active_count(), 0u);

  // Q3 shuffles; failing every shuffle aborts fragments mid-exchange. The
  // RAII guard must still deregister everything that got registered.
  inj.Arm("sccl.alltoall", FaultSpec{});
  auto r = cluster->Query(tpch::Query(3));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(cluster->temp_registry().active_count(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos sweep: every known site x TPC-H Q1/Q3/Q6 on a 4-node cluster
// ---------------------------------------------------------------------------

TEST(ChaosSweepTest, TransientFaultsAtEverySiteRecoverToIdenticalAnswers) {
  for (const auto& site : fault::KnownSites()) {
    for (int q : kChaosQueries) {
      FaultInjector inj;
      dist::DorisCluster::Options options;
      options.injector = &inj;
      options.query_retry_budget = 3;
      auto cluster = MakeCluster(options);
      FaultSpec spec;
      spec.max_triggers = 2;  // transient: heals within every retry budget
      inj.Arm(site, spec);

      auto r = cluster->Query(tpch::Query(q));
      ASSERT_TRUE(r.ok()) << "site=" << site << " Q" << q << ": "
                          << r.status().ToString();
      ExpectMatchesReference(q, r.ValueOrDie().table);
      EXPECT_EQ(cluster->temp_registry().active_count(), 0u)
          << "site=" << site << " Q" << q;
    }
  }
}

TEST(ChaosSweepTest, PersistentFaultsYieldCleanStatusOrIdenticalAnswers) {
  for (const auto& site : fault::KnownSites()) {
    for (int q : kChaosQueries) {
      FaultInjector inj;
      dist::DorisCluster::Options options;
      options.injector = &inj;
      auto cluster = MakeCluster(options);
      inj.Arm(site, FaultSpec{});  // unlimited failures

      auto r = cluster->Query(tpch::Query(q));
      if (r.ok()) {
        // Site not on this query's path (e.g. multicast): answer unharmed.
        ExpectMatchesReference(q, r.ValueOrDie().table);
      } else {
        EXPECT_TRUE(r.status().IsUnavailable())
            << "site=" << site << " Q" << q << ": " << r.status().ToString();
      }
      EXPECT_EQ(cluster->temp_registry().active_count(), 0u)
          << "site=" << site << " Q" << q;
    }
  }
}

TEST(ChaosSweepTest, RandomizedMultiSiteChaosNeverCorruptsAnswers) {
  for (uint64_t seed : {11u, 23u, 59u}) {
    FaultInjector inj(seed);
    dist::DorisCluster::Options options;
    options.injector = &inj;
    options.query_retry_budget = 2;
    auto cluster = MakeCluster(options);
    FaultSpec spec;
    spec.probability = 0.3;
    for (const auto& site : fault::KnownSites()) inj.Arm(site, spec);

    for (int q : kChaosQueries) {
      auto r = cluster->Query(tpch::Query(q));
      if (r.ok()) {
        ExpectMatchesReference(q, r.ValueOrDie().table);
      } else {
        EXPECT_TRUE(r.status().IsUnavailable())
            << "seed=" << seed << " Q" << q << ": " << r.status().ToString();
      }
      EXPECT_EQ(cluster->temp_registry().active_count(), 0u)
          << "seed=" << seed << " Q" << q;
    }
  }
}

// ---------------------------------------------------------------------------
// GPU memory path: pressure, evict-and-retry, spill, CPU fallback
// ---------------------------------------------------------------------------

TEST(MemoryPressureTest, PressureResourceFailsEveryNth) {
  mem::PressureMemoryResource pressure(mem::DefaultResource(),
                                       /*fail_every_nth=*/3, /*skip_first=*/1);
  std::vector<void*> live;
  int failures = 0;
  for (int i = 1; i <= 7; ++i) {
    void* p = nullptr;
    Status st = pressure.Allocate(64, &p);
    if (st.ok()) {
      live.push_back(p);
    } else {
      EXPECT_TRUE(st.IsOutOfMemory());
      ++failures;
      // Requests 4 and 7: skip 1, then every 3rd counted request fails.
      EXPECT_TRUE(i == 4 || i == 7) << "unexpected failure at request " << i;
    }
  }
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(pressure.num_requests(), 7u);
  EXPECT_EQ(pressure.num_injected_failures(), 2u);
  for (void* p : live) pressure.Deallocate(p, 64);
}

host::Database* EngineDb() {
  static host::Database* db = [] {
    auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

const TablePtr& CpuResult(int q) {
  static auto* results = [] {
    auto* m = new std::map<int, TablePtr>();  // sirius-lint: allow(raw-new-delete): leaked singleton
    EngineDb()->SetAccelerator(nullptr);
    for (int query : kChaosQueries) {
      (*m)[query] = EngineDb()->Query(tpch::Query(query)).ValueOrDie().table;
    }
    return m;
  }();
  return results->at(q);
}

TEST(MemoryPressureTest, InjectedOomHealsByEvictAndRetry) {
  FaultInjector inj;
  engine::SiriusEngine::Options options;
  options.injector = &inj;
  engine::SiriusEngine engine(EngineDb(), options);
  (void)CpuResult(6);  // materialize the CPU reference first
  FaultSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  spec.max_triggers = 1;
  inj.Arm("engine.reserve", spec);

  EngineDb()->SetAccelerator(&engine);
  auto r = EngineDb()->Query(tpch::Query(6));
  EngineDb()->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().accelerated);
  EXPECT_FALSE(r.ValueOrDie().fell_back);  // device healed itself
  EXPECT_TRUE(CpuResult(6)->Equals(*r.ValueOrDie().table) ||
              CpuResult(6)->EqualsUnordered(*r.ValueOrDie().table));

  const auto stats = engine.stats();
  EXPECT_EQ(stats.oom_events, 1u);
  EXPECT_EQ(stats.pipeline_retries, 1u);
  EXPECT_GE(stats.evictions_under_pressure, 1u);  // cache was dropped
}

TEST(MemoryPressureTest, OutOfCoreSpillAbsorbsInjectedOom) {
  FaultInjector inj;
  engine::SiriusEngine::Options options;
  options.injector = &inj;
  options.out_of_core = true;
  engine::SiriusEngine engine(EngineDb(), options);
  FaultSpec spec;
  spec.code = StatusCode::kOutOfMemory;
  spec.max_triggers = 1;
  inj.Arm("engine.reserve", spec);

  EngineDb()->SetAccelerator(&engine);
  auto r = EngineDb()->Query(tpch::Query(6));
  EngineDb()->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.ValueOrDie().fell_back);
  EXPECT_TRUE(CpuResult(6)->Equals(*r.ValueOrDie().table) ||
              CpuResult(6)->EqualsUnordered(*r.ValueOrDie().table));

  const auto stats = engine.stats();
  EXPECT_GE(stats.spill_events, 1u);  // absorbed, not failed
  EXPECT_EQ(stats.oom_events, 0u);
}

TEST(MemoryPressureTest, PersistentAllocationPressureFallsBackToCpu) {
  // Every other processing-pool allocation fails: the device cannot finish
  // even after evicting, so the host must transparently run the query on
  // its CPU engine (the drop-in contract, paper §3.1). (Every *other*, not
  // every 3rd: fused execution gathers so little that a sparser cadence
  // never fires.)
  mem::PressureMemoryResource pressure(mem::DefaultResource(),
                                       /*fail_every_nth=*/2);
  engine::SiriusEngine::Options options;
  options.processing_override = &pressure;
  engine::SiriusEngine engine(EngineDb(), options);

  EngineDb()->SetAccelerator(&engine);
  auto r = EngineDb()->Query(tpch::Query(6));
  EngineDb()->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().fell_back);
  EXPECT_TRUE(CpuResult(6)->Equals(*r.ValueOrDie().table) ||
              CpuResult(6)->EqualsUnordered(*r.ValueOrDie().table));

  EXPECT_GE(pressure.num_injected_failures(), 1u);
  const auto stats = engine.stats();
  EXPECT_GE(stats.oom_events, 1u);
  EXPECT_GE(stats.pipeline_retries, 1u);  // evict-and-retry was attempted
}

TEST(MemoryPressureTest, NonOomDeviceFaultFallsBackWithoutRetry) {
  FaultInjector inj;
  engine::SiriusEngine::Options options;
  options.injector = &inj;
  engine::SiriusEngine engine(EngineDb(), options);
  inj.Arm("engine.reserve", FaultSpec{});  // persistent Unavailable

  EngineDb()->SetAccelerator(&engine);
  auto r = EngineDb()->Query(tpch::Query(6));
  EngineDb()->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().fell_back);
  EXPECT_TRUE(CpuResult(6)->Equals(*r.ValueOrDie().table) ||
              CpuResult(6)->EqualsUnordered(*r.ValueOrDie().table));

  const auto stats = engine.stats();
  EXPECT_EQ(stats.oom_events, 0u);       // Unavailable is not an OOM
  EXPECT_EQ(stats.pipeline_retries, 0u); // eviction would not help
  EXPECT_GE(inj.injected("engine.reserve"), 1u);
}

// ---------------------------------------------------------------------------
// Spill-tier chaos: mem.spill.write / mem.spill.read / mem.tier.lost
// swept over TPC-H Q1/Q6/Q18 with the out-of-core path forced hot
// ---------------------------------------------------------------------------

const char* kSpillSites[] = {"mem.spill.write", "mem.spill.read",
                             "mem.tier.lost"};
const int kSpillQueries[] = {1, 6, 18};

const TablePtr& SpillCpuResult(int q) {
  static auto* results = [] {
    auto* m = new std::map<int, TablePtr>();  // sirius-lint: allow(raw-new-delete): leaked singleton
    EngineDb()->SetAccelerator(nullptr);
    for (int query : kSpillQueries) {
      (*m)[query] = EngineDb()->Query(tpch::Query(query)).ValueOrDie().table;
    }
    return m;
  }();
  return results->at(q);
}

/// Runs `q` on an engine whose out-of-core path spills every intermediate
/// (persistent injected OOM at engine.reserve), with `site` armed as `spec`.
Result<host::QueryResult> RunWithSpillFault(int q, const char* site,
                                            FaultSpec spec,
                                            engine::SiriusEngine** out_engine,
                                            FaultInjector* inj) {
  engine::SiriusEngine::Options options;
  options.injector = inj;
  options.out_of_core = true;
  auto* engine = new engine::SiriusEngine(EngineDb(), options);  // sirius-lint: allow(raw-new-delete): caller owns via out_engine
  *out_engine = engine;
  FaultSpec oom;
  oom.code = StatusCode::kOutOfMemory;
  inj->Arm("engine.reserve", oom);
  inj->Arm(site, spec);
  EngineDb()->SetAccelerator(engine);
  auto r = EngineDb()->Query(tpch::Query(q));
  EngineDb()->SetAccelerator(nullptr);
  return r;
}

TEST(SpillChaosTest, TransientTierFaultsRecoverToIdenticalAnswers) {
  for (const char* site : kSpillSites) {
    for (int q : kSpillQueries) {
      (void)SpillCpuResult(q);
      FaultInjector inj;
      FaultSpec spec;
      spec.max_triggers = 2;  // heals within the retry / fallback budget
      engine::SiriusEngine* engine = nullptr;
      auto r = RunWithSpillFault(q, site, spec, &engine, &inj);
      std::unique_ptr<engine::SiriusEngine> owned(engine);
      ASSERT_TRUE(r.ok()) << "site=" << site << " Q" << q << ": "
                          << r.status().ToString();
      EXPECT_FALSE(r.ValueOrDie().fell_back)
          << "site=" << site << " Q" << q << " needed the CPU for a "
          << "transient fault the tiers should have absorbed";
      const TablePtr& ref = SpillCpuResult(q);
      EXPECT_TRUE(ref->Equals(*r.ValueOrDie().table) ||
                  ref->EqualsUnordered(*r.ValueOrDie().table))
          << "site=" << site << " Q" << q << " diverged under faults";
      // No staged bytes left behind on any path.
      EXPECT_EQ(engine->tiers().stats(mem::Tier::kHost).used_bytes, 0u)
          << "site=" << site << " Q" << q;
      EXPECT_EQ(engine->tiers().stats(mem::Tier::kNvme).used_bytes, 0u)
          << "site=" << site << " Q" << q;
    }
  }
}

TEST(SpillChaosTest, PersistentTierFaultsFallBackToCorrectCpuAnswers) {
  for (const char* site : kSpillSites) {
    for (int q : kSpillQueries) {
      (void)SpillCpuResult(q);
      FaultInjector inj;
      engine::SiriusEngine* engine = nullptr;
      auto r = RunWithSpillFault(q, site, FaultSpec{}, &engine, &inj);
      std::unique_ptr<engine::SiriusEngine> owned(engine);
      // The device path cannot finish; the host's CPU engine must still
      // deliver the exact answer (the drop-in contract).
      ASSERT_TRUE(r.ok()) << "site=" << site << " Q" << q << ": "
                          << r.status().ToString();
      EXPECT_TRUE(r.ValueOrDie().fell_back)
          << "site=" << site << " Q" << q;
      const TablePtr& ref = SpillCpuResult(q);
      EXPECT_TRUE(ref->Equals(*r.ValueOrDie().table) ||
                  ref->EqualsUnordered(*r.ValueOrDie().table))
          << "site=" << site << " Q" << q << " diverged under faults";
      EXPECT_EQ(engine->tiers().stats(mem::Tier::kHost).used_bytes, 0u)
          << "site=" << site << " Q" << q;
      EXPECT_EQ(engine->tiers().stats(mem::Tier::kNvme).used_bytes, 0u)
          << "site=" << site << " Q" << q;
    }
  }
}

TEST(SpillChaosTest, BoundedHostSpillIsDiagnosableNotUnbounded) {
  // Regression: the out-of-core path used to grow pinned host memory without
  // limit. With a tiny host tier and NVMe disabled, overflow must surface as
  // a diagnosable ResourceExhausted naming the fix, not silent growth.
  FaultInjector inj;
  engine::SiriusEngine::Options options;
  options.injector = &inj;
  options.out_of_core = true;
  options.tier.host_capacity_bytes = 1 * 1024;  // 1 KiB: nothing real fits
  options.tier.nvme_capacity_bytes = 0;
  engine::SiriusEngine engine(EngineDb(), options);
  FaultSpec oom;
  oom.code = StatusCode::kOutOfMemory;
  inj.Arm("engine.reserve", oom);

  auto plan = EngineDb()->PlanSql(tpch::Query(6)).ValueOrDie();
  auto r = engine.ExecutePlan(plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("exceeds every configured tier"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(engine.tiers().stats(mem::Tier::kHost).used_bytes, 0u);

  // The full drop-in stack still answers the query: the host CPU engine
  // takes over when the governed tiers cannot absorb the overflow.
  (void)SpillCpuResult(6);
  EngineDb()->SetAccelerator(&engine);
  auto full = EngineDb()->Query(tpch::Query(6));
  EngineDb()->SetAccelerator(nullptr);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_TRUE(full.ValueOrDie().fell_back);
  EXPECT_TRUE(SpillCpuResult(6)->Equals(*full.ValueOrDie().table) ||
              SpillCpuResult(6)->EqualsUnordered(*full.ValueOrDie().table));
}

TEST(MemoryPressureTest, ResultTablesOutliveTheEngine) {
  TablePtr table;
  {
    engine::SiriusEngine engine(EngineDb(), {});
    EngineDb()->SetAccelerator(&engine);
    auto r = EngineDb()->Query(tpch::Query(1));
    EngineDb()->SetAccelerator(nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    table = r.ValueOrDie().table;
  }
  // The engine (and its processing pool) are gone; the result must not
  // alias pool memory.
  EXPECT_GT(table->num_rows(), 0u);
  EXPECT_TRUE(CpuResult(1)->Equals(*table) ||
              CpuResult(1)->EqualsUnordered(*table));
}

}  // namespace
}  // namespace sirius
