// Unit tests for the sirius_lint rule engine: each rule must fire on a
// minimal violating snippet, stay silent on the idiomatic fix, and honour
// `// sirius-lint: allow(<rule>)` suppressions.

#include <gtest/gtest.h>

#include "lint.h"

namespace sirius::lint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& content) {
  return LintFiles({{path, content}});
}

size_t CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// ---- scrubbing ------------------------------------------------------------

TEST(ScrubTest, RemovesCommentsAndLiterals) {
  const ScrubbedFile s = Scrub(
      "int x = 1; // new int\n"
      "/* delete p; */ int y;\n"
      "const char* s = \"rand()\";\n");
  ASSERT_EQ(s.code.size(), 4u);  // trailing flush after last newline
  EXPECT_EQ(s.code[0], "int x = 1; ");
  EXPECT_EQ(s.comments[0], " new int");
  EXPECT_EQ(s.code[1], " int y;");
  EXPECT_EQ(s.code[2], "const char* s =  ;");
}

TEST(ScrubTest, BlockCommentSpansLines) {
  const ScrubbedFile s = Scrub("a /* x\ny */ b\n");
  EXPECT_EQ(s.code[0], "a ");
  EXPECT_EQ(s.code[1], " b");
  EXPECT_EQ(s.comments[0], " x");
  EXPECT_EQ(s.comments[1], "y ");
}

// ---- unchecked-status -----------------------------------------------------

TEST(UncheckedStatusTest, BareCallToStatusFunctionIsFlagged) {
  const auto findings = Lint("src/engine/x.cc",
                             "Status Flush(int n);\n"
                             "void F() {\n"
                             "  Flush(3);\n"
                             "}\n");
  ASSERT_EQ(CountRule(findings, kRuleUncheckedStatus), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(UncheckedStatusTest, ResultReturningFunctionIsFlagged) {
  const auto findings = Lint("src/engine/x.cc",
                             "Result<int> Parse(const std::string& s);\n"
                             "void F() {\n"
                             "  Parse(s);\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, kRuleUncheckedStatus), 1u);
}

TEST(UncheckedStatusTest, MemberCallOnStatusFunctionIsFlagged) {
  const auto findings = Lint("src/engine/x.cc",
                             "Status Flush(int n);\n"
                             "void F() {\n"
                             "  writer->Flush(3);\n"
                             "  writer.Flush(4);\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, kRuleUncheckedStatus), 2u);
}

TEST(UncheckedStatusTest, ConsumedCallsAreClean) {
  const auto findings = Lint("src/engine/x.cc",
                             "Status Flush(int n);\n"
                             "Status G() {\n"
                             "  SIRIUS_RETURN_NOT_OK(Flush(1));\n"
                             "  SIRIUS_CHECK_OK(Flush(2));\n"
                             "  Status s = Flush(3);\n"
                             "  if (!Flush(4).ok()) return s;\n"
                             "  return Flush(5);\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, kRuleUncheckedStatus), 0u);
}

TEST(UncheckedStatusTest, IndexIsCrossFile) {
  // Declaration in the header, dropped call in another file.
  const auto findings = LintFiles({
      {"src/net/api.h", "Status Send(int node);\n"},
      {"src/net/impl.cc", "void F() {\n  Send(1);\n}\n"},
  });
  EXPECT_EQ(CountRule(findings, kRuleUncheckedStatus), 1u);
}

TEST(UncheckedStatusTest, OverloadedNameWithNonStatusReturnIsExempt) {
  // `Size` returns Status in one API and size_t in another: a token-level
  // linter cannot tell which overload a call hits, so it must stay silent.
  const auto findings = LintFiles({
      {"src/a.h", "Status Size(int* out);\n"},
      {"src/b.h", "size_t Size();\n"},
      {"src/c.cc", "void F() {\n  Size();\n}\n"},
  });
  EXPECT_EQ(CountRule(findings, kRuleUncheckedStatus), 0u);
}

TEST(UncheckedStatusTest, ContinuationLinesAreNotFlagged) {
  // The call is an argument on a continuation line, not a dropped statement.
  const auto findings = Lint("src/engine/x.cc",
                             "Status Flush(int n);\n"
                             "void F() {\n"
                             "  auto cb = MakeCallback(\n"
                             "      Flush(3));\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, kRuleUncheckedStatus), 0u);
}

// ---- raw-new-delete -------------------------------------------------------

TEST(RawNewDeleteTest, NewAndDeleteOutsideMemAreFlagged) {
  const auto findings = Lint("src/engine/x.cc",
                             "void F() {\n"
                             "  auto* p = new int[4];\n"
                             "  delete p;\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, kRuleRawNewDelete), 2u);
}

TEST(RawNewDeleteTest, SrcMemIsExempt) {
  const auto findings = Lint("src/mem/pool.cc",
                             "void* Grow() { return new char[64]; }\n");
  EXPECT_EQ(CountRule(findings, kRuleRawNewDelete), 0u);
}

TEST(RawNewDeleteTest, SmartPointerFactoryIdiomIsClean) {
  const auto findings = Lint(
      "src/format/x.cc",
      "auto p = std::shared_ptr<Column>(new Column(type));\n"
      "auto q = std::unique_ptr<Table>(new Table());\n");
  EXPECT_EQ(CountRule(findings, kRuleRawNewDelete), 0u);
}

TEST(RawNewDeleteTest, DeletedFunctionsAreClean) {
  const auto findings = Lint("src/common/x.h",
                             "struct NoCopy {\n"
                             "  NoCopy(const NoCopy&) = delete;\n"
                             "};\n");
  EXPECT_EQ(CountRule(findings, kRuleRawNewDelete), 0u);
}

TEST(RawNewDeleteTest, IdentifiersContainingNewAreClean) {
  const auto findings = Lint("src/engine/x.cc",
                             "int new_size = renew(old_size);\n");
  EXPECT_EQ(CountRule(findings, kRuleRawNewDelete), 0u);
}

// ---- mutex-guard ----------------------------------------------------------

TEST(MutexGuardTest, ManualLockOfMutexMemberIsFlagged) {
  const auto findings = Lint("src/engine/x.cc",
                             "void F() {\n"
                             "  mu_.lock();\n"
                             "  queue_mutex->unlock();\n"
                             "  cache_mtx.try_lock();\n"
                             "}\n");
  EXPECT_EQ(CountRule(findings, kRuleMutexGuard), 3u);
}

TEST(MutexGuardTest, RaiiGuardsAreClean) {
  const auto findings = Lint(
      "src/engine/x.cc",
      "void F() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  std::unique_lock<std::mutex> ul(mu_);\n"
      "  ul.unlock();\n"  // unlocking a unique_lock, not a mutex: fine
      "}\n");
  EXPECT_EQ(CountRule(findings, kRuleMutexGuard), 0u);
}

// ---- banned-function ------------------------------------------------------

TEST(BannedFunctionTest, BannedCallsAreFlagged) {
  const auto findings = Lint("src/engine/x.cc",
                             "int r = rand();\n"
                             "strcpy(dst, src);\n"
                             "sprintf(buf, fmt);\n");
  EXPECT_EQ(CountRule(findings, kRuleBannedFunction), 3u);
}

TEST(BannedFunctionTest, NonCallMentionsAreClean) {
  const auto findings = Lint("src/engine/x.cc",
                             "std::mt19937 rand_engine;\n"
                             "int randomize = 3;\n");
  EXPECT_EQ(CountRule(findings, kRuleBannedFunction), 0u);
}

TEST(BannedFunctionTest, WallClockInSimIsFlagged) {
  const std::string code =
      "auto t = std::chrono::system_clock::now();\n";
  EXPECT_EQ(CountRule(Lint("src/sim/device.cc", code), kRuleBannedFunction),
            1u);
  // Outside src/sim/ wall-clock time is allowed (e.g. bench harness timing).
  EXPECT_EQ(CountRule(Lint("bench/harness.cc", code), kRuleBannedFunction),
            0u);
}

// ---- nodiscard-status-api -------------------------------------------------

TEST(NodiscardTest, PlainStatusClassInHeaderIsFlagged) {
  const auto findings = Lint("src/common/status.h",
                             "class Status {\n"
                             " public:\n"
                             "};\n");
  ASSERT_EQ(CountRule(findings, kRuleNodiscardStatus), 1u);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(NodiscardTest, AnnotatedStatusClassIsClean) {
  const auto findings = Lint(
      "src/common/status.h",
      "class [[nodiscard]] Status {\n};\n"
      "template <typename T>\nclass [[nodiscard]] Result {\n};\n");
  EXPECT_EQ(CountRule(findings, kRuleNodiscardStatus), 0u);
}

TEST(NodiscardTest, ForwardDeclAndOtherClassesAreClean) {
  const auto findings = Lint("src/common/x.h",
                             "class StatusOrBuilder {\n};\n"
                             "enum class Status2 { kOk };\n");
  EXPECT_EQ(CountRule(findings, kRuleNodiscardStatus), 0u);
}

// ---- suppressions ---------------------------------------------------------

TEST(SuppressionTest, SameLineAllowDropsFinding) {
  std::vector<Finding> suppressed;
  const auto findings = LintFiles(
      {{"src/sim/x.cc",
        "auto* t = new Tracker();  // sirius-lint: allow(raw-new-delete)\n"}},
      &suppressed);
  EXPECT_EQ(findings.size(), 0u);
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_EQ(suppressed[0].rule, kRuleRawNewDelete);
}

TEST(SuppressionTest, PrecedingLineAllowDropsFinding) {
  const auto findings = Lint(
      "src/sim/x.cc",
      "// sirius-lint: allow(raw-new-delete): leaked singleton\n"
      "auto* t = new Tracker();\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(SuppressionTest, EngineFusedCodeSuppressionIsStillCollected) {
  // src/engine/ is a no-suppress zone (tools/sirius_lint/main.cc), fused
  // execution paths included: the library always moves allow()'d findings
  // aside, and the driver refuses them there. Pins the library half.
  std::vector<Finding> suppressed;
  const auto findings = LintFiles(
      {{"src/engine/pipeline.cc",
        "auto* v = new SelectionView();  "
        "// sirius-lint: allow(raw-new-delete)\n"}},
      &suppressed);
  EXPECT_EQ(findings.size(), 0u);
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_EQ(suppressed[0].file, "src/engine/pipeline.cc");
  EXPECT_EQ(suppressed[0].rule, kRuleRawNewDelete);
}

TEST(SuppressionTest, WrongRuleDoesNotSuppress) {
  const auto findings = Lint(
      "src/sim/x.cc",
      "auto* t = new Tracker();  // sirius-lint: allow(mutex-guard)\n");
  EXPECT_EQ(CountRule(findings, kRuleRawNewDelete), 1u);
}

TEST(SuppressionTest, WildcardSuppressesEverything) {
  const auto findings = Lint(
      "src/sim/x.cc",
      "auto* t = new Tracker();  // sirius-lint: allow(*)\n");
  EXPECT_EQ(findings.size(), 0u);
}

// ---- raii-span ------------------------------------------------------------

TEST(RaiiSpanTest, TemporarySpanIsFlagged) {
  const auto findings = Lint(
      "src/engine/x.cc",
      "void F(obs::TraceRecorder* rec, const obs::Clock& clock) {\n"
      "  obs::Span(rec, 0, kName, kCat, clock);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, kRuleRaiiSpan), 1u);
  const auto braced = Lint("src/engine/x.cc", "  obs::Span{};\n");
  EXPECT_EQ(CountRule(braced, kRuleRaiiSpan), 1u);
}

TEST(RaiiSpanTest, HeapSpanIsFlagged) {
  const auto findings =
      Lint("src/engine/x.cc", "  auto* s = new obs::Span(rec, 0, n, c, clk);\n");
  EXPECT_EQ(CountRule(findings, kRuleRaiiSpan), 1u);
}

TEST(RaiiSpanTest, NamedLocalGuardIsClean) {
  const auto findings = Lint(
      "src/engine/x.cc",
      "  obs::Span span(rec, track, kName, kCat, clock);\n"
      "  obs::Span moved = std::move(span);\n"
      "  void Take(obs::Span guard);\n");
  EXPECT_EQ(CountRule(findings, kRuleRaiiSpan), 0u);
}

TEST(RaiiSpanTest, OtherObsSpanIdentifiersAreClean) {
  const auto findings = Lint(
      "src/obs/x.cc",
      "  obs::SpanRecord r;\n"
      "  obs::SpanId id = obs::kInvalidSpan;\n"
      "  std::vector<obs::Span> pool;\n");
  EXPECT_EQ(CountRule(findings, kRuleRaiiSpan), 0u);
}

TEST(RaiiSpanTest, SuppressionApplies) {
  const auto findings = Lint(
      "src/engine/x.cc",
      "  obs::Span(rec, 0, n, c, clk);  // sirius-lint: allow(raii-span)\n");
  EXPECT_EQ(CountRule(findings, kRuleRaiiSpan), 0u);
}

// ---- pinned-host-alloc -----------------------------------------------------

TEST(PinnedHostAllocTest, CallOutsideMemIsFlagged) {
  const auto findings = Lint(
      "src/engine/buffer_manager.cc",
      "  mem::PinnedHostAlloc(bytes);\n"
      "  mem::PinnedHostFree(bytes);\n");
  EXPECT_EQ(CountRule(findings, kRulePinnedHostAlloc), 2u);
}

TEST(PinnedHostAllocTest, SrcMemIsExempt) {
  const auto findings = Lint(
      "src/mem/tier.cc",
      "  PinnedHostAlloc(bytes);\n  PinnedHostFree(bytes);\n");
  EXPECT_EQ(CountRule(findings, kRulePinnedHostAlloc), 0u);
}

TEST(PinnedHostAllocTest, NonCallMentionsAreClean) {
  // The read-only gauge and prose mentions stay legal everywhere.
  const auto findings = Lint(
      "src/serve/serve.cc",
      "  const uint64_t staged = mem::PinnedHostInUse();\n"
      "  // PinnedHostAlloc is banned here\n");
  EXPECT_EQ(CountRule(findings, kRulePinnedHostAlloc), 0u);
}

TEST(PinnedHostAllocTest, SuppressionApplies) {
  const auto findings = Lint(
      "src/host/staging.cc",
      "  mem::PinnedHostAlloc(n);  // sirius-lint: allow(pinned-host-alloc)\n");
  EXPECT_EQ(CountRule(findings, kRulePinnedHostAlloc), 0u);
}

// ---- serve-no-blocking ----------------------------------------------------

TEST(ServeBlockingTest, DetachedThreadInServeIsFlagged) {
  const auto findings = Lint(
      "src/serve/worker.cc",
      "  std::thread([this] { Run(); }).detach();\n");
  EXPECT_EQ(CountRule(findings, kRuleServeBlocking), 1u);
  const auto ptr = Lint("src/serve/worker.cc", "  worker->detach();\n");
  EXPECT_EQ(CountRule(ptr, kRuleServeBlocking), 1u);
}

TEST(ServeBlockingTest, SleepAndBusyWaitInServeAreFlagged) {
  const auto findings = Lint(
      "src/serve/worker.cc",
      "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
      "  std::this_thread::sleep_until(deadline);\n"
      "  usleep(100);\n"
      "  while (!done.load()) std::this_thread::yield();\n");
  EXPECT_EQ(CountRule(findings, kRuleServeBlocking), 4u);
}

TEST(ServeBlockingTest, OutsideServeIsExempt) {
  const auto findings = Lint(
      "src/net/transport.cc",
      "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
      "  std::thread(loop).detach();\n");
  EXPECT_EQ(CountRule(findings, kRuleServeBlocking), 0u);
}

TEST(ServeBlockingTest, FutureJoinsAndNonCallMentionsAreClean) {
  const auto findings = Lint(
      "src/serve/serve.cc",
      "  entry->future.wait();\n"
      "  auto result = entry->future.get();\n"
      "  int sleep_budget = 0;\n");
  EXPECT_EQ(CountRule(findings, kRuleServeBlocking), 0u);
}

// ---- workload-family directories ------------------------------------------

TEST(PathScopingTest, SsbDirectoryGetsFullRules) {
  // src/ssb/ is first-class src/ code: the full house rules apply, unlike
  // examples/ which only runs the portable subset. The same violating
  // content proves both sides of that split.
  const std::string content =
      "void Fill() {\n"
      "  auto* t = new Table();\n"
      "  int r = rand();\n"
      "  (void)r;\n"
      "  delete t;\n"
      "}\n";
  const auto in_ssb = Lint("src/ssb/dbgen_fixture.cc", content);
  EXPECT_GE(CountRule(in_ssb, kRuleRawNewDelete), 1u);
  EXPECT_GE(CountRule(in_ssb, kRuleBannedFunction), 1u);

  const auto in_examples = Lint("examples/dbgen_fixture.cc", content);
  EXPECT_EQ(CountRule(in_examples, kRuleRawNewDelete), 0u);
  // banned-function is part of the portable subset — still enforced there.
  EXPECT_GE(CountRule(in_examples, kRuleBannedFunction), 1u);
}

TEST(PathScopingTest, ClusterDirectoryGetsServeBlockingRules) {
  // src/cluster/ is part of the serving tier: the DES no-blocking rules
  // that guard src/serve/ (no detached threads, no wall-clock waits) apply
  // to the federation layer with the same severity.
  const std::string content =
      "void ServeCluster::Flush() {\n"
      "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
      "  std::thread(drain).detach();\n"
      "}\n";
  const auto in_cluster = Lint("src/cluster/serve_cluster_fixture.cc", content);
  EXPECT_GE(CountRule(in_cluster, kRuleServeBlocking), 2u);

  // Outside the serving tier the same content is not a serve-blocking hit.
  const auto in_net = Lint("src/net/transport_fixture.cc", content);
  EXPECT_EQ(CountRule(in_net, kRuleServeBlocking), 0u);
}

// ---- formatting -----------------------------------------------------------

TEST(FormatTest, FindingFormatsAsFileLineRuleMessage) {
  const Finding f{"src/a.cc", 12, kRuleBannedFunction, "no"};
  EXPECT_EQ(FormatFinding(f), "src/a.cc:12: [banned-function] no");
}

}  // namespace
}  // namespace sirius::lint
