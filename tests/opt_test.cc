// Unit tests for the optimizer: selectivity/cardinality/NDV estimation,
// filter pushdown, cross-join elimination, join ordering, column pruning,
// and the ClickHouse-mode planning policy.

#include <gtest/gtest.h>

#include <functional>

#include "host/database.h"
#include "opt/optimizer.h"
#include "tpch/queries.h"

namespace sirius::opt {
namespace {

using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

int CountNodes(const PlanNode& n, PlanKind kind) {
  int count = n.kind == kind ? 1 : 0;
  for (const auto& c : n.children) count += CountNodes(*c, kind);
  return count;
}

int CountCrossJoins(const PlanNode& n) {
  int count =
      n.kind == PlanKind::kJoin && n.join_type == plan::JoinType::kCross ? 1 : 0;
  for (const auto& c : n.children) count += CountCrossJoins(*c);
  return count;
}

void Walk(const PlanNode& n, const std::function<void(const PlanNode&)>& fn) {
  fn(n);
  for (const auto& c : n.children) Walk(*c, fn);
}

// ---------------------------------------------------------------------------
// Selectivity / cardinality
// ---------------------------------------------------------------------------

TEST(SelectivityTest, Heuristics) {
  auto schema = format::Schema({{"a", format::Int64()}, {"s", format::String()}});
  auto bind = [&](expr::ExprPtr e) {
    SIRIUS_CHECK_OK(expr::Bind(e, schema));
    return e;
  };
  auto eq = bind(expr::Eq(expr::ColRef("a"), expr::LitInt(1)));
  auto range = bind(expr::Lt(expr::ColRef("a"), expr::LitInt(1)));
  EXPECT_LT(EstimateSelectivity(*eq), EstimateSelectivity(*range));
  auto conj = bind(expr::And(expr::Eq(expr::ColRef("a"), expr::LitInt(1)),
                             expr::Lt(expr::ColRef("a"), expr::LitInt(9))));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(*conj),
                   EstimateSelectivity(*eq) * EstimateSelectivity(*range));
  auto like = bind(expr::Like(expr::ColRef("s"), "%x%"));
  auto notlike = bind(expr::NotLike(expr::ColRef("s"), "%x%"));
  EXPECT_LT(EstimateSelectivity(*like), EstimateSelectivity(*notlike));
  EXPECT_LE(EstimateSelectivity(*conj), 1.0);
}

TEST(CardinalityTest, ScanFilterJoin) {
  MapStats stats({{"big", 100000}, {"small", 100}});
  auto schema = format::Schema({{"k", format::Int64()}});
  auto big = plan::MakeScan("big", schema, {}).ValueOrDie();
  auto small = plan::MakeScan("small", schema, {}).ValueOrDie();
  EXPECT_DOUBLE_EQ(EstimateRows(*big, stats), 100000);

  auto filtered =
      plan::MakeFilter(big, expr::Eq(expr::ColRef("k"), expr::LitInt(1)))
          .ValueOrDie();
  EXPECT_LT(EstimateRows(*filtered, stats), 100000);

  auto join =
      plan::MakeJoin(big, small, plan::JoinType::kInner, {0}, {0}).ValueOrDie();
  double est = EstimateRows(*join, stats);
  // Without NDV stats the formula degrades to |L||R|/max(|L|,|R|).
  EXPECT_GE(est, 100.0);
  EXPECT_LE(est, 100000.0 * 1.01);

  auto cross =
      plan::MakeJoin(big, small, plan::JoinType::kCross, {}, {}).ValueOrDie();
  EXPECT_DOUBLE_EQ(EstimateRows(*cross, stats), 100000.0 * 100);
}

TEST(CardinalityTest, NdvFromCatalog) {
  host::Database db;
  auto t = format::Table::Make(
               format::Schema({{"k", format::Int64()}, {"v", format::Int64()}}),
               {format::Column::FromInt64({1, 1, 2, 2, 3}),
                format::Column::FromInt64({1, 2, 3, 4, 5})})
               .ValueOrDie();
  SIRIUS_CHECK_OK(db.CreateTable("t", t));
  EXPECT_DOUBLE_EQ(db.catalog().ColumnDistinct("t", "k"), 3);
  EXPECT_DOUBLE_EQ(db.catalog().ColumnDistinct("t", "v"), 5);
  EXPECT_LT(db.catalog().ColumnDistinct("t", "zzz"), 0);

  auto scan = plan::MakeScan("t", t->schema(), {}).ValueOrDie();
  EXPECT_DOUBLE_EQ(EstimateDistinct(*scan, 0, db.catalog()), 3);
  EXPECT_DOUBLE_EQ(EstimateDistinct(*scan, 1, db.catalog()), 5);
}

// ---------------------------------------------------------------------------
// Optimizer behaviour on TPC-H
// ---------------------------------------------------------------------------

class TpchOptTest : public ::testing::Test {
 protected:
  static host::Database* db() {
    static host::Database* instance = [] {
      auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
      SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.002));
      return d;
    }();
    return instance;
  }
};

TEST_F(TpchOptTest, NoCrossJoinsSurviveOnConnectedQueries) {
  // Every TPC-H query's join graph is connected once equality conjuncts are
  // extracted (Q19 requires OR common-factor extraction); the only cross
  // joins left should be single-row scalar-subquery broadcasts.
  for (int q = 1; q <= 22; ++q) {
    auto plan = db()->PlanSql(tpch::Query(q)).ValueOrDie();
    int crosses = 0;
    Walk(*plan, [&](const PlanNode& n) {
      if (n.kind == PlanKind::kJoin && n.join_type == plan::JoinType::kCross) {
        // Allowed: scalar-subquery sides estimated at one row.
        double r = EstimateRows(*n.children[1], db()->catalog());
        if (r > 2.0) ++crosses;
      }
    });
    EXPECT_EQ(crosses, 0) << "Q" << q << "\n" << plan->ToString();
  }
}

TEST_F(TpchOptTest, FiltersArePushedBelowJoins) {
  auto plan = db()->PlanSql(tpch::Query(3)).ValueOrDie();
  // The c_mktsegment filter must sit directly above the customer scan.
  bool found = false;
  Walk(*plan, [&](const PlanNode& n) {
    if (n.kind == PlanKind::kFilter &&
        n.children[0]->kind == PlanKind::kTableScan &&
        n.children[0]->table_name == "customer") {
      found = true;
    }
  });
  EXPECT_TRUE(found) << plan->ToString();
}

TEST_F(TpchOptTest, ScansArePruned) {
  auto plan = db()->PlanSql(tpch::Query(6)).ValueOrDie();
  Walk(*plan, [&](const PlanNode& n) {
    if (n.kind == PlanKind::kTableScan && n.table_name == "lineitem") {
      // Q6 touches quantity, extendedprice, discount, shipdate only.
      EXPECT_EQ(n.scan_columns.size(), 4u) << plan->ToString();
    }
  });
}

TEST_F(TpchOptTest, OptimizedPlanKeepsSchemaAndResults) {
  for (int q : {1, 3, 5, 10, 19}) {
    auto bound = sql::SqlToPlan(tpch::Query(q), db()->catalog()).ValueOrDie();
    OptimizerOptions no_opt;
    no_opt.push_filters = false;
    no_opt.reorder_joins = false;
    no_opt.prune_columns = false;
    auto raw = Optimize(bound, db()->catalog(), no_opt).ValueOrDie();
    auto optimized = Optimize(bound, db()->catalog(), {}).ValueOrDie();
    EXPECT_TRUE(
        optimized->output_schema.Equals(bound->output_schema)) << "Q" << q;

    auto a = db()->ExecutePlanCpu(raw).ValueOrDie();
    auto b = db()->ExecutePlanCpu(optimized).ValueOrDie();
    EXPECT_TRUE(a.table->Equals(*b.table) || a.table->EqualsUnordered(*b.table))
        << "Q" << q;
  }
}

TEST_F(TpchOptTest, PruningAloneKeepsResults) {
  for (int q : {4, 12, 14}) {
    auto bound = sql::SqlToPlan(tpch::Query(q), db()->catalog()).ValueOrDie();
    auto pruned = PruneColumns(bound).ValueOrDie();
    EXPECT_TRUE(pruned->output_schema.Equals(bound->output_schema));
    auto a = db()->ExecutePlanCpu(bound).ValueOrDie();
    auto b = db()->ExecutePlanCpu(pruned).ValueOrDie();
    EXPECT_TRUE(a.table->Equals(*b.table)) << "Q" << q;
  }
}

TEST_F(TpchOptTest, ClickHouseModeKeepsSyntacticOrderButSameResults) {
  host::Database::Options ch_options;
  ch_options.engine = sim::ClickHouseProfile();
  host::Database ch(ch_options);
  SIRIUS_CHECK_OK(tpch::LoadTpch(&ch, 0.002));

  for (int q : {3, 5, 10}) {
    auto duck = db()->Query(tpch::Query(q)).ValueOrDie();
    auto click = ch.Query(tpch::Query(q)).ValueOrDie();
    EXPECT_TRUE(duck.table->Equals(*click.table) ||
                duck.table->EqualsUnordered(*click.table))
        << "Q" << q;
    // Join-policy handicap: ClickHouse-mode should be slower on join-heavy
    // queries at the same modeled hardware.
    EXPECT_GT(click.timeline.total_seconds(), duck.timeline.total_seconds())
        << "Q" << q;
  }
}

TEST_F(TpchOptTest, EstimatesAnnotated) {
  auto plan = db()->PlanSql(tpch::Query(5)).ValueOrDie();
  Walk(*plan, [&](const PlanNode& n) { EXPECT_GE(n.estimated_rows, 0.0); });
}

TEST(OptimizerUnitTest, OrCommonFactorExtraction) {
  // Q19 shape: (k = j AND p1) OR (k = j AND p2) must produce a join edge.
  host::Database db;
  auto t1 = format::Table::Make(
                format::Schema({{"k", format::Int64()}, {"a", format::Int64()}}),
                {format::Column::FromInt64({1, 2, 3}),
                 format::Column::FromInt64({1, 2, 3})})
                .ValueOrDie();
  auto t2 = format::Table::Make(
                format::Schema({{"j", format::Int64()}, {"b", format::Int64()}}),
                {format::Column::FromInt64({1, 2, 3}),
                 format::Column::FromInt64({10, 20, 30})})
                .ValueOrDie();
  SIRIUS_CHECK_OK(db.CreateTable("t1", t1));
  SIRIUS_CHECK_OK(db.CreateTable("t2", t2));
  auto plan = db.PlanSql(
                    "select a, b from t1, t2 where "
                    "(k = j and a > 1) or (k = j and b < 15)")
                  .ValueOrDie();
  EXPECT_EQ(CountCrossJoins(*plan), 0) << plan->ToString();
  auto result = db.Query(
                      "select a, b from t1, t2 where "
                      "(k = j and a > 1) or (k = j and b < 15)")
                    .ValueOrDie();
  EXPECT_EQ(result.table->num_rows(), 3u);  // (1,10) via b<15; (2,20),(3,30) a>1
}

TEST(OptimizerUnitTest, DisabledPushdownStillCorrect) {
  host::Database db;
  auto t = format::Table::Make(format::Schema({{"k", format::Int64()}}),
                               {format::Column::FromInt64({1, 2, 3, 4})})
               .ValueOrDie();
  SIRIUS_CHECK_OK(db.CreateTable("t", t));
  auto bound = sql::SqlToPlan("select k from t where k > 2", db.catalog())
                   .ValueOrDie();
  OptimizerOptions options;
  options.push_filters = false;
  auto plan = Optimize(bound, db.catalog(), options).ValueOrDie();
  auto r = db.ExecutePlanCpu(plan).ValueOrDie();
  EXPECT_EQ(r.table->num_rows(), 2u);
}

}  // namespace
}  // namespace sirius::opt
