// Unit tests for expressions: construction, binding/type inference,
// columnar evaluation, SQL NULL semantics, LIKE matching.

#include <gtest/gtest.h>

#include "expr/eval.h"
#include "expr/expr.h"
#include "format/builder.h"

namespace sirius::expr {
namespace {

using format::Column;
using format::ColumnPtr;
using format::Scalar;
using format::Schema;
using format::Table;
using format::TablePtr;

TablePtr TestTable() {
  return Table::Make(
             Schema({{"i", format::Int64()},
                     {"d", format::Decimal(2)},
                     {"f", format::Float64()},
                     {"s", format::String()},
                     {"dt", format::Date32()},
                     {"b", format::Bool()}}),
             {Column::FromInt64({1, 2, 3}),
              Column::FromDecimal({150, 250, 1000}, 2),  // 1.50, 2.50, 10.00
              Column::FromDouble({0.5, 1.5, 2.5}),
              Column::FromStrings({"apple pie", "banana", "cherry"}),
              Column::FromDate({format::ParseDate("1994-01-01"),
                                format::ParseDate("1995-06-17"),
                                format::ParseDate("1996-12-31")}),
              Column::FromBool({true, false, true})})
      .ValueOrDie();
}

ColumnPtr Eval(ExprPtr e, const TablePtr& t) {
  SIRIUS_CHECK_OK(Bind(e, t->schema()));
  return Evaluate(*e, *t).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Binding / type inference
// ---------------------------------------------------------------------------

TEST(BindTest, ResolvesNamesToIndices) {
  auto t = TestTable();
  auto e = ColRef("d");
  SIRIUS_CHECK_OK(Bind(e, t->schema()));
  EXPECT_EQ(e->column_index, 1);
  EXPECT_EQ(e->type, format::Decimal(2));
}

TEST(BindTest, UnknownColumnFails) {
  auto t = TestTable();
  auto e = ColRef("nope");
  EXPECT_TRUE(Bind(e, t->schema()).IsInvalid() ||
              Bind(e, t->schema()).code() == StatusCode::kBindError);
}

TEST(BindTest, DecimalScalePropagation) {
  auto t = TestTable();
  auto add = Add(ColRef("d"), ColRef("d"));
  SIRIUS_CHECK_OK(Bind(add, t->schema()));
  EXPECT_EQ(add->type, format::Decimal(2));

  auto mul = Mul(ColRef("d"), ColRef("d"));
  SIRIUS_CHECK_OK(Bind(mul, t->schema()));
  EXPECT_EQ(mul->type, format::Decimal(4));  // scales add

  auto div = Div(ColRef("d"), ColRef("i"));
  SIRIUS_CHECK_OK(Bind(div, t->schema()));
  EXPECT_EQ(div->type.id, format::TypeId::kFloat64);
}

TEST(BindTest, ComparisonYieldsBool) {
  auto t = TestTable();
  auto e = Lt(ColRef("i"), LitInt(2));
  SIRIUS_CHECK_OK(Bind(e, t->schema()));
  EXPECT_EQ(e->type.id, format::TypeId::kBool);
}

TEST(BindTest, LogicalRequiresBool) {
  auto t = TestTable();
  auto bad = And(ColRef("i"), ColRef("b"));
  EXPECT_EQ(Bind(bad, t->schema()).code(), StatusCode::kTypeError);
}

TEST(BindTest, LikeRequiresString) {
  auto t = TestTable();
  auto bad = Like(ColRef("i"), "%x%");
  EXPECT_EQ(Bind(bad, t->schema()).code(), StatusCode::kTypeError);
}

TEST(BindTest, ExtractYearRequiresDate) {
  auto t = TestTable();
  auto bad = ExtractYear(ColRef("i"));
  EXPECT_EQ(Bind(bad, t->schema()).code(), StatusCode::kTypeError);
  auto ok = ExtractYear(ColRef("dt"));
  EXPECT_TRUE(Bind(ok, t->schema()).ok());
  EXPECT_EQ(ok->type.id, format::TypeId::kInt64);
}

// ---------------------------------------------------------------------------
// Evaluation: arithmetic
// ---------------------------------------------------------------------------

TEST(EvalTest, IntegerArithmetic) {
  auto t = TestTable();
  auto c = Eval(Add(Mul(ColRef("i"), LitInt(10)), LitInt(5)), t);
  EXPECT_EQ(c->data<int64_t>()[0], 15);
  EXPECT_EQ(c->data<int64_t>()[2], 35);
}

TEST(EvalTest, DecimalArithmeticExact) {
  auto t = TestTable();
  // d * (1 - 0.10): scale 2 * scale 2 -> scale 4 raw values.
  auto e = Mul(ColRef("d"), Sub(LitDecimal("1", 2), LitDecimal("0.10", 2)));
  auto c = Eval(e, t);
  EXPECT_EQ(c->type(), format::Decimal(4));
  EXPECT_EQ(c->data<int64_t>()[0], 13500);   // 1.50 * 0.90 = 1.3500
  EXPECT_EQ(c->data<int64_t>()[2], 90000);   // 10.00 * 0.90
}

TEST(EvalTest, MixedDecimalIntComparison) {
  auto t = TestTable();
  auto c = Eval(Ge(ColRef("d"), LitInt(2)), t);  // 1.50, 2.50, 10.00 >= 2
  EXPECT_EQ(c->data<uint8_t>()[0], 0);
  EXPECT_EQ(c->data<uint8_t>()[1], 1);
  EXPECT_EQ(c->data<uint8_t>()[2], 1);
}

TEST(EvalTest, DivisionByZeroIsNull) {
  auto t = TestTable();
  auto c = Eval(Div(ColRef("i"), Sub(ColRef("i"), ColRef("i"))), t);
  EXPECT_TRUE(c->IsNull(0));
  EXPECT_EQ(c->null_count(), 3u);
}

TEST(EvalTest, DoubleArithmetic) {
  auto t = TestTable();
  auto c = Eval(Mul(ColRef("f"), LitDouble(2.0)), t);
  EXPECT_DOUBLE_EQ(c->data<double>()[1], 3.0);
}

TEST(EvalTest, NegateAndUnary) {
  auto t = TestTable();
  auto c = Eval(Negate(ColRef("i")), t);
  EXPECT_EQ(c->data<int64_t>()[2], -3);
}

// ---------------------------------------------------------------------------
// Evaluation: NULL semantics
// ---------------------------------------------------------------------------

TablePtr NullTable() {
  return Table::Make(Schema({{"x", format::Int64()}, {"y", format::Int64()}}),
                     {Column::FromInt64({1, 2, 3}, {true, false, true}),
                      Column::FromInt64({10, 20, 30}, {true, true, false})})
      .ValueOrDie();
}

TEST(EvalTest, ArithmeticPropagatesNulls) {
  auto t = NullTable();
  auto c = Eval(Add(ColRef("x"), ColRef("y")), t);
  EXPECT_FALSE(c->IsNull(0));
  EXPECT_TRUE(c->IsNull(1));
  EXPECT_TRUE(c->IsNull(2));
  EXPECT_EQ(c->data<int64_t>()[0], 11);
}

TEST(EvalTest, ComparisonPropagatesNulls) {
  auto t = NullTable();
  auto c = Eval(Lt(ColRef("x"), ColRef("y")), t);
  EXPECT_FALSE(c->IsNull(0));
  EXPECT_TRUE(c->IsNull(1));
}

TEST(EvalTest, KleeneAndOr) {
  // x: 1, NULL, 3 ; conditions crafted to exercise three-valued logic.
  auto t = NullTable();
  // (x > 0) AND (x > 2): row1 true&&NULL -> NULL; row2 NULL&&NULL -> NULL.
  auto c = Eval(And(Gt(ColRef("x"), LitInt(0)), Gt(ColRef("x"), LitInt(2))), t);
  EXPECT_EQ(c->data<uint8_t>()[0], 0);  // 1 > 2 false => false AND
  EXPECT_TRUE(c->IsNull(1));
  EXPECT_EQ(c->data<uint8_t>()[2], 1);

  // Row 0: FALSE AND TRUE -> FALSE (never NULL).
  auto f = Eval(And(Lt(ColRef("x"), LitInt(-5)), Gt(ColRef("x"), LitInt(0))),
                NullTable());
  EXPECT_EQ(f->data<uint8_t>()[0], 0);
  EXPECT_FALSE(f->IsNull(0));

  // TRUE OR NULL == TRUE; NULL OR TRUE == TRUE.
  auto o = Eval(Or(Gt(ColRef("y"), LitInt(0)), Gt(ColRef("x"), LitInt(0))),
                NullTable());
  EXPECT_EQ(o->data<uint8_t>()[1], 1);  // y=20 TRUE OR (x NULL)
  EXPECT_FALSE(o->IsNull(1));
  EXPECT_EQ(o->data<uint8_t>()[2], 1);  // (y NULL) OR x=3>0 TRUE
  EXPECT_FALSE(o->IsNull(2));
}

TEST(EvalTest, KleeneTruthTableExact) {
  // Explicit 3x3 truth table via builders.
  format::ColumnBuilder ab(format::Bool()), bb(format::Bool());
  const int kTrue = 1, kFalse = 0, kNull = -1;
  std::vector<std::pair<int, int>> rows;
  for (int a : {kTrue, kFalse, kNull}) {
    for (int b : {kTrue, kFalse, kNull}) rows.push_back({a, b});
  }
  for (auto [a, b] : rows) {
    if (a == kNull) {
      ab.AppendNull();
    } else {
      ab.AppendBool(a == kTrue);
    }
    if (b == kNull) {
      bb.AppendNull();
    } else {
      bb.AppendBool(b == kTrue);
    }
  }
  auto t = Table::Make(Schema({{"a", format::Bool()}, {"b", format::Bool()}}),
                       {ab.Finish(), bb.Finish()})
               .ValueOrDie();
  auto andc = Eval(And(ColRef("a"), ColRef("b")), t);
  auto orc = Eval(Or(ColRef("a"), ColRef("b")), t);
  auto expect = [&](const ColumnPtr& c, size_t row, int want) {
    if (want == kNull) {
      EXPECT_TRUE(c->IsNull(row)) << row;
    } else {
      ASSERT_FALSE(c->IsNull(row)) << row;
      EXPECT_EQ(c->data<uint8_t>()[row], want == kTrue ? 1 : 0) << row;
    }
  };
  // rows: TT TF TN FT FF FN NT NF NN
  expect(andc, 0, kTrue);
  expect(andc, 1, kFalse);
  expect(andc, 2, kNull);
  expect(andc, 3, kFalse);
  expect(andc, 4, kFalse);
  expect(andc, 5, kFalse);
  expect(andc, 6, kNull);
  expect(andc, 7, kFalse);
  expect(andc, 8, kNull);
  expect(orc, 0, kTrue);
  expect(orc, 1, kTrue);
  expect(orc, 2, kTrue);
  expect(orc, 3, kTrue);
  expect(orc, 4, kFalse);
  expect(orc, 5, kNull);
  expect(orc, 6, kTrue);
  expect(orc, 7, kNull);
  expect(orc, 8, kNull);
}

TEST(EvalTest, IsNullNeverReturnsNull) {
  auto t = NullTable();
  auto c = Eval(IsNull(ColRef("x")), t);
  EXPECT_EQ(c->null_count(), 0u);
  EXPECT_EQ(c->data<uint8_t>()[1], 1);
  auto n = Eval(IsNotNull(ColRef("x")), t);
  EXPECT_EQ(n->data<uint8_t>()[1], 0);
}

TEST(EvalTest, NotPropagatesNull) {
  auto t = NullTable();
  auto c = Eval(Not(Gt(ColRef("x"), LitInt(1))), t);
  EXPECT_EQ(c->data<uint8_t>()[0], 1);
  EXPECT_TRUE(c->IsNull(1));
}

// ---------------------------------------------------------------------------
// Evaluation: strings, dates, CASE, IN
// ---------------------------------------------------------------------------

TEST(EvalTest, StringComparison) {
  auto t = TestTable();
  auto c = Eval(Eq(ColRef("s"), LitString("banana")), t);
  EXPECT_EQ(c->data<uint8_t>()[0], 0);
  EXPECT_EQ(c->data<uint8_t>()[1], 1);
  auto lt = Eval(Lt(ColRef("s"), LitString("b")), t);
  EXPECT_EQ(lt->data<uint8_t>()[0], 1);  // "apple pie" < "b"
}

TEST(EvalTest, LikeAndNotLike) {
  auto t = TestTable();
  auto c = Eval(Like(ColRef("s"), "%an%"), t);
  EXPECT_EQ(c->data<uint8_t>()[0], 0);
  EXPECT_EQ(c->data<uint8_t>()[1], 1);
  auto n = Eval(NotLike(ColRef("s"), "%an%"), t);
  EXPECT_EQ(n->data<uint8_t>()[1], 0);
  EXPECT_EQ(n->data<uint8_t>()[2], 1);
}

TEST(EvalTest, SubstringOneBased) {
  auto t = TestTable();
  auto c = Eval(Substring(ColRef("s"), 1, 2), t);
  EXPECT_EQ(c->StringAt(0), "ap");
  EXPECT_EQ(c->StringAt(1), "ba");
  auto mid = Eval(Substring(ColRef("s"), 3, 3), t);
  EXPECT_EQ(mid->StringAt(2), "err");
  auto past = Eval(Substring(ColRef("s"), 100, 5), t);
  EXPECT_EQ(past->StringAt(0), "");
}

TEST(EvalTest, ExtractYearValues) {
  auto t = TestTable();
  auto c = Eval(ExtractYear(ColRef("dt")), t);
  EXPECT_EQ(c->data<int64_t>()[0], 1994);
  EXPECT_EQ(c->data<int64_t>()[2], 1996);
}

TEST(EvalTest, DateComparisons) {
  auto t = TestTable();
  auto c = Eval(Lt(ColRef("dt"), LitDate("1995-01-01")), t);
  EXPECT_EQ(c->data<uint8_t>()[0], 1);
  EXPECT_EQ(c->data<uint8_t>()[1], 0);
}

TEST(EvalTest, CaseWhenElse) {
  auto t = TestTable();
  auto e = CaseWhen({Gt(ColRef("i"), LitInt(2)), LitString("big"),
                     Gt(ColRef("i"), LitInt(1)), LitString("mid"),
                     LitString("small")});
  auto c = Eval(e, t);
  EXPECT_EQ(c->StringAt(0), "small");
  EXPECT_EQ(c->StringAt(1), "mid");
  EXPECT_EQ(c->StringAt(2), "big");
}

TEST(EvalTest, CaseWithoutElseYieldsNull) {
  auto t = TestTable();
  auto e = CaseWhen({Gt(ColRef("i"), LitInt(2)), LitInt(1)});
  auto c = Eval(e, t);
  EXPECT_TRUE(c->IsNull(0));
  EXPECT_EQ(c->data<int64_t>()[2], 1);
}

TEST(EvalTest, InList) {
  auto t = TestTable();
  auto c = Eval(InList(ColRef("i"), {Scalar::FromInt64(1), Scalar::FromInt64(3)}),
                t);
  EXPECT_EQ(c->data<uint8_t>()[0], 1);
  EXPECT_EQ(c->data<uint8_t>()[1], 0);
  EXPECT_EQ(c->data<uint8_t>()[2], 1);
  auto s = Eval(InList(ColRef("s"), {Scalar::FromString("banana")}), t);
  EXPECT_EQ(s->data<uint8_t>()[1], 1);
}

TEST(EvalTest, CastDouble) {
  auto t = TestTable();
  auto c = Eval(CastDouble(ColRef("d")), t);
  EXPECT_DOUBLE_EQ(c->data<double>()[0], 1.5);
}

TEST(EvalTest, LiteralBroadcast) {
  auto t = TestTable();
  auto c = Eval(LitInt(42), t);
  EXPECT_EQ(c->length(), 3u);
  EXPECT_EQ(c->data<int64_t>()[2], 42);
}

// ---------------------------------------------------------------------------
// LIKE matcher (property-ish sweep)
// ---------------------------------------------------------------------------

TEST(LikeMatchTest, Exact) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_FALSE(LikeMatch("ab", "abc"));
}

TEST(LikeMatchTest, Percent) {
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abcdef", "abc%"));
  EXPECT_TRUE(LikeMatch("abcdef", "%def"));
  EXPECT_TRUE(LikeMatch("abcdef", "%cd%"));
  EXPECT_TRUE(LikeMatch("abcdef", "a%f"));
  EXPECT_FALSE(LikeMatch("abcdef", "a%g"));
  EXPECT_TRUE(LikeMatch("special packages requests", "%special%requests%"));
  EXPECT_FALSE(LikeMatch("special packages", "%special%requests%"));
}

TEST(LikeMatchTest, Underscore) {
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("abc", "___"));
  EXPECT_FALSE(LikeMatch("abc", "____"));
  EXPECT_TRUE(LikeMatch("abc", "_%"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(LikeMatchTest, Backtracking) {
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));
  EXPECT_TRUE(LikeMatch("abababab", "%ab%ab"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
  EXPECT_FALSE(LikeMatch("mississippi", "%iss%ppq"));
}

// ---------------------------------------------------------------------------
// Misc: clone / rendering / op count
// ---------------------------------------------------------------------------

TEST(ExprTest, CloneIsDeep) {
  auto e = Add(ColRef("a"), LitInt(1));
  auto c = e->Clone();
  c->children[1]->literal = Scalar::FromInt64(99);
  EXPECT_EQ(e->children[1]->literal.int_value(), 1);
}

TEST(ExprTest, ToStringRendersStructure) {
  auto e = And(Gt(ColRef("x"), LitInt(1)), Like(ColRef("s"), "%a%"));
  EXPECT_EQ(e->ToString(), "((x > 1) AND s LIKE '%a%')");
}

TEST(ExprTest, CollectColumnsDeduplicates) {
  auto e = Add(ColIdx(3, format::Int64()),
               Mul(ColIdx(3, format::Int64()), ColIdx(5, format::Int64())));
  std::vector<int> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<int>{3, 5}));
}

TEST(ExprTest, ConjoinAll) {
  EXPECT_EQ(ConjoinAll({}), nullptr);
  auto one = ConjoinAll({LitInt(1)});
  EXPECT_EQ(one->kind, ExprKind::kLiteral);
  auto two = ConjoinAll({Gt(ColRef("a"), LitInt(1)), Lt(ColRef("a"), LitInt(5))});
  EXPECT_EQ(two->bop, BinaryOp::kAnd);
}

}  // namespace
}  // namespace sirius::expr
