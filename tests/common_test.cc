// Unit tests for src/common: Status/Result, thread pool, hashing, bit utils.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/bitutil.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace sirius {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::KeyError("x").code(), StatusCode::kKeyError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::IndexError("x").code(), StatusCode::kIndexError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::UnsupportedOnDevice("x").code(),
            StatusCode::kUnsupportedOnDevice);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::IOError("disk gone").WithContext("loading table");
  EXPECT_EQ(st.message(), "loading table: disk gone");
  EXPECT_TRUE(Status::OK().WithContext("nope").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::KeyError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SIRIUS_ASSIGN_OR_RETURN(int h, Half(x));
  SIRIUS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  pool.ParallelFor(5000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRangeDisjointCoverage) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelForRange(123457, [&](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 123457u);
}

TEST(ThreadPoolTest, SmallInputRunsInline) {
  ThreadPool pool(4);
  size_t calls = 0;
  pool.ParallelForRange(10, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(HashMix64(42), HashMix64(42));
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 1000; ++i) values.insert(HashMix64(i));
  EXPECT_EQ(values.size(), 1000u);  // no collisions on sequential ints
}

TEST(HashTest, BytesHashRespectsContent) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString(""), HashString("a"));
  // Long strings exercise the 8-byte block path.
  std::string long1(1000, 'x'), long2(1000, 'x');
  long2[999] = 'y';
  EXPECT_NE(HashString(long1), HashString(long2));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(HashMix64(1), 2), HashCombine(HashMix64(2), 1));
}

TEST(BitUtilTest, SetGetClear) {
  uint8_t bits[4] = {0, 0, 0, 0};
  bit::SetBit(bits, 0);
  bit::SetBit(bits, 9);
  bit::SetBit(bits, 31);
  EXPECT_TRUE(bit::GetBit(bits, 0));
  EXPECT_TRUE(bit::GetBit(bits, 9));
  EXPECT_TRUE(bit::GetBit(bits, 31));
  EXPECT_FALSE(bit::GetBit(bits, 1));
  bit::ClearBit(bits, 9);
  EXPECT_FALSE(bit::GetBit(bits, 9));
  bit::SetBitTo(bits, 5, true);
  EXPECT_TRUE(bit::GetBit(bits, 5));
  bit::SetBitTo(bits, 5, false);
  EXPECT_FALSE(bit::GetBit(bits, 5));
}

TEST(BitUtilTest, CountSetBits) {
  uint8_t bits[4] = {0xFF, 0x0F, 0x00, 0x80};
  EXPECT_EQ(bit::CountSetBits(bits, 32), 13u);
  EXPECT_EQ(bit::CountSetBits(bits, 8), 8u);
  EXPECT_EQ(bit::CountSetBits(bits, 4), 4u);
  EXPECT_EQ(bit::CountSetBits(bits, 0), 0u);
}

TEST(BitUtilTest, NextPow2) {
  EXPECT_EQ(bit::NextPow2(0), 1u);
  EXPECT_EQ(bit::NextPow2(1), 1u);
  EXPECT_EQ(bit::NextPow2(2), 2u);
  EXPECT_EQ(bit::NextPow2(3), 4u);
  EXPECT_EQ(bit::NextPow2(1023), 1024u);
  EXPECT_EQ(bit::NextPow2(1024), 1024u);
  EXPECT_EQ(bit::NextPow2(1025), 2048u);
  EXPECT_TRUE(bit::IsPow2(64));
  EXPECT_FALSE(bit::IsPow2(65));
  EXPECT_FALSE(bit::IsPow2(0));
}

TEST(BitUtilTest, BytesForBits) {
  EXPECT_EQ(bit::BytesForBits(0), 0u);
  EXPECT_EQ(bit::BytesForBits(1), 1u);
  EXPECT_EQ(bit::BytesForBits(8), 1u);
  EXPECT_EQ(bit::BytesForBits(9), 2u);
}

}  // namespace
}  // namespace sirius
