// Tests for multi-GPU placement in the serving layer: the PlacementPolicy
// and DeviceGroup units; per-device admission (sheds name the device and
// carry its retry hint); warm-device affinity with spill-under-imbalance
// charging fabric migration; the "serve.place" chaos site (forced
// mis-placement and device loss with requeue onto survivors); and
// determinism — two seeded runs produce identical per-device dispatch
// orders. The admission ledger balances to zero on every path, across every
// device pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "engine/sirius.h"
#include "fault/fault_injector.h"
#include "serve/load_gen.h"
#include "serve/scheduler.h"
#include "serve/serve.h"
#include "sim/device_group.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using serve::LoadGenerator;
using serve::LoadOptions;
using serve::LoadReport;
using serve::PlacementPolicy;
using serve::QueryOutcome;
using serve::QueryServer;
using serve::QueryState;
using serve::ServeOptions;
using serve::SubmitOptions;

constexpr double kSf = 0.005;
constexpr double kDataScale = 1.0 / kSf;
constexpr double kInf = std::numeric_limits<double>::infinity();

host::Database* SharedDb() {
  static host::Database* db = [] {
    host::Database::Options options;
    options.data_scale = kDataScale;
    auto* d = new host::Database(options);  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

engine::SiriusEngine* SharedEngine() {
  static engine::SiriusEngine* eng = [] {
    engine::SiriusEngine::Options options;
    options.data_scale = kDataScale;
    return new engine::SiriusEngine(SharedDb(), options);  // sirius-lint: allow(raw-new-delete): leaked singleton
  }();
  return eng;
}

// ---------------------------------------------------------------------------
// PlacementPolicy units
// ---------------------------------------------------------------------------

TEST(PlacementPolicyTest, ColdPlacementPicksLeastLoaded) {
  PlacementPolicy policy;
  auto d = policy.Place("t", /*inputs_resident=*/false, {3.0, 1.0, 2.0},
                        {true, true, true});
  EXPECT_EQ(d.device, 1);
  EXPECT_FALSE(d.warm);
  EXPECT_STREQ(d.reason, "cold");
  // Ties break to the lowest index so decisions replay deterministically.
  d = policy.Place("t", false, {1.0, 1.0, 1.0}, {true, true, true});
  EXPECT_EQ(d.device, 0);
}

TEST(PlacementPolicyTest, WarmAffinityHoldsUntilImbalance) {
  PlacementPolicy policy(PlacementPolicy::Options{2.0, 1e-3});
  policy.RecordPlacement("t", 1);
  // Warm backlog within 2x of the least-loaded: stay warm.
  auto d = policy.Place("t", true, {1.0, 1.9, 5.0}, {true, true, true});
  EXPECT_EQ(d.device, 1);
  EXPECT_TRUE(d.warm);
  EXPECT_STREQ(d.reason, "warm");
  // Warm backlog beyond 2x: spill to the least-loaded device.
  d = policy.Place("t", true, {1.0, 2.5, 5.0}, {true, true, true});
  EXPECT_EQ(d.device, 0);
  EXPECT_FALSE(d.warm);
  EXPECT_STREQ(d.reason, "spill");
  // Inputs not resident: nothing to be warm about, balance wins.
  d = policy.Place("t", false, {1.0, 1.1, 5.0}, {true, true, true});
  EXPECT_EQ(d.device, 0);
  EXPECT_STREQ(d.reason, "cold");
}

TEST(PlacementPolicyTest, DeviceLossForgetsWarmTenants) {
  PlacementPolicy policy;
  policy.RecordPlacement("a", 0);
  policy.RecordPlacement("b", 1);
  policy.ForgetDevice(0);
  EXPECT_EQ(policy.warm_device("a"), -1);
  EXPECT_EQ(policy.warm_device("b"), 1);
  // A dead warm device is also ignored at placement time.
  policy.RecordPlacement("c", 2);
  auto d = policy.Place("c", true, {1.0, 1.0, kInf}, {true, true, false});
  EXPECT_EQ(d.device, 0);
  EXPECT_STREQ(d.reason, "cold");
  // Nothing alive: no decision.
  d = policy.Place("c", true, {kInf, kInf, kInf}, {false, false, false});
  EXPECT_EQ(d.device, -1);
}

// ---------------------------------------------------------------------------
// DeviceGroup units
// ---------------------------------------------------------------------------

TEST(DeviceGroupTest, LostDeviceStopsAcceptingPlacements) {
  sim::DeviceGroup group(
      sim::DeviceGroup::Options{4, sim::StreamSet::Options{2, 0.45}});
  EXPECT_EQ(group.num_devices(), 4);
  EXPECT_EQ(group.alive_devices(), 4);
  EXPECT_TRUE(std::isfinite(group.EarliestStart(2, 0.0)));
  group.MarkLost(2);
  EXPECT_TRUE(group.lost(2));
  EXPECT_EQ(group.alive_devices(), 3);
  EXPECT_EQ(group.EarliestStart(2, 0.0), kInf);
  EXPECT_EQ(group.BusyAt(2, 0.0), 0);
  group.MarkLost(2);  // idempotent
  EXPECT_EQ(group.alive_devices(), 3);
}

TEST(DeviceGroupTest, FabricPricesMigration) {
  sim::DeviceGroup group(
      sim::DeviceGroup::Options{2, sim::StreamSet::Options{2, 0.45}});
  const double t = group.MigrateSeconds(256ull << 20);
  EXPECT_GT(t, 0.0);
  // More bytes take longer over the same link.
  EXPECT_GT(group.MigrateSeconds(1ull << 30), t);
}

// ---------------------------------------------------------------------------
// Per-device admission
// ---------------------------------------------------------------------------

TEST(ServePlacementTest, ShedNamesDeviceAndCarriesItsRetryHint) {
  ServeOptions options;
  options.num_devices = 2;
  options.admission_budget_bytes = 64ull << 20;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  SubmitOptions sub;
  sub.arrival_s = 0;
  sub.bypass_cache = true;
  sub.reservation_bytes = 128ull << 20;  // over any single device's budget
  auto r = server.Submit(session, tpch::Query(1), sub);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("device "), std::string::npos)
      << "shed message must name the device: " << r.status().message();
  EXPECT_GT(serve::RetryAfterHint(r.status()), 0.0);
  EXPECT_GT(server.total_refused(), 0u);
  EXPECT_EQ(server.total_reserved_bytes(), 0u);
}

TEST(ServePlacementTest, EachDeviceOwnsItsAdmissionPool) {
  ServeOptions options;
  options.num_devices = 3;
  options.admission_budget_bytes = 256ull << 20;
  QueryServer server(SharedDb(), SharedEngine(), options);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(server.reservations(d).capacity(), 256ull << 20);
    EXPECT_EQ(server.reservations(d).reserved(), 0u);
  }
  EXPECT_EQ(server.num_devices(), 3);
}

// ---------------------------------------------------------------------------
// Warm affinity and spill in the server
// ---------------------------------------------------------------------------

TEST(ServePlacementTest, RepeatedTenantStaysOnWarmDevice) {
  ServeOptions options;
  options.num_devices = 4;
  options.result_cache = false;  // repeats must execute, not short-circuit
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  SubmitOptions sub;
  std::vector<int> devices;
  for (int i = 0; i < 4; ++i) {
    sub.arrival_s = server.now_s();
    auto id = server.Submit(session, tpch::Query(1), sub);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    auto out = server.Resolve(id.ValueOrDie());
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out.ValueOrDie().state, QueryState::kCompleted);
    devices.push_back(out.ValueOrDie().device);
    if (i > 0) {
      EXPECT_TRUE(out.ValueOrDie().warm_placed)
          << "repeat " << i << " left the warm device";
    }
  }
  // The statement's plan-cache stamp marks its inputs warm after the first
  // run; with idle peers everywhere, affinity must hold.
  for (int d : devices) EXPECT_EQ(d, devices[0]);
  EXPECT_GE(server.metrics().Snapshot().at("serve.placed_warm"), 3u);
}

TEST(ServePlacementTest, ImbalanceSpillsAndChargesMigration) {
  ServeOptions options;
  options.num_devices = 2;
  options.num_streams = 1;  // one query saturates a device
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto session = server.OpenSession("acme");

  // The first submit lands cold and occupies its device's only stream (the
  // stream stays busy in simulated time even though the real execution has
  // joined). The repeat at the same arrival finds its warm device saturated
  // and an idle peer: it spills and pays the fabric transfer of its
  // resident working set.
  SubmitOptions sub;
  sub.arrival_s = 0;
  auto first = server.Submit(session, tpch::Query(1), sub);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  sub.arrival_s = 0;
  auto spilled = server.Submit(session, tpch::Query(1), sub);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();

  ASSERT_TRUE(server.DrainAll().ok());
  auto warm_out = server.Peek(first.ValueOrDie());
  ASSERT_TRUE(warm_out.ok());
  const int warm_dev = warm_out.ValueOrDie().device;
  auto out = server.Peek(spilled.ValueOrDie());
  ASSERT_TRUE(out.ok());
  const QueryOutcome& o = out.ValueOrDie();
  EXPECT_EQ(o.state, QueryState::kCompleted);
  EXPECT_NE(o.device, warm_dev) << "imbalance never spilled";
  EXPECT_FALSE(o.warm_placed);
  EXPECT_GT(o.migrate_s, 0.0) << "spill away from warm inputs must migrate";
  EXPECT_GE(server.metrics().Snapshot().at("serve.placed_spill"), 1u);
  EXPECT_EQ(server.total_reserved_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// The "serve.place" chaos site
// ---------------------------------------------------------------------------

TEST(ServePlacementChaosTest, MisplacementStillCompletesEverything) {
  FaultInjector injector(0xabcd);
  FaultSpec spec;
  spec.code = StatusCode::kInternal;  // non-Unavailable: forced mis-placement
  spec.every_nth = 2;
  fault::ScopedFault armed(&injector, "serve.place", spec);

  ServeOptions options;
  options.num_devices = 4;
  options.injector = &injector;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);

  LoadOptions load;
  load.num_clients = 8;
  load.queries_per_client = 2;
  load.query_mix = {1, 6};
  load.bypass_cache = true;
  load.seed = 11;
  LoadGenerator gen(&server, load);
  auto report = gen.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadReport& r = report.ValueOrDie();

  EXPECT_GT(injector.injected("serve.place"), 0u);
  EXPECT_GE(server.metrics().Snapshot().at("serve.placed_forced"), 1u);
  EXPECT_EQ(r.completed,
            static_cast<uint64_t>(load.num_clients * load.queries_per_client));
  EXPECT_EQ(server.total_reserved_bytes(), 0u);
  for (int d = 0; d < 4; ++d) EXPECT_FALSE(server.device_lost(d));
}

TEST(ServePlacementChaosTest, DeviceLossRequeuesQueuedWorkOntoSurvivors) {
  FaultInjector injector(0xdead);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;  // device loss
  spec.skip_first = 4;                   // let both devices build a queue
  spec.every_nth = 1;
  spec.max_triggers = 1;
  fault::ScopedFault armed(&injector, "serve.place", spec);

  ServeOptions options;
  options.num_devices = 2;
  options.num_streams = 1;
  options.injector = &injector;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto a = server.OpenSession("alpha");
  auto b = server.OpenSession("beta");

  // Two tenants, all arrivals at t=0: each tenant's first query saturates a
  // device (alpha cold -> dev X; beta cold -> the other), and each tenant's
  // second query queues warm behind it. The fifth submit (alpha again, warm)
  // trips the loss on alpha's device; its queued query re-enters admission
  // on the survivor.
  SubmitOptions sub;
  sub.arrival_s = 0;
  sub.bypass_cache = true;
  std::vector<serve::QueryId> ids;
  for (auto [session, tag] : {std::pair{a, "a1"}, {b, "b1"}, {a, "a2"}, {b, "b2"}}) {
    auto id = server.Submit(session, tpch::Query(6), sub);
    ASSERT_TRUE(id.ok()) << tag << ": " << id.status().ToString();
    ids.push_back(id.ValueOrDie());
  }
  auto trigger = server.Submit(a, tpch::Query(6), sub);
  ASSERT_TRUE(trigger.ok()) << trigger.status().ToString();
  ids.push_back(trigger.ValueOrDie());
  ASSERT_EQ(injector.injected("serve.place"), 1u);
  ASSERT_TRUE(server.DrainAll().ok());

  int lost = -1;
  for (int d = 0; d < 2; ++d) {
    if (server.device_lost(d)) lost = d;
  }
  ASSERT_NE(lost, -1) << "armed loss site never killed a device";
  const int survivor = 1 - lost;
  const auto counters = server.metrics().Snapshot();
  EXPECT_EQ(counters.at("serve.device_lost"), 1u);
  EXPECT_GE(counters.at("serve.requeued"), 1u);

  uint64_t on_survivor = 0;
  for (auto id : ids) {
    auto out = server.Peek(id);
    ASSERT_TRUE(out.ok());
    const QueryOutcome& o = out.ValueOrDie();
    EXPECT_TRUE(o.terminal());
    EXPECT_EQ(o.state, QueryState::kCompleted) << o.status.ToString();
    if (o.device == survivor) ++on_survivor;
  }
  // The survivor ran its own two, the requeued one, and the trigger.
  EXPECT_GE(on_survivor, 3u);
  EXPECT_EQ(server.total_reserved_bytes(), 0u);
}

TEST(ServePlacementChaosTest, RequeueShedsWhenSurvivorPoolIsFull) {
  FaultInjector injector(0xbeef);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.skip_first = 4;
  spec.every_nth = 1;
  spec.max_triggers = 1;
  fault::ScopedFault armed(&injector, "serve.place", spec);

  ServeOptions options;
  options.num_devices = 2;
  options.num_streams = 1;
  // Each device's pool holds exactly one queued admission: the survivor
  // cannot absorb the lost device's queued query on top of its own.
  options.admission_budget_bytes = 300ull << 20;
  options.default_reservation_bytes = 256ull << 20;
  options.injector = &injector;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);
  auto a = server.OpenSession("alpha");
  auto b = server.OpenSession("beta");

  // Same choreography as the requeue test, but each device's pool holds
  // exactly one queued admission: when alpha's device dies, the survivor
  // cannot absorb the orphan on top of its own queued query, so the
  // *admitted* orphan is terminally shed.
  SubmitOptions sub;
  sub.arrival_s = 0;
  sub.bypass_cache = true;
  std::vector<serve::QueryId> ids;
  for (auto [session, tag] : {std::pair{a, "a1"}, {b, "b1"}, {a, "a2"}, {b, "b2"}}) {
    auto id = server.Submit(session, tpch::Query(6), sub);
    ASSERT_TRUE(id.ok()) << tag << ": " << id.status().ToString();
    ids.push_back(id.ValueOrDie());
  }
  // The trigger itself may also be refused by the survivor's full pool —
  // that is an ordinary admission shed, not the path under test.
  auto trigger = server.Submit(a, tpch::Query(6), sub);
  if (!trigger.ok()) {
    EXPECT_TRUE(trigger.status().IsResourceExhausted())
        << trigger.status().ToString();
  }
  ASSERT_EQ(injector.injected("serve.place"), 1u);
  ASSERT_TRUE(server.DrainAll().ok());

  const auto counters = server.metrics().Snapshot();
  EXPECT_GE(counters.at("serve.requeue_shed"), 1u);
  bool saw_terminal_shed = false;
  for (auto id : ids) {
    auto out = server.Peek(id);
    ASSERT_TRUE(out.ok());
    const QueryOutcome& o = out.ValueOrDie();
    EXPECT_TRUE(o.terminal());
    if (o.state == QueryState::kShed) {
      saw_terminal_shed = true;
      EXPECT_TRUE(o.status.IsResourceExhausted()) << o.status.ToString();
      EXPECT_GT(o.retry_after_s, 0.0);
    }
  }
  EXPECT_TRUE(saw_terminal_shed);
  EXPECT_EQ(server.total_reserved_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(ServePlacementTest, FixedSeedGivesIdenticalPerDeviceDispatchOrders) {
  // Warm the engine's column cache first so both runs model against the
  // same residency state (a cold first run would load columns the second
  // run finds cached, shifting modeled durations).
  for (int q : {1, 6, 12}) {
    auto plan = SharedDb()->PlanSql(tpch::Query(q));
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto r = SharedEngine()->ExecutePlan(plan.ValueOrDie());
    ASSERT_TRUE(r.ok()) << "warm Q" << q << ": " << r.status().ToString();
  }
  auto run = [] {
    ServeOptions options;
    options.num_devices = 4;
    options.result_cache = false;
    QueryServer server(SharedDb(), SharedEngine(), options);
    LoadOptions load;
    load.num_clients = 16;
    load.queries_per_client = 2;
    load.tenants = {"a", "b", "c", "d"};
    load.query_mix = {1, 6, 12};
    load.bypass_cache = true;
    load.seed = 1234;
    LoadGenerator gen(&server, load);
    auto report = gen.Run();
    SIRIUS_CHECK_OK(report.status());
    // (id, device, stream, dispatch, finish) per query: any placement or
    // arbitration divergence shows up here.
    std::vector<std::tuple<uint64_t, int, int, double, double>> order;
    for (const auto& out : server.Outcomes()) {
      order.emplace_back(out.id, out.device, out.stream, out.dispatch_s,
                         out.finish_s);
    }
    std::sort(order.begin(), order.end());
    return order;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "divergence at outcome " << i;
  }
}

}  // namespace
}  // namespace sirius
