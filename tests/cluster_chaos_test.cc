// Chaos tests for the federated serving tier, sweeping its three fault
// sites under fixed seeds:
//
//   "cluster.route"     — transient routing faults skip the candidate and
//                         walk the preference list; queries still complete.
//   "cluster.fill"      — dropped replication multicasts (fills AND eager
//                         invalidations) are retried with backoff under the
//                         replication budget, then delivered.
//   "cluster.node.lost" — a node dies mid-run (and mid-fill): its tenants
//                         re-route to survivors within the clients' retry
//                         budget, its undelivered fills die with it, and NO
//                         survivor-owned cache entry is invalidated — the
//                         write-version stamps still serve every entry that
//                         was already installed.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/serve_cluster.h"
#include "engine/sirius.h"
#include "fault/fault_injector.h"
#include "serve/load_gen.h"
#include "serve/serve.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using cluster::CacheMode;
using cluster::ClusterOptions;
using cluster::ServeCluster;
using fault::FaultInjector;
using fault::FaultSpec;
using serve::LoadGenerator;
using serve::LoadOptions;
using serve::LoadReport;
using serve::QueryState;
using serve::SubmitOptions;

constexpr double kSf = 0.005;
constexpr double kDataScale = 1.0 / kSf;
constexpr int kNodes = 4;

host::Database* SharedDb() {
  static host::Database* db = [] {
    host::Database::Options options;
    options.data_scale = kDataScale;
    auto* d = new host::Database(options);  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

std::vector<engine::SiriusEngine*> NodeEngines() {
  static std::vector<engine::SiriusEngine*>* engines = [] {
    auto* v = new std::vector<engine::SiriusEngine*>();  // sirius-lint: allow(raw-new-delete): leaked singleton
    for (int i = 0; i < kNodes; ++i) {
      engine::SiriusEngine::Options options;
      options.data_scale = kDataScale;
      v->push_back(new engine::SiriusEngine(SharedDb(), options));  // sirius-lint: allow(raw-new-delete): leaked singleton
    }
    return v;
  }();
  return *engines;
}

ClusterOptions BaseOptions(FaultInjector* injector) {
  ClusterOptions options;
  options.num_nodes = kNodes;
  options.node.num_streams = 4;
  options.node.execution_threads = 4;
  options.data_scale = kDataScale;
  options.injector = injector;
  options.node.injector = injector;
  return options;
}

std::string TenantOn(const cluster::RendezvousRouter& router, int node) {
  for (int i = 0; i < 256; ++i) {
    const std::string t = "tenant-" + std::to_string(i);
    if (router.Preference(t)[0] == node) return t;
  }
  ADD_FAILURE() << "no tenant found with primary " << node;
  return "tenant-0";
}

TEST(ClusterChaosTest, RouteFaultsSkipCandidatesAndStillServe) {
  FaultInjector injector(0xc0de);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;  // transient: walk the list
  spec.every_nth = 3;
  fault::ScopedFault armed(&injector, "cluster.route", spec);

  ServeCluster cl(SharedDb(), NodeEngines(), BaseOptions(&injector));
  LoadOptions load;
  load.num_clients = 6;
  load.queries_per_client = 2;
  load.query_mix = {1, 6};
  load.tenants = {"gold", "silver", "bronze"};
  load.bypass_cache = true;
  load.seed = 7;
  LoadGenerator gen(&cl, load);
  auto report = gen.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadReport& r = report.ValueOrDie();

  EXPECT_GT(injector.injected("cluster.route"), 0u)
      << "armed route site never fired";
  EXPECT_GT(cl.stats().route_retried, 0u);
  // Transient route faults cost a less-preferred placement, never a query.
  EXPECT_EQ(r.completed, 12u);
  EXPECT_EQ(r.failed, 0u);
}

TEST(ClusterChaosTest, DroppedFillMulticastsAreRetriedThenDelivered) {
  FaultInjector injector(0xf111);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.every_nth = 1;   // a transient channel outage…
  spec.max_triggers = 2;  // …that heals after two dropped attempts
  fault::ScopedFault armed(&injector, "cluster.fill", spec);

  ClusterOptions options = BaseOptions(&injector);
  options.cache_mode = CacheMode::kReplicated;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  const std::string tenant = TenantOn(cl.router(), 1);
  const std::string sql = tpch::Query(1);
  auto id = cl.Submit(cl.OpenSession(tenant), sql, SubmitOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());

  EXPECT_GT(injector.injected("cluster.fill"), 0u);
  EXPECT_GT(cl.stats().fill_retries, 0u) << "dropped multicast never retried";
  EXPECT_GE(cl.stats().fills_delivered, 3u)
      << "retries did not heal the fill";
  // The healed fill serves a hit on a peer replica.
  auto rid = cl.Submit(cl.OpenSession(TenantOn(cl.router(), 2)), sql,
                       SubmitOptions{});
  ASSERT_TRUE(rid.ok());
  auto out = cl.Resolve(rid.ValueOrDie());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie().cache_hit);
}

TEST(ClusterChaosTest, DroppedInvalidationMulticastIsRetried) {
  FaultInjector injector(0x1450);
  ClusterOptions options = BaseOptions(&injector);
  options.cache_mode = CacheMode::kReplicated;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  // Warm the region first with the channel healthy.
  const std::string sql = tpch::Query(6);
  auto warm = cl.Submit(cl.OpenSession(TenantOn(cl.router(), 0)), sql,
                        SubmitOptions{});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());

  // Bump the catalog version, then drop the first invalidation sends.
  host::Catalog& catalog = SharedDb()->catalog();
  auto region = catalog.GetTable("region");
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(catalog.CreateTable("region", region.ValueOrDie()).ok());

  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.max_triggers = 2;  // transient outage that heals
  spec.every_nth = 1;
  fault::ScopedFault armed(&injector, "cluster.fill", spec);

  auto id = cl.Submit(cl.OpenSession(TenantOn(cl.router(), 1)), sql,
                      SubmitOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());

  EXPECT_GT(cl.stats().fill_retries, 0u)
      << "dropped invalidation never retried";
  EXPECT_GE(cl.stats().invalidations_delivered, 1u)
      << "retries did not heal the invalidation";
  // Correctness did not depend on the delivery: the stale entry could not
  // have served anyway — the lookup stamp (write-version) already changed.
  auto out = cl.Peek(id.ValueOrDie());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.ValueOrDie().state, QueryState::kCompleted);
  EXPECT_FALSE(out.ValueOrDie().cache_hit);
}

TEST(ClusterChaosTest, NodeLossMidFillSparesSurvivorEntries) {
  FaultInjector injector(0xdead);
  ClusterOptions options = BaseOptions(&injector);
  options.cache_mode = CacheMode::kReplicated;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  // Step 1: node 0's tenant fills the region; the fill propagates cleanly.
  const std::string survivor_sql = tpch::Query(1);
  auto warm = cl.Submit(cl.OpenSession(TenantOn(cl.router(), 0)),
                        survivor_sql, SubmitOptions{});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());
  const uint64_t delivered_before = cl.stats().fills_delivered;
  ASSERT_GE(delivered_before, 3u);

  // Step 2: node 1 completes a query whose fill is still pending — then
  // dies mid-fill. The fill must die with it; nothing else may.
  const std::string victim_tenant = TenantOn(cl.router(), 1);
  auto vid = cl.Submit(cl.OpenSession(victim_tenant), tpch::Query(6),
                       SubmitOptions{});
  ASSERT_TRUE(vid.ok()) << vid.status().ToString();
  auto vout = cl.Resolve(vid.ValueOrDie());
  ASSERT_TRUE(vout.ok());
  ASSERT_EQ(vout.ValueOrDie().state, QueryState::kCompleted);
  ASSERT_GE(cl.pending_replication(), 1u) << "fill already flushed";

  cl.LoseNode(1);
  EXPECT_EQ(cl.stats().nodes_lost, 1u);
  EXPECT_FALSE(cl.membership().IsAlive(1));
  EXPECT_GE(cl.stats().fills_dropped, 1u) << "mid-fill loss kept the fill";
  EXPECT_GE(cl.metrics().Snapshot().at("cluster.fill.origin_lost"), 1u);
  // Node loss is not a catalog write: no invalidation was multicast, and
  // the survivors' cache stats show zero version-stamp invalidations.
  EXPECT_EQ(cl.stats().invalidations_sent, 0u);
  for (int n : cl.membership().AliveRanks()) {
    EXPECT_EQ(cl.node(n).cache_stats().invalidations, 0u)
        << "node loss invalidated survivor entries on node " << n;
  }

  // Step 3: the victim's tenant re-routes to its next-preferred survivor…
  auto rerouted = cl.Submit(cl.OpenSession(victim_tenant), tpch::Query(6),
                            SubmitOptions{});
  ASSERT_TRUE(rerouted.ok()) << rerouted.status().ToString();
  auto rout = cl.Resolve(rerouted.ValueOrDie());
  ASSERT_TRUE(rout.ok());
  EXPECT_EQ(rout.ValueOrDie().state, QueryState::kCompleted);
  EXPECT_NE(rout.ValueOrDie().node, 1);

  // …and the survivor-owned entry from step 1 still serves a hit.
  auto hit = cl.Submit(cl.OpenSession(TenantOn(cl.router(), 2)),
                       survivor_sql, SubmitOptions{});
  ASSERT_TRUE(hit.ok());
  auto hout = cl.Resolve(hit.ValueOrDie());
  ASSERT_TRUE(hout.ok());
  EXPECT_TRUE(hout.ValueOrDie().cache_hit)
      << "survivor-owned cache entry was lost with the node";
}

TEST(ClusterChaosTest, NodeLostSiteReroutesWithinRetryBudget) {
  FaultInjector injector(0xbeef);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.skip_first = 6;  // let the run warm up, then kill one primary
  spec.every_nth = 1;
  spec.max_triggers = 1;
  fault::ScopedFault armed(&injector, "cluster.node.lost", spec);

  ClusterOptions options = BaseOptions(&injector);
  options.cache_mode = CacheMode::kReplicated;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  LoadOptions load;
  load.num_clients = 8;
  load.queries_per_client = 3;
  load.query_mix = {1, 6};
  load.tenants = {"gold", "silver", "bronze", "iron"};
  load.bypass_cache = true;
  load.max_retries = 3;
  load.seed = 11;
  LoadGenerator gen(&cl, load);
  auto report = gen.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadReport& r = report.ValueOrDie();

  EXPECT_EQ(cl.stats().nodes_lost, 1u) << "armed node-lost site never fired";
  EXPECT_EQ(cl.membership().num_alive(), kNodes - 1);
  // Every query landed: the dead node's tenants re-routed (at submit time
  // or via requeue) within the clients' retry budget — nothing abandoned,
  // nothing failed.
  EXPECT_EQ(r.completed + r.requeue_shed,
            static_cast<uint64_t>(load.num_clients * load.queries_per_client));
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.abandoned, 0u);
  // Node loss never issues a shared invalidation: survivor replicas keep
  // every entry they installed (write-version stamps untouched).
  EXPECT_EQ(cl.stats().invalidations_sent, 0u);
  for (int n : cl.membership().AliveRanks()) {
    EXPECT_EQ(cl.node(n).cache_stats().invalidations, 0u)
        << "node loss invalidated survivor entries on node " << n;
  }
}

}  // namespace
}  // namespace sirius
