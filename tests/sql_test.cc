// Unit tests for the SQL front-end: lexer, parser, binder (incl. subquery
// decorrelation shapes).

#include <gtest/gtest.h>

#include "host/catalog.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tpch/queries.h"

namespace sirius::sql {
namespace {

using format::Column;
using plan::PlanKind;
using plan::PlanPtr;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 42 FROM t WHERE x >= 3.5").ValueOrDie();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "select");  // lower-cased
  EXPECT_EQ(tokens[3].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[3].ival, 42);
  auto& ge = tokens[8];
  EXPECT_EQ(ge.kind, TokenKind::kOperator);
  EXPECT_EQ(ge.text, ">=");
  EXPECT_EQ(tokens[9].kind, TokenKind::kDecimal);
  EXPECT_EQ(tokens[9].text, "3.5");
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("'it''s'").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(LexerTest, CommentsAndNe) {
  auto tokens = Tokenize("a <> b -- trailing comment\n != c").ValueOrDie();
  EXPECT_EQ(tokens[1].text, "<>");
  EXPECT_EQ(tokens[3].text, "<>");  // != normalizes
  EXPECT_EQ(tokens[4].text, "c");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, SelectList) {
  auto stmt = ParseSql("select a, b + 1 as c, count(*) from t").ValueOrDie();
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].expr->kind, AstKind::kColumn);
  EXPECT_EQ(stmt->items[1].alias, "c");
  EXPECT_EQ(stmt->items[2].expr->kind, AstKind::kFuncCall);
  EXPECT_EQ(stmt->items[2].expr->args[0]->kind, AstKind::kStar);
}

TEST(ParserTest, Precedence) {
  auto stmt = ParseSql("select 1 from t where a + b * c < d and e or f").ValueOrDie();
  const auto& w = stmt->where;
  ASSERT_EQ(w->kind, AstKind::kBinary);
  EXPECT_EQ(w->name, "or");
  EXPECT_EQ(w->args[0]->name, "and");
  const auto& cmp = w->args[0]->args[0];
  EXPECT_EQ(cmp->name, "<");
  EXPECT_EQ(cmp->args[0]->name, "+");
  EXPECT_EQ(cmp->args[0]->args[1]->name, "*");
}

TEST(ParserTest, BetweenInLike) {
  auto stmt = ParseSql(
                  "select 1 from t where a between 1 and 5 and b in (1, 2) "
                  "and c like '%x%' and d not like 'y%' and e not in (3)")
                  .ValueOrDie();
  std::vector<AstKind> kinds;
  std::function<void(const AstExprPtr&)> walk = [&](const AstExprPtr& e) {
    if (e->kind == AstKind::kBinary && e->name == "and") {
      walk(e->args[0]);
      walk(e->args[1]);
    } else {
      kinds.push_back(e->kind);
    }
  };
  walk(stmt->where);
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds[0], AstKind::kBetween);
  EXPECT_EQ(kinds[1], AstKind::kInList);
  EXPECT_EQ(kinds[2], AstKind::kLike);
  EXPECT_EQ(kinds[3], AstKind::kLike);
  EXPECT_EQ(kinds[4], AstKind::kInList);
}

TEST(ParserTest, DateAndInterval) {
  auto stmt = ParseSql(
                  "select 1 from t where d >= date '1994-01-01' "
                  "and d < date '1994-01-01' + interval '1' year")
                  .ValueOrDie();
  const auto& plus = stmt->where->args[1]->args[1];
  EXPECT_EQ(plus->name, "+");
  EXPECT_EQ(plus->args[0]->kind, AstKind::kDateLiteral);
  EXPECT_EQ(plus->args[1]->kind, AstKind::kIntervalLiteral);
  EXPECT_EQ(plus->args[1]->ival, 1);
  EXPECT_EQ(plus->args[1]->text, "year");
}

TEST(ParserTest, SubqueryForms) {
  auto stmt = ParseSql(
                  "select 1 from t where exists (select 1 from u) "
                  "and x in (select y from v) "
                  "and z > (select max(w) from q) "
                  "and not exists (select 1 from r)")
                  .ValueOrDie();
  std::vector<AstExprPtr> conjuncts;
  std::function<void(const AstExprPtr&)> split = [&](const AstExprPtr& e) {
    if (e->kind == AstKind::kBinary && e->name == "and") {
      split(e->args[0]);
      split(e->args[1]);
    } else {
      conjuncts.push_back(e);
    }
  };
  split(stmt->where);
  ASSERT_EQ(conjuncts.size(), 4u);
  EXPECT_EQ(conjuncts[0]->kind, AstKind::kExists);
  EXPECT_FALSE(conjuncts[0]->negated);
  EXPECT_EQ(conjuncts[1]->kind, AstKind::kInSubquery);
  EXPECT_EQ(conjuncts[2]->args[1]->kind, AstKind::kScalarSubquery);
  EXPECT_EQ(conjuncts[3]->kind, AstKind::kExists);
  EXPECT_TRUE(conjuncts[3]->negated);
}

TEST(ParserTest, JoinsAndDerivedTables) {
  auto stmt = ParseSql(
                  "select 1 from customer left outer join orders on "
                  "c_custkey = o_custkey and o_comment not like '%x%', "
                  "(select a from s) as derived")
                  .ValueOrDie();
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0]->kind, FromKind::kJoin);
  EXPECT_TRUE(stmt->from[0]->left_outer);
  EXPECT_EQ(stmt->from[1]->kind, FromKind::kSubquery);
  EXPECT_EQ(stmt->from[1]->alias, "derived");
}

TEST(ParserTest, TableAliases) {
  auto stmt = ParseSql("select n1.n_name from nation n1, nation as n2").ValueOrDie();
  EXPECT_EQ(stmt->from[0]->alias, "n1");
  EXPECT_EQ(stmt->from[1]->alias, "n2");
  EXPECT_EQ(stmt->items[0].expr->name, "n1");
  EXPECT_EQ(stmt->items[0].expr->text, "n_name");
}

TEST(ParserTest, GroupOrderHavingLimit) {
  auto stmt = ParseSql(
                  "select a, sum(b) s from t group by a having sum(b) > 10 "
                  "order by s desc, a limit 7")
                  .ValueOrDie();
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  EXPECT_EQ(stmt->limit, 7);
}

TEST(ParserTest, WithClause) {
  auto stmt = ParseSql(
                  "with r as (select a from t), s as (select b from u) "
                  "select 1 from r, s")
                  .ValueOrDie();
  ASSERT_EQ(stmt->ctes.size(), 2u);
  EXPECT_EQ(stmt->ctes[0].name, "r");
  EXPECT_EQ(stmt->ctes[1].name, "s");
}

TEST(ParserTest, CaseSubstringExtract) {
  auto stmt = ParseSql(
                  "select case when a = 1 then 'x' else 'y' end, "
                  "substring(p from 1 for 2), substring(p, 3, 4), "
                  "extract(year from d) from t")
                  .ValueOrDie();
  EXPECT_EQ(stmt->items[0].expr->kind, AstKind::kCase);
  EXPECT_EQ(stmt->items[0].expr->args.size(), 3u);
  EXPECT_EQ(stmt->items[1].expr->kind, AstKind::kSubstring);
  EXPECT_EQ(stmt->items[2].expr->kind, AstKind::kSubstring);
  EXPECT_EQ(stmt->items[3].expr->kind, AstKind::kExtractYear);
}

TEST(ParserTest, CountDistinct) {
  auto stmt = ParseSql("select count(distinct x) from t").ValueOrDie();
  EXPECT_TRUE(stmt->items[0].expr->distinct);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("select").ok());
  EXPECT_FALSE(ParseSql("select 1 from").ok());
  EXPECT_FALSE(ParseSql("select 1 from t where").ok());
  EXPECT_FALSE(ParseSql("select 1 from t limit x").ok());
  EXPECT_FALSE(ParseSql("select case when a then end from t").ok());
  EXPECT_FALSE(ParseSql("select 1 from t; garbage").ok());
}

TEST(ParserTest, All22TpchQueriesParse) {
  for (int q = 1; q <= 22; ++q) {
    EXPECT_TRUE(ParseSql(tpch::Query(q)).ok()) << "Q" << q;
  }
}

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = format::Table::Make(
                 format::Schema({{"a", format::Int64()},
                                 {"b", format::Int64()},
                                 {"s", format::String()}}),
                 {Column::FromInt64({1, 2, 3}), Column::FromInt64({10, 20, 30}),
                  Column::FromStrings({"x", "y", "z"})})
                 .ValueOrDie();
    SIRIUS_CHECK_OK(catalog_.CreateTable("t", t));
    auto u = format::Table::Make(
                 format::Schema({{"k", format::Int64()}, {"v", format::Int64()}}),
                 {Column::FromInt64({1, 2}), Column::FromInt64({5, 6})})
                 .ValueOrDie();
    SIRIUS_CHECK_OK(catalog_.CreateTable("u", u));
  }

  PlanPtr Bind(const std::string& sql) {
    auto r = SqlToPlan(sql, catalog_);
    SIRIUS_CHECK_OK(r.status());
    SIRIUS_CHECK_OK(r.ValueOrDie()->Validate());
    return r.ValueOrDie();
  }

  static int CountNodes(const plan::PlanNode& n, PlanKind kind) {
    int count = n.kind == kind ? 1 : 0;
    for (const auto& c : n.children) count += CountNodes(*c, kind);
    return count;
  }
  static const plan::PlanNode* FindNode(const plan::PlanNode& n, PlanKind kind) {
    if (n.kind == kind) return &n;
    for (const auto& c : n.children) {
      if (const auto* f = FindNode(*c, kind)) return f;
    }
    return nullptr;
  }

  host::Catalog catalog_;
};

TEST_F(BinderTest, SimpleProjection) {
  auto p = Bind("select a, b + 1 as c from t");
  EXPECT_EQ(p->output_schema.num_fields(), 2u);
  EXPECT_EQ(p->output_schema.field(0).name, "a");
  EXPECT_EQ(p->output_schema.field(1).name, "c");
}

TEST_F(BinderTest, StarExpansion) {
  auto p = Bind("select * from t");
  EXPECT_EQ(p->output_schema.num_fields(), 3u);
  EXPECT_EQ(p->output_schema.field(2).name, "s");
}

TEST_F(BinderTest, WhereBecomesFilter) {
  auto p = Bind("select a from t where b > 15");
  EXPECT_EQ(CountNodes(*p, PlanKind::kFilter), 1);
}

TEST_F(BinderTest, CommaJoinBecomesCrossThenOptimizable) {
  auto p = Bind("select a, v from t, u where a = k");
  EXPECT_GE(CountNodes(*p, PlanKind::kJoin), 1);
}

TEST_F(BinderTest, AggregateShape) {
  auto p = Bind("select a, sum(b) as s, count(*) as c from t group by a");
  const auto* agg = FindNode(*p, PlanKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->group_by.size(), 1u);
  ASSERT_EQ(agg->aggregates.size(), 2u);
  EXPECT_EQ(agg->aggregates[0].func, plan::AggFunc::kSum);
  EXPECT_EQ(agg->aggregates[1].func, plan::AggFunc::kCountStar);
}

TEST_F(BinderTest, AggregateDedupByRendering) {
  auto p = Bind("select sum(b), sum(b) + 1 from t");
  const auto* agg = FindNode(*p, PlanKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->aggregates.size(), 1u);  // sum(b) computed once
}

TEST_F(BinderTest, ColumnNotInGroupByRejected) {
  auto r = SqlToPlan("select a, b from t group by a", catalog_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, GroupByExpression) {
  auto p = Bind("select a + 1, count(*) from t group by a + 1");
  const auto* agg = FindNode(*p, PlanKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->group_by.size(), 1u);
}

TEST_F(BinderTest, HavingBecomesFilterAboveAggregate) {
  auto p = Bind("select a, sum(b) s from t group by a having sum(b) > 10");
  const auto* filter = FindNode(*p, PlanKind::kFilter);
  const auto* agg = FindNode(*p, PlanKind::kAggregate);
  ASSERT_NE(filter, nullptr);
  ASSERT_NE(agg, nullptr);
  EXPECT_NE(FindNode(*filter, PlanKind::kAggregate), nullptr);
}

TEST_F(BinderTest, OrderByAliasAndOrdinal) {
  auto p1 = Bind("select a, b as bb from t order by bb desc");
  const auto* s1 = FindNode(*p1, PlanKind::kSort);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->sort_keys[0].column, 1);
  EXPECT_TRUE(s1->sort_keys[0].descending);

  auto p2 = Bind("select a, b from t order by 2");
  const auto* s2 = FindNode(*p2, PlanKind::kSort);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->sort_keys[0].column, 1);
}

TEST_F(BinderTest, OrderByHiddenColumnDropped) {
  auto p = Bind("select a from t order by b");
  EXPECT_EQ(p->output_schema.num_fields(), 1u);
  EXPECT_NE(FindNode(*p, PlanKind::kSort), nullptr);
}

TEST_F(BinderTest, DistinctAndLimit) {
  auto p = Bind("select distinct a from t limit 2");
  EXPECT_EQ(CountNodes(*p, PlanKind::kDistinct), 1);
  EXPECT_EQ(CountNodes(*p, PlanKind::kLimit), 1);
}

TEST_F(BinderTest, InSubqueryBecomesSemiJoin) {
  auto p = Bind("select a from t where a in (select k from u)");
  const auto* join = FindNode(*p, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_type, plan::JoinType::kSemi);
}

TEST_F(BinderTest, NotInSubqueryBecomesAntiJoin) {
  auto p = Bind("select a from t where a not in (select k from u)");
  const auto* join = FindNode(*p, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_type, plan::JoinType::kAnti);
}

TEST_F(BinderTest, CorrelatedExistsBecomesSemiJoin) {
  auto p = Bind("select a from t where exists (select * from u where k = a)");
  const auto* join = FindNode(*p, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_type, plan::JoinType::kSemi);
  EXPECT_EQ(join->left_keys.size(), 1u);
}

TEST_F(BinderTest, CorrelatedExistsWithResidual) {
  auto p = Bind(
      "select a from t where not exists "
      "(select * from u where k = a and v <> b)");
  const auto* join = FindNode(*p, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_type, plan::JoinType::kAnti);
  EXPECT_NE(join->residual, nullptr);
}

TEST_F(BinderTest, UncorrelatedScalarSubqueryCrossJoin) {
  auto p = Bind("select a from t where b > (select max(v) from u)");
  bool has_cross = false;
  std::function<void(const plan::PlanNode&)> walk = [&](const plan::PlanNode& n) {
    if (n.kind == PlanKind::kJoin && n.join_type == plan::JoinType::kCross) {
      has_cross = true;
    }
    for (const auto& c : n.children) walk(*c);
  };
  walk(*p);
  EXPECT_TRUE(has_cross);
  EXPECT_EQ(p->output_schema.num_fields(), 1u);  // projected back
}

TEST_F(BinderTest, CorrelatedAggSubqueryBecomesGroupJoin) {
  auto p = Bind(
      "select a from t where b < (select sum(v) from u where k = a)");
  // Shape: Aggregate below an inner join, comparison filter above.
  const auto* agg = FindNode(*p, PlanKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->group_by.size(), 1u);
  const auto* join = FindNode(*p, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
}

TEST_F(BinderTest, CteBindsLikeTable) {
  auto p = Bind("with w as (select a as x from t) select x from w where x > 1");
  EXPECT_EQ(p->output_schema.field(0).name, "x");
}

TEST_F(BinderTest, QualifiedAmbiguityResolution) {
  auto p = Bind("select t1.a from t t1, t t2 where t1.a = t2.b");
  EXPECT_EQ(p->output_schema.num_fields(), 1u);
  // Unqualified ambiguous reference must fail.
  auto r = SqlToPlan("select a from t t1, t t2", catalog_);
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_FALSE(SqlToPlan("select 1 from nope", catalog_).ok());
  EXPECT_FALSE(SqlToPlan("select zzz from t", catalog_).ok());
}

TEST_F(BinderTest, All22TpchQueriesBindAndValidate) {
  host::Catalog tpch_catalog;
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.001));
  for (int q = 1; q <= 22; ++q) {
    auto r = SqlToPlan(tpch::Query(q), db.catalog());
    ASSERT_TRUE(r.ok()) << "Q" << q << ": " << r.status().ToString();
    EXPECT_TRUE(r.ValueOrDie()->Validate().ok()) << "Q" << q;
  }
}

}  // namespace
}  // namespace sirius::sql
