// Unit tests for the GDF kernel library (the libcudf-equivalent layer):
// row ops, copying, filter, joins, group-by, sort, partition.

#include <gtest/gtest.h>

#include "format/builder.h"
#include "gdf/copying.h"
#include "gdf/filter.h"
#include "gdf/groupby.h"
#include "gdf/join.h"
#include "gdf/partition.h"
#include "gdf/row_ops.h"
#include "gdf/sort.h"

namespace sirius::gdf {
namespace {

using format::Column;
using format::ColumnPtr;
using format::Schema;
using format::Table;
using format::TablePtr;

Context Ctx() {
  Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

TablePtr MakeTable(std::vector<format::Field> fields,
                   std::vector<ColumnPtr> cols) {
  return Table::Make(Schema(std::move(fields)), std::move(cols)).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Row ops
// ---------------------------------------------------------------------------

TEST(RowOpsTest, HashIsConsistentAcrossTypes) {
  auto ints = Column::FromInt64({1, 2, 1});
  RowOps ops({ints});
  EXPECT_EQ(ops.Hash(0), ops.Hash(2));
  EXPECT_NE(ops.Hash(0), ops.Hash(1));
}

TEST(RowOpsTest, MultiKeyHashCombinesInOrder) {
  auto a = Column::FromInt64({1, 2});
  auto b = Column::FromInt64({2, 1});
  RowOps ab({a, b});
  // (1,2) vs (2,1) must hash differently.
  EXPECT_NE(ab.Hash(0), ab.Hash(1));
}

TEST(RowOpsTest, NullSemantics) {
  auto c = Column::FromInt64({1, 1}, {true, false});
  RowOps ops({c});
  EXPECT_FALSE(ops.AnyNull(0));
  EXPECT_TRUE(ops.AnyNull(1));
  // NULL == NULL under group-by semantics.
  EXPECT_TRUE(ops.EqualsNullEqual(1, ops, 1));
  EXPECT_FALSE(ops.EqualsNullEqual(0, ops, 1));
}

TEST(RowOpsTest, CompareOrdersNullsLast) {
  auto c = Column::FromInt64({5, 3, 0}, {true, true, false});
  RowOps ops({c});
  std::vector<bool> asc;
  EXPECT_GT(ops.Compare(0, 1, asc), 0);  // 5 > 3
  EXPECT_LT(ops.Compare(1, 0, asc), 0);
  EXPECT_GT(ops.Compare(2, 0, asc), 0);  // NULL last
  std::vector<bool> desc{true};
  EXPECT_LT(ops.Compare(0, 1, desc), 0);  // descending flips values...
  EXPECT_GT(ops.Compare(2, 0, desc), 0);  // ...but NULL stays last
}

TEST(RowOpsTest, ValueCompareStrings) {
  auto c = Column::FromStrings({"apple", "banana", "apple"});
  EXPECT_LT(ValueCompare(*c, 0, *c, 1), 0);
  EXPECT_GT(ValueCompare(*c, 1, *c, 0), 0);
  EXPECT_EQ(ValueCompare(*c, 0, *c, 2), 0);
}

TEST(RowOpsTest, ValueEqualsAcrossColumns) {
  auto a = Column::FromDecimal({100, 200}, 2);
  auto b = Column::FromDecimal({100, 300}, 2);
  EXPECT_TRUE(ValueEquals(*a, 0, *b, 0, false));
  EXPECT_FALSE(ValueEquals(*a, 1, *b, 1, false));
}

// ---------------------------------------------------------------------------
// Copying kernels
// ---------------------------------------------------------------------------

TEST(GatherTest, FixedWidthAndStrings) {
  auto t = MakeTable({{"i", format::Int64()}, {"s", format::String()}},
                     {Column::FromInt64({10, 20, 30}),
                      Column::FromStrings({"a", "bb", "ccc"})});
  auto ctx = Ctx();
  auto out = GatherTable(ctx, t, {2, 0, 2}).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->column(0)->data<int64_t>()[0], 30);
  EXPECT_EQ(out->column(0)->data<int64_t>()[1], 10);
  EXPECT_EQ(out->column(1)->StringAt(0), "ccc");
  EXPECT_EQ(out->column(1)->StringAt(2), "ccc");
}

TEST(GatherTest, OutOfBoundsRejected) {
  auto c = Column::FromInt64({1, 2});
  auto ctx = Ctx();
  EXPECT_FALSE(GatherColumn(ctx, c, {0, 5}).ok());
  EXPECT_FALSE(GatherColumn(ctx, c, {-1}).ok());
}

TEST(GatherTest, NegativeIndexProducesNull) {
  auto c = Column::FromInt64({1, 2});
  auto ctx = Ctx();
  auto out = GatherColumnWithNulls(ctx, c, {1, -1, 0}).ValueOrDie();
  EXPECT_FALSE(out->IsNull(0));
  EXPECT_TRUE(out->IsNull(1));
  EXPECT_EQ(out->data<int64_t>()[0], 2);
  EXPECT_EQ(out->null_count(), 1u);
}

TEST(GatherTest, PropagatesSourceNulls) {
  auto c = Column::FromInt64({1, 2, 3}, {true, false, true});
  auto ctx = Ctx();
  auto out = GatherColumn(ctx, c, {1, 2}).ValueOrDie();
  EXPECT_TRUE(out->IsNull(0));
  EXPECT_FALSE(out->IsNull(1));
}

TEST(GatherTest, ChargesCostModel) {
  sim::Timeline t;
  Context ctx = Ctx();
  ctx.sim.device = sim::Gh200Gpu();
  ctx.sim.timeline = &t;
  auto c = Column::FromInt64({1, 2, 3, 4});
  (void)GatherColumn(ctx, c, {0, 1, 2, 3}).ValueOrDie();
  EXPECT_GT(t.total_seconds(), 0.0);
}

TEST(ConcatTest, StacksTables) {
  auto t1 = MakeTable({{"i", format::Int64()}}, {Column::FromInt64({1, 2})});
  auto t2 = MakeTable({{"i", format::Int64()}}, {Column::FromInt64({3})});
  auto ctx = Ctx();
  auto out = ConcatTables(ctx, {t1, t2}).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->column(0)->data<int64_t>()[2], 3);
}

TEST(ConcatTest, SchemaMismatchRejected) {
  auto t1 = MakeTable({{"i", format::Int64()}}, {Column::FromInt64({1})});
  auto t2 = MakeTable({{"s", format::String()}}, {Column::FromStrings({"x"})});
  auto ctx = Ctx();
  EXPECT_FALSE(ConcatTables(ctx, {t1, t2}).ok());
}

TEST(SliceTest, OffsetAndClamping) {
  auto t = MakeTable({{"i", format::Int64()}},
                     {Column::FromInt64({1, 2, 3, 4, 5})});
  auto ctx = Ctx();
  auto out = SliceTable(ctx, t, 1, 2).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->column(0)->data<int64_t>()[0], 2);
  // Length clamps at the end; offset past the end yields zero rows.
  EXPECT_EQ(SliceTable(ctx, t, 3, 100).ValueOrDie()->num_rows(), 2u);
  EXPECT_EQ(SliceTable(ctx, t, 9, 1).ValueOrDie()->num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

TEST(FilterTest, MaskSelectsTrueRows) {
  auto t = MakeTable({{"i", format::Int64()}},
                     {Column::FromInt64({10, 20, 30, 40})});
  auto mask = Column::FromBool({true, false, true, false});
  auto ctx = Ctx();
  auto out = ApplyBooleanMask(ctx, t, mask).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->column(0)->data<int64_t>()[1], 30);
}

TEST(FilterTest, NullMaskEntriesAreFalse) {
  auto t = MakeTable({{"i", format::Int64()}}, {Column::FromInt64({1, 2, 3})});
  format::ColumnBuilder b(format::Bool());
  b.AppendBool(true);
  b.AppendNull();
  b.AppendBool(true);
  auto ctx = Ctx();
  auto out = ApplyBooleanMask(ctx, t, b.Finish()).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2u);
}

TEST(FilterTest, TypeAndLengthChecked) {
  auto t = MakeTable({{"i", format::Int64()}}, {Column::FromInt64({1})});
  auto ctx = Ctx();
  EXPECT_FALSE(ApplyBooleanMask(ctx, t, Column::FromInt64({1})).ok());
  EXPECT_FALSE(ApplyBooleanMask(ctx, t, Column::FromBool({true, false})).ok());
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

TEST(JoinTest, InnerWithDuplicates) {
  auto left = Column::FromInt64({1, 2, 2, 3});
  auto right = Column::FromInt64({2, 2, 4});
  auto ctx = Ctx();
  JoinOptions options;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  // left rows 1 and 2 each match both right rows 0 and 1 -> 4 pairs.
  EXPECT_EQ(r.left_indices.size(), 4u);
  for (size_t i = 0; i < r.left_indices.size(); ++i) {
    EXPECT_EQ(left->data<int64_t>()[r.left_indices[i]],
              right->data<int64_t>()[r.right_indices[i]]);
  }
}

TEST(JoinTest, NullKeysNeverMatch) {
  auto left = Column::FromInt64({1, 2}, {true, false});
  auto right = Column::FromInt64({1, 2}, {true, false});
  auto ctx = Ctx();
  JoinOptions options;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  ASSERT_EQ(r.left_indices.size(), 1u);
  EXPECT_EQ(r.left_indices[0], 0);
  EXPECT_EQ(r.right_indices[0], 0);
}

TEST(JoinTest, LeftOuterEmitsUnmatched) {
  auto left = Column::FromInt64({1, 5});
  auto right = Column::FromInt64({1});
  auto ctx = Ctx();
  JoinOptions options;
  options.type = JoinType::kLeft;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  ASSERT_EQ(r.left_indices.size(), 2u);
  bool saw_unmatched = false;
  for (size_t i = 0; i < r.left_indices.size(); ++i) {
    if (r.right_indices[i] < 0) {
      saw_unmatched = true;
      EXPECT_EQ(left->data<int64_t>()[r.left_indices[i]], 5);
    }
  }
  EXPECT_TRUE(saw_unmatched);
}

TEST(JoinTest, SemiEmitsEachLeftRowOnce) {
  auto left = Column::FromInt64({1, 2, 3});
  auto right = Column::FromInt64({2, 2, 2, 3});
  auto ctx = Ctx();
  JoinOptions options;
  options.type = JoinType::kSemi;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  EXPECT_EQ(r.left_indices, (std::vector<index_t>{1, 2}));
  EXPECT_TRUE(r.right_indices.empty());
}

TEST(JoinTest, AntiEmitsNonMatching) {
  auto left = Column::FromInt64({1, 2, 3});
  auto right = Column::FromInt64({2});
  auto ctx = Ctx();
  JoinOptions options;
  options.type = JoinType::kAnti;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  EXPECT_EQ(r.left_indices, (std::vector<index_t>{0, 2}));
}

TEST(JoinTest, AntiKeepsNullKeyRows) {
  // NOT EXISTS semantics: a NULL key never matches, so the row survives.
  auto left = Column::FromInt64({1, 0}, {true, false});
  auto right = Column::FromInt64({1});
  auto ctx = Ctx();
  JoinOptions options;
  options.type = JoinType::kAnti;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  EXPECT_EQ(r.left_indices, (std::vector<index_t>{1}));
}

TEST(JoinTest, MultiKeyJoin) {
  auto l1 = Column::FromInt64({1, 1, 2});
  auto l2 = Column::FromInt64({10, 20, 10});
  auto r1 = Column::FromInt64({1, 2});
  auto r2 = Column::FromInt64({20, 10});
  auto ctx = Ctx();
  JoinOptions options;
  auto r = HashJoin(ctx, {l1, l2}, {r1, r2}, options).ValueOrDie();
  ASSERT_EQ(r.left_indices.size(), 2u);  // (1,20) and (2,10)
}

TEST(JoinTest, StringKeys) {
  auto left = Column::FromStrings({"x", "y", "z"});
  auto right = Column::FromStrings({"y", "q"});
  auto ctx = Ctx();
  JoinOptions options;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  ASSERT_EQ(r.left_indices.size(), 1u);
  EXPECT_EQ(r.left_indices[0], 1);
}

TEST(JoinTest, ResidualPredicateFiltersPairs) {
  // Q21 pattern: equi-join on key with l.v <> r.v residual.
  auto lk = Column::FromInt64({1, 1});
  auto lv = Column::FromInt64({7, 8});
  auto rk = Column::FromInt64({1});
  auto rv = Column::FromInt64({7});
  auto left = MakeTable({{"k", format::Int64()}, {"v", format::Int64()}}, {lk, lv});
  auto right = MakeTable({{"k", format::Int64()}, {"v", format::Int64()}}, {rk, rv});
  // residual over combined schema: left.v (#1) <> right.v (#3)
  auto residual = expr::Ne(expr::ColIdx(1, format::Int64()),
                           expr::ColIdx(3, format::Int64()));
  format::Schema combined({{"k", format::Int64()},
                           {"v", format::Int64()},
                           {"k2", format::Int64()},
                           {"v2", format::Int64()}});
  SIRIUS_CHECK_OK(expr::Bind(residual, combined));
  auto ctx = Ctx();
  JoinOptions options;
  options.residual = residual.get();
  options.left_table = left;
  options.right_table = right;
  auto inner = HashJoin(ctx, {lk}, {rk}, options).ValueOrDie();
  ASSERT_EQ(inner.left_indices.size(), 1u);
  EXPECT_EQ(inner.left_indices[0], 1);  // only v=8 survives <>7

  options.type = JoinType::kAnti;
  auto anti = HashJoin(ctx, {lk}, {rk}, options).ValueOrDie();
  EXPECT_EQ(anti.left_indices, (std::vector<index_t>{0}));  // v=7 fails residual
}

TEST(JoinTest, CrossJoinAllPairs) {
  auto ctx = Ctx();
  auto r = CrossJoin(ctx, 2, 3).ValueOrDie();
  EXPECT_EQ(r.left_indices.size(), 6u);
  EXPECT_EQ(r.left_indices[0], 0);
  EXPECT_EQ(r.right_indices[5], 2);
}

TEST(JoinTest, EmptyInputs) {
  auto left = Column::FromInt64({});
  auto right = Column::FromInt64({1, 2});
  auto ctx = Ctx();
  JoinOptions options;
  auto r = HashJoin(ctx, {left}, {right}, options).ValueOrDie();
  EXPECT_TRUE(r.left_indices.empty());
  auto r2 = HashJoin(ctx, {right}, {left}, options).ValueOrDie();
  EXPECT_TRUE(r2.left_indices.empty());
}

TEST(JoinTest, KeyCountMismatchRejected) {
  auto a = Column::FromInt64({1});
  auto ctx = Ctx();
  JoinOptions options;
  EXPECT_FALSE(HashJoin(ctx, {a, a}, {a}, options).ok());
  EXPECT_FALSE(HashJoin(ctx, {}, {}, options).ok());
}

// ---------------------------------------------------------------------------
// Group-by
// ---------------------------------------------------------------------------

TablePtr ValuesTable() {
  return MakeTable(
      {{"v", format::Int64()}, {"d", format::Decimal(2)}},
      {Column::FromInt64({1, 2, 3, 4, 5}),
       Column::FromDecimal({100, 200, 300, 400, 500}, 2)});
}

TEST(GroupByTest, SumCountMinMaxAvg) {
  auto keys = Column::FromInt64({1, 1, 2, 2, 2});
  auto values = ValuesTable();
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kSum, 0, "s"},
                               {AggKind::kCountStar, -1, "c"},
                               {AggKind::kMin, 0, "mn"},
                               {AggKind::kMax, 0, "mx"},
                               {AggKind::kAvg, 0, "a"}};
  auto out = GroupByAggregate(ctx, {keys}, {"k"}, values, aggs).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2u);
  // Group 1: rows {1,2}; group 2: rows {3,4,5} (first-seen order).
  EXPECT_EQ(out->ColumnByName("s")->data<int64_t>()[0], 3);
  EXPECT_EQ(out->ColumnByName("s")->data<int64_t>()[1], 12);
  EXPECT_EQ(out->ColumnByName("c")->data<int64_t>()[1], 3);
  EXPECT_EQ(out->ColumnByName("mn")->data<int64_t>()[1], 3);
  EXPECT_EQ(out->ColumnByName("mx")->data<int64_t>()[1], 5);
  EXPECT_DOUBLE_EQ(out->ColumnByName("a")->data<double>()[1], 4.0);
}

TEST(GroupByTest, DecimalSumKeepsScale) {
  auto keys = Column::FromInt64({1, 1, 2, 2, 2});
  auto values = ValuesTable();
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kSum, 1, "s"}};
  auto out = GroupByAggregate(ctx, {keys}, {"k"}, values, aggs);
  ASSERT_TRUE(out.ok());
  auto t = out.ValueOrDie();
  EXPECT_EQ(t->ColumnByName("s")->type(), format::Decimal(2));
  EXPECT_EQ(t->ColumnByName("s")->data<int64_t>()[0], 300);   // 1.00+2.00
  EXPECT_EQ(t->ColumnByName("s")->data<int64_t>()[1], 1200);  // 3+4+5
}

TEST(GroupByTest, CountSkipsNulls) {
  auto keys = Column::FromInt64({1, 1, 1});
  auto vals = MakeTable({{"v", format::Int64()}},
                        {Column::FromInt64({1, 2, 3}, {true, false, true})});
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kCount, 0, "c"},
                               {AggKind::kCountStar, -1, "cs"},
                               {AggKind::kSum, 0, "s"}};
  auto out = GroupByAggregate(ctx, {keys}, {"k"}, vals, aggs).ValueOrDie();
  EXPECT_EQ(out->ColumnByName("c")->data<int64_t>()[0], 2);
  EXPECT_EQ(out->ColumnByName("cs")->data<int64_t>()[0], 3);
  EXPECT_EQ(out->ColumnByName("s")->data<int64_t>()[0], 4);  // nulls skipped
}

TEST(GroupByTest, NullKeysFormTheirOwnGroup) {
  auto keys = Column::FromInt64({1, 0, 0}, {true, false, false});
  auto vals = MakeTable({{"v", format::Int64()}}, {Column::FromInt64({1, 2, 3})});
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kSum, 0, "s"}};
  auto out = GroupByAggregate(ctx, {keys}, {"k"}, vals, aggs).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2u);  // group {1} and group {NULL, NULL}
}

TEST(GroupByTest, StringKeysUseSortPathSameResults) {
  auto keys = Column::FromStrings({"b", "a", "b", "a"});
  auto vals = MakeTable({{"v", format::Int64()}},
                        {Column::FromInt64({1, 2, 3, 4})});
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kSum, 0, "s"}};
  auto out = GroupByAggregate(ctx, {keys}, {"k"}, vals, aggs).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2u);
  // Sort path: groups come out in key order (a before b).
  EXPECT_EQ(out->ColumnByName("k")->StringAt(0), "a");
  EXPECT_EQ(out->ColumnByName("s")->data<int64_t>()[0], 6);
  EXPECT_EQ(out->ColumnByName("s")->data<int64_t>()[1], 4);
}

TEST(GroupByTest, StringSortPathCostsMoreThanHash) {
  const size_t n = 4096;
  format::ColumnBuilder sb(format::String());
  format::ColumnBuilder ib(format::Int64());
  format::ColumnBuilder vb(format::Int64());
  for (size_t i = 0; i < n; ++i) {
    sb.AppendString("k" + std::to_string(i % 64));
    ib.AppendInt(static_cast<int64_t>(i % 64));
    vb.AppendInt(1);
  }
  auto vals = MakeTable({{"v", format::Int64()}}, {vb.Finish()});
  std::vector<AggRequest> aggs{{AggKind::kSum, 0, "s"}};

  sim::Timeline t_str, t_int;
  Context cs = Ctx(), ci = Ctx();
  cs.sim.device = sim::Gh200Gpu();
  cs.sim.timeline = &t_str;
  ci.sim.device = sim::Gh200Gpu();
  ci.sim.timeline = &t_int;
  (void)GroupByAggregate(cs, {sb.Finish()}, {"k"}, vals, aggs).ValueOrDie();
  (void)GroupByAggregate(ci, {ib.Finish()}, {"k"}, vals, aggs).ValueOrDie();
  EXPECT_GT(t_str.seconds(sim::OpCategory::kGroupBy),
            t_int.seconds(sim::OpCategory::kGroupBy));
}

TEST(GroupByTest, CountDistinctIntAndString) {
  auto keys = Column::FromInt64({1, 1, 1, 2});
  auto vals = MakeTable({{"i", format::Int64()}, {"s", format::String()}},
                        {Column::FromInt64({5, 5, 7, 5}),
                         Column::FromStrings({"x", "x", "y", "x"})});
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kCountDistinct, 0, "di"},
                               {AggKind::kCountDistinct, 1, "ds"}};
  auto out = GroupByAggregate(ctx, {keys}, {"k"}, vals, aggs).ValueOrDie();
  EXPECT_EQ(out->ColumnByName("di")->data<int64_t>()[0], 2);
  EXPECT_EQ(out->ColumnByName("ds")->data<int64_t>()[0], 2);
  EXPECT_EQ(out->ColumnByName("di")->data<int64_t>()[1], 1);
}

TEST(GroupByTest, GlobalAggregateAlwaysOneRow) {
  auto vals = MakeTable({{"v", format::Int64()}}, {Column::FromInt64({1, 2, 3})});
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kSum, 0, "s"}};
  auto out = GroupByAggregate(ctx, {}, {}, vals, aggs).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->column(0)->data<int64_t>()[0], 6);

  // Empty input: one row, NULL sum, 0 counts (SQL semantics).
  auto empty = MakeTable({{"v", format::Int64()}}, {Column::FromInt64({})});
  std::vector<AggRequest> aggs2{{AggKind::kSum, 0, "s"},
                                {AggKind::kCountStar, -1, "c"}};
  auto out2 = GroupByAggregate(ctx, {}, {}, empty, aggs2).ValueOrDie();
  ASSERT_EQ(out2->num_rows(), 1u);
  EXPECT_TRUE(out2->column(0)->IsNull(0));
  EXPECT_EQ(out2->column(1)->data<int64_t>()[0], 0);
}

TEST(GroupByTest, GroupedEmptyInputYieldsNoRows) {
  auto keys = Column::FromInt64({});
  auto vals = MakeTable({{"v", format::Int64()}}, {Column::FromInt64({})});
  auto ctx = Ctx();
  std::vector<AggRequest> aggs{{AggKind::kSum, 0, "s"}};
  auto out = GroupByAggregate(ctx, {keys}, {"k"}, vals, aggs).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST(GroupByTest, FewGroupsContentionOnlyOnGpu) {
  const size_t n = 100000;
  format::ColumnBuilder kb(format::Int64());
  format::ColumnBuilder vb(format::Int64());
  for (size_t i = 0; i < n; ++i) {
    kb.AppendInt(static_cast<int64_t>(i % 4));
    vb.AppendInt(1);
  }
  auto keys = kb.Finish();
  auto vals = MakeTable({{"v", format::Int64()}}, {vb.Finish()});
  std::vector<AggRequest> aggs{{AggKind::kSum, 0, "s"}};

  sim::Timeline gpu_t, cpu_t;
  Context gpu = Ctx(), cpu = Ctx();
  gpu.sim.device = sim::Gh200Gpu();
  gpu.sim.timeline = &gpu_t;
  cpu.sim.device = sim::M7i16xlarge();
  cpu.sim.timeline = &cpu_t;
  (void)GroupByAggregate(gpu, {keys}, {"k"}, vals, aggs).ValueOrDie();
  (void)GroupByAggregate(cpu, {keys}, {"k"}, vals, aggs).ValueOrDie();
  // With 4 groups the GPU pays contention; per-byte it should lose more of
  // its bandwidth advantage than the raw 10x ratio suggests.
  double gpu_s = gpu_t.seconds(sim::OpCategory::kGroupBy);
  double cpu_s = cpu_t.seconds(sim::OpCategory::kGroupBy);
  EXPECT_GT(gpu_s, 0.0);
  EXPECT_LT(cpu_s / gpu_s, 10.0);
}

TEST(DistinctTest, FirstOccurrenceOrder) {
  auto c = Column::FromInt64({3, 1, 3, 2, 1});
  auto ctx = Ctx();
  auto idx = DistinctIndices(ctx, {c}).ValueOrDie();
  EXPECT_EQ(idx, (std::vector<index_t>{0, 1, 3}));
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

TEST(SortTest, AscendingDescendingStable) {
  auto k1 = Column::FromInt64({2, 1, 2, 1});
  auto k2 = Column::FromStrings({"b", "x", "a", "y"});
  auto ctx = Ctx();
  auto asc = SortIndices(ctx, {k1}).ValueOrDie();
  // stable: ties keep original order
  EXPECT_EQ(asc, (std::vector<index_t>{1, 3, 0, 2}));
  auto both = SortIndices(ctx, {k1, k2}, {false, true}).ValueOrDie();
  // k1 asc, k2 desc: (1,"y"), (1,"x"), (2,"b"), (2,"a")
  EXPECT_EQ(both, (std::vector<index_t>{3, 1, 0, 2}));
}

TEST(SortTest, NullsSortLast) {
  auto c = Column::FromInt64({5, 0, 1}, {true, false, true});
  auto ctx = Ctx();
  auto asc = SortIndices(ctx, {c}).ValueOrDie();
  EXPECT_EQ(asc, (std::vector<index_t>{2, 0, 1}));
  auto desc = SortIndices(ctx, {c}, {true}).ValueOrDie();
  EXPECT_EQ(desc, (std::vector<index_t>{0, 2, 1}));
}

TEST(SortTest, SortTableGathersAllColumns) {
  auto t = MakeTable({{"k", format::Int64()}, {"v", format::String()}},
                     {Column::FromInt64({3, 1, 2}),
                      Column::FromStrings({"c", "a", "b"})});
  auto ctx = Ctx();
  auto out = SortTable(ctx, t, {0}).ValueOrDie();
  EXPECT_EQ(out->column(1)->StringAt(0), "a");
  EXPECT_EQ(out->column(1)->StringAt(2), "c");
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

TEST(PartitionTest, UnionOfPartsEqualsInput) {
  format::ColumnBuilder kb(format::Int64());
  for (int i = 0; i < 1000; ++i) kb.AppendInt(i * 37 % 101);
  auto t = MakeTable({{"k", format::Int64()}}, {kb.Finish()});
  auto ctx = Ctx();
  auto parts = HashPartition(ctx, t, {0}, 4).ValueOrDie();
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (const auto& p : parts) total += p->num_rows();
  EXPECT_EQ(total, 1000u);
  auto glued = ConcatTables(ctx, parts).ValueOrDie();
  EXPECT_TRUE(glued->EqualsUnordered(*t));
}

TEST(PartitionTest, SameKeySamePartition) {
  auto t = MakeTable({{"k", format::Int64()}},
                     {Column::FromInt64({7, 7, 7, 9, 9})});
  auto ctx = Ctx();
  auto parts = HashPartition(ctx, t, {0}, 3).ValueOrDie();
  int parts_with_7 = 0, parts_with_9 = 0;
  for (const auto& p : parts) {
    bool has7 = false, has9 = false;
    for (size_t i = 0; i < p->num_rows(); ++i) {
      has7 |= p->column(0)->data<int64_t>()[i] == 7;
      has9 |= p->column(0)->data<int64_t>()[i] == 9;
    }
    parts_with_7 += has7;
    parts_with_9 += has9;
  }
  EXPECT_EQ(parts_with_7, 1);
  EXPECT_EQ(parts_with_9, 1);
}

TEST(PartitionTest, NullKeysGoToPartitionZero) {
  auto c = Column::FromInt64({1, 0}, {true, false});
  auto t = MakeTable({{"k", format::Int64()}}, {c});
  auto ctx = Ctx();
  auto parts = HashPartition(ctx, t, {0}, 2).ValueOrDie();
  bool null_in_zero = false;
  for (size_t i = 0; i < parts[0]->num_rows(); ++i) {
    null_in_zero |= parts[0]->column(0)->IsNull(i);
  }
  EXPECT_TRUE(null_in_zero);
}

TEST(PartitionTest, ZeroPartitionsRejected) {
  auto t = MakeTable({{"k", format::Int64()}}, {Column::FromInt64({1})});
  auto ctx = Ctx();
  EXPECT_FALSE(HashPartition(ctx, t, {0}, 0).ok());
}

}  // namespace
}  // namespace sirius::gdf
