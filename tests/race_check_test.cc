// Tests for the debug-mode race/lifetime checking layer:
//  - sim::HazardTracker: vector-clock happens-before over simulated streams
//    and events (a seeded unordered cross-stream access must be flagged; a
//    properly event-ordered program must pass),
//  - mem::LifetimeTracker: generation-stamped use-after-free / double-free /
//    pin discipline,
//  - engine::BufferManager: use-after-evict through stamped column handles,
//    pins blocking eviction, and stale cross-query event ids being ignored,
//  - engine::SiriusEngine: a full race_check run over real queries is clean.

#include <gtest/gtest.h>

#include "engine/buffer_manager.h"
#include "engine/sirius.h"
#include "mem/buffer.h"
#include "sim/device.h"
#include "sim/timeline.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using sim::EventId;
using sim::HazardTracker;
using sim::StreamId;
using mem::LifetimeTracker;

// ---------------------------------------------------------------------------
// HazardTracker: stream/event happens-before
// ---------------------------------------------------------------------------

class HazardTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracker_.set_abort_on_violation(false);
    tracker_.set_enabled(true);
  }
  HazardTracker tracker_;
};

TEST_F(HazardTrackerTest, UnorderedCrossStreamWritesAreFlagged) {
  const StreamId a = tracker_.CreateStream("a");
  const StreamId b = tracker_.CreateStream("b");
  tracker_.OnWrite(a, /*resource=*/7, "kernel on a");
  // No event edge between a and b: this is the seeded race.
  tracker_.OnWrite(b, /*resource=*/7, "kernel on b");
  ASSERT_EQ(tracker_.violation_count(), 1u);
  const auto v = tracker_.violations()[0];
  EXPECT_EQ(v.kind, HazardTracker::ViolationKind::kWriteWriteRace);
  EXPECT_EQ(v.resource, 7u);
  EXPECT_EQ(v.first, a);
  EXPECT_EQ(v.second, b);
  EXPECT_NE(v.detail.find("kernel on a"), std::string::npos) << v.detail;
}

TEST_F(HazardTrackerTest, EventEdgeOrdersCrossStreamWrites) {
  const StreamId a = tracker_.CreateStream("a");
  const StreamId b = tracker_.CreateStream("b");
  tracker_.OnWrite(a, 7, "producer");
  const EventId done = tracker_.RecordEvent(a);
  tracker_.StreamWaitEvent(b, done);
  tracker_.OnWrite(b, 7, "consumer");
  EXPECT_EQ(tracker_.violation_count(), 0u);
}

TEST_F(HazardTrackerTest, WriteThenUnorderedReadIsFlagged) {
  const StreamId a = tracker_.CreateStream("a");
  const StreamId b = tracker_.CreateStream("b");
  tracker_.OnWrite(a, 1, "materialize");
  tracker_.OnRead(b, 1, "probe");
  ASSERT_EQ(tracker_.violation_count(), 1u);
  EXPECT_EQ(tracker_.violations()[0].kind,
            HazardTracker::ViolationKind::kWriteReadRace);
}

TEST_F(HazardTrackerTest, ReadThenUnorderedWriteIsFlagged) {
  const StreamId a = tracker_.CreateStream("a");
  const StreamId b = tracker_.CreateStream("b");
  tracker_.OnWrite(a, 1, "fill");
  const EventId e = tracker_.RecordEvent(a);
  tracker_.StreamWaitEvent(b, e);
  tracker_.OnRead(b, 1, "scan");  // ordered read
  tracker_.OnWrite(a, 1, "overwrite");  // a never saw b's read
  ASSERT_EQ(tracker_.violation_count(), 1u);
  EXPECT_EQ(tracker_.violations()[0].kind,
            HazardTracker::ViolationKind::kReadWriteRace);
}

TEST_F(HazardTrackerTest, SameStreamAccessesAreAlwaysOrdered) {
  const StreamId a = tracker_.CreateStream("a");
  tracker_.OnWrite(a, 3, "w1");
  tracker_.OnRead(a, 3, "r1");
  tracker_.OnWrite(a, 3, "w2");
  EXPECT_EQ(tracker_.violation_count(), 0u);
}

TEST_F(HazardTrackerTest, TransitiveEventOrderingIsHonoured) {
  // a -> b -> c through two event edges; c's access is ordered after a's.
  const StreamId a = tracker_.CreateStream("a");
  const StreamId b = tracker_.CreateStream("b");
  const StreamId c = tracker_.CreateStream("c");
  tracker_.OnWrite(a, 9, "stage 1");
  tracker_.StreamWaitEvent(b, tracker_.RecordEvent(a));
  tracker_.OnWrite(b, 9, "stage 2");
  tracker_.StreamWaitEvent(c, tracker_.RecordEvent(b));
  tracker_.OnWrite(c, 9, "stage 3");
  EXPECT_EQ(tracker_.violation_count(), 0u);
}

TEST_F(HazardTrackerTest, InvalidStreamAndEventAreFlagged) {
  tracker_.OnWrite(/*stream=*/42, 1, "bogus stream");
  tracker_.StreamWaitEvent(/*stream=*/0, /*event=*/99);
  ASSERT_EQ(tracker_.violation_count(), 2u);
  EXPECT_EQ(tracker_.violations()[0].kind,
            HazardTracker::ViolationKind::kInvalidStream);
  EXPECT_EQ(tracker_.violations()[1].kind,
            HazardTracker::ViolationKind::kInvalidEvent);
}

TEST_F(HazardTrackerTest, ReleaseResourceForgetsHistory) {
  const StreamId a = tracker_.CreateStream("a");
  const StreamId b = tracker_.CreateStream("b");
  tracker_.OnWrite(a, 5, "old owner");
  tracker_.ReleaseResource(5);
  // Resource id 5 was recycled; b's unordered write is a fresh first access.
  tracker_.OnWrite(b, 5, "new owner");
  EXPECT_EQ(tracker_.violation_count(), 0u);
}

TEST_F(HazardTrackerTest, DisabledTrackerIsSilent) {
  tracker_.set_enabled(false);
  const StreamId a = tracker_.CreateStream("a");
  const StreamId b = tracker_.CreateStream("b");
  tracker_.OnWrite(a, 7, "w");
  tracker_.OnWrite(b, 7, "w");
  EXPECT_EQ(tracker_.violation_count(), 0u);
}

// ---------------------------------------------------------------------------
// LifetimeTracker: generation-stamped allocation lifetimes
// ---------------------------------------------------------------------------

class LifetimeTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LifetimeTracker::Global().set_abort_on_violation(false);
    LifetimeTracker::Global().set_enabled(true);
    LifetimeTracker::Global().Reset();
  }
  void TearDown() override {
    LifetimeTracker::Global().Reset();
    LifetimeTracker::Global().set_enabled(false);
    LifetimeTracker::Global().set_abort_on_violation(true);
  }
  LifetimeTracker& t() { return LifetimeTracker::Global(); }
};

TEST_F(LifetimeTrackerTest, AllocFreeRoundTrip) {
  const uint64_t g = t().OnAlloc(64, "scratch");
  EXPECT_TRUE(t().IsLive(g));
  EXPECT_EQ(t().live_count(), 1u);
  t().OnFree(g);
  EXPECT_FALSE(t().IsLive(g));
  EXPECT_EQ(t().live_count(), 0u);
  EXPECT_EQ(t().violation_count(), 0u);
}

TEST_F(LifetimeTrackerTest, DoubleFreeIsFlagged) {
  const uint64_t g = t().OnAlloc(64, "scratch");
  t().OnFree(g);
  t().OnFree(g);
  ASSERT_EQ(t().violation_count(), 1u);
  EXPECT_EQ(t().violations()[0].kind,
            LifetimeTracker::ViolationKind::kDoubleFree);
  EXPECT_EQ(t().violations()[0].generation, g);
}

TEST_F(LifetimeTrackerTest, UseAfterFreeIsFlagged) {
  const uint64_t g = t().OnAlloc(64, "scratch");
  t().OnFree(g);
  t().OnAccess(g, "stale handle");
  ASSERT_EQ(t().violation_count(), 1u);
  EXPECT_EQ(t().violations()[0].kind,
            LifetimeTracker::ViolationKind::kUseAfterFree);
}

TEST_F(LifetimeTrackerTest, FreeWhilePinnedIsFlagged) {
  const uint64_t g = t().OnAlloc(64, "kernel input");
  t().OnPin(g);
  t().OnFree(g);
  ASSERT_EQ(t().violation_count(), 1u);
  EXPECT_EQ(t().violations()[0].kind,
            LifetimeTracker::ViolationKind::kFreeWhilePinned);
}

TEST_F(LifetimeTrackerTest, BalancedPinUnpinIsClean) {
  const uint64_t g = t().OnAlloc(64, "kernel input");
  t().OnPin(g);
  t().OnPin(g);
  t().OnUnpin(g);
  t().OnUnpin(g);
  t().OnFree(g);
  EXPECT_EQ(t().violation_count(), 0u);
}

TEST_F(LifetimeTrackerTest, UnbalancedUnpinIsFlagged) {
  const uint64_t g = t().OnAlloc(64, "kernel input");
  t().OnUnpin(g);
  ASSERT_EQ(t().violation_count(), 1u);
  EXPECT_EQ(t().violations()[0].kind,
            LifetimeTracker::ViolationKind::kUnbalancedUnpin);
}

TEST_F(LifetimeTrackerTest, BufferAllocationsAreTracked) {
  const size_t before = t().live_count();
  {
    auto buf = mem::Buffer::Allocate(128);
    ASSERT_TRUE(buf.ok());
    EXPECT_GT(buf.ValueOrDie().generation(), 0u);
    EXPECT_EQ(t().live_count(), before + 1);
  }
  // Buffer destructor retires the generation exactly once.
  EXPECT_EQ(t().live_count(), before);
  EXPECT_EQ(t().violation_count(), 0u);
}

// ---------------------------------------------------------------------------
// BufferManager: use-after-evict through stamped handles
// ---------------------------------------------------------------------------

class BufferManagerLifetimeTest : public LifetimeTrackerTest {
 protected:
  static format::TablePtr NationTable() {
    static format::TablePtr table =
        tpch::GenerateTable("nation", 0.01).ValueOrDie();
    return table;
  }
};

TEST_F(BufferManagerLifetimeTest, ValidateHandleAfterEvictIsUseAfterEvict) {
  engine::BufferManager bm{engine::BufferManager::Options{}};
  sim::Timeline timeline;
  sim::SimContext sim;
  sim.timeline = &timeline;
  auto loaded = bm.GetOrCacheColumns("nation", NationTable(), {0, 1}, sim);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  auto handle = bm.HandleFor("nation", 0);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(bm.ValidateHandle(handle.ValueOrDie()).ok());

  EXPECT_GT(bm.EvictAll(), 0u);
  const Status stale = bm.ValidateHandle(handle.ValueOrDie());
  EXPECT_EQ(stale.code(), StatusCode::kExecutionError) << stale.ToString();
  EXPECT_NE(stale.ToString().find("use-after-evict"), std::string::npos);
  ASSERT_GE(t().violation_count(), 1u);
  EXPECT_EQ(t().violations()[0].kind,
            LifetimeTracker::ViolationKind::kUseAfterFree);
}

TEST_F(BufferManagerLifetimeTest, ReloadAfterEvictMintsNewGeneration) {
  engine::BufferManager bm{engine::BufferManager::Options{}};
  sim::Timeline timeline;
  sim::SimContext sim;
  sim.timeline = &timeline;
  ASSERT_TRUE(bm.GetOrCacheColumns("nation", NationTable(), {0}, sim).ok());
  auto old_handle = bm.HandleFor("nation", 0).ValueOrDie();
  bm.EvictAll();
  ASSERT_TRUE(bm.GetOrCacheColumns("nation", NationTable(), {0}, sim).ok());
  auto new_handle = bm.HandleFor("nation", 0).ValueOrDie();
  EXPECT_NE(old_handle.generation, new_handle.generation);
  // The old handle stays stale even though the column is resident again.
  EXPECT_FALSE(bm.ValidateHandle(old_handle).ok());
  EXPECT_TRUE(bm.ValidateHandle(new_handle).ok());
}

TEST_F(BufferManagerLifetimeTest, PinnedColumnBlocksEviction) {
  const format::TablePtr table = NationTable();
  const uint64_t col_bytes =
      std::max(table->column(0)->MemoryUsage(), table->column(1)->MemoryUsage());
  // Caching region fits one column but not two.
  engine::BufferManager::Options options;
  options.compress_cache = false;
  options.device_capacity_bytes = 3 * col_bytes;
  options.cache_fraction = 0.5;
  engine::BufferManager bm{options};
  ASSERT_GE(bm.cache_capacity_bytes(), col_bytes);
  ASSERT_LT(bm.cache_capacity_bytes(), 2 * col_bytes);

  sim::Timeline timeline;
  sim::SimContext sim;
  sim.timeline = &timeline;
  ASSERT_TRUE(bm.GetOrCacheColumns("nation", table, {0}, sim).ok());
  ASSERT_TRUE(bm.PinColumn("nation", 0).ok());

  // Loading another column needs an eviction, but the only candidate is
  // pinned: the load must fail instead of yanking a column mid-kernel.
  const auto second = bm.GetOrCacheColumns("nation", table, {1}, sim);
  EXPECT_TRUE(second.status().IsOutOfMemory()) << second.status().ToString();
  EXPECT_TRUE(bm.IsCached("nation", 0));

  ASSERT_TRUE(bm.UnpinColumn("nation", 0).ok());
  EXPECT_TRUE(bm.GetOrCacheColumns("nation", table, {1}, sim).ok());
  EXPECT_FALSE(bm.IsCached("nation", 0));
  EXPECT_EQ(t().violation_count(), 0u);
}

TEST_F(BufferManagerLifetimeTest, EvictingPinnedColumnIsFlagged) {
  engine::BufferManager bm{engine::BufferManager::Options{}};
  sim::Timeline timeline;
  sim::SimContext sim;
  sim.timeline = &timeline;
  ASSERT_TRUE(bm.GetOrCacheColumns("nation", NationTable(), {0}, sim).ok());
  ASSERT_TRUE(bm.PinColumn("nation", 0).ok());
  bm.EvictAll();  // seeded bug: dropping the cache while a kernel holds a pin
  ASSERT_GE(t().violation_count(), 1u);
  EXPECT_EQ(t().violations()[0].kind,
            LifetimeTracker::ViolationKind::kFreeWhilePinned);
}

TEST_F(BufferManagerLifetimeTest, StaleEventIdFromDeadTrackerIsIgnored) {
  // Regression: cache entries outlive per-query HazardTrackers. A hot read
  // under a *new* tracker must not wait on the previous tracker's event id.
  engine::BufferManager bm{engine::BufferManager::Options{}};
  sim::Timeline timeline;

  HazardTracker first;
  first.set_abort_on_violation(false);
  first.set_enabled(true);
  sim::SimContext sim;
  sim.timeline = &timeline;
  sim.hazards = &first;
  sim.stream = first.CreateStream("q1-pipeline");
  ASSERT_TRUE(bm.GetOrCacheColumns("nation", NationTable(), {0}, sim).ok());
  EXPECT_EQ(first.violation_count(), 0u);

  HazardTracker second;
  second.set_abort_on_violation(false);
  second.set_enabled(true);
  sim.hazards = &second;
  sim.stream = second.CreateStream("q2-pipeline");
  ASSERT_TRUE(bm.GetOrCacheColumns("nation", NationTable(), {0}, sim).ok());
  EXPECT_EQ(second.violation_count(), 0u);
}

// ---------------------------------------------------------------------------
// Engine: a full checked run over real queries is clean
// ---------------------------------------------------------------------------

TEST(EngineRaceCheckTest, CheckedTpchRunIsClean) {
  host::Database::Options db_options;
  db_options.data_scale = 1000.0;
  host::Database db(db_options);
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.001));

  engine::SiriusEngine::Options options;
  options.data_scale = 1000.0;
  options.race_check = true;
  options.race_check_abort = true;  // a violation aborts -> loud test failure
  engine::SiriusEngine engine(&db, options);
  db.SetAccelerator(&engine);

  for (int q : {1, 3, 5, 6, 9, 18}) {
    auto result = db.Query(tpch::Query(q));
    ASSERT_TRUE(result.ok()) << "Q" << q << ": " << result.status().ToString();
    EXPECT_TRUE(result.ValueOrDie().accelerated) << "Q" << q;
  }
  EXPECT_EQ(engine.stats().race_violations, 0u);
  db.SetAccelerator(nullptr);
}

}  // namespace
}  // namespace sirius
