// Integration tests for the Sirius GPU engine: drop-in acceleration via the
// Substrait boundary, cross-engine result agreement on all 22 TPC-H
// queries, graceful fallback, buffer-manager behaviour, pipelines.

#include <gtest/gtest.h>

#include "engine/sirius.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

constexpr double kSf = 0.01;
// Model SF100 on SF0.01 data (the paper's evaluation scale, §4.1).
constexpr double kDataScale = 100.0 / kSf;

host::Database* SharedDb() {
  static host::Database* db = [] {
    host::Database::Options options;
    options.data_scale = kDataScale;
    auto* d = new host::Database(options);  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

engine::SiriusEngine* SharedEngine() {
  static engine::SiriusEngine* eng = [] {
    engine::SiriusEngine::Options options;
    options.data_scale = kDataScale;
    return new engine::SiriusEngine(SharedDb(), options);  // sirius-lint: allow(raw-new-delete): leaked singleton
  }();
  return eng;
}

class CrossEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossEngineTest, SiriusMatchesCpuEngine) {
  const int q = GetParam();
  host::Database* db = SharedDb();

  // CPU path.
  db->SetAccelerator(nullptr);
  auto cpu = db->Query(tpch::Query(q));
  ASSERT_TRUE(cpu.ok()) << "Q" << q << " cpu: " << cpu.status().ToString();

  // GPU path through the Substrait drop-in boundary.
  db->SetAccelerator(SharedEngine());
  auto gpu = db->Query(tpch::Query(q));
  db->SetAccelerator(nullptr);
  ASSERT_TRUE(gpu.ok()) << "Q" << q << " gpu: " << gpu.status().ToString();
  EXPECT_TRUE(gpu.ValueOrDie().accelerated) << "Q" << q;
  EXPECT_FALSE(gpu.ValueOrDie().fell_back) << "Q" << q;

  const auto& ct = *cpu.ValueOrDie().table;
  const auto& gt = *gpu.ValueOrDie().table;
  EXPECT_TRUE(ct.Equals(gt) || ct.EqualsUnordered(gt))
      << "Q" << q << " results differ.\nCPU:\n"
      << ct.ToString(8) << "\nGPU:\n"
      << gt.ToString(8);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CrossEngineTest, ::testing::Range(1, 23),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(SiriusEngineTest, GpuIsFasterThanCpuOnModeledTime) {
  host::Database* db = SharedDb();
  db->SetAccelerator(nullptr);
  auto cpu = db->Query(tpch::Query(1)).ValueOrDie();
  db->SetAccelerator(SharedEngine());
  (void)db->Query(tpch::Query(1));  // cold run populates the cache
  auto gpu = db->Query(tpch::Query(1)).ValueOrDie();
  db->SetAccelerator(nullptr);
  // Hot-run GPU execution should beat the CPU engine in simulated time.
  EXPECT_LT(gpu.timeline.total_seconds(), cpu.timeline.total_seconds());
}

TEST(SiriusEngineTest, GracefulFallbackOnUnsupportedFeature) {
  host::Database* db = SharedDb();
  engine::SiriusEngine::Options options;
  options.capabilities.avg = false;  // distributed-mode restriction (§3.4)
  engine::SiriusEngine limited(db, options);
  db->SetAccelerator(&limited);
  auto r = db->Query(tpch::Query(1));  // Q1 uses avg
  db->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().fell_back);
  EXPECT_FALSE(r.ValueOrDie().accelerated);
  // The fallback result still matches the CPU engine.
  auto cpu = db->Query(tpch::Query(1)).ValueOrDie();
  EXPECT_TRUE(cpu.table->Equals(*r.ValueOrDie().table));
}

TEST(SiriusEngineTest, FallbackNotTriggeredWhenSupported) {
  host::Database* db = SharedDb();
  db->SetAccelerator(SharedEngine());
  auto r = db->Query(tpch::Query(6)).ValueOrDie();
  db->SetAccelerator(nullptr);
  EXPECT_TRUE(r.accelerated);
  EXPECT_FALSE(r.fell_back);
}

TEST(SiriusEngineTest, HotRunIsCheaperThanColdRun) {
  host::Database* db = SharedDb();
  engine::SiriusEngine::Options options;
  engine::SiriusEngine eng(db, options);
  db->SetAccelerator(&eng);
  auto cold = db->Query(tpch::Query(6)).ValueOrDie();
  auto hot = db->Query(tpch::Query(6)).ValueOrDie();
  db->SetAccelerator(nullptr);
  EXPECT_TRUE(eng.buffer_manager().IsCached("lineitem", 10));
  EXPECT_LT(hot.timeline.total_seconds(), cold.timeline.total_seconds());
}

TEST(SiriusEngineTest, EvictAllForcesColdLoad) {
  host::Database* db = SharedDb();
  engine::SiriusEngine::Options options;
  engine::SiriusEngine eng(db, options);
  db->SetAccelerator(&eng);
  (void)db->Query(tpch::Query(6));
  EXPECT_TRUE(eng.buffer_manager().IsCached("lineitem", 10));
  eng.buffer_manager().EvictAll();
  EXPECT_FALSE(eng.buffer_manager().IsCached("lineitem", 10));
  EXPECT_EQ(eng.buffer_manager().cached_modeled_bytes(), 0u);
  db->SetAccelerator(nullptr);
}

TEST(SiriusEngineTest, CachingRegionOverflowReportsOom) {
  host::Database* db = SharedDb();
  engine::SiriusEngine::Options options;
  // Model SF100 on a tiny device: nothing fits, no out-of-core.
  options.data_scale = 10000.0;
  options.device.mem_capacity_gib = 1.0;
  options.out_of_core = false;
  engine::SiriusEngine eng(db, options);
  db->SetAccelerator(&eng);
  auto r = db->Query(tpch::Query(6)).ValueOrDie();
  db->SetAccelerator(nullptr);
  // Graceful fallback: the query still succeeds, on the CPU.
  EXPECT_TRUE(r.fell_back);
}

TEST(SiriusEngineTest, OutOfCoreBatchModeProducesSameResults) {
  host::Database* db = SharedDb();
  engine::SiriusEngine::Options options;
  options.data_scale = 10000.0;  // model SF100 on...
  options.device.mem_capacity_gib = 1.0;  // ...a 1 GiB device
  options.out_of_core = true;    // §3.4 extension
  engine::SiriusEngine eng(db, options);
  db->SetAccelerator(&eng);
  auto r = db->Query(tpch::Query(6));
  db->SetAccelerator(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().accelerated);
  auto cpu = db->Query(tpch::Query(6)).ValueOrDie();
  EXPECT_TRUE(cpu.table->Equals(*r.ValueOrDie().table));
}

TEST(SiriusEngineTest, IntermediateSpillingKeepsGpuPathAlive) {
  // §3.4 spilling: a join intermediate larger than the processing region
  // fails without out_of_core and spills to pinned memory with it.
  host::Database* db = SharedDb();
  engine::SiriusEngine::Options options;
  options.data_scale = 5.0e6;             // giant modeled intermediates
  options.device.mem_capacity_gib = 2.0;  // tiny device
  options.out_of_core = false;
  engine::SiriusEngine strict(db, options);
  db->SetAccelerator(&strict);
  auto failed = db->Query(tpch::Query(3)).ValueOrDie();
  EXPECT_TRUE(failed.fell_back);  // OOM -> graceful host fallback

  options.out_of_core = true;
  engine::SiriusEngine spilling(db, options);
  db->SetAccelerator(&spilling);
  auto spilled = db->Query(tpch::Query(3));
  db->SetAccelerator(nullptr);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_TRUE(spilled.ValueOrDie().accelerated);
  EXPECT_TRUE(failed.table->Equals(*spilled.ValueOrDie().table) ||
              failed.table->EqualsUnordered(*spilled.ValueOrDie().table));
}

TEST(SiriusEngineTest, PipelineBreakdownMatchesPushModel) {
  host::Database* db = SharedDb();
  auto plan = db->PlanSql(tpch::Query(3)).ValueOrDie();
  auto explained = SharedEngine()->ExplainPipelines(plan).ValueOrDie();
  // Q3 = customer/orders/lineitem joins + aggregate + sort + limit:
  // several pipelines with probe steps and breaker sinks.
  EXPECT_NE(explained.find("probe"), std::string::npos) << explained;
  EXPECT_NE(explained.find("aggregate"), std::string::npos) << explained;
  EXPECT_NE(explained.find("limit"), std::string::npos) << explained;
}

TEST(BufferManagerTest, IndexConversionRoundTrip) {
  sim::SimContext sim;
  std::vector<uint64_t> rows = {0, 5, 17, 1000000};
  auto gdf_idx = engine::BufferManager::ToGdfIndices(rows, sim).ValueOrDie();
  EXPECT_EQ(gdf_idx.size(), 4u);
  EXPECT_EQ(gdf_idx[3], 1000000);
  auto back = engine::BufferManager::FromGdfIndices(gdf_idx, sim);
  EXPECT_EQ(back, rows);
}

TEST(BufferManagerTest, IndexConversionRejectsOverflow) {
  sim::SimContext sim;
  std::vector<uint64_t> rows = {uint64_t{1} << 40};
  EXPECT_FALSE(engine::BufferManager::ToGdfIndices(rows, sim).ok());
}

TEST(CapabilitiesTest, DetectsUnsupportedAvg) {
  host::Database* db = SharedDb();
  auto plan = db->PlanSql(tpch::Query(1)).ValueOrDie();
  engine::Capabilities caps;
  EXPECT_TRUE(caps.Check(*plan).ok());
  caps.avg = false;
  Status st = caps.Check(*plan);
  EXPECT_TRUE(st.IsUnsupportedOnDevice()) << st.ToString();
}

TEST(CapabilitiesTest, DetectsStringsAndLike) {
  host::Database* db = SharedDb();
  auto plan = db->PlanSql(tpch::Query(13)).ValueOrDie();  // uses NOT LIKE
  engine::Capabilities caps;
  caps.like = false;
  EXPECT_TRUE(caps.Check(*plan).IsUnsupportedOnDevice());
  caps.like = true;
  caps.strings = false;
  EXPECT_TRUE(caps.Check(*plan).IsUnsupportedOnDevice());
}

}  // namespace
}  // namespace sirius
