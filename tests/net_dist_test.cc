// Tests for the SCCL collective layer and the DorisX distributed runtime:
// collective semantics and timing, fragmenter shapes, control plane,
// temp-table registry, and distributed-vs-single-node result agreement for
// every TPC-H query.

#include <gtest/gtest.h>

#include "dist/cluster.h"
#include "dist/fragmenter.h"
#include "net/sccl.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using format::Column;
using format::TablePtr;

TablePtr IntTable(std::vector<int64_t> v) {
  return format::Table::Make(format::Schema({{"x", format::Int64()}}),
                             {Column::FromInt64(std::move(v))})
      .ValueOrDie();
}

gdf::Context Ctx() {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

// ---------------------------------------------------------------------------
// SCCL collectives
// ---------------------------------------------------------------------------

TEST(ScclTest, AllToAllRedistributes) {
  net::Communicator comm(2, sim::Infiniband400());
  // partitions[src][dst]
  std::vector<std::vector<TablePtr>> parts{
      {IntTable({1}), IntTable({2})},
      {IntTable({3}), IntTable({4})},
  };
  auto r = comm.AllToAll(parts, Ctx(), 1.0).ValueOrDie();
  ASSERT_EQ(r.per_rank.size(), 2u);
  EXPECT_TRUE(r.per_rank[0]->EqualsUnordered(*IntTable({1, 3})));
  EXPECT_TRUE(r.per_rank[1]->EqualsUnordered(*IntTable({2, 4})));
  EXPECT_GT(r.seconds, 0.0);
  // Only off-diagonal traffic crosses the network.
  EXPECT_EQ(r.bytes, IntTable({2})->MemoryUsage() + IntTable({3})->MemoryUsage());
}

TEST(ScclTest, AllToAllDiagonalOnlyIsFree) {
  net::Communicator comm(2, sim::Infiniband400());
  std::vector<std::vector<TablePtr>> parts{
      {IntTable({1}), IntTable({})},
      {IntTable({}), IntTable({4})},
  };
  auto r = comm.AllToAll(parts, Ctx(), 1.0).ValueOrDie();
  EXPECT_EQ(r.bytes, IntTable({})->MemoryUsage() * 2);
}

TEST(ScclTest, BroadcastSharesTable) {
  net::Communicator comm(4, sim::Infiniband400());
  auto t = IntTable({1, 2, 3});
  auto r = comm.Broadcast(t, 0, 1.0).ValueOrDie();
  ASSERT_EQ(r.per_rank.size(), 4u);
  for (const auto& p : r.per_rank) EXPECT_TRUE(p->Equals(*t));
  EXPECT_EQ(r.bytes, t->MemoryUsage() * 3);
  EXPECT_FALSE(comm.Broadcast(t, 9, 1.0).ok());
}

TEST(ScclTest, GatherConcatsAtRoot) {
  net::Communicator comm(3, sim::Infiniband400());
  std::vector<TablePtr> tables{IntTable({1}), IntTable({2}), IntTable({3})};
  auto r = comm.Gather(tables, 0, Ctx(), 1.0).ValueOrDie();
  EXPECT_TRUE(r.per_rank[0]->EqualsUnordered(*IntTable({1, 2, 3})));
  EXPECT_EQ(r.per_rank[1], nullptr);
  EXPECT_EQ(r.bytes, tables[1]->MemoryUsage() + tables[2]->MemoryUsage());
}

TEST(ScclTest, MulticastSubset) {
  net::Communicator comm(4, sim::Infiniband400());
  auto t = IntTable({7});
  auto r = comm.Multicast(t, 0, {0, 2}, 1.0).ValueOrDie();
  EXPECT_NE(r.per_rank[0], nullptr);
  EXPECT_EQ(r.per_rank[1], nullptr);
  EXPECT_NE(r.per_rank[2], nullptr);
  EXPECT_EQ(r.bytes, t->MemoryUsage());  // root copy is free
}

TEST(ScclTest, SlowerLinkTakesLonger) {
  auto t = IntTable(std::vector<int64_t>(10000, 1));
  net::Communicator fast(2, sim::Infiniband400());
  net::Communicator slow(2, sim::Ethernet100());
  double f = fast.Broadcast(t, 0, 1000.0).ValueOrDie().seconds;
  double s = slow.Broadcast(t, 0, 1000.0).ValueOrDie().seconds;
  EXPECT_GT(s, f);
}

// ---------------------------------------------------------------------------
// Fragmenter
// ---------------------------------------------------------------------------

class FragmenterTest : public ::testing::Test {
 protected:
  static host::Database* db() {
    static host::Database* instance = [] {
      auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
      SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.002));
      return d;
    }();
    return instance;
  }

  static int CountExchanges(const plan::PlanNode& n, plan::ExchangeKind kind) {
    int count = n.kind == plan::PlanKind::kExchange && n.exchange == kind ? 1 : 0;
    for (const auto& c : n.children) count += CountExchanges(*c, kind);
    return count;
  }
};

TEST_F(FragmenterTest, ResultAlwaysGathered) {
  for (int q : {1, 3, 6}) {
    auto plan = db()->PlanSql(tpch::Query(q)).ValueOrDie();
    auto d = dist::FragmentPlan(plan, db()->catalog(), {}).ValueOrDie();
    EXPECT_TRUE(d.gathered) << "Q" << q;
    EXPECT_TRUE(d.plan->Validate().ok()) << "Q" << q;
    EXPECT_TRUE(d.plan->output_schema.Equals(plan->output_schema)) << "Q" << q;
  }
}

TEST_F(FragmenterTest, Q3ShufflesBothBigSides) {
  // The paper: "Doris' distributed query plan shuffles both the orders and
  // lineitem tables" — big-side joins must use shuffle exchanges.
  auto plan = db()->PlanSql(tpch::Query(3)).ValueOrDie();
  dist::FragmenterOptions options;
  options.data_scale = 100.0 / 0.002;  // model SF100
  options.broadcast_threshold_bytes = 16ull << 20;
  auto d = dist::FragmentPlan(plan, db()->catalog(), options).ValueOrDie();
  EXPECT_GE(CountExchanges(*d.plan, plan::ExchangeKind::kShuffle), 2)
      << d.plan->ToString();
}

TEST_F(FragmenterTest, SmallBuildSidesBroadcast) {
  auto plan = db()->PlanSql(tpch::Query(5)).ValueOrDie();
  dist::FragmenterOptions options;
  options.data_scale = 100.0 / 0.002;
  auto d = dist::FragmentPlan(plan, db()->catalog(), options).ValueOrDie();
  // nation/region build sides are tiny -> broadcast.
  EXPECT_GE(CountExchanges(*d.plan, plan::ExchangeKind::kBroadcast), 1)
      << d.plan->ToString();
}

TEST_F(FragmenterTest, TwoPhaseAggregationShape) {
  auto plan = db()->PlanSql(tpch::Query(1)).ValueOrDie();
  auto d = dist::FragmentPlan(plan, db()->catalog(), {}).ValueOrDie();
  // Partial + final: two Aggregate nodes with a gather between them.
  int aggs = 0;
  std::function<void(const plan::PlanNode&)> walk = [&](const plan::PlanNode& n) {
    if (n.kind == plan::PlanKind::kAggregate) ++aggs;
    for (const auto& c : n.children) walk(*c);
  };
  walk(*d.plan);
  EXPECT_EQ(aggs, 2) << d.plan->ToString();
  EXPECT_GE(CountExchanges(*d.plan, plan::ExchangeKind::kGather), 1);
}

TEST_F(FragmenterTest, CountDistinctRepartitions) {
  auto plan = db()->PlanSql(tpch::Query(16)).ValueOrDie();
  auto d = dist::FragmentPlan(plan, db()->catalog(), {}).ValueOrDie();
  // count(distinct ps_suppkey) cannot two-phase: shuffle by group keys.
  EXPECT_GE(CountExchanges(*d.plan, plan::ExchangeKind::kShuffle), 1)
      << d.plan->ToString();
}

// ---------------------------------------------------------------------------
// DorisCluster
// ---------------------------------------------------------------------------

dist::DorisCluster* SharedCluster() {
  static dist::DorisCluster* cluster = [] {
    dist::DorisCluster::Options options;
    options.num_nodes = 4;
    auto* c = new dist::DorisCluster(options);  // sirius-lint: allow(raw-new-delete): leaked singleton
    for (const auto& name : tpch::TableNames()) {
      auto t = tpch::GenerateTable(name, 0.005).ValueOrDie();
      SIRIUS_CHECK_OK(c->LoadPartitioned(name, t));
    }
    return c;
  }();
  return cluster;
}

host::Database* SharedSingleNode() {
  static host::Database* db = [] {
    auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.005));
    return d;
  }();
  return db;
}

class DistributedQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedQueryTest, MatchesSingleNodeResults) {
  const int q = GetParam();
  auto single = SharedSingleNode()->Query(tpch::Query(q));
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  auto distributed = SharedCluster()->Query(tpch::Query(q));
  ASSERT_TRUE(distributed.ok()) << "Q" << q << ": "
                                << distributed.status().ToString();
  const auto& s = *single.ValueOrDie().table;
  const auto& d = *distributed.ValueOrDie().table;
  EXPECT_TRUE(s.Equals(d) || s.EqualsUnordered(d))
      << "Q" << q << "\nsingle:\n"
      << s.ToString(8) << "\ndistributed:\n"
      << d.ToString(8);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, DistributedQueryTest,
                         ::testing::Range(1, 23), [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(DorisClusterTest, BreakdownSumsToTotal) {
  auto r = SharedCluster()->Query(tpch::Query(3)).ValueOrDie();
  EXPECT_NEAR(r.total_seconds,
              r.compute_seconds + r.exchange_seconds + r.other_seconds, 1e-9);
  EXPECT_GT(r.exchange_seconds, 0.0);  // Q3 shuffles
  EXPECT_GT(r.other_seconds, 0.0);     // coordinator overhead
}

TEST(DorisClusterTest, HeartbeatsTrackLiveness) {
  dist::DorisCluster::Options options;
  options.num_nodes = 3;
  dist::DorisCluster cluster(options);
  for (int r = 0; r < 3; ++r) cluster.Heartbeat(r, 10.0);
  EXPECT_EQ(cluster.num_alive(), 3);
  cluster.Heartbeat(0, 20.0);
  EXPECT_EQ(cluster.ExpireHeartbeats(/*now=*/25.0, /*timeout=*/10.0), 2);
  EXPECT_EQ(cluster.num_alive(), 1);
  EXPECT_TRUE(cluster.IsAlive(0));
  EXPECT_FALSE(cluster.IsAlive(1));
  cluster.Heartbeat(1, 26.0);
  EXPECT_TRUE(cluster.IsAlive(1));
}

TEST(DorisClusterTest, TempTablesDeregisteredAfterQuery) {
  auto* cluster = SharedCluster();
  uint64_t before = cluster->temp_registry().total_registered();
  (void)cluster->Query(tpch::Query(3)).ValueOrDie();
  EXPECT_GT(cluster->temp_registry().total_registered(), before);
  EXPECT_EQ(cluster->temp_registry().active_count(), 0u);
}

TEST(DorisClusterTest, PartitionsCoverAllRows) {
  dist::DorisCluster::Options options;
  options.num_nodes = 4;
  dist::DorisCluster cluster(options);
  auto orders = tpch::GenerateTable("orders", 0.002).ValueOrDie();
  SIRIUS_CHECK_OK(cluster.LoadPartitioned("orders", orders));
  auto r = cluster.Query("select count(*) as c from orders").ValueOrDie();
  EXPECT_EQ(r.table->column(0)->data<int64_t>()[0],
            static_cast<int64_t>(orders->num_rows()));
}

TEST(DorisClusterTest, CapabilityGateRejects) {
  dist::DorisCluster::Options options;
  options.num_nodes = 2;
  options.capabilities.avg = false;  // §3.4 distributed restriction
  dist::DorisCluster cluster(options);
  auto orders = tpch::GenerateTable("orders", 0.002).ValueOrDie();
  SIRIUS_CHECK_OK(cluster.LoadPartitioned("orders", orders));
  auto r = cluster.Query("select avg(o_totalprice) from orders");
  EXPECT_TRUE(r.status().IsUnsupportedOnDevice());
}

TEST(DorisClusterTest, FaultToleranceRepartitionsOntoSurvivors) {
  dist::DorisCluster::Options options;
  options.num_nodes = 4;
  dist::DorisCluster cluster(options);
  auto orders = tpch::GenerateTable("orders", 0.003).ValueOrDie();
  SIRIUS_CHECK_OK(cluster.LoadPartitioned("orders", orders));
  for (int r = 0; r < 4; ++r) cluster.Heartbeat(r, 0.0);

  auto before = cluster.Query("select count(*) as c from orders").ValueOrDie();
  const int64_t total = before.table->column(0)->data<int64_t>()[0];
  EXPECT_EQ(total, static_cast<int64_t>(orders->num_rows()));

  // Node 2 dies: its heartbeat stops, the next query must still see every row.
  for (int r : {0, 1, 3}) cluster.Heartbeat(r, 100.0);
  EXPECT_EQ(cluster.ExpireHeartbeats(/*now=*/101.0, /*timeout=*/50.0), 1);
  EXPECT_FALSE(cluster.IsAlive(2));
  auto after = cluster.Query("select count(*) as c from orders").ValueOrDie();
  EXPECT_EQ(after.table->column(0)->data<int64_t>()[0], total);

  // Aggregation results survive the failure too.
  auto grouped_before = cluster.Query(
      "select o_orderpriority, count(*) as c from orders "
      "group by o_orderpriority order by o_orderpriority");
  SIRIUS_CHECK_OK(grouped_before.status());

  // Node 2 recovers and rejoins.
  cluster.Heartbeat(2, 200.0);
  EXPECT_EQ(cluster.num_alive(), 4);
  auto rejoined = cluster.Query("select count(*) as c from orders").ValueOrDie();
  EXPECT_EQ(rejoined.table->column(0)->data<int64_t>()[0], total);
}

TEST(DorisClusterTest, AllNodesDeadIsAnError) {
  dist::DorisCluster::Options options;
  options.num_nodes = 2;
  dist::DorisCluster cluster(options);
  auto orders = tpch::GenerateTable("orders", 0.001).ValueOrDie();
  SIRIUS_CHECK_OK(cluster.LoadPartitioned("orders", orders));
  cluster.ExpireHeartbeats(/*now=*/1000.0, /*timeout=*/1.0);
  EXPECT_EQ(cluster.num_alive(), 0);
  auto r = cluster.Query("select count(*) from orders");
  EXPECT_FALSE(r.ok());
}

TEST(DorisClusterTest, GpuClusterFasterThanCpu) {
  dist::DorisCluster::Options cpu;
  cpu.data_scale = 10000.0;
  dist::DorisCluster cpu_cluster(cpu);
  dist::DorisCluster::Options gpu = cpu;
  gpu.device = sim::A100Gpu();
  gpu.engine = sim::SiriusProfile();
  dist::DorisCluster gpu_cluster(gpu);
  for (const auto& name : tpch::TableNames()) {
    auto t = tpch::GenerateTable(name, 0.005).ValueOrDie();
    SIRIUS_CHECK_OK(cpu_cluster.LoadPartitioned(name, t));
    SIRIUS_CHECK_OK(gpu_cluster.LoadPartitioned(name, t));
  }
  auto c = cpu_cluster.Query(tpch::Query(6)).ValueOrDie();
  auto g = gpu_cluster.Query(tpch::Query(6)).ValueOrDie();
  EXPECT_LT(g.total_seconds, c.total_seconds);
  EXPECT_TRUE(c.table->Equals(*g.table));
}

}  // namespace
}  // namespace sirius
