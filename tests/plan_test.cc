// Unit tests for the plan IR: builders, validation, JSON, and the
// Substrait-equivalent serialization round trip (including all 22 TPC-H
// plans).

#include <gtest/gtest.h>

#include "host/database.h"
#include "plan/json.h"
#include "plan/plan.h"
#include "plan/substrait.h"
#include "tpch/queries.h"

namespace sirius::plan {
namespace {

using expr::ColIdx;
using format::Schema;

Schema TestSchema() {
  return Schema({{"a", format::Int64()},
                 {"b", format::Decimal(2)},
                 {"s", format::String()}});
}

PlanPtr Scan() { return MakeScan("t", TestSchema(), {}).ValueOrDie(); }

// ---------------------------------------------------------------------------
// Builders & validation
// ---------------------------------------------------------------------------

TEST(PlanBuilderTest, ScanProjectsColumns) {
  auto s = MakeScan("t", TestSchema(), {2, 0}).ValueOrDie();
  EXPECT_EQ(s->output_schema.num_fields(), 2u);
  EXPECT_EQ(s->output_schema.field(0).name, "s");
  EXPECT_EQ(s->output_schema.field(1).name, "a");
  EXPECT_FALSE(MakeScan("t", TestSchema(), {5}).ok());
}

TEST(PlanBuilderTest, FilterBindsPredicate) {
  auto f = MakeFilter(Scan(), expr::Gt(expr::ColRef("a"), expr::LitInt(1)));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.ValueOrDie()->predicate->children[0]->column_index, 0);
  // Non-bool predicates are rejected by Validate.
  auto bad = MakeFilter(Scan(), expr::Add(expr::ColRef("a"), expr::LitInt(1)));
  ASSERT_TRUE(bad.ok());  // binding succeeds...
  EXPECT_FALSE(bad.ValueOrDie()->Validate().ok());  // ...validation catches it
}

TEST(PlanBuilderTest, ProjectComputesSchema) {
  auto p = MakeProject(Scan(),
                       {expr::Mul(expr::ColRef("b"), expr::ColRef("b")),
                        expr::ColRef("a")},
                       {"b2", "a"})
               .ValueOrDie();
  EXPECT_EQ(p->output_schema.field(0).type, format::Decimal(4));
  EXPECT_EQ(p->output_schema.field(1).type, format::Int64());
}

TEST(PlanBuilderTest, JoinSchemasByType) {
  auto inner = MakeJoin(Scan(), Scan(), JoinType::kInner, {0}, {0}).ValueOrDie();
  EXPECT_EQ(inner->output_schema.num_fields(), 6u);
  auto semi = MakeJoin(Scan(), Scan(), JoinType::kSemi, {0}, {0}).ValueOrDie();
  EXPECT_EQ(semi->output_schema.num_fields(), 3u);
  auto anti = MakeJoin(Scan(), Scan(), JoinType::kAnti, {0}, {0}).ValueOrDie();
  EXPECT_EQ(anti->output_schema.num_fields(), 3u);
  EXPECT_FALSE(MakeJoin(Scan(), Scan(), JoinType::kInner, {0}, {0, 1}).ok());
  EXPECT_FALSE(MakeJoin(Scan(), Scan(), JoinType::kInner, {9}, {0}).ok());
}

TEST(PlanBuilderTest, AggregateOutputTypes) {
  std::vector<AggItem> aggs{{AggFunc::kSum, 1, "s"},
                            {AggFunc::kAvg, 1, "a"},
                            {AggFunc::kCountStar, -1, "c"},
                            {AggFunc::kMin, 2, "m"}};
  auto agg = MakeAggregate(Scan(), {0}, aggs).ValueOrDie();
  EXPECT_EQ(agg->output_schema.field(1).type, format::Decimal(2));  // sum
  EXPECT_EQ(agg->output_schema.field(2).type.id, format::TypeId::kFloat64);
  EXPECT_EQ(agg->output_schema.field(3).type, format::Int64());
  EXPECT_EQ(agg->output_schema.field(4).type, format::String());  // min(s)
}

TEST(PlanBuilderTest, ValidateRecursesAndCountsChildren) {
  auto plan = MakeLimit(MakeSort(Scan(), {{0, true}}).ValueOrDie(), 5).ValueOrDie();
  EXPECT_TRUE(plan->Validate().ok());
  // Corrupt: drop a child.
  auto broken = std::make_shared<PlanNode>(*plan);
  broken->children.clear();
  EXPECT_FALSE(broken->Validate().ok());
}

TEST(PlanBuilderTest, ClonePlanIsDeep) {
  auto f = MakeFilter(Scan(), expr::Gt(expr::ColRef("a"), expr::LitInt(1)))
               .ValueOrDie();
  auto copy = ClonePlan(f);
  copy->predicate->children[1]->literal = format::Scalar::FromInt64(99);
  EXPECT_EQ(f->predicate->children[1]->literal.int_value(), 1);
}

TEST(PlanBuilderTest, ToStringShowsTree) {
  auto f = MakeFilter(Scan(), expr::Gt(expr::ColRef("a"), expr::LitInt(1)))
               .ValueOrDie();
  std::string s = f->ToString();
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("TableScan t"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, ScalarRoundTrip) {
  Json obj = Json::Object();
  obj.Set("i", Json::Int(-123456789012345LL));
  obj.Set("d", Json::Double(3.25));
  obj.Set("s", Json::Str("he\"llo\n"));
  obj.Set("b", Json::Bool(true));
  obj.Set("n", Json::Null());
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Str("two"));
  obj.Set("a", std::move(arr));

  auto parsed = Json::Parse(obj.Dump()).ValueOrDie();
  EXPECT_EQ(parsed["i"].AsInt(), -123456789012345LL);
  EXPECT_DOUBLE_EQ(parsed["d"].AsDouble(), 3.25);
  EXPECT_EQ(parsed["s"].AsString(), "he\"llo\n");
  EXPECT_TRUE(parsed["b"].AsBool());
  EXPECT_TRUE(parsed["n"].is_null());
  EXPECT_EQ(parsed["a"].size(), 2u);
  EXPECT_EQ(parsed["a"].at(1).AsString(), "two");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_TRUE(Json::Parse("  [ ]  ").ok());
  EXPECT_TRUE(Json::Parse("{}").ok());
}

TEST(JsonTest, MissingKeyIsNull) {
  auto j = Json::Parse("{\"x\": 1}").ValueOrDie();
  EXPECT_TRUE(j["y"].is_null());
  EXPECT_FALSE(j.Has("y"));
  EXPECT_TRUE(j.Has("x"));
}

// ---------------------------------------------------------------------------
// Substrait round trip
// ---------------------------------------------------------------------------

SchemaResolver TestResolver() {
  return [](const std::string& name) -> Result<format::Schema> {
    if (name == "t") return TestSchema();
    return Status::KeyError("no table " + name);
  };
}

TEST(SubstraitTest, ExprRoundTrip) {
  auto e = expr::And(
      expr::Like(expr::ColIdx(2, format::String()), "%x%"),
      expr::InList(expr::ColIdx(0, format::Int64()),
                   {format::Scalar::FromInt64(1), format::Scalar::FromInt64(2)}));
  SIRIUS_CHECK_OK(expr::Bind(e, TestSchema()));
  Json j = SerializeExpr(*e);
  auto back = DeserializeExpr(j).ValueOrDie();
  SIRIUS_CHECK_OK(expr::Bind(back, TestSchema()));
  EXPECT_EQ(back->ToString(), e->ToString());
}

TEST(SubstraitTest, ScalarTypesSurvive) {
  auto lit = expr::Lit(format::Scalar::FromDecimal(-12345, 4));
  auto back = DeserializeExpr(SerializeExpr(*lit)).ValueOrDie();
  EXPECT_TRUE(back->literal == lit->literal);
  auto date = expr::LitDate("1995-06-17");
  auto dback = DeserializeExpr(SerializeExpr(*date)).ValueOrDie();
  EXPECT_TRUE(dback->literal == date->literal);
}

TEST(SubstraitTest, PlanRoundTripPreservesStructure) {
  auto plan =
      MakeLimit(
          MakeSort(
              MakeAggregate(
                  MakeFilter(Scan(), expr::Gt(expr::ColRef("a"), expr::LitInt(1)))
                      .ValueOrDie(),
                  {0}, {{AggFunc::kSum, 1, "s"}})
                  .ValueOrDie(),
              {{1, true}})
              .ValueOrDie(),
          10)
          .ValueOrDie();
  std::string wire = SerializePlan(plan);
  auto back = DeserializePlan(wire, TestResolver()).ValueOrDie();
  EXPECT_EQ(back->ToString(), plan->ToString());
  EXPECT_TRUE(back->output_schema.Equals(plan->output_schema));
}

TEST(SubstraitTest, UnknownVersionRejected) {
  EXPECT_FALSE(DeserializePlan("{\"version\":\"bogus\",\"root\":{}}",
                               TestResolver())
                   .ok());
}

TEST(SubstraitTest, UnknownTableSurfacesResolverError) {
  auto plan = MakeScan("t", TestSchema(), {}).ValueOrDie();
  auto broken = std::make_shared<PlanNode>(*plan);
  broken->table_name = "missing";
  EXPECT_FALSE(DeserializePlan(SerializePlan(broken), TestResolver()).ok());
}

TEST(SubstraitTest, All22TpchPlansRoundTrip) {
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.001));
  auto resolver = [&](const std::string& name) {
    return db.catalog().GetTableSchema(name);
  };
  for (int q = 1; q <= 22; ++q) {
    auto plan = db.PlanSql(tpch::Query(q));
    ASSERT_TRUE(plan.ok()) << "Q" << q;
    std::string wire = SerializePlan(plan.ValueOrDie());
    auto back = DeserializePlan(wire, resolver);
    ASSERT_TRUE(back.ok()) << "Q" << q << ": " << back.status().ToString();
    EXPECT_EQ(back.ValueOrDie()->ToString(), plan.ValueOrDie()->ToString())
        << "Q" << q;
    EXPECT_TRUE(back.ValueOrDie()->output_schema.Equals(
        plan.ValueOrDie()->output_schema))
        << "Q" << q;
  }
}

}  // namespace
}  // namespace sirius::plan
