// Tests for the LIST type and vector search (§3.4: "more complex data
// types, such as LIST" and "vector search").

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "format/builder.h"
#include "format/encoding.h"
#include "gdf/copying.h"
#include "gdf/row_ops.h"
#include "gdf/sort.h"
#include "gdf/vector_search.h"

namespace sirius {
namespace {

using format::Column;
using format::ColumnPtr;

gdf::Context Ctx() {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

// ---------------------------------------------------------------------------
// LIST type
// ---------------------------------------------------------------------------

TEST(ListTypeTest, TypeIdentity) {
  auto t = format::List(format::Float64());
  EXPECT_TRUE(t.is_list());
  EXPECT_EQ(t.ToString(), "LIST<FLOAT64>");
  EXPECT_EQ(t, format::List(format::Float64()));
  EXPECT_NE(t, format::List(format::Int64()));
  auto nested = format::List(format::List(format::Int64()));
  EXPECT_EQ(nested.ToString(), "LIST<LIST<INT64>>");
}

TEST(ListColumnTest, ConstructionAndAccess) {
  auto col = Column::FromListsOfDoubles({{1.0, 2.0}, {}, {3.0}});
  ASSERT_EQ(col->length(), 3u);
  EXPECT_TRUE(col->type().is_list());
  EXPECT_EQ(col->ListLength(0), 2u);
  EXPECT_EQ(col->ListLength(1), 0u);
  EXPECT_EQ(col->ListLength(2), 1u);
  EXPECT_DOUBLE_EQ(col->list_child()->data<double>()[2], 3.0);
  EXPECT_EQ(col->GetScalar(0).string_value(), "[1, 2]");
}

TEST(ListColumnTest, EqualityAndHashing) {
  auto a = Column::FromListsOfDoubles({{1, 2}, {3}});
  auto b = Column::FromListsOfDoubles({{1, 2}, {3}});
  auto c = Column::FromListsOfDoubles({{1, 2}, {4}});
  auto d = Column::FromListsOfDoubles({{1, 2, 3}});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*d));
  EXPECT_EQ(gdf::HashValueAt(*a, 0), gdf::HashValueAt(*b, 0));
  EXPECT_NE(gdf::HashValueAt(*a, 1), gdf::HashValueAt(*c, 1));
  EXPECT_TRUE(gdf::ValueEquals(*a, 0, *b, 0, false));
  EXPECT_FALSE(gdf::ValueEquals(*a, 1, *c, 1, false));
  // Lexicographic comparison.
  EXPECT_LT(gdf::ValueCompare(*a, 0, *d, 0), 0);  // [1,2] < [1,2,3]
}

TEST(ListColumnTest, GatherPreservesLists) {
  auto col = Column::FromListsOfDoubles({{1, 2}, {3, 4, 5}, {}, {6}});
  auto table = format::Table::Make(
                   format::Schema({{"v", col->type()}}), {col})
                   .ValueOrDie();
  auto ctx = Ctx();
  auto out = gdf::GatherTable(ctx, table, {3, 1, 1}).ValueOrDie();
  auto g = out->column(0);
  ASSERT_EQ(g->length(), 3u);
  EXPECT_EQ(g->GetScalar(0).string_value(), "[6]");
  EXPECT_EQ(g->GetScalar(1).string_value(), "[3, 4, 5]");
  EXPECT_EQ(g->GetScalar(2).string_value(), "[3, 4, 5]");
}

TEST(ListColumnTest, SortByListKeysLexicographic) {
  auto col = Column::FromListsOfDoubles({{2}, {1, 5}, {1}});
  auto ctx = Ctx();
  auto order = gdf::SortIndices(ctx, {col}).ValueOrDie();
  EXPECT_EQ(order, (std::vector<gdf::index_t>{2, 1, 0}));  // [1] < [1,5] < [2]
}

TEST(ListColumnTest, EncodingPassthroughRoundTrip) {
  auto col = Column::FromListsOfDoubles({{1, 2}, {3}});
  auto encoded = format::Encode(col).ValueOrDie();
  EXPECT_EQ(encoded.codec(), format::Codec::kPlain);
  auto back = format::Decode(encoded).ValueOrDie();
  EXPECT_TRUE(back->Equals(*col));
}

// ---------------------------------------------------------------------------
// Vector search
// ---------------------------------------------------------------------------

TEST(VectorSearchTest, CosineTopK) {
  auto embeddings = Column::FromListsOfDoubles({
      {1, 0, 0},   // 0: aligned with query
      {0, 1, 0},   // 1: orthogonal
      {0.9, 0.1, 0},  // 2: close
      {-1, 0, 0},  // 3: opposite
  });
  auto ctx = Ctx();
  auto r = gdf::VectorTopK(ctx, embeddings, {1, 0, 0}, 2).ValueOrDie();
  ASSERT_EQ(r.indices.size(), 2u);
  EXPECT_EQ(r.indices[0], 0);
  EXPECT_EQ(r.indices[1], 2);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-12);
  EXPECT_GT(r.scores[0], r.scores[1]);
}

TEST(VectorSearchTest, L2AndDotMetrics) {
  auto embeddings = Column::FromListsOfDoubles({{0, 0}, {3, 4}, {1, 1}});
  auto ctx = Ctx();
  auto l2 = gdf::VectorTopK(ctx, embeddings, {0.6, 0.6}, 3, gdf::Metric::kL2)
                .ValueOrDie();
  EXPECT_EQ(l2.indices[0], 2);  // (1,1) closest to (0.6,0.6)
  EXPECT_EQ(l2.indices[1], 0);
  auto dot = gdf::VectorTopK(ctx, embeddings, {1, 1}, 1, gdf::Metric::kDot)
                 .ValueOrDie();
  EXPECT_EQ(dot.indices[0], 1);  // 3+4 = 7 is the largest inner product
}

TEST(VectorSearchTest, SkipsNullsAndDimensionMismatches) {
  std::vector<std::vector<double>> lists = {{1, 0}, {1, 0, 0}, {0.5, 0.5}};
  auto base = Column::FromListsOfDoubles(lists);
  auto ctx = Ctx();
  auto r = gdf::VectorTopK(ctx, base, {1, 0}, 10).ValueOrDie();
  ASSERT_EQ(r.indices.size(), 2u);  // the 3-d row is skipped
  EXPECT_EQ(r.indices[0], 0);
}

TEST(VectorSearchTest, MatchesBruteForceOnRandomData) {
  std::mt19937_64 rng(3);
  const size_t n = 500, dim = 16;
  std::vector<std::vector<double>> lists(n, std::vector<double>(dim));
  for (auto& v : lists) {
    for (auto& x : v) x = std::uniform_real_distribution<double>(-1, 1)(rng);
  }
  std::vector<double> query(dim);
  for (auto& x : query) x = std::uniform_real_distribution<double>(-1, 1)(rng);

  auto ctx = Ctx();
  auto col = Column::FromListsOfDoubles(lists);
  auto r = gdf::VectorTopK(ctx, col, query, 10, gdf::Metric::kDot).ValueOrDie();

  // Brute-force reference.
  std::vector<std::pair<double, size_t>> ref;
  for (size_t i = 0; i < n; ++i) {
    double dot = 0;
    for (size_t d = 0; d < dim; ++d) dot += lists[i][d] * query[d];
    ref.push_back({dot, i});
  }
  std::sort(ref.begin(), ref.end(), [](auto& a, auto& b) {
    return a.first > b.first;
  });
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(static_cast<size_t>(r.indices[i]), ref[i].second) << i;
    EXPECT_NEAR(r.scores[i], ref[i].first, 1e-9);
  }
}

TEST(VectorSearchTest, InputValidation) {
  auto ctx = Ctx();
  EXPECT_FALSE(gdf::VectorTopK(ctx, Column::FromInt64({1}), {1.0}, 1).ok());
  auto emb = Column::FromListsOfDoubles({{1, 0}});
  EXPECT_FALSE(gdf::VectorTopK(ctx, emb, {}, 1).ok());
  EXPECT_FALSE(
      gdf::VectorTopK(ctx, emb, {0, 0}, 1, gdf::Metric::kCosine).ok());
  // k larger than row count clamps.
  auto r = gdf::VectorTopK(ctx, emb, {1, 0}, 99).ValueOrDie();
  EXPECT_EQ(r.indices.size(), 1u);
}

}  // namespace
}  // namespace sirius
