// Robustness tests: malformed/mutated inputs must produce Status errors,
#include "engine/sirius.h"
// never crashes — exercised across the SQL parser, the JSON/Substrait
// deserializer, and the CSV reader.

#include <gtest/gtest.h>

#include <random>

#include "host/csv.h"
#include "host/database.h"
#include "plan/json.h"
#include "plan/substrait.h"
#include "sql/parser.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

TEST(ParserRobustnessTest, TruncatedQueriesNeverCrash) {
  // Every prefix of every TPC-H query must parse or fail cleanly.
  for (int q = 1; q <= 22; ++q) {
    const std::string& sql = tpch::Query(q);
    for (size_t len = 0; len < sql.size(); len += 17) {
      auto r = sql::ParseSql(sql.substr(0, len));
      (void)r;  // ok or clean ParseError — reaching here is the assertion
    }
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, RandomMutationsNeverCrash) {
  std::mt19937_64 rng(42);
  const std::string base = tpch::Query(3);
  static const char kChars[] = "abz019'\"(),.;*<>=- \n";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    for (int m = 0; m < 5; ++m) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = kChars[rng() % (sizeof(kChars) - 1)];
    }
    auto r = sql::ParseSql(mutated);
    (void)r;
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrash) {
  std::mt19937_64 rng(7);
  static const std::vector<std::string> kTokens = {
      "select", "from",  "where", "group", "by",   "order",    "(",
      ")",      ",",     "*",     "sum",   "a",    "t",        "1",
      "'x'",    "exists", "in",   "and",   "join", "on",       "case",
      "when",   "then",  "end",   "asof",  "not",  "between"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    size_t n = 3 + rng() % 20;
    for (size_t i = 0; i < n; ++i) {
      soup += kTokens[rng() % kTokens.size()];
      soup += ' ';
    }
    auto r = sql::ParseSql(soup);
    (void)r;
  }
  SUCCEED();
}

TEST(BinderRobustnessTest, ValidParseInvalidBindFailsCleanly) {
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.001));
  const std::vector<std::string> bad = {
      "select nope from lineitem",
      "select l_quantity from nope",
      "select sum(l_comment) from lineitem group by l_returnflag",  // agg string? sum
      "select l_quantity from lineitem group by l_returnflag",
      "select * from lineitem where l_quantity like '%x%'",
      "select extract(year from l_quantity) from lineitem",
      "select l_quantity + l_comment from lineitem where 1 = 1 and l_comment",
      "select count(*) from lineitem order by 99",
  };
  for (const auto& sql : bad) {
    auto r = db.Query(sql);
    EXPECT_FALSE(r.ok()) << sql;
  }
}

TEST(JsonRobustnessTest, MutatedDocumentsNeverCrash) {
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.001));
  std::string wire = db.ExportSubstrait(tpch::Query(6)).ValueOrDie();
  auto resolver = [&](const std::string& name) {
    return db.catalog().GetTableSchema(name);
  };
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = wire;
    for (int m = 0; m < 3; ++m) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = static_cast<char>('!' + rng() % 90);
    }
    auto r = plan::DeserializePlan(mutated, resolver);
    (void)r;  // parse/bind error or (rarely) a still-valid plan
  }
  SUCCEED();
}

TEST(JsonRobustnessTest, TruncationsNeverCrash) {
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.001));
  std::string wire = db.ExportSubstrait(tpch::Query(1)).ValueOrDie();
  auto resolver = [&](const std::string& name) {
    return db.catalog().GetTableSchema(name);
  };
  for (size_t len = 0; len < wire.size(); len += 97) {
    auto r = plan::DeserializePlan(wire.substr(0, len), resolver);
    EXPECT_FALSE(r.ok());
  }
}

TEST(CsvRobustnessTest, GarbageNeverCrashes) {
  std::mt19937_64 rng(3);
  format::Schema schema({{"a", format::Int64()}, {"b", format::String()}});
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    size_t n = rng() % 200;
    for (size_t i = 0; i < n; ++i) {
      text += static_cast<char>(' ' + rng() % 95);
      if (rng() % 20 == 0) text += '\n';
    }
    auto r1 = host::ParseCsv(text, schema);
    auto r2 = host::ParseCsvInferSchema(text);
    (void)r1;
    (void)r2;
  }
  SUCCEED();
}

TEST(EngineRobustnessTest, MalformedSubstraitIsRejectedNotExecuted) {
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.001));
  engine::SiriusEngine eng(&db, {});
  EXPECT_FALSE(eng.ExecuteSubstrait("not json at all").ok());
  EXPECT_FALSE(eng.ExecuteSubstrait("{}").ok());
  EXPECT_FALSE(
      eng.ExecuteSubstrait(
             R"({"version":"sirius-substrait-1","root":{"op":"TableScan","table":"missing","columns":[0]}})")
          .ok());
}

}  // namespace
}  // namespace sirius
