// Fused pipeline execution tests: selection-vector flow through each fused
// operator kind against gathered references, engine-level fused-vs-
// materialized equivalence and speedup, the fused-stage trace span, the
// happens-before contract under the race checker, and the graceful fallback
// at the "engine.fuse.compile" fault site.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/pipeline.h"
#include "engine/sirius.h"
#include "expr/expr.h"
#include "fault/fault_injector.h"
#include "gdf/bloom.h"
#include "gdf/compute.h"
#include "gdf/copying.h"
#include "gdf/filter.h"
#include "gdf/groupby.h"
#include "gdf/join.h"
#include "gdf/selection.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using format::Column;
using format::ColumnPtr;
using format::Schema;
using format::Table;
using format::TablePtr;

gdf::Context Ctx() {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

TablePtr MakeTable(std::vector<format::Field> fields,
                   std::vector<ColumnPtr> cols) {
  return Table::Make(Schema(std::move(fields)), std::move(cols)).ValueOrDie();
}

TablePtr TestTable() {
  return MakeTable({{"a", format::Int64()}, {"b", format::Int64()}},
                   {Column::FromInt64({10, 20, 30, 40, 50}),
                    Column::FromInt64({1, 2, 3, 4, 5})});
}

// ---------------------------------------------------------------------------
// Selection-vector flow per fused operator kind, vs gathered references
// ---------------------------------------------------------------------------

TEST(SelectionViewTest, FromTableIsIdentity) {
  auto view = gdf::SelectionView::FromTable(TestTable());
  EXPECT_EQ(view.num_rows(), 5u);
  EXPECT_EQ(view.num_columns(), 2u);
  EXPECT_TRUE(view.IsIdentity());
}

TEST(SelectionViewTest, RefineComposesLikeChainedGathers) {
  auto ctx = Ctx();
  auto t = TestTable();
  auto view = gdf::SelectionView::FromTable(t);
  ASSERT_TRUE(gdf::RefineView(ctx, &view, {0, 2, 4}, sim::OpCategory::kFilter).ok());
  ASSERT_TRUE(gdf::RefineView(ctx, &view, {2, 0}, sim::OpCategory::kFilter).ok());

  // Reference: the same two selections applied as materializing gathers.
  auto g1 = gdf::GatherTable(ctx, t, {0, 2, 4}, sim::OpCategory::kFilter)
                .ValueOrDie();
  auto g2 =
      gdf::GatherTable(ctx, g1, {2, 0}, sim::OpCategory::kFilter).ValueOrDie();

  auto m = gdf::MaterializeView(ctx, view, t->schema(), sim::OpCategory::kFilter)
               .ValueOrDie();
  EXPECT_TRUE(m->Equals(*g2));
  EXPECT_FALSE(view.IsIdentity());
}

TEST(SelectionViewTest, RefineRejectsOutOfBounds) {
  auto view = gdf::SelectionView::FromTable(TestTable());
  EXPECT_FALSE(view.Refine({0, 5}).ok());
  EXPECT_FALSE(view.Refine({-1}).ok());
}

TEST(SelectionViewTest, GatherViewColumnMatchesGatheredColumn) {
  auto ctx = Ctx();
  auto t = TestTable();
  auto view = gdf::SelectionView::FromTable(t);
  // Identity views resolve zero-copy.
  auto c0 = gdf::GatherViewColumn(ctx, view, 0, sim::OpCategory::kFilter)
                .ValueOrDie();
  EXPECT_EQ(c0.get(), t->column(0).get());

  ASSERT_TRUE(view.Refine({4, 1, 3}).ok());
  auto c1 = gdf::GatherViewColumn(ctx, view, 0, sim::OpCategory::kFilter)
                .ValueOrDie();
  auto ref = gdf::GatherColumn(ctx, t->column(0), {4, 1, 3}).ValueOrDie();
  EXPECT_TRUE(c1->Equals(*ref));
}

TEST(SelectionViewTest, MaskToSelectionMatchesMaskToIndices) {
  auto ctx = Ctx();
  auto mask = Column::FromBool({true, false, true, true, false});
  auto sel = gdf::MaskToSelection(ctx, mask).ValueOrDie();
  auto idx = gdf::MaskToIndices(ctx, mask).ValueOrDie();
  EXPECT_EQ(sel, idx);
}

TEST(SelectionViewTest, ComputeColumnViewMatchesComputeOnGathered) {
  auto ctx = Ctx();
  auto t = TestTable();
  auto view = gdf::SelectionView::FromTable(t);
  ASSERT_TRUE(view.Refine({1, 3, 4}).ok());

  auto e = expr::Add(expr::ColIdx(0, format::Int64()),
                     expr::ColIdx(1, format::Int64()));
  auto fused =
      gdf::ComputeColumnView(ctx, *e, view, sim::OpCategory::kProject)
          .ValueOrDie();

  auto gathered =
      gdf::GatherTable(ctx, t, {1, 3, 4}, sim::OpCategory::kFilter).ValueOrDie();
  auto ref = gdf::ComputeColumn(ctx, *e, gathered, sim::OpCategory::kProject)
                 .ValueOrDie();
  EXPECT_TRUE(fused->Equals(*ref));
}

TEST(SelectionViewTest, ApplyJoinToViewMatchesGatheredJoinOutput) {
  auto ctx = Ctx();
  auto probe = TestTable();  // keys 1..5 in column b
  auto build = MakeTable({{"k", format::Int64()}, {"v", format::Int64()}},
                         {Column::FromInt64({2, 4}),
                          Column::FromInt64({200, 400})});

  auto view = gdf::SelectionView::FromTable(probe);
  gdf::JoinResult pairs =
      gdf::HashJoin(ctx, {probe->column(1)}, {build->column(0)}, {})
          .ValueOrDie();
  ASSERT_TRUE(gdf::ApplyJoinToView(ctx, &view, pairs, build,
                                   /*emits_right=*/true,
                                   /*nullable_right=*/false,
                                   sim::OpCategory::kJoin)
                  .ok());
  EXPECT_EQ(view.num_columns(), 4u);  // probe cols ++ build cols

  // Reference: the materialized path's two-sided gather.
  auto lg = gdf::GatherTable(ctx, probe, pairs.left_indices,
                             sim::OpCategory::kJoin)
                .ValueOrDie();
  auto rg = gdf::GatherTable(ctx, build, pairs.right_indices,
                             sim::OpCategory::kJoin)
                .ValueOrDie();
  Schema out_schema({{"a", format::Int64()},
                     {"b", format::Int64()},
                     {"k", format::Int64()},
                     {"v", format::Int64()}});
  std::vector<ColumnPtr> cols = lg->columns();
  for (const auto& c : rg->columns()) cols.push_back(c);
  auto ref = Table::Make(out_schema, std::move(cols)).ValueOrDie();

  auto m = gdf::MaterializeView(ctx, view, out_schema, sim::OpCategory::kJoin)
               .ValueOrDie();
  EXPECT_TRUE(m->Equals(*ref));
}

TEST(SelectionViewTest, GroupByAggregateViewMatchesGatheredGroupBy) {
  auto ctx = Ctx();
  auto t = MakeTable({{"g", format::Int64()}, {"v", format::Int64()}},
                     {Column::FromInt64({1, 2, 1, 2, 1, 3}),
                      Column::FromInt64({10, 20, 30, 40, 50, 60})});
  auto view = gdf::SelectionView::FromTable(t);
  ASSERT_TRUE(view.Refine({0, 1, 2, 3, 4}).ok());  // drop the last row

  std::vector<gdf::AggRequest> aggs;
  aggs.push_back({gdf::AggKind::kSum, 1, "s"});
  aggs.push_back({gdf::AggKind::kCountStar, -1, "n"});
  auto fused =
      gdf::GroupByAggregateView(ctx, view, {0}, {"g"}, aggs).ValueOrDie();

  auto gathered = gdf::GatherTable(ctx, t, {0, 1, 2, 3, 4},
                                   sim::OpCategory::kFilter)
                      .ValueOrDie();
  auto ref = gdf::GroupByAggregate(ctx, {gathered->column(0)}, {"g"}, gathered,
                                   aggs)
                 .ValueOrDie();
  EXPECT_TRUE(fused->Equals(*ref));
}

TEST(SelectionViewTest, CountStarOnlyAggregateSeesViewRowCount) {
  auto ctx = Ctx();
  auto t = TestTable();
  auto view = gdf::SelectionView::FromTable(t);
  ASSERT_TRUE(view.Refine({0, 2}).ok());
  std::vector<gdf::AggRequest> aggs;
  aggs.push_back({gdf::AggKind::kCountStar, -1, "n"});
  auto out = gdf::GroupByAggregateView(ctx, view, {}, {}, aggs).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->column(0)->data<int64_t>()[0], 2);
}

TEST(SelectionViewTest, BloomPrefilterSelectionKeepsAllMatches) {
  auto ctx = Ctx();
  auto probe_key = Column::FromInt64({1, 7, 2, 9, 3, 11});
  auto build_key = Column::FromInt64({2, 3});
  auto keep =
      gdf::BloomPrefilterSelection(ctx, probe_key, build_key).ValueOrDie();
  // No false negatives: rows with keys 2 and 3 must survive.
  EXPECT_NE(std::find(keep.begin(), keep.end(), 2), keep.end());
  EXPECT_NE(std::find(keep.begin(), keep.end(), 4), keep.end());
  EXPECT_LE(keep.size(), probe_key->length());
}

TEST(SelectionViewTest, SelectionBytesTracksRowMaps) {
  auto view = gdf::SelectionView::FromTable(TestTable());
  EXPECT_EQ(view.SelectionBytes(), 0u);  // identity: no live index state
  ASSERT_TRUE(view.Refine({0, 1, 2}).ok());
  EXPECT_EQ(view.SelectionBytes(), 3 * sizeof(gdf::index_t));
}

// ---------------------------------------------------------------------------
// Fused-stage compiler
// ---------------------------------------------------------------------------

class FusionEngineTest : public ::testing::Test {
 protected:
  static host::Database* db() {
    static host::Database* instance = [] {
      auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
      SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.01));
      return d;
    }();
    return instance;
  }

  static engine::SiriusEngine::Options BaseOptions() {
    engine::SiriusEngine::Options o;
    o.data_scale = 1000;  // model SF10 from the loaded SF0.01
    return o;
  }
};

TEST_F(FusionEngineTest, CompilerFusesStreamingChains) {
  auto plan = db()->PlanSql(tpch::Query(3)).ValueOrDie();
  std::vector<engine::Pipeline> pipelines;
  ASSERT_TRUE(engine::PipelineCompiler::Compile(plan, &pipelines).ok());
  auto stages = engine::FusedStageCompiler::Compile(
      pipelines, sim::Gh200Gpu(), 1000, /*fusion_enabled=*/true);
  ASSERT_EQ(stages.size(), pipelines.size());
  int fused = 0;
  int saved = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].exec == engine::StageExec::kFused) {
      ++fused;
      EXPECT_EQ(stages[i].fused_ops,
                static_cast<int>(pipelines[i].steps.size()));
      // A single-step chain can save 0 launches and still fuse (it skips
      // the intermediate, not a launch); multi-step chains must save.
      EXPECT_GE(stages[i].saved_launches, 0);
      saved += stages[i].saved_launches;
    } else {
      EXPECT_FALSE(stages[i].reason.empty());
    }
  }
  EXPECT_GT(fused, 0) << "Q3 has streaming chains that must fuse";
  EXPECT_GT(saved, 0) << "Q3's probe chains must save launches";
}

TEST_F(FusionEngineTest, CompilerDisabledMarksEverythingMaterialized) {
  auto plan = db()->PlanSql(tpch::Query(6)).ValueOrDie();
  std::vector<engine::Pipeline> pipelines;
  ASSERT_TRUE(engine::PipelineCompiler::Compile(plan, &pipelines).ok());
  auto stages = engine::FusedStageCompiler::Compile(
      pipelines, sim::Gh200Gpu(), 1.0, /*fusion_enabled=*/false);
  for (const auto& s : stages) {
    EXPECT_EQ(s.exec, engine::StageExec::kMaterialized);
    EXPECT_EQ(s.reason, "fusion disabled");
  }
}

TEST_F(FusionEngineTest, ExplainPipelinesAnnotatesStages) {
  engine::SiriusEngine eng(db(), BaseOptions());
  auto plan = db()->PlanSql(tpch::Query(6)).ValueOrDie();
  auto text = eng.ExplainPipelines(plan).ValueOrDie();
  EXPECT_NE(text.find("[fused ops="), std::string::npos) << text;

  auto opts = BaseOptions();
  opts.fusion = false;
  engine::SiriusEngine off(db(), opts);
  auto text_off = off.ExplainPipelines(plan).ValueOrDie();
  EXPECT_NE(text_off.find("[materialized: fusion disabled]"),
            std::string::npos)
      << text_off;
}

// ---------------------------------------------------------------------------
// Engine: fused equals materialized, runs fewer launches, and is faster
// ---------------------------------------------------------------------------

TEST_F(FusionEngineTest, FusedMatchesMaterializedAndIsFaster) {
  auto on_opts = BaseOptions();
  auto off_opts = BaseOptions();
  off_opts.fusion = false;
  engine::SiriusEngine fused(db(), on_opts);
  engine::SiriusEngine mat(db(), off_opts);

  for (int q : {1, 3, 6, 19}) {
    auto plan = db()->PlanSql(tpch::Query(q)).ValueOrDie();
    // Warm both caches so the comparison is pure execution.
    ASSERT_TRUE(fused.ExecutePlan(plan).ok()) << "Q" << q;
    ASSERT_TRUE(mat.ExecutePlan(plan).ok()) << "Q" << q;
    auto f = fused.ExecutePlan(plan).ValueOrDie();
    auto m = mat.ExecutePlan(plan).ValueOrDie();

    EXPECT_TRUE(f.table->Equals(*m.table)) << "Q" << q;
    EXPECT_LT(f.timeline.total_seconds(), m.timeline.total_seconds())
        << "Q" << q << ": fused must beat materialized";
    EXPECT_LT(f.kernels.launches, m.kernels.launches) << "Q" << q;
    // Join pipelines skip both full-width gathers, so HBM traffic drops
    // outright. Dense scan->aggregate chains (Q1) instead trade gather
    // writes for selection re-reads — launches and time still win, but
    // raw traffic is not guaranteed lower, so only assert it for Q3.
    if (q == 3) {
      EXPECT_LT(f.kernels.hbm_bytes(), m.kernels.hbm_bytes()) << "Q" << q;
    }
  }
  EXPECT_GT(fused.stats().fused_stages, 0u);
  EXPECT_EQ(mat.stats().fused_stages, 0u);
}

TEST_F(FusionEngineTest, FusedStageSpanReplacesPerKernelSpans) {
  engine::SiriusEngine eng(db(), BaseOptions());
  auto plan = db()->PlanSql(tpch::Query(6)).ValueOrDie();
  auto result = eng.ExecutePlan(plan).ValueOrDie();
  ASSERT_NE(result.profile, nullptr);
  auto spans = result.profile->SpansNamed("fused-stage");
  ASSERT_FALSE(spans.empty());
  EXPECT_GE(spans[0]->Attr("fused_ops"), 1.0);
  EXPECT_GT(spans[0]->Attr("charged_s"), 0.0);

  auto opts = BaseOptions();
  opts.fusion = false;
  engine::SiriusEngine off(db(), opts);
  auto unfused = off.ExecutePlan(plan).ValueOrDie();
  ASSERT_NE(unfused.profile, nullptr);
  EXPECT_EQ(unfused.profile->CountNamed("fused-stage"), 0u);
  // The collapse is real: the fused profile carries fewer kernel spans.
  EXPECT_LT(result.profile->CountCategory("kernel"),
            unfused.profile->CountCategory("kernel"));
}

TEST_F(FusionEngineTest, PredicateTransferStaysFusedAndCorrect) {
  auto on_opts = BaseOptions();
  on_opts.predicate_transfer = true;
  auto off_opts = BaseOptions();
  off_opts.fusion = false;
  off_opts.predicate_transfer = true;
  engine::SiriusEngine fused(db(), on_opts);
  engine::SiriusEngine mat(db(), off_opts);
  for (int q : {3, 19}) {
    auto plan = db()->PlanSql(tpch::Query(q)).ValueOrDie();
    auto f = fused.ExecutePlan(plan).ValueOrDie();
    auto m = mat.ExecutePlan(plan).ValueOrDie();
    EXPECT_TRUE(f.table->Equals(*m.table)) << "Q" << q;
  }
  EXPECT_GT(fused.stats().fused_stages, 0u);
}

// ---------------------------------------------------------------------------
// Happens-before: fused stages keep the pipeline DAG's ordering edges
// ---------------------------------------------------------------------------

TEST_F(FusionEngineTest, RaceCheckSeesNoViolationsInFusedRuns) {
  auto opts = BaseOptions();
  opts.race_check = true;
  opts.race_check_abort = false;
  engine::SiriusEngine eng(db(), opts);
  // Join-heavy plans: build sides materialize on one stream and are probed
  // from another, through the fused probe's NoteRead.
  for (int q : {3, 5, 19}) {
    auto plan = db()->PlanSql(tpch::Query(q)).ValueOrDie();
    ASSERT_TRUE(eng.ExecutePlan(plan).ok()) << "Q" << q;
  }
  EXPECT_GT(eng.stats().fused_stages, 0u);
  EXPECT_EQ(eng.stats().race_violations, 0u);
}

// ---------------------------------------------------------------------------
// Fault site: engine.fuse.compile degrades to materialized, never fails
// ---------------------------------------------------------------------------

TEST_F(FusionEngineTest, FuseCompileFaultFallsBackToMaterialized) {
  fault::FaultInjector inj;
  auto opts = BaseOptions();
  opts.injector = &inj;
  engine::SiriusEngine eng(db(), opts);
  auto plan = db()->PlanSql(tpch::Query(6)).ValueOrDie();
  auto reference = eng.ExecutePlan(plan).ValueOrDie();
  ASSERT_GT(eng.stats().fused_stages, 0u);
  eng.ResetStats();

  fault::FaultSpec spec;
  spec.max_triggers = 1;  // transient compile fault
  inj.Arm("engine.fuse.compile", spec);
  auto degraded = eng.ExecutePlan(plan).ValueOrDie();
  EXPECT_TRUE(degraded.table->Equals(*reference.table));
  EXPECT_EQ(eng.stats().fused_stages, 0u);  // whole run fell back
  EXPECT_EQ(eng.stats().fusion_fallbacks, 1u);

  // The fault healed: the next query fuses again.
  auto healed = eng.ExecutePlan(plan).ValueOrDie();
  EXPECT_TRUE(healed.table->Equals(*reference.table));
  EXPECT_GT(eng.stats().fused_stages, 0u);
}

TEST_F(FusionEngineTest, FusionOffOptionDisablesFusedStages) {
  auto opts = BaseOptions();
  opts.fusion = false;
  engine::SiriusEngine eng(db(), opts);
  auto plan = db()->PlanSql(tpch::Query(1)).ValueOrDie();
  ASSERT_TRUE(eng.ExecutePlan(plan).ok());
  EXPECT_EQ(eng.stats().fused_stages, 0u);
  EXPECT_EQ(eng.stats().fusion_fallbacks, 0u);
}

// ---------------------------------------------------------------------------
// Out-of-core: fused passes per batch, morsel boundary materializes
// ---------------------------------------------------------------------------

TEST_F(FusionEngineTest, OutOfCoreFusedMatchesInCore) {
  auto reference_opts = BaseOptions();
  engine::SiriusEngine reference(db(), reference_opts);

  auto ooc_opts = BaseOptions();
  ooc_opts.out_of_core = true;
  // Shrink the device so lineitem cannot fit and must stream in batches.
  ooc_opts.device.mem_capacity_gib = 0.0005;
  engine::SiriusEngine small(db(), ooc_opts);

  for (int q : {1, 6}) {
    auto plan = db()->PlanSql(tpch::Query(q)).ValueOrDie();
    auto want = reference.ExecutePlan(plan).ValueOrDie();
    auto got = small.ExecutePlan(plan).ValueOrDie();
    EXPECT_TRUE(got.table->Equals(*want.table)) << "Q" << q;
  }
  EXPECT_GT(small.stats().fused_stages, 0u);
}

}  // namespace
}  // namespace sirius
