// Tests for the federated serving tier: rendezvous routing is deterministic
// and minimally disruptive; tenants shard to their primary; the replicated
// result-cache region serves hits on any replica after the fill propagates;
// the coordinator-only baseline pays the wire and concentrates load on node
// 0; backpressure re-routes shed tenants down the preference list and an
// all-replicas shed surfaces the *minimum* retry-after hint; catalog writes
// invalidate every replica exactly; and the open-loop arrival schedule
// (including per-tenant rate overrides) is pinned by golden checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/serve_cluster.h"
#include "common/hash.h"
#include "engine/sirius.h"
#include "serve/load_gen.h"
#include "serve/serve.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using cluster::CacheMode;
using cluster::ClusterOptions;
using cluster::NodeLoad;
using cluster::RendezvousRouter;
using cluster::ServeCluster;
using serve::LoadGenerator;
using serve::LoadOptions;
using serve::LoadReport;
using serve::QueryOutcome;
using serve::QueryState;
using serve::SubmitOptions;

constexpr double kSf = 0.005;
constexpr double kDataScale = 1.0 / kSf;
constexpr int kNodes = 4;

host::Database* SharedDb() {
  static host::Database* db = [] {
    host::Database::Options options;
    options.data_scale = kDataScale;
    auto* d = new host::Database(options);  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

/// One engine per cluster node (each its own DeviceGroup + buffer manager),
/// all attached to the shared catalog: a single write-version stream.
std::vector<engine::SiriusEngine*> NodeEngines() {
  static std::vector<engine::SiriusEngine*>* engines = [] {
    auto* v = new std::vector<engine::SiriusEngine*>();  // sirius-lint: allow(raw-new-delete): leaked singleton
    for (int i = 0; i < kNodes; ++i) {
      engine::SiriusEngine::Options options;
      options.data_scale = kDataScale;
      v->push_back(new engine::SiriusEngine(SharedDb(), options));  // sirius-lint: allow(raw-new-delete): leaked singleton
    }
    return v;
  }();
  return *engines;
}

ClusterOptions BaseOptions() {
  ClusterOptions options;
  options.num_nodes = kNodes;
  options.node.num_streams = 4;
  options.node.execution_threads = 4;
  options.data_scale = kDataScale;
  return options;
}

/// A tenant whose rendezvous primary is `node` (deterministic search).
std::string TenantOn(const RendezvousRouter& router, int node) {
  for (int i = 0; i < 256; ++i) {
    const std::string t = "tenant-" + std::to_string(i);
    if (router.Preference(t)[0] == node) return t;
  }
  ADD_FAILURE() << "no tenant found with primary " << node;
  return "tenant-0";
}

TEST(RendezvousRouterTest, DeterministicAndMinimallyDisruptive) {
  RendezvousRouter router(kNodes);
  // Stable: the same tenant always gets the same full preference order.
  for (const std::string t : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(router.Preference(t), router.Preference(t));
  }
  // Spread: 64 tenants should not all share a primary.
  std::set<int> primaries;
  for (int i = 0; i < 64; ++i) {
    primaries.insert(router.Preference("tenant-" + std::to_string(i))[0]);
  }
  EXPECT_EQ(primaries.size(), static_cast<size_t>(kNodes));
  // Minimal disruption: killing one node moves only the tenants whose
  // primary it was — everyone else's first alive choice is unchanged.
  dist::Membership all(kNodes), lossy(kNodes);
  lossy.MarkDead(2);
  for (int i = 0; i < 64; ++i) {
    const std::string t = "tenant-" + std::to_string(i);
    const int before = router.Primary(t, all);
    const int after = router.Primary(t, lossy);
    if (before != 2) {
      EXPECT_EQ(after, before) << t << " moved without losing its primary";
    } else {
      EXPECT_NE(after, 2);
      EXPECT_EQ(after, router.Preference(t)[1]);
    }
  }
}

TEST(ServeClusterTest, RoutesTenantsToTheirPrimary) {
  ServeCluster cl(SharedDb(), NodeEngines(), BaseOptions());
  std::vector<serve::QueryId> ids;
  std::vector<int> expected;
  for (int n = 0; n < kNodes; ++n) {
    const std::string tenant = TenantOn(cl.router(), n);
    auto session = cl.OpenSession(tenant);
    SubmitOptions sub;
    sub.bypass_cache = true;
    auto id = cl.Submit(session, tpch::Query(6), sub);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.ValueOrDie());
    expected.push_back(n);
  }
  ASSERT_TRUE(cl.DrainAll().ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto out = cl.Peek(ids[i]);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out.ValueOrDie().state, QueryState::kCompleted);
    EXPECT_EQ(out.ValueOrDie().node, expected[i])
        << "query " << i << " did not land on its tenant's primary";
  }
  EXPECT_EQ(cl.stats().routed, static_cast<uint64_t>(kNodes));
  EXPECT_EQ(cl.stats().rerouted, 0u);
}

TEST(ServeClusterTest, ReplicatedCacheServesHitAnywhere) {
  ClusterOptions options = BaseOptions();
  options.cache_mode = CacheMode::kReplicated;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  const std::string filler = TenantOn(cl.router(), 0);
  const std::string reader = TenantOn(cl.router(), 3);
  const std::string sql = tpch::Query(1);

  auto fid = cl.Submit(cl.OpenSession(filler), sql, SubmitOptions{});
  ASSERT_TRUE(fid.ok()) << fid.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());  // executes + propagates the fill
  auto fout = cl.Peek(fid.ValueOrDie());
  ASSERT_TRUE(fout.ok());
  ASSERT_EQ(fout.ValueOrDie().state, QueryState::kCompleted);
  ASSERT_FALSE(fout.ValueOrDie().cache_hit);
  ASSERT_EQ(fout.ValueOrDie().node, 0);
  EXPECT_GE(cl.stats().fills_sent, 1u);
  // The multicast reached every peer replica (3 of them) and cost wire time.
  EXPECT_GE(cl.stats().fills_delivered, 3u);
  EXPECT_GT(cl.stats().fill_seconds, 0.0);
  EXPECT_GT(cl.stats().fill_bytes_wire, 0u);

  // A different tenant, sharded to a different node, hits the entry the
  // first node filled — without touching node 0.
  auto rid = cl.Submit(cl.OpenSession(reader), sql, SubmitOptions{});
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  auto rout = cl.Resolve(rid.ValueOrDie());
  ASSERT_TRUE(rout.ok()) << rout.status().ToString();
  EXPECT_EQ(rout.ValueOrDie().state, QueryState::kCompleted);
  EXPECT_TRUE(rout.ValueOrDie().cache_hit) << "peer replica missed the fill";
  EXPECT_EQ(rout.ValueOrDie().node, 3);
}

TEST(ServeClusterTest, CompressedFillsShrinkWireBytes) {
  ClusterOptions plain = BaseOptions();
  plain.compress_fills = false;
  ClusterOptions packed = BaseOptions();
  packed.compress_fills = true;

  for (ClusterOptions* o : {&plain, &packed}) {
    ServeCluster cl(SharedDb(), NodeEngines(), *o);
    auto id = cl.Submit(cl.OpenSession(TenantOn(cl.router(), 1)),
                        tpch::Query(1), SubmitOptions{});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(cl.DrainAll().ok());
    ASSERT_GE(cl.stats().fills_sent, 1u);
    if (o == &plain) {
      EXPECT_EQ(cl.stats().fill_bytes_wire, cl.stats().fill_bytes_plain);
    } else {
      EXPECT_LT(cl.stats().fill_bytes_wire, cl.stats().fill_bytes_plain)
          << "compression did not shrink the fill payload";
    }
  }
}

TEST(ServeClusterTest, CoordinatorModePaysTheWireAndLoadsNodeZero) {
  ClusterOptions options = BaseOptions();
  options.cache_mode = CacheMode::kCoordinatorOnly;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  const std::string tenant = TenantOn(cl.router(), 2);
  const std::string sql = tpch::Query(6);
  auto first = cl.Submit(cl.OpenSession(tenant), sql, SubmitOptions{});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());  // fill unicasts to the coordinator

  auto second = cl.Submit(cl.OpenSession(tenant), sql, SubmitOptions{});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto out = cl.Resolve(second.ValueOrDie());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.ValueOrDie().state, QueryState::kCompleted);
  EXPECT_TRUE(out.ValueOrDie().cache_hit);
  EXPECT_EQ(cl.stats().remote_hits, 1u);
  // The remote hit is slower than a local one (request + response on the
  // fabric) and its service lands on node 0, not on the tenant's primary.
  EXPECT_GT(out.ValueOrDie().latency_s(), options.node.cache_hit_cost_s);
  const std::vector<NodeLoad> loads = cl.node_loads();
  EXPECT_GT(loads[0].hit_service_s, 0.0);
  EXPECT_EQ(loads[2].cache_hits, 0u);
}

TEST(ServeClusterTest, BackpressureReroutesToNextPreferredReplica) {
  ClusterOptions options = BaseOptions();
  options.cache_mode = CacheMode::kNone;
  options.node.num_streams = 1;
  options.node.execution_threads = 2;
  options.node.max_queue_depth = 1;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  const std::string tenant = TenantOn(cl.router(), 1);
  auto session = cl.OpenSession(tenant);
  SubmitOptions sub;
  sub.bypass_cache = true;
  sub.arrival_s = 0;
  std::vector<serve::QueryId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = cl.Submit(session, tpch::Query(6), sub);
    if (id.ok()) ids.push_back(id.ValueOrDie());
  }
  ASSERT_TRUE(cl.DrainAll().ok());
  EXPECT_GT(cl.stats().rerouted, 0u) << "backpressure never re-routed";
  std::set<int> nodes_used;
  for (serve::QueryId id : ids) {
    auto out = cl.Peek(id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.ValueOrDie().state, QueryState::kCompleted);
    nodes_used.insert(out.ValueOrDie().node);
  }
  EXPECT_GT(nodes_used.size(), 1u)
      << "one tenant's overload stayed on one node";
}

TEST(ServeClusterTest, AllReplicasShedSurfacesMinRetryAfter) {
  ClusterOptions options = BaseOptions();
  options.cache_mode = CacheMode::kNone;
  options.node.num_streams = 1;
  options.node.execution_threads = 2;
  options.node.max_queue_depth = 1;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  auto session = cl.OpenSession(TenantOn(cl.router(), 0));
  SubmitOptions sub;
  sub.bypass_cache = true;
  sub.arrival_s = 0;
  Status all_shed = Status::OK();
  for (int i = 0; i < 32 && all_shed.ok(); ++i) {
    auto id = cl.Submit(session, tpch::Query(6), sub);
    if (!id.ok()) all_shed = id.status();
  }
  ASSERT_TRUE(all_shed.IsResourceExhausted())
      << "cluster never exhausted all replicas: " << all_shed.ToString();
  EXPECT_EQ(cl.stats().shed_all_replicas, 1u);

  // Every alive candidate was consulted, and the surfaced hint is the
  // minimum retry-after across them (floored at 1 ms) — the client should
  // come back when the *soonest* replica frees up.
  ASSERT_EQ(cl.last_shed().size(), static_cast<size_t>(kNodes));
  double min_hint = std::numeric_limits<double>::infinity();
  for (const auto& c : cl.last_shed()) {
    min_hint = std::min(min_hint, std::max(c.retry_after_s, 1e-3));
  }
  EXPECT_DOUBLE_EQ(serve::RetryAfterHint(all_shed), min_hint);
  ASSERT_TRUE(cl.DrainAll().ok());
}

TEST(ServeClusterTest, CatalogWriteInvalidatesEveryReplicaExactly) {
  ClusterOptions options = BaseOptions();
  options.cache_mode = CacheMode::kReplicated;
  ServeCluster cl(SharedDb(), NodeEngines(), options);

  const std::string tenant = TenantOn(cl.router(), 1);
  const std::string sql = tpch::Query(6);
  auto warm = cl.Submit(cl.OpenSession(tenant), sql, SubmitOptions{});
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());

  // A hit on a *different* replica proves the region is warm everywhere.
  const std::string other = TenantOn(cl.router(), 2);
  auto hit = cl.Submit(cl.OpenSession(other), sql, SubmitOptions{});
  ASSERT_TRUE(hit.ok());
  auto hout = cl.Resolve(hit.ValueOrDie());
  ASSERT_TRUE(hout.ok());
  ASSERT_TRUE(hout.ValueOrDie().cache_hit);

  // Catalog write: bump the write version by replacing a table in place.
  host::Catalog& catalog = SharedDb()->catalog();
  const uint64_t before = catalog.version();
  auto region = catalog.GetTable("region");
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(catalog.CreateTable("region", region.ValueOrDie()).ok());
  ASSERT_GT(catalog.version(), before);

  // The next submit observes the version change, multicasts the eager
  // invalidation, and the stale entry no longer serves — on any replica.
  auto miss = cl.Submit(cl.OpenSession(other), sql, SubmitOptions{});
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  ASSERT_TRUE(cl.DrainAll().ok());
  auto mout = cl.Peek(miss.ValueOrDie());
  ASSERT_TRUE(mout.ok());
  EXPECT_EQ(mout.ValueOrDie().state, QueryState::kCompleted);
  EXPECT_FALSE(mout.ValueOrDie().cache_hit)
      << "stale entry served after a catalog write";
  EXPECT_GE(cl.stats().invalidations_sent, 1u);
  EXPECT_GE(cl.stats().invalidations_delivered, 1u);

  // Exactness: the re-execution under the new version refills the region,
  // and the fresh entry serves again.
  auto again = cl.Submit(cl.OpenSession(tenant), sql, SubmitOptions{});
  ASSERT_TRUE(again.ok());
  auto aout = cl.Resolve(again.ValueOrDie());
  ASSERT_TRUE(aout.ok());
  EXPECT_TRUE(aout.ValueOrDie().cache_hit)
      << "fresh-version entry did not serve";
}

TEST(ServeClusterTest, LoadGeneratorDrivesTheClusterDeterministically) {
  auto run = [] {
    ClusterOptions options = BaseOptions();
    ServeCluster cl(SharedDb(), NodeEngines(), options);
    LoadOptions load;
    load.num_clients = 8;
    load.queries_per_client = 2;
    load.query_mix = {1, 6};
    load.tenants = {"gold", "silver", "bronze"};
    load.seed = 17;
    LoadGenerator gen(&cl, load);
    auto report = gen.Run();
    SIRIUS_CHECK_OK(report.status());
    return report.ValueOrDie();
  };
  run();  // warm every node engine's device column cache
  const LoadReport a = run();
  const LoadReport b = run();
  EXPECT_EQ(a.completed, 16u);
  EXPECT_EQ(a.failed, 0u);
  ASSERT_EQ(a.latencies_ms.size(), b.latencies_ms.size());
  for (size_t i = 0; i < a.latencies_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.latencies_ms[i], b.latencies_ms[i])
        << "latency histogram diverged at " << i;
  }
}

// ---------------------------------------------------------------------------
// Open-loop arrival schedule: per-tenant overrides + golden determinism
// ---------------------------------------------------------------------------

uint64_t ScheduleChecksum(const std::vector<serve::OpenLoopArrival>& sched) {
  uint64_t h = 0xfeedfacecafe;
  for (const auto& a : sched) {
    h = HashCombine(h, HashMix64(static_cast<uint64_t>(
                           std::llround(a.at_s * 1e9))));
    h = HashCombine(h, static_cast<uint64_t>(a.client));
  }
  return h;
}

TEST(OpenLoopArrivalsTest, OverridesDoNotPerturbTheBaseStream) {
  LoadOptions base;
  base.open_loop = true;
  base.num_clients = 8;
  base.arrival_rate_qps = 400;
  base.duration_s = 0.25;
  base.tenants = {"cold", "hot"};
  base.seed = 23;

  std::mt19937_64 rng_a(base.seed);
  const auto plain = serve::GenerateOpenLoopArrivals(base, 0.0, &rng_a);
  ASSERT_FALSE(plain.empty());

  LoadOptions hot = base;
  hot.tenant_arrival_rate_qps["hot"] = 2000;
  std::mt19937_64 rng_b(hot.seed);
  const auto mixed = serve::GenerateOpenLoopArrivals(hot, 0.0, &rng_b);

  // The base Poisson stream consumed the caller's rng identically: its
  // arrival *times* are unchanged by adding a hot-tenant override (only the
  // round-robin client targets shrink to the non-hot slots). "hot" owns the
  // odd client slots (round-robin tenant assignment).
  std::vector<double> base_times;
  for (const auto& a : mixed) {
    if (a.client % 2 == 0) base_times.push_back(a.at_s);
  }
  ASSERT_EQ(base_times.size(), plain.size());
  std::vector<double> plain_times;
  plain_times.reserve(plain.size());
  for (const auto& a : plain) plain_times.push_back(a.at_s);
  std::sort(base_times.begin(), base_times.end());
  std::sort(plain_times.begin(), plain_times.end());
  for (size_t i = 0; i < plain_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(base_times[i], plain_times[i]) << "base stream moved";
  }

  // The hot stream runs ~5x the base rate over half the client slots.
  const size_t hot_arrivals = mixed.size() - base_times.size();
  EXPECT_GT(hot_arrivals, plain.size() * 3)
      << "override rate did not take effect";
}

TEST(OpenLoopArrivalsTest, GoldenChecksumsPinTheSchedule) {
  // Golden values pin the exact schedule (times quantized to 1 ns): any
  // change to rng consumption order, the override derivation, or the
  // round-robin assignment shows up as a checksum break, not a silent
  // perturbation of every serving benchmark downstream.
  LoadOptions base;
  base.open_loop = true;
  base.num_clients = 6;
  base.arrival_rate_qps = 300;
  base.duration_s = 0.2;
  base.tenants = {"a", "b", "c"};
  base.seed = 41;
  std::mt19937_64 rng(base.seed);
  const auto plain = serve::GenerateOpenLoopArrivals(base, 0.0, &rng);

  LoadOptions hot = base;
  hot.tenant_arrival_rate_qps["b"] = 1500;
  std::mt19937_64 rng2(hot.seed);
  const auto mixed = serve::GenerateOpenLoopArrivals(hot, 0.0, &rng2);

  // Reproducibility: identical inputs => identical schedules.
  std::mt19937_64 rng3(hot.seed);
  const auto mixed2 = serve::GenerateOpenLoopArrivals(hot, 0.0, &rng3);
  EXPECT_EQ(ScheduleChecksum(mixed), ScheduleChecksum(mixed2));
  EXPECT_NE(ScheduleChecksum(plain), ScheduleChecksum(mixed));

  EXPECT_EQ(ScheduleChecksum(plain), 0x9d6532cd0feba60bull);
  EXPECT_EQ(ScheduleChecksum(mixed), 0xf440b9f27548dea1ull);
}

}  // namespace
}  // namespace sirius
