// Chaos tests for the serving layer: overload shedding ("serve.admit") and
// mid-query cancellation ("serve.cancel") injected through the deterministic
// fault schedule, under real concurrent load. The contract mirrors the rest
// of the chaos suite: queries either complete with answers, or fail with a
// clean Status — and the admission ledger balances to zero reservations on
// every path.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "engine/sirius.h"
#include "fault/fault_injector.h"
#include "serve/load_gen.h"
#include "serve/serve.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using serve::LoadGenerator;
using serve::LoadOptions;
using serve::LoadReport;
using serve::QueryServer;
using serve::ServeOptions;

constexpr double kSf = 0.005;
constexpr double kDataScale = 1.0 / kSf;

host::Database* SharedDb() {
  static host::Database* db = [] {
    host::Database::Options options;
    options.data_scale = kDataScale;
    auto* d = new host::Database(options);  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, kSf));
    return d;
  }();
  return db;
}

engine::SiriusEngine* SharedEngine() {
  static engine::SiriusEngine* eng = [] {
    engine::SiriusEngine::Options options;
    options.data_scale = kDataScale;
    return new engine::SiriusEngine(SharedDb(), options);  // sirius-lint: allow(raw-new-delete): leaked singleton
  }();
  return eng;
}

TEST(ServeChaosTest, AdmitSiteShedsDeterministically) {
  FaultInjector injector(0xfeed);
  FaultSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  spec.every_nth = 3;
  fault::ScopedFault armed(&injector, "serve.admit", spec);

  ServeOptions options;
  options.injector = &injector;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);

  LoadOptions load;
  load.num_clients = 6;
  load.queries_per_client = 3;
  load.query_mix = {1, 6};
  load.bypass_cache = true;
  load.max_retries = 2;
  load.seed = 3;
  LoadGenerator gen(&server, load);
  auto report = gen.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadReport& r = report.ValueOrDie();

  EXPECT_GT(r.shed, 0u) << "armed admit site never fired";
  EXPECT_GT(r.completed, 0u) << "shedding starved the workload entirely";
  EXPECT_GT(injector.injected("serve.admit"), 0u);
  // Shed submissions hold no resources; completed ones returned theirs.
  EXPECT_EQ(server.reservations().reserved(), 0u);
}

TEST(ServeChaosTest, CancelSiteReleasesEverything) {
  FaultInjector injector(0xbead);
  FaultSpec spec;
  spec.every_nth = 2;  // cancel every other execution
  fault::ScopedFault armed(&injector, "serve.cancel", spec);

  ServeOptions options;
  options.injector = &injector;
  options.result_cache = false;
  options.default_timeout_s = 5.0;  // cancellations land before this
  QueryServer server(SharedDb(), SharedEngine(), options);

  LoadOptions load;
  load.num_clients = 4;
  load.queries_per_client = 3;
  load.query_mix = {1, 6, 12};
  load.bypass_cache = true;
  load.seed = 5;
  LoadGenerator gen(&server, load);
  auto report = gen.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadReport& r = report.ValueOrDie();

  EXPECT_GT(r.timed_out, 0u) << "armed cancel site never fired";
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.completed + r.timed_out + r.failed,
            static_cast<uint64_t>(load.num_clients * load.queries_per_client));
  EXPECT_EQ(server.reservations().reserved(), 0u);
  // Cancelled queries surfaced as timeouts with the work they did charged.
  for (const auto& out : server.Outcomes()) {
    EXPECT_TRUE(out.terminal());
    if (out.state == serve::QueryState::kTimedOut) {
      EXPECT_TRUE(out.status.IsTimeout()) << out.status.ToString();
    }
  }
}

// Open-loop overload: arrivals outrun the device, the queue fills, load is
// shed with retry hints, and the books still balance.
TEST(ServeChaosTest, OpenLoopOverloadShedsAndRecovers) {
  ServeOptions options;
  options.num_streams = 2;
  options.max_queue_depth = 4;
  options.result_cache = false;
  QueryServer server(SharedDb(), SharedEngine(), options);

  LoadOptions load;
  load.open_loop = true;
  load.num_clients = 8;
  load.arrival_rate_qps = 2000;  // far beyond service capacity
  load.duration_s = 0.05;
  load.query_mix = {1, 6};
  load.bypass_cache = true;
  load.max_retries = 1;
  load.seed = 9;
  LoadGenerator gen(&server, load);
  auto report = gen.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const LoadReport& r = report.ValueOrDie();

  EXPECT_GT(r.shed, 0u) << "overload never shed";
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(server.reservations().reserved(), 0u);
  EXPECT_EQ(server.metrics().Gauges().at("serve.queue_depth"), 0.0);
}

}  // namespace
}  // namespace sirius
