// Tests for scalar UDFs (§3.4): registry, binding, evaluation, SQL
// integration, device-side capability gating with graceful fallback.

#include <gtest/gtest.h>

#include "engine/sirius.h"
#include "expr/eval.h"
#include "expr/udf.h"
#include "format/builder.h"
#include "host/database.h"

namespace sirius {
namespace {

using expr::UdfDefinition;
using expr::UdfRegistry;
using format::Column;
using format::Scalar;

/// RAII registration so tests do not leak UDFs into each other.
class ScopedUdf {
 public:
  explicit ScopedUdf(UdfDefinition def) : name_(def.name) {
    SIRIUS_CHECK_OK(UdfRegistry::Global()->Register(std::move(def)));
  }
  ~ScopedUdf() { (void)UdfRegistry::Global()->Unregister(name_); }

 private:
  std::string name_;
};

UdfDefinition ClampUdf() {
  UdfDefinition def;
  def.name = "clamp100";
  def.arity = 1;
  def.return_type = format::Int64();
  def.fn = [](const std::vector<Scalar>& args) -> Result<Scalar> {
    if (args[0].is_null()) return Scalar::Null(format::Int64());
    return Scalar::FromInt64(std::min<int64_t>(100, args[0].int_value()));
  };
  return def;
}

TEST(UdfRegistryTest, RegisterLookupUnregister) {
  ScopedUdf udf(ClampUdf());
  EXPECT_TRUE(UdfRegistry::Global()->Contains("clamp100"));
  auto def = UdfRegistry::Global()->Lookup("clamp100").ValueOrDie();
  EXPECT_EQ(def.arity, 1);
  EXPECT_FALSE(UdfRegistry::Global()->Lookup("nope").ok());
  EXPECT_FALSE(UdfRegistry::Global()->Unregister("nope").ok());
}

TEST(UdfRegistryTest, RegistrationValidation) {
  UdfDefinition bad;
  EXPECT_FALSE(UdfRegistry::Global()->Register(bad).ok());
}

TEST(UdfRegistryTest, NamesAreLowerCased) {
  UdfDefinition def = ClampUdf();
  def.name = "CLAMP100";
  ScopedUdf udf(std::move(def));
  EXPECT_TRUE(UdfRegistry::Global()->Contains("clamp100"));
}

TEST(UdfEvalTest, EvaluatesPerRowWithNulls) {
  ScopedUdf udf(ClampUdf());
  auto t = format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({50, 500, 0},
                                                  {true, true, false})})
               .ValueOrDie();
  auto e = expr::Udf("clamp100", {expr::ColRef("v")});
  SIRIUS_CHECK_OK(expr::Bind(e, t->schema()));
  EXPECT_EQ(e->type, format::Int64());
  auto c = expr::Evaluate(*e, *t).ValueOrDie();
  EXPECT_EQ(c->data<int64_t>()[0], 50);
  EXPECT_EQ(c->data<int64_t>()[1], 100);
  EXPECT_TRUE(c->IsNull(2));
}

TEST(UdfEvalTest, ArityChecked) {
  ScopedUdf udf(ClampUdf());
  auto t = format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({1})})
               .ValueOrDie();
  auto e = expr::Udf("clamp100", {expr::ColRef("v"), expr::ColRef("v")});
  EXPECT_EQ(expr::Bind(e, t->schema()).code(), StatusCode::kBindError);
}

TEST(UdfSqlTest, CallableFromSql) {
  ScopedUdf udf(ClampUdf());
  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable(
      "t", format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({10, 2000, 70})})
               .ValueOrDie()));
  auto r = db.Query("select clamp100(v) as c from t order by c").ValueOrDie();
  ASSERT_EQ(r.table->num_rows(), 3u);
  EXPECT_EQ(r.table->column(0)->data<int64_t>()[0], 10);
  EXPECT_EQ(r.table->column(0)->data<int64_t>()[2], 100);
}

TEST(UdfSqlTest, UnknownFunctionStillErrors) {
  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable(
      "t", format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({1})})
               .ValueOrDie()));
  auto r = db.Query("select no_such_fn(v) from t");
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(UdfSqlTest, UsableInWherePredicates) {
  ScopedUdf udf(ClampUdf());
  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable(
      "t", format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({10, 2000, 70})})
               .ValueOrDie()));
  auto r = db.Query("select v from t where clamp100(v) = 100").ValueOrDie();
  EXPECT_EQ(r.table->num_rows(), 1u);
  EXPECT_EQ(r.table->column(0)->data<int64_t>()[0], 2000);
}

TEST(UdfEngineTest, FallsBackToHostByDefault) {
  // Paper §3.4: device-side UDFs are future work; plans containing UDFs
  // must route back to the CPU engine without user-visible changes.
  ScopedUdf udf(ClampUdf());
  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable(
      "t", format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({10, 2000, 70})})
               .ValueOrDie()));
  engine::SiriusEngine eng(&db, {});
  db.SetAccelerator(&eng);
  auto r = db.Query("select clamp100(v) as c from t order by c").ValueOrDie();
  db.SetAccelerator(nullptr);
  EXPECT_TRUE(r.fell_back);
  EXPECT_FALSE(r.accelerated);
  EXPECT_EQ(r.table->column(0)->data<int64_t>()[2], 100);
}

TEST(UdfEngineTest, RunsOnDeviceWhenCapabilityEnabled) {
  ScopedUdf udf(ClampUdf());
  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable(
      "t", format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({10, 2000, 70})})
               .ValueOrDie()));
  engine::SiriusEngine::Options options;
  options.capabilities.udf = true;  // pretend a compiled device UDF exists
  engine::SiriusEngine eng(&db, options);
  db.SetAccelerator(&eng);
  auto r = db.Query("select clamp100(v) as c from t order by c").ValueOrDie();
  db.SetAccelerator(nullptr);
  EXPECT_TRUE(r.accelerated);
  EXPECT_EQ(r.table->column(0)->data<int64_t>()[2], 100);
}

TEST(UdfEngineTest, SurvivesSubstraitRoundTrip) {
  ScopedUdf udf(ClampUdf());
  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable(
      "t", format::Table::Make(format::Schema({{"v", format::Int64()}}),
                               {Column::FromInt64({10, 2000})})
               .ValueOrDie()));
  auto wire = db.ExportSubstrait("select clamp100(v) as c from t").ValueOrDie();
  EXPECT_NE(wire.find("udf"), std::string::npos);
  EXPECT_NE(wire.find("clamp100"), std::string::npos);
}

}  // namespace
}  // namespace sirius
