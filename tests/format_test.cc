// Unit tests for the columnar format: types, scalars, columns, tables,
// builders, date/decimal behaviour.

#include <gtest/gtest.h>

#include "format/builder.h"
#include "format/column.h"
#include "format/table.h"
#include "format/types.h"

namespace sirius::format {
namespace {

TEST(TypesTest, ByteWidths) {
  EXPECT_EQ(Bool().byte_width(), 1);
  EXPECT_EQ(Int32().byte_width(), 4);
  EXPECT_EQ(Date32().byte_width(), 4);
  EXPECT_EQ(Int64().byte_width(), 8);
  EXPECT_EQ(Float64().byte_width(), 8);
  EXPECT_EQ(Decimal(2).byte_width(), 8);
  EXPECT_EQ(String().byte_width(), 8);
}

TEST(TypesTest, Equality) {
  EXPECT_EQ(Decimal(2), Decimal(2));
  EXPECT_NE(Decimal(2), Decimal(4));
  EXPECT_NE(Int64(), Int32());
}

TEST(TypesTest, DecimalPow10) {
  EXPECT_EQ(DecimalPow10(0), 1);
  EXPECT_EQ(DecimalPow10(2), 100);
  EXPECT_EQ(DecimalPow10(18), 1000000000000000000LL);
}

TEST(DateTest, CivilRoundTrip) {
  for (int32_t days : {0, 1, -1, 8035, 9298, 10000, -30000}) {
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1992, 1, 1), 8035);
  EXPECT_EQ(DaysFromCivil(1995, 6, 17), 9298);
  EXPECT_EQ(ParseDate("1995-03-15"), DaysFromCivil(1995, 3, 15));
  EXPECT_EQ(FormatDate(DaysFromCivil(1998, 12, 1)), "1998-12-01");
}

TEST(DateTest, ParseRejectsMalformed) {
  EXPECT_EQ(ParseDate("not-a-date"), INT32_MIN);
  EXPECT_EQ(ParseDate("1995-13-01"), INT32_MIN);
  EXPECT_EQ(ParseDate("1995-00-10"), INT32_MIN);
}

TEST(ScalarTest, NullBehaviour) {
  Scalar s = Scalar::Null(Decimal(2));
  EXPECT_TRUE(s.is_null());
  EXPECT_EQ(s.ToString(), "NULL");
  EXPECT_TRUE(s == Scalar::Null(Decimal(2)));
  EXPECT_FALSE(s == Scalar::FromInt64(0));
}

TEST(ScalarTest, DecimalRendering) {
  EXPECT_EQ(Scalar::FromDecimal(12345, 2).ToString(), "123.45");
  EXPECT_EQ(Scalar::FromDecimal(5, 2).ToString(), "0.05");
  EXPECT_EQ(Scalar::FromDecimal(-12345, 2).ToString(), "-123.45");
  EXPECT_EQ(Scalar::FromDecimal(7, 0).ToString(), "7");
}

TEST(ScalarTest, DecimalCrossScaleEquality) {
  EXPECT_TRUE(Scalar::FromDecimal(100, 2) == Scalar::FromDecimal(1000, 3));
  EXPECT_FALSE(Scalar::FromDecimal(100, 2) == Scalar::FromDecimal(101, 2));
  EXPECT_TRUE(Scalar::FromDecimal(500, 2) == Scalar::FromInt64(5));
}

TEST(ScalarTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Scalar::FromDecimal(150, 2).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(Scalar::FromInt64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Scalar::FromDouble(2.5).AsDouble(), 2.5);
}

TEST(ColumnTest, FixedWidthConstruction) {
  ColumnPtr c = Column::FromInt64({1, 2, 3});
  EXPECT_EQ(c->length(), 3u);
  EXPECT_EQ(c->null_count(), 0u);
  EXPECT_EQ(c->data<int64_t>()[1], 2);
  EXPECT_EQ(c->GetScalar(2), Scalar::FromInt64(3));
}

TEST(ColumnTest, NullHandling) {
  ColumnPtr c = Column::FromInt64({1, 2, 3}, {true, false, true});
  EXPECT_EQ(c->null_count(), 1u);
  EXPECT_FALSE(c->IsNull(0));
  EXPECT_TRUE(c->IsNull(1));
  EXPECT_TRUE(c->GetScalar(1).is_null());
}

TEST(ColumnTest, StringLayout) {
  ColumnPtr c = Column::FromStrings({"foo", "", "barbaz"});
  EXPECT_EQ(c->length(), 3u);
  EXPECT_EQ(c->StringAt(0), "foo");
  EXPECT_EQ(c->StringAt(1), "");
  EXPECT_EQ(c->StringAt(2), "barbaz");
  EXPECT_EQ(c->chars_size(), 9u);
  EXPECT_EQ(c->offsets()[3], 9);
}

TEST(ColumnTest, Equality) {
  EXPECT_TRUE(Column::FromInt64({1, 2})->Equals(*Column::FromInt64({1, 2})));
  EXPECT_FALSE(Column::FromInt64({1, 2})->Equals(*Column::FromInt64({1, 3})));
  EXPECT_FALSE(Column::FromInt64({1})->Equals(*Column::FromInt64({1, 2})));
  EXPECT_TRUE(Column::FromStrings({"a"})->Equals(*Column::FromStrings({"a"})));
  EXPECT_FALSE(Column::FromInt64({1})->Equals(*Column::FromInt32({1})));
}

TEST(ColumnTest, MemoryUsageCountsBuffers) {
  ColumnPtr c = Column::FromInt64({1, 2, 3, 4});
  EXPECT_EQ(c->MemoryUsage(), 32u);
  ColumnPtr s = Column::FromStrings({"ab", "cd"});
  EXPECT_EQ(s->MemoryUsage(), 3 * 8 + 4u);
}

TEST(TableTest, MakeValidatesShape) {
  Schema schema({{"a", Int64()}, {"b", String()}});
  auto ok = Table::Make(schema, {Column::FromInt64({1}), Column::FromStrings({"x"})});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie()->num_rows(), 1u);

  auto bad_count = Table::Make(schema, {Column::FromInt64({1})});
  EXPECT_FALSE(bad_count.ok());

  auto bad_len = Table::Make(
      schema, {Column::FromInt64({1, 2}), Column::FromStrings({"x"})});
  EXPECT_FALSE(bad_len.ok());

  auto bad_type = Table::Make(
      schema, {Column::FromStrings({"x"}), Column::FromStrings({"y"})});
  EXPECT_FALSE(bad_type.ok());
}

TEST(TableTest, ColumnByNameAndSelect) {
  Schema schema({{"a", Int64()}, {"b", Int64()}});
  auto t = Table::Make(schema, {Column::FromInt64({1}), Column::FromInt64({2})})
               .ValueOrDie();
  EXPECT_EQ(t->ColumnByName("b")->data<int64_t>()[0], 2);
  EXPECT_EQ(t->ColumnByName("zzz"), nullptr);
  auto sel = t->SelectColumns({1}).ValueOrDie();
  EXPECT_EQ(sel->num_columns(), 1u);
  EXPECT_EQ(sel->schema().field(0).name, "b");
  EXPECT_FALSE(t->SelectColumns({5}).ok());
}

TEST(TableTest, EqualsUnorderedIgnoresRowOrder) {
  Schema schema({{"a", Int64()}, {"b", String()}});
  auto t1 = Table::Make(schema, {Column::FromInt64({1, 2}),
                                 Column::FromStrings({"x", "y"})})
                .ValueOrDie();
  auto t2 = Table::Make(schema, {Column::FromInt64({2, 1}),
                                 Column::FromStrings({"y", "x"})})
                .ValueOrDie();
  EXPECT_FALSE(t1->Equals(*t2));
  EXPECT_TRUE(t1->EqualsUnordered(*t2));
  auto t3 = Table::Make(schema, {Column::FromInt64({2, 1}),
                                 Column::FromStrings({"x", "y"})})
                .ValueOrDie();
  EXPECT_FALSE(t1->EqualsUnordered(*t3));
}

TEST(BuilderTest, AllTypes) {
  ColumnBuilder ints(Int64());
  ints.AppendInt(7);
  ints.AppendNull();
  ColumnPtr ic = ints.Finish();
  EXPECT_EQ(ic->length(), 2u);
  EXPECT_EQ(ic->null_count(), 1u);
  EXPECT_EQ(ic->data<int64_t>()[0], 7);

  ColumnBuilder strs(String());
  strs.AppendString("hello");
  strs.AppendNull();
  strs.AppendString("world");
  ColumnPtr sc = strs.Finish();
  EXPECT_EQ(sc->StringAt(0), "hello");
  EXPECT_TRUE(sc->IsNull(1));
  EXPECT_EQ(sc->StringAt(2), "world");

  ColumnBuilder dates(Date32());
  dates.AppendInt(ParseDate("1994-01-01"));
  ColumnPtr dc = dates.Finish();
  EXPECT_EQ(dc->type().id, TypeId::kDate32);
  EXPECT_EQ(dc->GetScalar(0).ToString(), "1994-01-01");
}

TEST(BuilderTest, AppendScalarRescalesDecimals) {
  ColumnBuilder b(Decimal(4));
  ASSERT_TRUE(b.AppendScalar(Scalar::FromDecimal(150, 2)).ok());  // 1.50
  ASSERT_TRUE(b.AppendScalar(Scalar::FromInt64(2)).ok());         // 2
  ColumnPtr c = b.Finish();
  EXPECT_EQ(c->data<int64_t>()[0], 15000);
  EXPECT_EQ(c->data<int64_t>()[1], 20000);
}

TEST(BuilderTest, AppendScalarTypeChecks) {
  ColumnBuilder b(String());
  EXPECT_FALSE(b.AppendScalar(Scalar::FromInt64(1)).ok());
  ColumnBuilder n(Int64());
  EXPECT_FALSE(n.AppendScalar(Scalar::FromString("x")).ok());
}

TEST(BuilderTest, FinishResetsState) {
  ColumnBuilder b(Int64());
  b.AppendInt(1);
  EXPECT_EQ(b.Finish()->length(), 1u);
  b.AppendInt(2);
  ColumnPtr second = b.Finish();
  EXPECT_EQ(second->length(), 1u);
  EXPECT_EQ(second->data<int64_t>()[0], 2);
}

TEST(TableBuilderTest, BuildsAgainstSchema) {
  Schema schema({{"k", Int64()}, {"v", String()}});
  TableBuilder tb(schema);
  tb.column(0).AppendInt(1);
  tb.column(1).AppendString("one");
  auto t = tb.Finish().ValueOrDie();
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->schema().field(1).name, "v");
}

}  // namespace
}  // namespace sirius::format
