// End-to-end smoke test: all 22 TPC-H queries parse, bind, optimize and
// execute on the DuckX CPU engine at a small scale factor.

#include <gtest/gtest.h>

#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

class TpchSmokeTest : public ::testing::TestWithParam<int> {
 protected:
  static host::Database* db() {
    static host::Database* instance = [] {
      auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
      SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.01));
      return d;
    }();
    return instance;
  }
};

TEST_P(TpchSmokeTest, ExecutesOnCpuEngine) {
  const int q = GetParam();
  auto result = db()->Query(tpch::Query(q));
  ASSERT_TRUE(result.ok()) << "Q" << q << ": " << result.status().ToString();
  const auto& r = result.ValueOrDie();
  ASSERT_NE(r.table, nullptr);
  EXPECT_GT(r.table->num_columns(), 0u) << "Q" << q;
  EXPECT_GT(r.timeline.total_seconds(), 0.0) << "Q" << q;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchSmokeTest, ::testing::Range(1, 23),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(TpchDbgenTest, CardinalitiesScale) {
  auto supplier = tpch::GenerateTable("supplier", 0.01).ValueOrDie();
  EXPECT_EQ(supplier->num_rows(), 100u);
  auto part = tpch::GenerateTable("part", 0.01).ValueOrDie();
  EXPECT_EQ(part->num_rows(), 2000u);
  auto partsupp = tpch::GenerateTable("partsupp", 0.01).ValueOrDie();
  EXPECT_EQ(partsupp->num_rows(), 8000u);
  auto customer = tpch::GenerateTable("customer", 0.01).ValueOrDie();
  EXPECT_EQ(customer->num_rows(), 1500u);
  auto orders = tpch::GenerateTable("orders", 0.01).ValueOrDie();
  EXPECT_EQ(orders->num_rows(), 15000u);
  auto region = tpch::GenerateTable("region", 0.01).ValueOrDie();
  EXPECT_EQ(region->num_rows(), 5u);
  auto nation = tpch::GenerateTable("nation", 0.01).ValueOrDie();
  EXPECT_EQ(nation->num_rows(), 25u);
}

TEST(TpchDbgenTest, Deterministic) {
  auto a = tpch::GenerateTable("orders", 0.005).ValueOrDie();
  auto b = tpch::GenerateTable("orders", 0.005).ValueOrDie();
  EXPECT_TRUE(a->Equals(*b));
}

TEST(TpchDbgenTest, LineitemDatesAreConsistent) {
  auto orders = tpch::GenerateTable("orders", 0.005).ValueOrDie();
  auto lineitem = tpch::GenerateTable("lineitem", 0.005).ValueOrDie();
  // Build orderkey -> orderdate and check l_shipdate > o_orderdate.
  std::map<int64_t, int32_t> dates;
  const int64_t* okey = orders->ColumnByName("o_orderkey")->data<int64_t>();
  const int32_t* odate = orders->ColumnByName("o_orderdate")->data<int32_t>();
  for (size_t i = 0; i < orders->num_rows(); ++i) dates[okey[i]] = odate[i];
  const int64_t* lkey = lineitem->ColumnByName("l_orderkey")->data<int64_t>();
  const int32_t* ship = lineitem->ColumnByName("l_shipdate")->data<int32_t>();
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    auto it = dates.find(lkey[i]);
    ASSERT_NE(it, dates.end());
    EXPECT_GT(ship[i], it->second);
  }
}

TEST(TpchDbgenTest, UnknownTableErrors) {
  EXPECT_FALSE(tpch::GenerateTable("bogus", 1.0).ok());
}

}  // namespace
}  // namespace sirius
