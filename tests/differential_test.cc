// Differential correctness: every GPU-supported TPC-H query runs through
// both the SiriusEngine device path and the host CPU executor on the same
// optimized plan, and the result tables must agree cell-by-cell (type-aware
// epsilon for FLOAT64, exact for everything else).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <string>
#include <tuple>

#include "engine/sirius.h"
#include "host/database.h"
#include "ssb/dbgen.h"
#include "ssb/queries.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using format::Column;
using format::Table;
using format::TypeId;

// Three-way cell comparison with exact double ordering; used only to put
// both result tables into one canonical row order before pairing.
int CompareCell(const Column& a, size_t i, const Column& b, size_t j) {
  const bool na = a.IsNull(i);
  const bool nb = b.IsNull(j);
  if (na != nb) return na ? -1 : 1;
  if (na) return 0;
  auto cmp = [](auto x, auto y) { return x < y ? -1 : (y < x ? 1 : 0); };
  switch (a.type().id) {
    case TypeId::kBool:
      return cmp(a.data<uint8_t>()[i], b.data<uint8_t>()[j]);
    case TypeId::kInt32:
    case TypeId::kDate32:
      return cmp(a.data<int32_t>()[i], b.data<int32_t>()[j]);
    case TypeId::kInt64:
    case TypeId::kDecimal64:
      return cmp(a.data<int64_t>()[i], b.data<int64_t>()[j]);
    case TypeId::kFloat64:
      return cmp(a.data<double>()[i], b.data<double>()[j]);
    case TypeId::kString:
      return cmp(a.StringAt(i), b.StringAt(j));
    default:
      return 0;
  }
}

/// Type-aware equality: FLOAT64 cells compare within a relative epsilon
/// (aggregation order differs between the device and host paths); every
/// other type must match exactly.
bool CellsAgree(const Column& a, size_t i, const Column& b, size_t j) {
  if (a.type().id == TypeId::kFloat64 && !a.IsNull(i) && !b.IsNull(j)) {
    const double x = a.data<double>()[i];
    const double y = b.data<double>()[j];
    const double eps = 1e-6 * std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= eps;
  }
  return CompareCell(a, i, b, j) == 0;
}

/// Row indices of `t` in canonical (all-columns lexicographic) order.
std::vector<size_t> CanonicalOrder(const Table& t) {
  std::vector<size_t> idx(t.num_rows());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      int r = CompareCell(*t.column(c), x, *t.column(c), y);
      if (r != 0) return r < 0;
    }
    return false;
  });
  return idx;
}

host::Database* Db() {
  static host::Database* db = [] {
    auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(tpch::LoadTpch(d, 0.01));
    return d;
  }();
  return db;
}

engine::SiriusEngine* Gpu() {
  static engine::SiriusEngine* engine =
      new engine::SiriusEngine(Db(), {});  // sirius-lint: allow(raw-new-delete): leaked singleton
  return engine;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, GpuMatchesCpuCellByCell) {
  const int q = GetParam();
  auto plan = Db()->PlanSql(tpch::Query(q)).ValueOrDie();

  auto gpu = Gpu()->ExecutePlan(plan);
  if (!gpu.ok() && gpu.status().IsUnsupportedOnDevice()) {
    GTEST_SKIP() << "Q" << q << " not GPU-supported: "
                 << gpu.status().ToString();
  }
  ASSERT_TRUE(gpu.ok()) << "Q" << q << ": " << gpu.status().ToString();
  auto cpu = Db()->ExecutePlanCpu(plan);
  ASSERT_TRUE(cpu.ok()) << "Q" << q << ": " << cpu.status().ToString();

  const Table& g = *gpu.ValueOrDie().table;
  const Table& c = *cpu.ValueOrDie().table;
  ASSERT_EQ(g.num_columns(), c.num_columns()) << "Q" << q;
  ASSERT_EQ(g.num_rows(), c.num_rows()) << "Q" << q;
  for (size_t col = 0; col < g.num_columns(); ++col) {
    ASSERT_EQ(g.schema().field(col).type, c.schema().field(col).type)
        << "Q" << q << " column " << col << " type mismatch";
  }

  // Pair rows in canonical order (ORDER BY ties are not fully determined),
  // then demand cell-level agreement.
  std::vector<size_t> gi = CanonicalOrder(g);
  std::vector<size_t> ci = CanonicalOrder(c);
  int mismatches = 0;
  for (size_t r = 0; r < g.num_rows() && mismatches < 5; ++r) {
    for (size_t col = 0; col < g.num_columns(); ++col) {
      if (!CellsAgree(*g.column(col), gi[r], *c.column(col), ci[r])) {
        ++mismatches;
        ADD_FAILURE() << "Q" << q << " row " << r << " column " << col
                      << " (" << g.schema().field(col).name << "): gpu="
                      << g.column(col)->GetScalar(gi[r]).ToString() << " cpu="
                      << c.column(col)->GetScalar(ci[r]).ToString();
      }
    }
  }
  EXPECT_EQ(mismatches, 0) << "Q" << q;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, DifferentialTest, ::testing::Range(1, 23),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// SSB sweep: all 13 queries x generator variants (uniform, Zipf skew 1 and 2
// on the fact-table foreign keys, string-heavy dimension strings). The skewed
// variants concentrate the join build sides onto a few hot keys and the
// string-heavy variant makes string sort-based group-bys dominate — the
// paper's §4.2 hard cases, held cell-for-cell exact GPU vs CPU.
// ---------------------------------------------------------------------------

struct SsbVariant {
  const char* name;
  double skew;
  bool string_heavy;
};

constexpr SsbVariant kSsbVariants[] = {{"Skew0", 0.0, false},
                                       {"Skew1", 1.0, false},
                                       {"Skew2", 2.0, false},
                                       {"StringHeavy", 0.0, true}};
constexpr int kNumSsbVariants = 4;

ssb::SsbOptions SsbOptionsFor(int v) {
  ssb::SsbOptions options;
  options.sf = 0.005;
  options.skew = kSsbVariants[v].skew;
  options.string_heavy = kSsbVariants[v].string_heavy;
  return options;
}

host::Database* SsbDb(int v) {
  static std::array<host::Database*, kNumSsbVariants> dbs{};
  if (dbs[static_cast<size_t>(v)] == nullptr) {
    auto* d = new host::Database();  // sirius-lint: allow(raw-new-delete): leaked singleton
    SIRIUS_CHECK_OK(ssb::LoadSsb(d, SsbOptionsFor(v)));
    dbs[static_cast<size_t>(v)] = d;
  }
  return dbs[static_cast<size_t>(v)];
}

engine::SiriusEngine* SsbGpu(int v) {
  static std::array<engine::SiriusEngine*, kNumSsbVariants> engines{};
  if (engines[static_cast<size_t>(v)] == nullptr) {
    engines[static_cast<size_t>(v)] =
        new engine::SiriusEngine(SsbDb(v), {});  // sirius-lint: allow(raw-new-delete): leaked singleton
  }
  return engines[static_cast<size_t>(v)];
}

class SsbDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SsbDifferentialTest, GpuMatchesCpuCellByCell) {
  const int v = std::get<0>(GetParam());
  const int q = std::get<1>(GetParam());
  const std::string label =
      std::string(kSsbVariants[v].name) + "/" + ssb::QueryName(q);
  auto plan = SsbDb(v)->PlanSql(ssb::Query(q)).ValueOrDie();

  auto gpu = SsbGpu(v)->ExecutePlan(plan);
  ASSERT_TRUE(gpu.ok()) << label << ": " << gpu.status().ToString();
  auto cpu = SsbDb(v)->ExecutePlanCpu(plan);
  ASSERT_TRUE(cpu.ok()) << label << ": " << cpu.status().ToString();

  const Table& g = *gpu.ValueOrDie().table;
  const Table& c = *cpu.ValueOrDie().table;
  ASSERT_EQ(g.num_columns(), c.num_columns()) << label;
  ASSERT_EQ(g.num_rows(), c.num_rows()) << label;
  for (size_t col = 0; col < g.num_columns(); ++col) {
    ASSERT_EQ(g.schema().field(col).type, c.schema().field(col).type)
        << label << " column " << col << " type mismatch";
  }

  std::vector<size_t> gi = CanonicalOrder(g);
  std::vector<size_t> ci = CanonicalOrder(c);
  int mismatches = 0;
  for (size_t r = 0; r < g.num_rows() && mismatches < 5; ++r) {
    for (size_t col = 0; col < g.num_columns(); ++col) {
      // SSB money columns are Int64, so every cell comparison here is exact.
      if (!CellsAgree(*g.column(col), gi[r], *c.column(col), ci[r])) {
        ++mismatches;
        ADD_FAILURE() << label << " row " << r << " column " << col << " ("
                      << g.schema().field(col).name << "): gpu="
                      << g.column(col)->GetScalar(gi[r]).ToString() << " cpu="
                      << c.column(col)->GetScalar(ci[r]).ToString();
      }
    }
  }
  EXPECT_EQ(mismatches, 0) << label;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SsbDifferentialTest,
    ::testing::Combine(::testing::Range(0, kNumSsbVariants),
                       ::testing::Range(1, ssb::NumQueries() + 1)),
    [](const auto& info) {
      std::string name = ssb::QueryName(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '.', '_');
      name[0] = 'Q';
      return std::string(kSsbVariants[std::get<0>(info.param)].name) + "_" +
             name;
    });

// The sweep must not pass vacuously: the flight-2/3/4 group-bys have to
// produce real groups at the test scale factor on every variant.
TEST(SsbDifferentialSanity, GroupByQueriesProduceRows) {
  for (int v = 0; v < kNumSsbVariants; ++v) {
    for (int q : {4, 7, 11}) {  // q2.1, q3.1, q4.1
      auto plan = SsbDb(v)->PlanSql(ssb::Query(q)).ValueOrDie();
      auto cpu = SsbDb(v)->ExecutePlanCpu(plan);
      ASSERT_TRUE(cpu.ok()) << cpu.status().ToString();
      EXPECT_GT(cpu.ValueOrDie().table->num_rows(), 0u)
          << kSsbVariants[v].name << "/" << ssb::QueryName(q);
    }
  }
}

// ---------------------------------------------------------------------------
// Fusion sweep: fused (default) vs materialized (fusion=false) execution of
// the same plan on the same engine state must agree cell-for-cell across all
// 22 TPC-H queries and all 13 SSB queries. The fused path replaces gathered
// intermediates with selection-vector flow; any divergence in row mapping,
// null handling, or sink materialization shows up here.
// ---------------------------------------------------------------------------

engine::SiriusEngine* GpuUnfused() {
  static engine::SiriusEngine* engine = [] {
    engine::SiriusEngine::Options options;
    options.fusion = false;
    return new engine::SiriusEngine(Db(), options);  // sirius-lint: allow(raw-new-delete): leaked singleton
  }();
  return engine;
}

void ExpectTablesAgree(const Table& f, const Table& m, const std::string& label) {
  ASSERT_EQ(f.num_columns(), m.num_columns()) << label;
  ASSERT_EQ(f.num_rows(), m.num_rows()) << label;
  std::vector<size_t> fi = CanonicalOrder(f);
  std::vector<size_t> mi = CanonicalOrder(m);
  int mismatches = 0;
  for (size_t r = 0; r < f.num_rows() && mismatches < 5; ++r) {
    for (size_t col = 0; col < f.num_columns(); ++col) {
      if (!CellsAgree(*f.column(col), fi[r], *m.column(col), mi[r])) {
        ++mismatches;
        ADD_FAILURE() << label << " row " << r << " column " << col << " ("
                      << f.schema().field(col).name << "): fused="
                      << f.column(col)->GetScalar(fi[r]).ToString()
                      << " materialized="
                      << m.column(col)->GetScalar(mi[r]).ToString();
      }
    }
  }
  EXPECT_EQ(mismatches, 0) << label;
}

class FusionDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(FusionDifferentialTest, FusedMatchesMaterializedCellByCell) {
  const int q = GetParam();
  auto plan = Db()->PlanSql(tpch::Query(q)).ValueOrDie();

  auto fused = Gpu()->ExecutePlan(plan);
  if (!fused.ok() && fused.status().IsUnsupportedOnDevice()) {
    GTEST_SKIP() << "Q" << q << " not GPU-supported: "
                 << fused.status().ToString();
  }
  ASSERT_TRUE(fused.ok()) << "Q" << q << ": " << fused.status().ToString();
  auto mat = GpuUnfused()->ExecutePlan(plan);
  ASSERT_TRUE(mat.ok()) << "Q" << q << ": " << mat.status().ToString();

  ExpectTablesAgree(*fused.ValueOrDie().table, *mat.ValueOrDie().table,
                    "Q" + std::to_string(q));
}

INSTANTIATE_TEST_SUITE_P(AllQueries, FusionDifferentialTest,
                         ::testing::Range(1, 23), [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

engine::SiriusEngine* SsbGpuUnfused() {
  static engine::SiriusEngine* engine = [] {
    engine::SiriusEngine::Options options;
    options.fusion = false;
    return new engine::SiriusEngine(SsbDb(0), options);  // sirius-lint: allow(raw-new-delete): leaked singleton
  }();
  return engine;
}

class SsbFusionDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SsbFusionDifferentialTest, FusedMatchesMaterializedCellByCell) {
  const int q = GetParam();
  auto plan = SsbDb(0)->PlanSql(ssb::Query(q)).ValueOrDie();

  auto fused = SsbGpu(0)->ExecutePlan(plan);
  ASSERT_TRUE(fused.ok()) << ssb::QueryName(q) << ": "
                          << fused.status().ToString();
  auto mat = SsbGpuUnfused()->ExecutePlan(plan);
  ASSERT_TRUE(mat.ok()) << ssb::QueryName(q) << ": "
                        << mat.status().ToString();

  ExpectTablesAgree(*fused.ValueOrDie().table, *mat.ValueOrDie().table,
                    ssb::QueryName(q));
}

INSTANTIATE_TEST_SUITE_P(AllQueries, SsbFusionDifferentialTest,
                         ::testing::Range(1, ssb::NumQueries() + 1),
                         [](const auto& info) {
                           std::string name = ssb::QueryName(info.param);
                           std::replace(name.begin(), name.end(), '.', '_');
                           name[0] = 'Q';
                           return name;
                         });

}  // namespace
}  // namespace sirius
