// Tests for Bloom-filter predicate transfer (§3.4, [29, 30]).

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "engine/sirius.h"
#include "format/builder.h"
#include "gdf/bloom.h"
#include "tpch/queries.h"

namespace sirius::gdf {
namespace {

using format::Column;
using format::ColumnPtr;

Context Ctx() {
  Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

TEST(BloomFilterTest, NoFalseNegatives) {
  std::mt19937_64 rng(1);
  std::vector<int64_t> keys(5000);
  for (auto& k : keys) k = static_cast<int64_t>(rng());
  auto col = Column::FromInt64(keys);
  BloomFilter bloom(keys.size());
  bloom.InsertColumn(col);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(bloom.MightContain(*col, i)) << i;
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  std::mt19937_64 rng(2);
  std::vector<int64_t> inserted(10000), probed(10000);
  for (auto& k : inserted) k = static_cast<int64_t>(rng() % 1000000);
  for (auto& k : probed) k = 1000000 + static_cast<int64_t>(rng() % 1000000);
  auto in_col = Column::FromInt64(inserted);
  auto probe_col = Column::FromInt64(probed);
  BloomFilter bloom(inserted.size());
  bloom.InsertColumn(in_col);
  size_t fp = 0;
  for (size_t i = 0; i < probed.size(); ++i) {
    fp += bloom.MightContain(*probe_col, i) ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(fp) / probed.size(), 0.05);
}

TEST(BloomFilterTest, NullKeysNeverContained) {
  auto col = Column::FromInt64({1, 2}, {true, false});
  BloomFilter bloom(2);
  bloom.InsertColumn(col);
  EXPECT_TRUE(bloom.MightContain(*col, 0));
  EXPECT_FALSE(bloom.MightContain(*col, 1));
}

TEST(BloomFilterTest, StringKeys) {
  auto col = Column::FromStrings({"alpha", "beta"});
  auto other = Column::FromStrings({"gamma_not_inserted_zzz"});
  BloomFilter bloom(2);
  bloom.InsertColumn(col);
  EXPECT_TRUE(bloom.MightContain(*col, 0));
  EXPECT_TRUE(bloom.MightContain(*col, 1));
  EXPECT_FALSE(bloom.MightContain(*other, 0));
}

TEST(BloomPrefilterTest, KeepsAllMatchingRows) {
  auto probe = format::Table::Make(
                   format::Schema({{"k", format::Int64()}, {"v", format::Int64()}}),
                   {Column::FromInt64({1, 2, 3, 4, 5, 6, 7, 8}),
                    Column::FromInt64({10, 20, 30, 40, 50, 60, 70, 80})})
                   .ValueOrDie();
  auto build_key = Column::FromInt64({2, 4, 6});
  auto ctx = Ctx();
  auto filtered = BloomPrefilter(ctx, probe, {0}, build_key).ValueOrDie();
  // Every true match survives (no false negatives).
  std::set<int64_t> kept;
  for (size_t i = 0; i < filtered->num_rows(); ++i) {
    kept.insert(filtered->column(0)->data<int64_t>()[i]);
  }
  EXPECT_TRUE(kept.count(2));
  EXPECT_TRUE(kept.count(4));
  EXPECT_TRUE(kept.count(6));
  EXPECT_LE(filtered->num_rows(), probe->num_rows());
}

TEST(BloomPrefilterTest, MultiKeyRejected) {
  auto probe = format::Table::Make(format::Schema({{"k", format::Int64()}}),
                                   {Column::FromInt64({1})})
                   .ValueOrDie();
  auto ctx = Ctx();
  EXPECT_FALSE(BloomPrefilter(ctx, probe, {0, 0}, Column::FromInt64({1})).ok());
}

TEST(PredicateTransferTest, EndToEndResultsIdentical) {
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.005));

  engine::SiriusEngine::Options off;
  engine::SiriusEngine engine_off(&db, off);
  engine::SiriusEngine::Options on;
  on.predicate_transfer = true;
  engine::SiriusEngine engine_on(&db, on);

  for (int q : {3, 9, 17, 21}) {
    db.SetAccelerator(&engine_off);
    auto a = db.Query(tpch::Query(q));
    db.SetAccelerator(&engine_on);
    auto b = db.Query(tpch::Query(q));
    db.SetAccelerator(nullptr);
    ASSERT_TRUE(a.ok() && b.ok()) << "Q" << q;
    EXPECT_TRUE(a.ValueOrDie().table->Equals(*b.ValueOrDie().table)) << "Q" << q;
    EXPECT_TRUE(b.ValueOrDie().accelerated);
  }
}

}  // namespace
}  // namespace sirius::gdf
