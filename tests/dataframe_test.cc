// Tests for the DataFrame front-end (§3.4's Ibis/DataFusion-style host):
// verbs, schema propagation, SQL equivalence, and accelerator routing.

#include <gtest/gtest.h>

#include "engine/sirius.h"
#include "host/dataframe.h"
#include "tpch/queries.h"

namespace sirius::host {
namespace {

using format::Column;

class DataFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sales =
        format::Table::Make(
            format::Schema({{"region", format::String()},
                            {"item", format::Int64()},
                            {"amount", format::Decimal(2)}}),
            {Column::FromStrings({"east", "west", "east", "west", "east"}),
             Column::FromInt64({1, 1, 2, 2, 1}),
             Column::FromDecimal({1000, 2000, 1500, 500, 3000}, 2)})
            .ValueOrDie();
    auto items = format::Table::Make(
                     format::Schema({{"item_id", format::Int64()},
                                     {"label", format::String()}}),
                     {Column::FromInt64({1, 2}),
                      Column::FromStrings({"widget", "gadget"})})
                     .ValueOrDie();
    SIRIUS_CHECK_OK(db_.CreateTable("sales", sales));
    SIRIUS_CHECK_OK(db_.CreateTable("items", items));
  }

  host::Database db_;
};

TEST_F(DataFrameTest, ScanSchemaAndCollect) {
  auto df = DataFrame::Scan(&db_, "sales").ValueOrDie();
  EXPECT_EQ(df.schema().num_fields(), 3u);
  auto r = df.Collect().ValueOrDie();
  EXPECT_EQ(r.table->num_rows(), 5u);
  EXPECT_FALSE(DataFrame::Scan(&db_, "nope").ok());
}

TEST_F(DataFrameTest, FilterSelect) {
  auto df = DataFrame::Scan(&db_, "sales")
                .ValueOrDie()
                .Filter(expr::Eq(expr::ColRef("region"), expr::LitString("east")))
                .ValueOrDie()
                .Select({{"doubled", expr::Mul(expr::ColRef("amount"),
                                               expr::LitInt(2))}})
                .ValueOrDie();
  auto r = df.Collect().ValueOrDie();
  ASSERT_EQ(r.table->num_rows(), 3u);
  EXPECT_EQ(r.table->schema().field(0).name, "doubled");
  EXPECT_EQ(r.table->column(0)->GetScalar(0).ToString(), "20.00");
}

TEST_F(DataFrameTest, JoinAggregateSort) {
  auto sales = DataFrame::Scan(&db_, "sales").ValueOrDie();
  auto items = DataFrame::Scan(&db_, "items").ValueOrDie();
  auto out = sales.Join(items, {"item"}, {"item_id"})
                 .ValueOrDie()
                 .Aggregate({"label"}, {{plan::AggFunc::kSum, "amount", "total"},
                                        {plan::AggFunc::kCountStar, "", "n"}})
                 .ValueOrDie()
                 .Sort({{"total", true}})
                 .ValueOrDie()
                 .Collect()
                 .ValueOrDie();
  ASSERT_EQ(out.table->num_rows(), 2u);
  EXPECT_EQ(out.table->column(0)->StringAt(0), "widget");  // 60.00 total
  EXPECT_EQ(out.table->ColumnByName("total")->GetScalar(0).ToString(), "60.00");
  EXPECT_EQ(out.table->ColumnByName("n")->data<int64_t>()[1], 2);
}

TEST_F(DataFrameTest, MatchesEquivalentSql) {
  auto df_result = DataFrame::Scan(&db_, "sales")
                       .ValueOrDie()
                       .Aggregate({"region"},
                                  {{plan::AggFunc::kSum, "amount", "total"}})
                       .ValueOrDie()
                       .Sort({{"region", false}})
                       .ValueOrDie()
                       .Collect()
                       .ValueOrDie();
  auto sql_result =
      db_.Query(
             "select region, sum(amount) as total from sales "
             "group by region order by region")
          .ValueOrDie();
  EXPECT_TRUE(df_result.table->Equals(*sql_result.table));
}

TEST_F(DataFrameTest, DistinctAndLimit) {
  auto out = DataFrame::Scan(&db_, "sales")
                 .ValueOrDie()
                 .Select({{"region", expr::ColRef("region")}})
                 .ValueOrDie()
                 .Distinct()
                 .ValueOrDie()
                 .Sort({{"region", false}})
                 .ValueOrDie()
                 .Limit(1)
                 .ValueOrDie()
                 .Collect()
                 .ValueOrDie();
  ASSERT_EQ(out.table->num_rows(), 1u);
  EXPECT_EQ(out.table->column(0)->StringAt(0), "east");
}

TEST_F(DataFrameTest, UnknownColumnErrors) {
  auto df = DataFrame::Scan(&db_, "sales").ValueOrDie();
  EXPECT_FALSE(df.Sort({{"zzz", false}}).ok());
  EXPECT_FALSE(df.Aggregate({"zzz"}, {}).ok());
}

TEST_F(DataFrameTest, RunsOnAcceleratorWithFallbackSemantics) {
  engine::SiriusEngine eng(&db_, {});
  db_.SetAccelerator(&eng);
  auto r = DataFrame::Scan(&db_, "sales")
               .ValueOrDie()
               .Aggregate({"region"}, {{plan::AggFunc::kSum, "amount", "t"}})
               .ValueOrDie()
               .Collect()
               .ValueOrDie();
  db_.SetAccelerator(nullptr);
  EXPECT_TRUE(r.accelerated);
  EXPECT_EQ(r.table->num_rows(), 2u);
}

TEST_F(DataFrameTest, ExplainAndSubstrait) {
  auto df = DataFrame::Scan(&db_, "sales")
                .ValueOrDie()
                .Filter(expr::Gt(expr::ColRef("amount"), expr::LitInt(10)))
                .ValueOrDie();
  auto explained = df.Explain().ValueOrDie();
  EXPECT_NE(explained.find("TableScan sales"), std::string::npos);
  auto wire = df.ToSubstrait().ValueOrDie();
  EXPECT_NE(wire.find("sirius-substrait-1"), std::string::npos);
}

TEST_F(DataFrameTest, AsofJoinVerb) {
  auto trades = format::Table::Make(
                    format::Schema({{"t", format::Int64()}}),
                    {Column::FromInt64({10, 20})})
                    .ValueOrDie();
  auto quotes = format::Table::Make(
                    format::Schema({{"q", format::Int64()},
                                    {"px", format::Int64()}}),
                    {Column::FromInt64({5, 15}), Column::FromInt64({100, 200})})
                    .ValueOrDie();
  SIRIUS_CHECK_OK(db_.CreateTable("tr", trades));
  SIRIUS_CHECK_OK(db_.CreateTable("qu", quotes));
  auto out = DataFrame::Scan(&db_, "tr")
                 .ValueOrDie()
                 .AsofJoin(DataFrame::Scan(&db_, "qu").ValueOrDie(), "t", "q")
                 .ValueOrDie()
                 .Collect()
                 .ValueOrDie();
  ASSERT_EQ(out.table->num_rows(), 2u);
  EXPECT_EQ(out.table->ColumnByName("px")->data<int64_t>()[0], 100);
  EXPECT_EQ(out.table->ColumnByName("px")->data<int64_t>()[1], 200);
}

TEST_F(DataFrameTest, TpchQ6AsDataFrame) {
  host::Database tpch_db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&tpch_db, 0.005));
  auto df =
      DataFrame::Scan(&tpch_db, "lineitem")
          .ValueOrDie()
          .Filter(expr::And(
              expr::And(expr::Ge(expr::ColRef("l_shipdate"),
                                 expr::LitDate("1994-01-01")),
                        expr::Lt(expr::ColRef("l_shipdate"),
                                 expr::LitDate("1995-01-01"))),
              expr::And(
                  expr::And(expr::Ge(expr::ColRef("l_discount"),
                                     expr::LitDecimal("0.05", 2)),
                            expr::Le(expr::ColRef("l_discount"),
                                     expr::LitDecimal("0.07", 2))),
                  expr::Lt(expr::ColRef("l_quantity"), expr::LitInt(24)))))
          .ValueOrDie()
          .Select({{"rev", expr::Mul(expr::ColRef("l_extendedprice"),
                                     expr::ColRef("l_discount"))}})
          .ValueOrDie()
          .Aggregate({}, {{plan::AggFunc::kSum, "rev", "revenue"}})
          .ValueOrDie();
  auto df_result = df.Collect().ValueOrDie();
  auto sql_result = tpch_db.Query(tpch::Query(6)).ValueOrDie();
  // Same value, modulo the decimal scale produced by the two pipelines.
  EXPECT_TRUE(df_result.table->column(0)->GetScalar(0) ==
              sql_result.table->column(0)->GetScalar(0));
}

}  // namespace
}  // namespace sirius::host
