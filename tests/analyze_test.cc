// Tests for sirius_analyze (tools/sirius_analyze): parser/CFG extraction
// plus the four flow rules, each exercised with a seeded violation AND the
// matching clean idiom the repo actually uses (future joins under the serve
// mutex, pool-submitted lambdas that relock, RETURN_NOT_OK acquire guards).

#include "analyze.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sirius::analyze {
namespace {

using analysis::Finding;

std::vector<Finding> RunAnalyze(AnalyzerInput in,
                         std::vector<Finding>* suppressed = nullptr) {
  return Analyze(in, suppressed);
}

bool Has(const std::vector<Finding>& fs, const std::string& rule,
         const std::string& needle) {
  for (const Finding& f : fs) {
    if (f.rule == rule && f.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

int CountRule(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const Finding& f : fs) n += f.rule == rule ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Parser / CFG extraction
// ---------------------------------------------------------------------------

TEST(ParseFunctionsTest, ExtractsMethodsFreeFunctionsAndLambdas) {
  const std::string src = R"cc(
namespace sirius {
class Widget {
 public:
  int Get() const { return v_; }
 private:
  int v_ = 0;
};
Status Widget::Apply(int x) {
  if (x < 0) return Status::Invalid("x");
  pool_->Submit([this] {
    std::lock_guard<std::mutex> g(mu_);
    v_ += 1;
  });
  return Status::OK();
}
static void Helper() { Touch(); }
}  // namespace sirius
)cc";
  auto fns = ParseFunctions("src/w.cc", analysis::Scrub(src));
  ASSERT_EQ(fns.size(), 4u);  // Get, the lambda, Apply, Helper
  int lambdas = 0;
  bool saw_apply = false, saw_get = false;
  for (const FunctionDef& f : fns) {
    if (f.is_lambda) {
      ++lambdas;
      EXPECT_EQ(f.cls, "Widget");  // [this] capture context survives
    }
    if (f.name == "Apply") {
      saw_apply = true;
      EXPECT_EQ(f.cls, "Widget");
    }
    if (f.name == "Get") saw_get = true;
  }
  EXPECT_EQ(lambdas, 1);
  EXPECT_TRUE(saw_apply);
  EXPECT_TRUE(saw_get);
}

TEST(BuildCfgTest, EarlyReturnsReachTheExitBlock) {
  const std::string src = R"cc(
Status F(int x) {
  if (x < 0) return Status::Invalid("x");
  SIRIUS_RETURN_NOT_OK(Step(x));
  while (x > 0) {
    if (x == 3) break;
    --x;
  }
  return Status::OK();
}
)cc";
  auto fns = ParseFunctions("src/f.cc", analysis::Scrub(src));
  ASSERT_EQ(fns.size(), 1u);
  const Cfg cfg = BuildCfg(fns[0]);
  // Exit must have several predecessors: the early return, the
  // RETURN_NOT_OK edge, and the final return.
  int exit_preds = 0;
  for (const Cfg::Block& b : cfg.blocks) {
    for (int s : b.succ) exit_preds += s == cfg.exit ? 1 : 0;
  }
  EXPECT_GE(exit_preds, 3);
  bool has_cond_exit = false;
  for (const Cfg::Block& b : cfg.blocks) {
    has_cond_exit |= b.cond_exit_succ >= 0;
  }
  EXPECT_TRUE(has_cond_exit);
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

constexpr char kAbba[] = R"cc(
#include <mutex>
class Pair {
 public:
  void A() {
    std::lock_guard<std::mutex> g(mu_a_);
    std::lock_guard<std::mutex> h(mu_b_);
  }
  void B() {
    std::lock_guard<std::mutex> g(mu_b_);
    std::lock_guard<std::mutex> h(mu_a_);
  }
 private:
  std::mutex mu_a_, mu_b_;
};
)cc";

TEST(LockOrderTest, AbbaCycleReported) {
  AnalyzerInput in;
  in.files["src/pair.cc"] = kAbba;
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleLockOrder, "ABBA"));
  EXPECT_TRUE(Has(fs, kRuleLockOrder, "Pair::mu_a_"));
  EXPECT_TRUE(Has(fs, kRuleLockOrder, "Pair::mu_b_"));
}

TEST(LockOrderTest, ConsistentOrderIsClean) {
  AnalyzerInput in;
  in.files["src/pair.cc"] = R"cc(
#include <mutex>
class Pair {
 public:
  void A() {
    std::lock_guard<std::mutex> g(mu_a_);
    std::lock_guard<std::mutex> h(mu_b_);
  }
  void B() {
    std::lock_guard<std::mutex> g(mu_a_);
    std::lock_guard<std::mutex> h(mu_b_);
  }
 private:
  std::mutex mu_a_, mu_b_;
};
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleLockOrder), 0);
}

TEST(LockOrderTest, CycleThroughCalleeReported) {
  AnalyzerInput in;
  in.files["src/split.cc"] = R"cc(
#include <mutex>
class Split {
 public:
  void TakeB() { std::lock_guard<std::mutex> g(mu_b_); }
  void A() {
    std::lock_guard<std::mutex> g(mu_a_);
    TakeB();
  }
  void B() {
    std::lock_guard<std::mutex> g(mu_b_);
    std::lock_guard<std::mutex> h(mu_a_);
  }
 private:
  std::mutex mu_a_, mu_b_;
};
)cc";
  EXPECT_TRUE(Has(RunAnalyze(in), kRuleLockOrder, "ABBA"));
}

TEST(LockOrderTest, PoolSubmittedLambdaIsNotTheEnclosingScope) {
  // The engine's Enqueue pattern: the submitting function holds mu_ only to
  // update state; the lambda it hands to the pool relocks mu_ later, on a
  // worker thread. That is NOT a self-deadlock.
  AnalyzerInput in;
  in.files["src/engine_like.cc"] = R"cc(
#include <mutex>
void Engine::Enqueue(Part p) {
  {
    std::lock_guard<std::mutex> g(mu_);
    pending_.push_back(p);
  }
  pool_->Submit([this, p] {
    std::lock_guard<std::mutex> g(mu_);
    Advance(p);
  });
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleLockOrder), 0);
}

// ---------------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------------

TEST(BlockingUnderLockTest, StreamSyncUnderGuardReported) {
  AnalyzerInput in;
  in.files["src/dev.cc"] = R"cc(
#include <mutex>
void Device::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  stream_->Sync();
}
)cc";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleBlockingUnderLock, "Sync()"));
  EXPECT_TRUE(Has(fs, kRuleBlockingUnderLock, "Device::mu_"));
}

TEST(BlockingUnderLockTest, TransitiveBlockingReported) {
  AnalyzerInput in;
  in.files["src/dev.cc"] = R"cc(
#include <mutex>
void Device::DrainStream() { stream_->Sync(); }
void Device::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  DrainStream();
}
)cc";
  EXPECT_TRUE(Has(RunAnalyze(in), kRuleBlockingUnderLock, "DrainStream()"));
}

TEST(BlockingUnderLockTest, FutureJoinUnderLockIsTheServeProtocol) {
  // serve.cc joins engine futures while holding mu_ — the discrete-event
  // dispatch protocol. future.get()/wait() must stay out of the rule.
  AnalyzerInput in;
  in.files["src/serve_like.cc"] = R"cc(
#include <mutex>
void Server::Pump() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& e : entries_) {
    e.future.get();
    cv_.notify_all();
  }
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleBlockingUnderLock), 0);
}

TEST(BlockingUnderLockTest, SyncOutsideGuardScopeIsClean) {
  AnalyzerInput in;
  in.files["src/dev.cc"] = R"cc(
#include <mutex>
void Device::Flush() {
  {
    std::lock_guard<std::mutex> g(mu_);
    dirty_ = false;
  }
  stream_->Sync();
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleBlockingUnderLock), 0);
}

// ---------------------------------------------------------------------------
// ledger-balance
// ---------------------------------------------------------------------------

TEST(LedgerBalanceTest, GrowLeakedByEarlyReturnReported) {
  AnalyzerInput in;
  in.files["src/spill.cc"] = R"cc(
Status Charge(Reservation* r, bool flaky) {
  SIRIUS_RETURN_NOT_OK(r->Grow(64));
  if (flaky) return Status::Internal("mid-spill fault");
  r->Release();
  return Status::OK();
}
)cc";
  EXPECT_TRUE(
      Has(RunAnalyze(in), kRuleLedgerBalance, "not released on every exit path"));
}

TEST(LedgerBalanceTest, FailedGrowEarlyReturnIsBalanced) {
  // RETURN_NOT_OK(Grow) exiting means the grow granted nothing; the
  // success path releases. All paths balance.
  AnalyzerInput in;
  in.files["src/spill.cc"] = R"cc(
Status Charge(Reservation* r) {
  SIRIUS_RETURN_NOT_OK(r->Grow(64));
  Consume();
  r->Release();
  return Status::OK();
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleLedgerBalance), 0);
}

TEST(LedgerBalanceTest, CheckedStatusVarGuardIsBalanced) {
  AnalyzerInput in;
  in.files["src/spill.cc"] = R"cc(
Status Charge(Reservation* r) {
  Status st = r->Grow(64);
  if (!st.ok()) return st;
  Consume();
  r->Release();
  return Status::OK();
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleLedgerBalance), 0);
}

TEST(LedgerBalanceTest, TryReserveConditionOnlyChargesTheTakenBranch) {
  AnalyzerInput in;
  in.files["src/admit.cc"] = R"cc(
bool Admit(ReservationPool* pool, uint64_t bytes) {
  if (!pool->TryReserve(bytes)) return false;
  RunQuery();
  pool->Release(bytes);
  return true;
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleLedgerBalance), 0);
}

TEST(LedgerBalanceTest, OwnershipTransferIsOutOfScope) {
  // Acquire-only functions hand the reservation to the caller (RAII); only
  // functions with both sides in view are checked.
  AnalyzerInput in;
  in.files["src/take.cc"] = R"cc(
Status Reserve(Reservation* r) {
  SIRIUS_RETURN_NOT_OK(r->Grow(64));
  return Status::OK();
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleLedgerBalance), 0);
}

TEST(LedgerBalanceTest, PinnedHostPairLeakReported) {
  AnalyzerInput in;
  in.files["src/host.cc"] = R"cc(
Status Stage(size_t n, bool fail) {
  void* p = PinnedHostAlloc(n);
  if (fail) return Status::Internal("staging fault");
  PinnedHostFree(p);
  return Status::OK();
}
)cc";
  EXPECT_TRUE(Has(RunAnalyze(in), kRuleLedgerBalance, "PinnedHostAlloc"));
}

// ---------------------------------------------------------------------------
// fault-site-coverage
// ---------------------------------------------------------------------------

TEST(FaultSiteTest, UnregisteredSiteInKnownFamilyReported) {
  AnalyzerInput in;
  in.files["src/mem/spill.cc"] = R"cc(
SIRIUS_FAULT_DEFINE_SITE(kWrite, "mem.spill.write");
Status WriteBack(FaultInjector* inj) {
  SIRIUS_RETURN_NOT_OK(inj->Check(kWrite));
  SIRIUS_RETURN_NOT_OK(inj->Check("mem.spill.wrte"));
  return Status::OK();
}
)cc";
  in.files["tests/spill_test.cc"] = R"cc(
TEST(A, B) { inj.Arm("mem.spill.write", spec); }
)cc";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "mem.spill.wrte"));
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "not registered"));
}

TEST(FaultSiteTest, SyntheticUnitTestFamiliesIgnored) {
  AnalyzerInput in;
  in.files["src/mem/spill.cc"] = R"cc(
SIRIUS_FAULT_DEFINE_SITE(kWrite, "mem.spill.write");
)cc";
  in.files["tests/fault_test.cc"] = R"cc(
TEST(A, B) {
  inj.Arm("some.site", spec);
  inj.Arm("mem.spill.write", spec);
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleFaultSiteCoverage), 0);
}

TEST(FaultSiteTest, RegisteredSiteWithoutTestSweepReported) {
  AnalyzerInput in;
  in.files["src/mem/spill.cc"] = R"cc(
SIRIUS_FAULT_DEFINE_SITE(kWrite, "mem.spill.write");
SIRIUS_FAULT_DEFINE_SITE(kRead, "mem.spill.read");
)cc";
  in.files["tests/spill_test.cc"] = R"cc(
TEST(A, B) { inj.Arm("mem.spill.write", spec); }
)cc";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "mem.spill.read"));
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "no test coverage"));
  EXPECT_FALSE(Has(fs, kRuleFaultSiteCoverage, "\"mem.spill.write\""));
}

TEST(FaultSiteTest, UndocumentedSiteReported) {
  AnalyzerInput in;
  in.files["src/mem/spill.cc"] = R"cc(
SIRIUS_FAULT_DEFINE_SITE(kWrite, "mem.spill.write");
)cc";
  in.files["tests/spill_test.cc"] = R"cc(
TEST(A, B) { inj.Arm("mem.spill.write", spec); }
)cc";
  in.design_md = "## Fault injection\nSites: mem.spill.read only.\n";
  EXPECT_TRUE(Has(RunAnalyze(in), kRuleFaultSiteCoverage, "DESIGN.md"));
}

// ---------------------------------------------------------------------------
// suppression + clean composite
// ---------------------------------------------------------------------------

TEST(SuppressionTest, AllowCommentMovesFindingAside) {
  AnalyzerInput in;
  in.files["src/dev.cc"] = R"cc(
#include <mutex>
void Device::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  // sirius-analyze: allow(blocking-under-lock)
  stream_->Sync();
}
)cc";
  std::vector<Finding> suppressed;
  const auto fs = RunAnalyze(in, &suppressed);
  EXPECT_EQ(CountRule(fs, kRuleBlockingUnderLock), 0);
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_EQ(suppressed[0].rule, kRuleBlockingUnderLock);
}

TEST(SuppressionTest, OtherToolsTagIsNotHonoured) {
  AnalyzerInput in;
  in.files["src/dev.cc"] = R"cc(
#include <mutex>
void Device::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  // sirius-lint: allow(blocking-under-lock)
  stream_->Sync();
}
)cc";
  EXPECT_EQ(CountRule(RunAnalyze(in), kRuleBlockingUnderLock), 1);
}

TEST(AnalyzeTest, CleanRepoIdiomsProduceNoFindings) {
  // A miniature of the real tree's patterns: consistent lock order,
  // condition-variable waits, balanced reservations, registered + swept +
  // documented fault sites.
  AnalyzerInput in;
  in.files["src/serve/mini.cc"] = R"cc(
#include <mutex>
SIRIUS_FAULT_DEFINE_SITE(kAdmit, "serve.admit");
Status Server::Submit(Query q, FaultInjector* inj) {
  std::unique_lock<std::mutex> lk(mu_);
  SIRIUS_RETURN_NOT_OK(inj->Check(kAdmit));
  if (!pool_.TryReserve(q.bytes)) {
    return Status::ResourceExhausted("over budget");
  }
  queue_.push_back(q);
  cv_.wait(lk, [this] { return !queue_.empty(); });
  pool_.Release(q.bytes);
  return Status::OK();
}
)cc";
  in.files["tests/mini_test.cc"] = R"cc(
TEST(Mini, Sweep) { inj.Arm("serve.admit", spec); }
)cc";
  in.design_md = "fault sites: serve.admit\n";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(fs.empty()) << (fs.empty() ? "" : fs[0].message);
}

// ---------------------------------------------------------------------------
// Workload-family directories: src/ssb/ gets the full flow rules
// ---------------------------------------------------------------------------

TEST(AnalyzeTest, SsbDirectoryGetsLedgerRule) {
  // Seeded violation under a src/ssb/ path: the generator directory is part
  // of src/ and must be analyzed with the full rule set, not an
  // examples-style portable subset.
  AnalyzerInput in;
  in.files["src/ssb/gen_fixture.cc"] = R"cc(
Status ChargeGeneration(Reservation* r, bool fail_mid_table) {
  SIRIUS_RETURN_NOT_OK(r->Grow(1024));
  if (fail_mid_table) return Status::Internal("mid-generation fault");
  r->Release();
  return Status::OK();
}
)cc";
  EXPECT_TRUE(Has(RunAnalyze(in), kRuleLedgerBalance,
                  "not released on every exit path"));
}

TEST(AnalyzeTest, SsbDirectoryGetsLockOrderRule) {
  AnalyzerInput in;
  in.files["src/ssb/cache_fixture.cc"] = R"cc(
#include <mutex>
class VariantCache {
 public:
  void Fill() {
    std::lock_guard<std::mutex> g(mu_tables_);
    std::lock_guard<std::mutex> h(mu_stats_);
  }
  void Invalidate() {
    std::lock_guard<std::mutex> g(mu_stats_);
    std::lock_guard<std::mutex> h(mu_tables_);
  }
 private:
  std::mutex mu_tables_, mu_stats_;
};
)cc";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleLockOrder, "ABBA"));
  EXPECT_TRUE(Has(fs, kRuleLockOrder, "VariantCache::mu_tables_"));
}

// ---------------------------------------------------------------------------
// Federated serving tier: src/cluster/ gets the full flow rules and its
// fault-site family ("cluster.*") is audited like serve's
// ---------------------------------------------------------------------------

TEST(AnalyzeTest, ClusterDirectoryGetsLedgerRule) {
  // Seeded violation under src/cluster/: the federation tier is first-class
  // src/ code with the same no-leniency policy as src/serve/.
  AnalyzerInput in;
  in.files["src/cluster/route_fixture.cc"] = R"cc(
Status ChargeRoute(Reservation* r, bool all_shed) {
  SIRIUS_RETURN_NOT_OK(r->Grow(512));
  if (all_shed) return Status::ResourceExhausted("all replicas shed");
  r->Release();
  return Status::OK();
}
)cc";
  EXPECT_TRUE(Has(RunAnalyze(in), kRuleLedgerBalance,
                  "not released on every exit path"));
}

TEST(AnalyzeTest, ClusterDirectoryGetsLockOrderRule) {
  AnalyzerInput in;
  in.files["src/cluster/replica_fixture.cc"] = R"cc(
#include <mutex>
class ReplicaMap {
 public:
  void Fill() {
    std::lock_guard<std::mutex> g(mu_entries_);
    std::lock_guard<std::mutex> h(mu_loads_);
  }
  void Invalidate() {
    std::lock_guard<std::mutex> g(mu_loads_);
    std::lock_guard<std::mutex> h(mu_entries_);
  }
 private:
  std::mutex mu_entries_, mu_loads_;
};
)cc";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleLockOrder, "ABBA"));
  EXPECT_TRUE(Has(fs, kRuleLockOrder, "ReplicaMap::mu_entries_"));
}

TEST(FaultSiteTest, ClusterFamilyIsAudited) {
  // Registering any "cluster.*" site activates the family audit: a typo'd
  // literal against the injector is flagged, an unswept registration is
  // flagged, and a fully-covered site stays clean.
  AnalyzerInput in;
  in.files["src/cluster/mini.cc"] = R"cc(
SIRIUS_FAULT_DEFINE_SITE(kRoute, "cluster.route");
SIRIUS_FAULT_DEFINE_SITE(kFill, "cluster.fill");
Status Cluster::Route(FaultInjector* inj) {
  SIRIUS_RETURN_NOT_OK(inj->Check("cluster.rote"));
  return Status::OK();
}
)cc";
  in.files["tests/mini_cluster_test.cc"] = R"cc(
TEST(Cluster, RouteFault) { inj.Arm("cluster.route", spec); }
)cc";
  in.design_md = "fault sites: cluster.route, cluster.fill\n";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "cluster.rote"));
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "no test coverage"));
  EXPECT_FALSE(Has(fs, kRuleFaultSiteCoverage, "\"cluster.route\" has no"));
}

TEST(FaultSiteTest, EngineFuseFamilyIsAudited) {
  // The fused-execution fault site lives in the "engine.*" family: a typo'd
  // literal against the injector is flagged, an unswept registration is
  // flagged, and the fully-covered engine.fuse.compile site stays clean.
  AnalyzerInput in;
  in.files["src/engine/mini.cc"] = R"cc(
SIRIUS_FAULT_DEFINE_SITE(kFuseCompile, "engine.fuse.compile");
SIRIUS_FAULT_DEFINE_SITE(kFusePlan, "engine.fuse.plan");
Status Engine::Compile(FaultInjector* inj) {
  SIRIUS_RETURN_NOT_OK(inj->Check("engine.fuse.compil"));
  return Status::OK();
}
)cc";
  in.files["tests/mini_fusion_test.cc"] = R"cc(
TEST(Fusion, CompileFaultFallsBack) { inj.Arm("engine.fuse.compile", spec); }
)cc";
  in.design_md = "fault sites: engine.fuse.compile, engine.fuse.plan\n";
  const auto fs = RunAnalyze(in);
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "engine.fuse.compil"));
  EXPECT_TRUE(Has(fs, kRuleFaultSiteCoverage, "no test coverage"));
  EXPECT_FALSE(Has(fs, kRuleFaultSiteCoverage, "\"engine.fuse.compile\" has no"));
}

TEST(SuppressionTest, EngineSuppressionIsStillCollected) {
  // src/engine/ joined the driver's no-suppression zones with the fused
  // execution paths; the library half of that contract is that allow()'d
  // findings are always moved aside for the driver to refuse.
  AnalyzerInput in;
  in.files["src/engine/fused.cc"] = R"cc(
#include <mutex>
void SiriusEngine::RunFusedPass() {
  std::lock_guard<std::mutex> g(mu_);
  // sirius-analyze: allow(blocking-under-lock)
  spill_->Join(0, now_);
}
)cc";
  std::vector<Finding> suppressed;
  const auto fs = RunAnalyze(in, &suppressed);
  EXPECT_EQ(CountRule(fs, kRuleBlockingUnderLock), 0);
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_EQ(suppressed[0].file, "src/engine/fused.cc");
}

TEST(SuppressionTest, ClusterSuppressionIsStillCollected) {
  // The analyze library always moves allow()'d findings aside; the driver
  // then refuses them inside src/cluster/ (the serve/mem no-suppress
  // policy). This pins the library half of that contract for cluster paths.
  AnalyzerInput in;
  in.files["src/cluster/flush.cc"] = R"cc(
#include <mutex>
void ServeCluster::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  // sirius-analyze: allow(blocking-under-lock)
  node_->Sync();
}
)cc";
  std::vector<Finding> suppressed;
  const auto fs = RunAnalyze(in, &suppressed);
  EXPECT_EQ(CountRule(fs, kRuleBlockingUnderLock), 0);
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_EQ(suppressed[0].file, "src/cluster/flush.cc");
}

}  // namespace
}  // namespace sirius::analyze
