// Deterministic-generation regression: both workload-family generators
// (tpch::dbgen and ssb::dbgen) must produce byte-identical tables for the
// same options — twice in-process (no hidden global state) and through
// fresh engine instances (no per-instance iteration-order drift). Golden
// checksums pin the exact bytes so platform or library drift (hash maps,
// std::sort stability, float formatting) fails loudly here instead of
// skewing every downstream differential and bench.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "host/database.h"
#include "ssb/dbgen.h"
#include "ssb/queries.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace sirius {
namespace {

using format::Column;
using format::Table;
using format::TablePtr;
using format::TypeId;

void HashBytes(const void* data, size_t n, uint64_t* h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) *h = (*h ^ p[i]) * 0x100000001b3ULL;
}

/// FNV-1a over every cell (type id, null flag, then the value bytes for
/// fixed-width types or the exact characters for strings), row-major.
uint64_t TableChecksum(const Table& t) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = *t.column(c);
    const auto type = static_cast<int64_t>(col.type().id);
    HashBytes(&type, sizeof(type), &h);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      const unsigned char null = col.IsNull(r) ? 1 : 0;
      HashBytes(&null, 1, &h);
      if (null != 0) continue;
      switch (col.type().id) {
        case TypeId::kString: {
          const std::string_view s = col.StringAt(r);
          const uint64_t len = s.size();
          HashBytes(&len, sizeof(len), &h);
          HashBytes(s.data(), s.size(), &h);
          break;
        }
        case TypeId::kFloat64: {
          const double v = col.data<double>()[r];
          HashBytes(&v, sizeof(v), &h);
          break;
        }
        case TypeId::kInt32:
        case TypeId::kDate32: {
          const int32_t v = col.data<int32_t>()[r];
          HashBytes(&v, sizeof(v), &h);
          break;
        }
        case TypeId::kBool: {
          const unsigned char v = col.data<uint8_t>()[r];
          HashBytes(&v, 1, &h);
          break;
        }
        default: {
          const int64_t v = col.data<int64_t>()[r];
          HashBytes(&v, sizeof(v), &h);
          break;
        }
      }
    }
  }
  return h;
}

ssb::SsbOptions SmallSsb() {
  ssb::SsbOptions options;
  options.sf = 0.002;
  return options;
}

TEST(DbgenDeterminism, SsbSameOptionsTwiceInProcess) {
  for (const std::string& name : ssb::TableNames()) {
    TablePtr a = ssb::GenerateTable(name, SmallSsb()).ValueOrDie();
    TablePtr b = ssb::GenerateTable(name, SmallSsb()).ValueOrDie();
    EXPECT_EQ(TableChecksum(*a), TableChecksum(*b)) << name;
  }
}

TEST(DbgenDeterminism, TpchSameSfTwiceInProcess) {
  for (const std::string& name : tpch::TableNames()) {
    TablePtr a = tpch::GenerateTable(name, 0.002).ValueOrDie();
    TablePtr b = tpch::GenerateTable(name, 0.002).ValueOrDie();
    EXPECT_EQ(TableChecksum(*a), TableChecksum(*b)) << name;
  }
}

// Loading through two fresh engine (Database) instances must yield the same
// bytes the bare generator produces: registration, catalog storage, and any
// per-instance state must not perturb generation.
TEST(DbgenDeterminism, SsbAcrossFreshEngineInstances) {
  host::Database db1;
  host::Database db2;
  ASSERT_TRUE(ssb::LoadSsb(&db1, SmallSsb()).ok());
  ASSERT_TRUE(ssb::LoadSsb(&db2, SmallSsb()).ok());
  for (const std::string& name : ssb::TableNames()) {
    TablePtr direct = ssb::GenerateTable(name, SmallSsb()).ValueOrDie();
    TablePtr t1 = db1.catalog().GetTable(name).ValueOrDie();
    TablePtr t2 = db2.catalog().GetTable(name).ValueOrDie();
    const uint64_t want = TableChecksum(*direct);
    EXPECT_EQ(TableChecksum(*t1), want) << name;
    EXPECT_EQ(TableChecksum(*t2), want) << name;
  }
}

TEST(DbgenDeterminism, TpchAcrossFreshEngineInstances) {
  host::Database db1;
  host::Database db2;
  ASSERT_TRUE(tpch::LoadTpch(&db1, 0.002).ok());
  ASSERT_TRUE(tpch::LoadTpch(&db2, 0.002).ok());
  for (const std::string& name : tpch::TableNames()) {
    TablePtr direct = tpch::GenerateTable(name, 0.002).ValueOrDie();
    TablePtr t1 = db1.catalog().GetTable(name).ValueOrDie();
    TablePtr t2 = db2.catalog().GetTable(name).ValueOrDie();
    const uint64_t want = TableChecksum(*direct);
    EXPECT_EQ(TableChecksum(*t1), want) << name;
    EXPECT_EQ(TableChecksum(*t2), want) << name;
  }
}

// The checksum must actually react to the generation knobs, or the tests
// above are vacuous.
TEST(DbgenDeterminism, SsbOptionsChangeTheBytes) {
  ssb::SsbOptions base = SmallSsb();

  ssb::SsbOptions skewed = base;
  skewed.skew = 2.0;
  EXPECT_NE(
      TableChecksum(*ssb::GenerateTable("lineorder", base).ValueOrDie()),
      TableChecksum(*ssb::GenerateTable("lineorder", skewed).ValueOrDie()));

  ssb::SsbOptions heavy = base;
  heavy.string_heavy = true;
  EXPECT_NE(
      TableChecksum(*ssb::GenerateTable("ssb_customer", base).ValueOrDie()),
      TableChecksum(
          *ssb::GenerateTable("ssb_customer", heavy).ValueOrDie()));

  ssb::SsbOptions reseeded = base;
  reseeded.seed = 7;
  EXPECT_NE(
      TableChecksum(*ssb::GenerateTable("lineorder", base).ValueOrDie()),
      TableChecksum(
          *ssb::GenerateTable("lineorder", reseeded).ValueOrDie()));

  // The date dimension is the fixed calendar: options must NOT change it.
  EXPECT_EQ(
      TableChecksum(*ssb::GenerateTable("dwdate", base).ValueOrDie()),
      TableChecksum(*ssb::GenerateTable("dwdate", reseeded).ValueOrDie()));
}

// Golden bytes: these values pin the generators' exact output. A failure
// here means generation changed (platform drift or an edit to dbgen) — every
// committed bench snapshot and differential expectation moved with it, so
// bump these goldens only as part of a change that regenerates those too.
TEST(DbgenDeterminism, GoldenChecksums) {
  EXPECT_EQ(TableChecksum(
                *ssb::GenerateTable("ssb_customer", SmallSsb()).ValueOrDie()),
            UINT64_C(11839747392408436310));
  EXPECT_EQ(TableChecksum(
                *ssb::GenerateTable("ssb_supplier", SmallSsb()).ValueOrDie()),
            UINT64_C(10831774492375612512));
  EXPECT_EQ(TableChecksum(
                *ssb::GenerateTable("ssb_part", SmallSsb()).ValueOrDie()),
            UINT64_C(1150790835501166115));
  EXPECT_EQ(
      TableChecksum(*ssb::GenerateTable("dwdate", SmallSsb()).ValueOrDie()),
      UINT64_C(16990504272097144643));
  EXPECT_EQ(TableChecksum(
                *ssb::GenerateTable("lineorder", SmallSsb()).ValueOrDie()),
            UINT64_C(7562793488440556148));
  EXPECT_EQ(
      TableChecksum(*tpch::GenerateTable("lineitem", 0.002).ValueOrDie()),
      UINT64_C(11081869473986265742));
  EXPECT_EQ(TableChecksum(*tpch::GenerateTable("orders", 0.002).ValueOrDie()),
            UINT64_C(6831168717521428588));
}

}  // namespace
}  // namespace sirius
