file(REMOVE_RECURSE
  "CMakeFiles/net_dist_test.dir/net_dist_test.cc.o"
  "CMakeFiles/net_dist_test.dir/net_dist_test.cc.o.d"
  "net_dist_test"
  "net_dist_test.pdb"
  "net_dist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
