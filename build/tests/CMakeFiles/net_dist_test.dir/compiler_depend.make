# Empty compiler generated dependencies file for net_dist_test.
# This may be replaced when dependencies are built.
