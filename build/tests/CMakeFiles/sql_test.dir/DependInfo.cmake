
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/sql_test.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/sirius_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sirius_net.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sirius_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/sirius_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/sirius_host.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/sirius_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sirius_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sirius_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/gdf/CMakeFiles/sirius_gdf.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sirius_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/sirius_format.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sirius_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sirius_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sirius_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
