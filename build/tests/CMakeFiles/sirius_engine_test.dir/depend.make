# Empty dependencies file for sirius_engine_test.
# This may be replaced when dependencies are built.
