file(REMOVE_RECURSE
  "CMakeFiles/sirius_engine_test.dir/sirius_engine_test.cc.o"
  "CMakeFiles/sirius_engine_test.dir/sirius_engine_test.cc.o.d"
  "sirius_engine_test"
  "sirius_engine_test.pdb"
  "sirius_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
