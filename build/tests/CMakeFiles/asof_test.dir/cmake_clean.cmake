file(REMOVE_RECURSE
  "CMakeFiles/asof_test.dir/asof_test.cc.o"
  "CMakeFiles/asof_test.dir/asof_test.cc.o.d"
  "asof_test"
  "asof_test.pdb"
  "asof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
