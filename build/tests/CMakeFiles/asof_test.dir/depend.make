# Empty dependencies file for asof_test.
# This may be replaced when dependencies are built.
