# Empty compiler generated dependencies file for pipeline_tpch_test.
# This may be replaced when dependencies are built.
