file(REMOVE_RECURSE
  "CMakeFiles/pipeline_tpch_test.dir/pipeline_tpch_test.cc.o"
  "CMakeFiles/pipeline_tpch_test.dir/pipeline_tpch_test.cc.o.d"
  "pipeline_tpch_test"
  "pipeline_tpch_test.pdb"
  "pipeline_tpch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_tpch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
