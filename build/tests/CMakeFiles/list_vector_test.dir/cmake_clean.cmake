file(REMOVE_RECURSE
  "CMakeFiles/list_vector_test.dir/list_vector_test.cc.o"
  "CMakeFiles/list_vector_test.dir/list_vector_test.cc.o.d"
  "list_vector_test"
  "list_vector_test.pdb"
  "list_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
