# Empty dependencies file for list_vector_test.
# This may be replaced when dependencies are built.
