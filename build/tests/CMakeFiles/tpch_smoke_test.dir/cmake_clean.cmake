file(REMOVE_RECURSE
  "CMakeFiles/tpch_smoke_test.dir/tpch_smoke_test.cc.o"
  "CMakeFiles/tpch_smoke_test.dir/tpch_smoke_test.cc.o.d"
  "tpch_smoke_test"
  "tpch_smoke_test.pdb"
  "tpch_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
