# Empty compiler generated dependencies file for tpch_smoke_test.
# This may be replaced when dependencies are built.
