# Empty dependencies file for gdf_kernels_test.
# This may be replaced when dependencies are built.
