file(REMOVE_RECURSE
  "CMakeFiles/gdf_kernels_test.dir/gdf_kernels_test.cc.o"
  "CMakeFiles/gdf_kernels_test.dir/gdf_kernels_test.cc.o.d"
  "gdf_kernels_test"
  "gdf_kernels_test.pdb"
  "gdf_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdf_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
