# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/sirius_engine_test[1]_include.cmake")
include("/root/repo/build/tests/gdf_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/sim_mem_test[1]_include.cmake")
include("/root/repo/build/tests/net_dist_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_test[1]_include.cmake")
include("/root/repo/build/tests/udf_test[1]_include.cmake")
include("/root/repo/build/tests/asof_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/dataframe_test[1]_include.cmake")
include("/root/repo/build/tests/list_vector_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_tpch_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
