file(REMOVE_RECURSE
  "libsirius_mem.a"
)
