file(REMOVE_RECURSE
  "CMakeFiles/sirius_mem.dir/buffer.cc.o"
  "CMakeFiles/sirius_mem.dir/buffer.cc.o.d"
  "CMakeFiles/sirius_mem.dir/memory_resource.cc.o"
  "CMakeFiles/sirius_mem.dir/memory_resource.cc.o.d"
  "libsirius_mem.a"
  "libsirius_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
