# Empty compiler generated dependencies file for sirius_mem.
# This may be replaced when dependencies are built.
