# Empty dependencies file for sirius_fault.
# This may be replaced when dependencies are built.
