file(REMOVE_RECURSE
  "CMakeFiles/sirius_fault.dir/fault_injector.cc.o"
  "CMakeFiles/sirius_fault.dir/fault_injector.cc.o.d"
  "libsirius_fault.a"
  "libsirius_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
