file(REMOVE_RECURSE
  "libsirius_fault.a"
)
