# Empty dependencies file for sirius_expr.
# This may be replaced when dependencies are built.
