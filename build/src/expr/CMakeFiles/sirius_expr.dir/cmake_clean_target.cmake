file(REMOVE_RECURSE
  "libsirius_expr.a"
)
