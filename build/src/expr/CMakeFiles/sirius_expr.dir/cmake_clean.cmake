file(REMOVE_RECURSE
  "CMakeFiles/sirius_expr.dir/eval.cc.o"
  "CMakeFiles/sirius_expr.dir/eval.cc.o.d"
  "CMakeFiles/sirius_expr.dir/expr.cc.o"
  "CMakeFiles/sirius_expr.dir/expr.cc.o.d"
  "CMakeFiles/sirius_expr.dir/udf.cc.o"
  "CMakeFiles/sirius_expr.dir/udf.cc.o.d"
  "libsirius_expr.a"
  "libsirius_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
