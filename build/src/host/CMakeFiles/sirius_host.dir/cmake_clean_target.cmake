file(REMOVE_RECURSE
  "libsirius_host.a"
)
