# Empty compiler generated dependencies file for sirius_host.
# This may be replaced when dependencies are built.
