file(REMOVE_RECURSE
  "CMakeFiles/sirius_host.dir/catalog.cc.o"
  "CMakeFiles/sirius_host.dir/catalog.cc.o.d"
  "CMakeFiles/sirius_host.dir/cpu_executor.cc.o"
  "CMakeFiles/sirius_host.dir/cpu_executor.cc.o.d"
  "CMakeFiles/sirius_host.dir/csv.cc.o"
  "CMakeFiles/sirius_host.dir/csv.cc.o.d"
  "CMakeFiles/sirius_host.dir/database.cc.o"
  "CMakeFiles/sirius_host.dir/database.cc.o.d"
  "CMakeFiles/sirius_host.dir/dataframe.cc.o"
  "CMakeFiles/sirius_host.dir/dataframe.cc.o.d"
  "libsirius_host.a"
  "libsirius_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
