# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("fault")
subdirs("sim")
subdirs("mem")
subdirs("format")
subdirs("expr")
subdirs("gdf")
subdirs("plan")
subdirs("sql")
subdirs("opt")
subdirs("host")
subdirs("engine")
subdirs("net")
subdirs("dist")
subdirs("tpch")
