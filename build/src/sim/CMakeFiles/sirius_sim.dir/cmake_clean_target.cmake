file(REMOVE_RECURSE
  "libsirius_sim.a"
)
