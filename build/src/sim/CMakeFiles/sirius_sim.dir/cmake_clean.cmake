file(REMOVE_RECURSE
  "CMakeFiles/sirius_sim.dir/cost_model.cc.o"
  "CMakeFiles/sirius_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/sirius_sim.dir/device.cc.o"
  "CMakeFiles/sirius_sim.dir/device.cc.o.d"
  "CMakeFiles/sirius_sim.dir/interconnect.cc.o"
  "CMakeFiles/sirius_sim.dir/interconnect.cc.o.d"
  "CMakeFiles/sirius_sim.dir/timeline.cc.o"
  "CMakeFiles/sirius_sim.dir/timeline.cc.o.d"
  "CMakeFiles/sirius_sim.dir/trends.cc.o"
  "CMakeFiles/sirius_sim.dir/trends.cc.o.d"
  "libsirius_sim.a"
  "libsirius_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
