# Empty compiler generated dependencies file for sirius_common.
# This may be replaced when dependencies are built.
