file(REMOVE_RECURSE
  "CMakeFiles/sirius_common.dir/logging.cc.o"
  "CMakeFiles/sirius_common.dir/logging.cc.o.d"
  "CMakeFiles/sirius_common.dir/status.cc.o"
  "CMakeFiles/sirius_common.dir/status.cc.o.d"
  "CMakeFiles/sirius_common.dir/thread_pool.cc.o"
  "CMakeFiles/sirius_common.dir/thread_pool.cc.o.d"
  "libsirius_common.a"
  "libsirius_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
