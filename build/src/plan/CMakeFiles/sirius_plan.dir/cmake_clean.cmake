file(REMOVE_RECURSE
  "CMakeFiles/sirius_plan.dir/json.cc.o"
  "CMakeFiles/sirius_plan.dir/json.cc.o.d"
  "CMakeFiles/sirius_plan.dir/plan.cc.o"
  "CMakeFiles/sirius_plan.dir/plan.cc.o.d"
  "CMakeFiles/sirius_plan.dir/substrait.cc.o"
  "CMakeFiles/sirius_plan.dir/substrait.cc.o.d"
  "libsirius_plan.a"
  "libsirius_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
