
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/json.cc" "src/plan/CMakeFiles/sirius_plan.dir/json.cc.o" "gcc" "src/plan/CMakeFiles/sirius_plan.dir/json.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/plan/CMakeFiles/sirius_plan.dir/plan.cc.o" "gcc" "src/plan/CMakeFiles/sirius_plan.dir/plan.cc.o.d"
  "/root/repo/src/plan/substrait.cc" "src/plan/CMakeFiles/sirius_plan.dir/substrait.cc.o" "gcc" "src/plan/CMakeFiles/sirius_plan.dir/substrait.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/sirius_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/sirius_format.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sirius_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
