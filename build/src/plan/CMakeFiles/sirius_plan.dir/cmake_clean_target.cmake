file(REMOVE_RECURSE
  "libsirius_plan.a"
)
