# Empty dependencies file for sirius_plan.
# This may be replaced when dependencies are built.
