# Empty dependencies file for sirius_sql.
# This may be replaced when dependencies are built.
