file(REMOVE_RECURSE
  "CMakeFiles/sirius_sql.dir/binder.cc.o"
  "CMakeFiles/sirius_sql.dir/binder.cc.o.d"
  "CMakeFiles/sirius_sql.dir/lexer.cc.o"
  "CMakeFiles/sirius_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sirius_sql.dir/parser.cc.o"
  "CMakeFiles/sirius_sql.dir/parser.cc.o.d"
  "libsirius_sql.a"
  "libsirius_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
