file(REMOVE_RECURSE
  "libsirius_sql.a"
)
