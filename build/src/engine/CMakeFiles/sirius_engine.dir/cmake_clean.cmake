file(REMOVE_RECURSE
  "CMakeFiles/sirius_engine.dir/buffer_manager.cc.o"
  "CMakeFiles/sirius_engine.dir/buffer_manager.cc.o.d"
  "CMakeFiles/sirius_engine.dir/capabilities.cc.o"
  "CMakeFiles/sirius_engine.dir/capabilities.cc.o.d"
  "CMakeFiles/sirius_engine.dir/pipeline.cc.o"
  "CMakeFiles/sirius_engine.dir/pipeline.cc.o.d"
  "CMakeFiles/sirius_engine.dir/sirius.cc.o"
  "CMakeFiles/sirius_engine.dir/sirius.cc.o.d"
  "libsirius_engine.a"
  "libsirius_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
