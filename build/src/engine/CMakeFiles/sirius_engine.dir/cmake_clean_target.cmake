file(REMOVE_RECURSE
  "libsirius_engine.a"
)
