# Empty dependencies file for sirius_engine.
# This may be replaced when dependencies are built.
