file(REMOVE_RECURSE
  "libsirius_dist.a"
)
