# Empty compiler generated dependencies file for sirius_dist.
# This may be replaced when dependencies are built.
