file(REMOVE_RECURSE
  "CMakeFiles/sirius_dist.dir/cluster.cc.o"
  "CMakeFiles/sirius_dist.dir/cluster.cc.o.d"
  "CMakeFiles/sirius_dist.dir/fragmenter.cc.o"
  "CMakeFiles/sirius_dist.dir/fragmenter.cc.o.d"
  "libsirius_dist.a"
  "libsirius_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
