file(REMOVE_RECURSE
  "libsirius_opt.a"
)
