
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/optimizer.cc" "src/opt/CMakeFiles/sirius_opt.dir/optimizer.cc.o" "gcc" "src/opt/CMakeFiles/sirius_opt.dir/optimizer.cc.o.d"
  "/root/repo/src/opt/prune.cc" "src/opt/CMakeFiles/sirius_opt.dir/prune.cc.o" "gcc" "src/opt/CMakeFiles/sirius_opt.dir/prune.cc.o.d"
  "/root/repo/src/opt/stats.cc" "src/opt/CMakeFiles/sirius_opt.dir/stats.cc.o" "gcc" "src/opt/CMakeFiles/sirius_opt.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/sirius_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sirius_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/sirius_format.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sirius_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
