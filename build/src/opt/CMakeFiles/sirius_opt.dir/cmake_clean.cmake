file(REMOVE_RECURSE
  "CMakeFiles/sirius_opt.dir/optimizer.cc.o"
  "CMakeFiles/sirius_opt.dir/optimizer.cc.o.d"
  "CMakeFiles/sirius_opt.dir/prune.cc.o"
  "CMakeFiles/sirius_opt.dir/prune.cc.o.d"
  "CMakeFiles/sirius_opt.dir/stats.cc.o"
  "CMakeFiles/sirius_opt.dir/stats.cc.o.d"
  "libsirius_opt.a"
  "libsirius_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
