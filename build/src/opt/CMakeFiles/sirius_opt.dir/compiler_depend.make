# Empty compiler generated dependencies file for sirius_opt.
# This may be replaced when dependencies are built.
