
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/builder.cc" "src/format/CMakeFiles/sirius_format.dir/builder.cc.o" "gcc" "src/format/CMakeFiles/sirius_format.dir/builder.cc.o.d"
  "/root/repo/src/format/column.cc" "src/format/CMakeFiles/sirius_format.dir/column.cc.o" "gcc" "src/format/CMakeFiles/sirius_format.dir/column.cc.o.d"
  "/root/repo/src/format/encoding.cc" "src/format/CMakeFiles/sirius_format.dir/encoding.cc.o" "gcc" "src/format/CMakeFiles/sirius_format.dir/encoding.cc.o.d"
  "/root/repo/src/format/scalar.cc" "src/format/CMakeFiles/sirius_format.dir/scalar.cc.o" "gcc" "src/format/CMakeFiles/sirius_format.dir/scalar.cc.o.d"
  "/root/repo/src/format/table.cc" "src/format/CMakeFiles/sirius_format.dir/table.cc.o" "gcc" "src/format/CMakeFiles/sirius_format.dir/table.cc.o.d"
  "/root/repo/src/format/types.cc" "src/format/CMakeFiles/sirius_format.dir/types.cc.o" "gcc" "src/format/CMakeFiles/sirius_format.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sirius_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
