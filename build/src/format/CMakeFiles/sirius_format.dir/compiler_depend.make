# Empty compiler generated dependencies file for sirius_format.
# This may be replaced when dependencies are built.
