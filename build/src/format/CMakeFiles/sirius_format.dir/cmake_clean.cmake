file(REMOVE_RECURSE
  "CMakeFiles/sirius_format.dir/builder.cc.o"
  "CMakeFiles/sirius_format.dir/builder.cc.o.d"
  "CMakeFiles/sirius_format.dir/column.cc.o"
  "CMakeFiles/sirius_format.dir/column.cc.o.d"
  "CMakeFiles/sirius_format.dir/encoding.cc.o"
  "CMakeFiles/sirius_format.dir/encoding.cc.o.d"
  "CMakeFiles/sirius_format.dir/scalar.cc.o"
  "CMakeFiles/sirius_format.dir/scalar.cc.o.d"
  "CMakeFiles/sirius_format.dir/table.cc.o"
  "CMakeFiles/sirius_format.dir/table.cc.o.d"
  "CMakeFiles/sirius_format.dir/types.cc.o"
  "CMakeFiles/sirius_format.dir/types.cc.o.d"
  "libsirius_format.a"
  "libsirius_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
