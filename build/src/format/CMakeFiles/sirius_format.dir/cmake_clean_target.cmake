file(REMOVE_RECURSE
  "libsirius_format.a"
)
