file(REMOVE_RECURSE
  "CMakeFiles/sirius_tpch.dir/dbgen.cc.o"
  "CMakeFiles/sirius_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/sirius_tpch.dir/queries.cc.o"
  "CMakeFiles/sirius_tpch.dir/queries.cc.o.d"
  "libsirius_tpch.a"
  "libsirius_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
