# Empty compiler generated dependencies file for sirius_tpch.
# This may be replaced when dependencies are built.
