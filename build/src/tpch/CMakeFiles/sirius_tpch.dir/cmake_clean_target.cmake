file(REMOVE_RECURSE
  "libsirius_tpch.a"
)
