file(REMOVE_RECURSE
  "CMakeFiles/sirius_net.dir/sccl.cc.o"
  "CMakeFiles/sirius_net.dir/sccl.cc.o.d"
  "libsirius_net.a"
  "libsirius_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
