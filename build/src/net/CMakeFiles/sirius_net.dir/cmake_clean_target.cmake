file(REMOVE_RECURSE
  "libsirius_net.a"
)
