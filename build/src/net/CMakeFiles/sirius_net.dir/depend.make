# Empty dependencies file for sirius_net.
# This may be replaced when dependencies are built.
