
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdf/asof.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/asof.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/asof.cc.o.d"
  "/root/repo/src/gdf/bloom.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/bloom.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/bloom.cc.o.d"
  "/root/repo/src/gdf/compute.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/compute.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/compute.cc.o.d"
  "/root/repo/src/gdf/copying.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/copying.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/copying.cc.o.d"
  "/root/repo/src/gdf/filter.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/filter.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/filter.cc.o.d"
  "/root/repo/src/gdf/groupby.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/groupby.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/groupby.cc.o.d"
  "/root/repo/src/gdf/join.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/join.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/join.cc.o.d"
  "/root/repo/src/gdf/partition.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/partition.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/partition.cc.o.d"
  "/root/repo/src/gdf/row_ops.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/row_ops.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/row_ops.cc.o.d"
  "/root/repo/src/gdf/sort.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/sort.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/sort.cc.o.d"
  "/root/repo/src/gdf/vector_search.cc" "src/gdf/CMakeFiles/sirius_gdf.dir/vector_search.cc.o" "gcc" "src/gdf/CMakeFiles/sirius_gdf.dir/vector_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/format/CMakeFiles/sirius_format.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/sirius_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sirius_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sirius_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirius_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
