# Empty dependencies file for sirius_gdf.
# This may be replaced when dependencies are built.
