file(REMOVE_RECURSE
  "libsirius_gdf.a"
)
