file(REMOVE_RECURSE
  "CMakeFiles/sirius_gdf.dir/asof.cc.o"
  "CMakeFiles/sirius_gdf.dir/asof.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/bloom.cc.o"
  "CMakeFiles/sirius_gdf.dir/bloom.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/compute.cc.o"
  "CMakeFiles/sirius_gdf.dir/compute.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/copying.cc.o"
  "CMakeFiles/sirius_gdf.dir/copying.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/filter.cc.o"
  "CMakeFiles/sirius_gdf.dir/filter.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/groupby.cc.o"
  "CMakeFiles/sirius_gdf.dir/groupby.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/join.cc.o"
  "CMakeFiles/sirius_gdf.dir/join.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/partition.cc.o"
  "CMakeFiles/sirius_gdf.dir/partition.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/row_ops.cc.o"
  "CMakeFiles/sirius_gdf.dir/row_ops.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/sort.cc.o"
  "CMakeFiles/sirius_gdf.dir/sort.cc.o.d"
  "CMakeFiles/sirius_gdf.dir/vector_search.cc.o"
  "CMakeFiles/sirius_gdf.dir/vector_search.cc.o.d"
  "libsirius_gdf.a"
  "libsirius_gdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius_gdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
