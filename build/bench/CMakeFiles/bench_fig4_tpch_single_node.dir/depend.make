# Empty dependencies file for bench_fig4_tpch_single_node.
# This may be replaced when dependencies are built.
