# Empty dependencies file for bench_ablation_operator_impl.
# This may be replaced when dependencies are built.
