file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_operator_impl.dir/bench_ablation_operator_impl.cpp.o"
  "CMakeFiles/bench_ablation_operator_impl.dir/bench_ablation_operator_impl.cpp.o.d"
  "bench_ablation_operator_impl"
  "bench_ablation_operator_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_operator_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
