# Empty dependencies file for bench_ablation_out_of_core.
# This may be replaced when dependencies are built.
