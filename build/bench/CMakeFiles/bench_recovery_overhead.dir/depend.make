# Empty dependencies file for bench_recovery_overhead.
# This may be replaced when dependencies are built.
