file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_overhead.dir/bench_recovery_overhead.cpp.o"
  "CMakeFiles/bench_recovery_overhead.dir/bench_recovery_overhead.cpp.o.d"
  "bench_recovery_overhead"
  "bench_recovery_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
