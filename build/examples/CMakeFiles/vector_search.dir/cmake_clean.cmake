file(REMOVE_RECURSE
  "CMakeFiles/vector_search.dir/vector_search.cpp.o"
  "CMakeFiles/vector_search.dir/vector_search.cpp.o.d"
  "vector_search"
  "vector_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
