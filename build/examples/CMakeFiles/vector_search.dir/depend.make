# Empty dependencies file for vector_search.
# This may be replaced when dependencies are built.
