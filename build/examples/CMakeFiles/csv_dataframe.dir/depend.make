# Empty dependencies file for csv_dataframe.
# This may be replaced when dependencies are built.
