file(REMOVE_RECURSE
  "CMakeFiles/csv_dataframe.dir/csv_dataframe.cpp.o"
  "CMakeFiles/csv_dataframe.dir/csv_dataframe.cpp.o.d"
  "csv_dataframe"
  "csv_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
