file(REMOVE_RECURSE
  "CMakeFiles/timeseries_asof.dir/timeseries_asof.cpp.o"
  "CMakeFiles/timeseries_asof.dir/timeseries_asof.cpp.o.d"
  "timeseries_asof"
  "timeseries_asof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_asof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
