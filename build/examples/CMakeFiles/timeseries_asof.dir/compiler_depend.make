# Empty compiler generated dependencies file for timeseries_asof.
# This may be replaced when dependencies are built.
