file(REMOVE_RECURSE
  "CMakeFiles/drop_in_acceleration.dir/drop_in_acceleration.cpp.o"
  "CMakeFiles/drop_in_acceleration.dir/drop_in_acceleration.cpp.o.d"
  "drop_in_acceleration"
  "drop_in_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drop_in_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
