# Empty compiler generated dependencies file for drop_in_acceleration.
# This may be replaced when dependencies are built.
