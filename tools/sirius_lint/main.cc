// sirius_lint driver: walks the directories given on the command line,
// lints every C++ source/header, and exits non-zero on findings.
//
//   sirius_lint [--format=text|json] [--allow-suppressions-everywhere] DIR...
//
// Suppressions (`// sirius-lint: allow(<rule>)`) are honoured everywhere
// except src/engine/ and src/net/ — the query execution core and the
// exchange layer must pass clean (a suppressed finding there is itself an
// error unless the escape flag is given, which the repo test never uses).
//
// --format=json emits the shared finding schema ({file,line,rule,message})
// sirius_analyze also uses, so CI annotates both tools' findings uniformly.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// True when `path` lies in a directory where suppressions are forbidden.
bool InNoSuppressZone(const std::string& path) {
  std::string p = "/" + path;
  return p.find("/src/engine/") != std::string::npos ||
         p.find("/src/net/") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  bool allow_suppressions_everywhere = false;
  bool json = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-suppressions-everywhere") {
      allow_suppressions_everywhere = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) {
    std::cerr << "usage: sirius_lint [--format=text|json] "
                 "[--allow-suppressions-everywhere] DIR...\n";
    return 2;
  }

  std::map<std::string, std::string> files;
  for (const std::string& dir : dirs) {
    std::error_code ec;
    if (!fs::exists(dir, ec)) {
      std::cerr << "sirius_lint: no such directory: " << dir << "\n";
      return 2;
    }
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        std::cerr << "sirius_lint: walk error in " << dir << ": "
                  << ec.message() << "\n";
        return 2;
      }
      if (!it->is_regular_file() || !IsSourceFile(it->path())) continue;
      std::string content;
      if (!ReadFile(it->path(), &content)) {
        std::cerr << "sirius_lint: cannot read " << it->path() << "\n";
        return 2;
      }
      files.emplace(it->path().generic_string(), std::move(content));
    }
  }

  std::vector<sirius::lint::Finding> suppressed;
  std::vector<sirius::lint::Finding> findings =
      sirius::lint::LintFiles(files, &suppressed);

  // Suppressions in the no-suppress zones count as findings.
  size_t zone_suppressions = 0;
  if (!allow_suppressions_everywhere) {
    for (const sirius::lint::Finding& f : suppressed) {
      if (InNoSuppressZone(f.file)) {
        if (!json) {
          std::cout << sirius::lint::FormatFinding(f)
                    << " (suppression not allowed in src/engine/ or "
                       "src/net/)\n";
        } else {
          findings.push_back(f);  // surfaces in the JSON findings array
        }
        ++zone_suppressions;
      }
    }
  }

  if (json) {
    std::cout << sirius::analysis::FindingsToJson("sirius_lint", files.size(),
                                                  findings, suppressed)
              << "\n";
    return (findings.empty() && zone_suppressions == 0) ? 0 : 1;
  }

  for (const sirius::lint::Finding& f : findings) {
    std::cout << sirius::lint::FormatFinding(f) << "\n";
  }

  std::cout << "sirius_lint: " << files.size() << " files, "
            << findings.size() << " finding(s), " << suppressed.size()
            << " suppressed";
  if (zone_suppressions > 0) {
    std::cout << " (" << zone_suppressions << " illegally)";
  }
  std::cout << "\n";
  return (findings.empty() && zone_suppressions == 0) ? 0 : 1;
}
