// sirius_lint: project-specific static checks (token/regex level, no
// libclang). See DESIGN.md "Correctness tooling" for the rule catalogue.
//
// The engine is a plain library so tests can feed deliberately-violating
// snippets through it; the `sirius_lint` binary walks the repo and runs as
// the tier-1 `lint`-labelled ctest.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sirius::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// \name Rule names (also the tokens accepted by `// sirius-lint: allow(...)`)
/// @{
inline constexpr char kRuleUncheckedStatus[] = "unchecked-status";
inline constexpr char kRuleRawNewDelete[] = "raw-new-delete";
inline constexpr char kRuleMutexGuard[] = "mutex-guard";
inline constexpr char kRuleBannedFunction[] = "banned-function";
inline constexpr char kRuleNodiscardStatus[] = "nodiscard-status-api";
inline constexpr char kRuleRaiiSpan[] = "raii-span";
inline constexpr char kRuleServeBlocking[] = "serve-no-blocking";
inline constexpr char kRulePinnedHostAlloc[] = "pinned-host-alloc";
/// @}

/// \brief Cross-file symbol knowledge gathered in the first pass.
///
/// `status_returning` holds function names whose every indexed declaration
/// returns Status or Result<T>; names that also appear with another return
/// type land in `ambiguous` and are exempt from unchecked-status (a
/// token-level linter cannot resolve overloads).
struct FunctionIndex {
  std::set<std::string> status_returning;
  std::set<std::string> ambiguous;
  /// Names seen with a non-Status return type; a later Status declaration of
  /// the same name becomes ambiguous. (Populated by IndexFunctions.)
  std::set<std::string> seen_other;

  /// True when `name` is known to return Status/Result unambiguously.
  bool IsStatusFunction(const std::string& name) const {
    return status_returning.count(name) > 0 && ambiguous.count(name) == 0;
  }
};

/// \brief Source text with comments and string/char literals blanked out,
/// split into lines, plus the comment text per line (for suppressions).
struct ScrubbedFile {
  std::vector<std::string> code;      ///< literals/comments replaced by spaces
  std::vector<std::string> comments;  ///< comment text only, per line
};

/// Strips comments and literals; the scrubbed text is what rules match on.
ScrubbedFile Scrub(const std::string& content);

/// First pass: records function declarations/definitions of `content` into
/// `index` (call once per file, then lint with the merged index).
void IndexFunctions(const std::string& content, FunctionIndex* index);

/// Second pass: runs every rule over one file. `path` decides path-scoped
/// rules (src/mem/ may use raw new/delete; src/sim/ may not read wall-clock
/// time). Findings suppressed by `// sirius-lint: allow(<rule>)` on the same
/// or preceding line are dropped; when `suppressed` is non-null the dropped
/// findings are appended there (the repo test forbids suppressions in
/// src/engine/ and src/net/).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const FunctionIndex& index,
                                 std::vector<Finding>* suppressed = nullptr);

/// Formats a finding as "file:line: [rule] message".
std::string FormatFinding(const Finding& f);

/// Convenience for tests: index + lint a set of (path, content) files.
std::vector<Finding> LintFiles(
    const std::map<std::string, std::string>& files,
    std::vector<Finding>* suppressed = nullptr);

}  // namespace sirius::lint
