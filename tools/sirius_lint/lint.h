// sirius_lint: project-specific static checks (token/regex level, no
// libclang). See DESIGN.md "Correctness tooling" for the rule catalogue.
//
// The engine is a plain library so tests can feed deliberately-violating
// snippets through it; the `sirius_lint` binary walks the repo and runs as
// the tier-1 `lint`-labelled ctest.
//
// The scrubber, cross-file function index, and finding schema live in the
// shared tools/analysis_frontend library (sirius_analyze builds its CFGs on
// the same scrubbed text); this header re-exports them under sirius::lint
// so rule code and tests are frontend-agnostic.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "frontend.h"

namespace sirius::lint {

using Finding = analysis::Finding;
using FunctionIndex = analysis::FunctionIndex;
using ScrubbedFile = analysis::ScrubbedFile;
using analysis::FormatFinding;
using analysis::IndexFunctions;
using analysis::Scrub;

/// \name Rule names (also the tokens accepted by `// sirius-lint: allow(...)`)
/// @{
inline constexpr char kRuleUncheckedStatus[] = "unchecked-status";
inline constexpr char kRuleRawNewDelete[] = "raw-new-delete";
inline constexpr char kRuleMutexGuard[] = "mutex-guard";
inline constexpr char kRuleBannedFunction[] = "banned-function";
inline constexpr char kRuleNodiscardStatus[] = "nodiscard-status-api";
inline constexpr char kRuleRaiiSpan[] = "raii-span";
inline constexpr char kRuleServeBlocking[] = "serve-no-blocking";
inline constexpr char kRulePinnedHostAlloc[] = "pinned-host-alloc";
/// @}

/// Second pass: runs every rule over one file. `path` decides path-scoped
/// rules (src/mem/ may use raw new/delete; src/sim/ may not read wall-clock
/// time; examples/ only runs unchecked-status and banned-function, matching
/// what demo code must honour). Findings suppressed by
/// `// sirius-lint: allow(<rule>)` on the same or preceding line are dropped;
/// when `suppressed` is non-null the dropped findings are appended there (the
/// repo test forbids suppressions in src/engine/ and src/net/).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const FunctionIndex& index,
                                 std::vector<Finding>* suppressed = nullptr);

/// Convenience for tests: index + lint a set of (path, content) files.
std::vector<Finding> LintFiles(
    const std::map<std::string, std::string>& files,
    std::vector<Finding>* suppressed = nullptr);

}  // namespace sirius::lint
