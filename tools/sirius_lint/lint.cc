#include "lint.h"

#include <regex>

namespace sirius::lint {

using analysis::Contains;
using analysis::InDir;
using analysis::IsIdentChar;
using analysis::IsSuppressed;
using analysis::LastCodeCharBefore;
using analysis::NormalizePath;
using analysis::Trim;
using analysis::WordOccurrences;

namespace {

/// Macros whose arguments consume a Status/Result (call already checked).
bool IsCheckedWrapper(const std::string& trimmed) {
  static const char* kWrappers[] = {
      "SIRIUS_RETURN_NOT_OK", "SIRIUS_ASSIGN_OR_RETURN", "SIRIUS_CHECK_OK",
      "SIRIUS_CHECK", "EXPECT_", "ASSERT_", "RETURN_NOT_OK",
  };
  for (const char* w : kWrappers) {
    if (trimmed.rfind(w, 0) == 0) return true;
  }
  return false;
}

/// True when `line` looks like the start of a statement given the previous
/// non-blank code line (which ends with ; { } or a label/access colon).
bool PrevEndsStatement(const std::vector<std::string>& code, size_t i) {
  for (size_t j = i; j > 0; --j) {
    const std::string prev = Trim(code[j - 1]);
    if (prev.empty()) continue;
    if (prev[0] == '#') return true;  // preprocessor line
    const char last = prev.back();
    return last == ';' || last == '{' || last == '}' || last == ':';
  }
  return true;  // first line of the file
}

/// Matches a bare call statement `receiver.Name(` / `ns::Name(` / `Name(`
/// at the start of `trimmed`; returns the called name or "".
std::string BareCallName(const std::string& trimmed) {
  static const std::regex re_call(
      R"(^(?:[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*(?:\.|->))?((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*\()");
  std::smatch m;
  if (!std::regex_search(trimmed, m, re_call)) return "";
  std::string name = m[1];
  const size_t colons = name.rfind("::");
  if (colons != std::string::npos) name = name.substr(colons + 2);
  return name;
}

}  // namespace

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const FunctionIndex& index,
                                 std::vector<Finding>* suppressed) {
  const std::string norm = NormalizePath(path);
  const bool in_mem = InDir(norm, "src/mem");
  const bool in_sim = InDir(norm, "src/sim");
  const bool in_serve =
      InDir(norm, "src/serve") || InDir(norm, "src/cluster");
  // Demo code under examples/ drops statuses and calls banned functions at
  // its peril like everything else, but the RAII/ownership house rules are
  // library-internal; only the two portable rules fire there.
  const bool in_examples = InDir(norm, "examples");
  const bool is_header = norm.size() > 2 && norm.rfind(".h") == norm.size() - 2;

  const ScrubbedFile scrubbed = Scrub(content);
  std::vector<Finding> findings;
  auto add = [&](size_t i, const char* rule, std::string message) {
    findings.push_back(Finding{path, static_cast<int>(i + 1), rule,
                               std::move(message)});
  };

  for (size_t i = 0; i < scrubbed.code.size(); ++i) {
    const std::string& line = scrubbed.code[i];
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;

    // ---- unchecked-status ----------------------------------------------
    if (PrevEndsStatement(scrubbed.code, i) && !IsCheckedWrapper(trimmed)) {
      const std::string name = BareCallName(trimmed);
      if (!name.empty() && index.IsStatusFunction(name)) {
        add(i, kRuleUncheckedStatus,
            "result of Status/Result-returning '" + name +
                "' is dropped; consume it (SIRIUS_RETURN_NOT_OK, "
                "SIRIUS_CHECK_OK, assign, or explicit (void) cast)");
      }
    }

    // ---- banned-function ------------------------------------------------
    {
      static const char* kBanned[] = {"rand", "strcpy", "strcat", "sprintf",
                                      "gets"};
      for (const char* fn : kBanned) {
        for (size_t pos : WordOccurrences(line, fn)) {
          // Only calls: next non-space char must open the argument list.
          size_t after = pos + std::string(fn).size();
          while (after < line.size() &&
                 (line[after] == ' ' || line[after] == '\t')) {
            ++after;
          }
          if (after >= line.size() || line[after] != '(') continue;
          add(i, kRuleBannedFunction,
              std::string("'") + fn +
                  "' is banned (non-deterministic or unbounded); use "
                  "<random> engines / std::snprintf / std::string");
        }
      }
      if (in_sim && Contains(line, "system_clock")) {
        add(i, kRuleBannedFunction,
            "wall-clock time inside src/sim/; simulated components charge "
            "Timeline seconds, never real time");
      }
    }

    // The remaining rules are library house rules; examples/ is exempt.
    if (in_examples) continue;

    // ---- raw-new-delete -------------------------------------------------
    if (!in_mem) {
      for (size_t pos : WordOccurrences(line, "new")) {
        // `new` immediately owned by a smart pointer is fine:
        // std::shared_ptr<T>(new T()) — the private-constructor factory
        // idiom. Detect "ptr<...>(" right before the `new`.
        const char before = LastCodeCharBefore(line, pos);
        if (before == '(' &&
            (Contains(line.substr(0, pos), "shared_ptr<") ||
             Contains(line.substr(0, pos), "unique_ptr<"))) {
          continue;
        }
        add(i, kRuleRawNewDelete,
            "raw 'new' outside src/mem/; use Buffer/MemoryResource, a "
            "smart pointer, or a container");
      }
      for (size_t pos : WordOccurrences(line, "delete")) {
        if (LastCodeCharBefore(line, pos) == '=') continue;  // = delete
        add(i, kRuleRawNewDelete,
            "raw 'delete' outside src/mem/; ownership belongs to RAII types");
      }
    }

    // ---- mutex-guard ----------------------------------------------------
    {
      static const std::regex re_lock(
          R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*(?:try_)?(?:un)?lock\s*\()");
      for (std::sregex_iterator it(line.begin(), line.end(), re_lock), end;
           it != end; ++it) {
        const std::string receiver = (*it)[1];
        const bool mutexish = Contains(receiver, "mutex") ||
                              Contains(receiver, "mtx") || receiver == "mu" ||
                              receiver == "mu_" || receiver == "m_mu";
        if (mutexish) {
          add(i, kRuleMutexGuard,
              "manual (un)lock of '" + receiver +
                  "'; use std::lock_guard / std::unique_lock / "
                  "std::scoped_lock");
        }
      }
    }

    // ---- pinned-host-alloc ----------------------------------------------
    // All pinned host staging flows through the TierManager's ledger in
    // src/mem/ (the cudaHostAlloc registry of a real deployment). A direct
    // PinnedHostAlloc/PinnedHostFree call anywhere else bypasses tier
    // capacities and per-tenant spill quotas.
    if (!in_mem) {
      static const char* kPinned[] = {"PinnedHostAlloc", "PinnedHostFree"};
      for (const char* fn : kPinned) {
        for (size_t pos : WordOccurrences(line, fn)) {
          size_t after = pos + std::string(fn).size();
          while (after < line.size() &&
                 (line[after] == ' ' || line[after] == '\t')) {
            ++after;
          }
          if (after >= line.size() || line[after] != '(') continue;
          add(i, kRulePinnedHostAlloc,
              std::string("'") + fn +
                  "' outside src/mem/; pinned host staging goes through the "
                  "TierManager so spilled bytes stay governed");
        }
      }
    }

    // ---- serve-no-blocking ----------------------------------------------
    // The serving layer is a discrete-event core: every wait must be a
    // future/condition join tied to simulated time. Detached threads outlive
    // the DES state they touch, and wall-clock sleeps / spin-yields smuggle
    // real time into results that must be byte-deterministic.
    if (in_serve) {
      static const std::regex re_detach(
          R"((?:\.|->)\s*detach\s*\()");
      if (std::regex_search(line, re_detach)) {
        add(i, kRuleServeBlocking,
            "detached thread in the serving tier (src/serve/, src/cluster/); "
            "executions run on the joined worker pool so server teardown can "
            "never race a stray thread");
      }
      static const char* kSleeps[] = {"sleep_for", "sleep_until", "usleep",
                                      "nanosleep", "sleep", "yield"};
      for (const char* fn : kSleeps) {
        for (size_t pos : WordOccurrences(line, fn)) {
          size_t after = pos + std::string(fn).size();
          while (after < line.size() &&
                 (line[after] == ' ' || line[after] == '\t')) {
            ++after;
          }
          if (after >= line.size() || line[after] != '(') continue;
          add(i, kRuleServeBlocking,
              std::string("'") + fn +
                  "' in the serving tier (src/serve/, src/cluster/); waiting "
                  "is a future/condition join in simulated time, never a "
                  "wall-clock sleep or busy-wait");
        }
      }
    }

    // ---- raii-span ------------------------------------------------------
    {
      static const std::string kSpan = "obs::Span";
      size_t pos = 0;
      while ((pos = line.find(kSpan, pos)) != std::string::npos) {
        const size_t end = pos + kSpan.size();
        // Reject partial-identifier matches (obs::SpanRecord, obs::SpanId).
        if (end < line.size() && IsIdentChar(line[end])) {
          pos = end;
          continue;
        }
        // `new obs::Span` escapes the scope guard entirely.
        size_t back = pos;
        while (back > 0 &&
               (line[back - 1] == ' ' || line[back - 1] == '\t')) {
          --back;
        }
        const bool heap = back >= 3 && line.compare(back - 3, 3, "new") == 0 &&
                          (back < 4 || !IsIdentChar(line[back - 4]));
        // A temporary `obs::Span(...)` / `obs::Span{...}` ends the span in
        // the same statement; only a named local actually scopes it.
        size_t after = end;
        while (after < line.size() &&
               (line[after] == ' ' || line[after] == '\t')) {
          ++after;
        }
        const bool temporary =
            after < line.size() && (line[after] == '(' || line[after] == '{');
        if (heap) {
          add(i, kRuleRaiiSpan,
              "heap-allocated obs::Span; spans are RAII guards and must be "
              "named locals");
        } else if (temporary) {
          add(i, kRuleRaiiSpan,
              "temporary obs::Span dies before the work it should cover; "
              "bind it to a named local (obs::Span span(...);)");
        }
        pos = end;
      }
    }

    // ---- nodiscard-status-api ------------------------------------------
    if (is_header) {
      static const std::regex re_class(R"(\bclass\s+(Status|Result)\b)");
      std::smatch m;
      if (std::regex_search(trimmed, m, re_class) &&
          !Contains(trimmed, "[[nodiscard]]") &&
          trimmed.find("class") == 0) {
        add(i, kRuleNodiscardStatus,
            "class " + m[1].str() +
                " must be declared [[nodiscard]] so the compiler flags "
                "every dropped error");
      }
    }
  }

  // ---- suppressions -----------------------------------------------------
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    if (IsSuppressed(scrubbed, f.line, "sirius-lint", f.rule)) {
      if (suppressed != nullptr) suppressed->push_back(std::move(f));
    } else {
      kept.push_back(std::move(f));
    }
  }
  return kept;
}

std::vector<Finding> LintFiles(
    const std::map<std::string, std::string>& files,
    std::vector<Finding>* suppressed) {
  FunctionIndex index;
  for (const auto& [path, content] : files) IndexFunctions(content, &index);
  std::vector<Finding> out;
  for (const auto& [path, content] : files) {
    std::vector<Finding> f = LintContent(path, content, index, suppressed);
    out.insert(out.end(), std::make_move_iterator(f.begin()),
               std::make_move_iterator(f.end()));
  }
  return out;
}

}  // namespace sirius::lint
