// analysis_frontend: the shared C++ "parsing" layer under both static-check
// tools (token/regex level, no libclang). sirius_lint (line-local rules) and
// sirius_analyze (flow-sensitive whole-program checks) consume the same
// scrubber, cross-file function index, finding schema, and suppression
// scanner, so a fix to literal handling or JSON output lands in both.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sirius::analysis {

/// One rule violation at a specific source location (shared schema: the
/// text and JSON emitters below are the only formatters either tool uses,
/// so CI annotates lint and analyze findings uniformly).
struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Formats a finding as "file:line: [rule] message".
std::string FormatFinding(const Finding& f);

/// Machine-readable output: {"tool":...,"files":N,"findings":[...],
/// "suppressed":[...]} with findings as {file,line,rule,message} objects.
std::string FindingsToJson(const std::string& tool, size_t files,
                           const std::vector<Finding>& findings,
                           const std::vector<Finding>& suppressed);

/// \brief Cross-file symbol knowledge gathered in the first pass.
///
/// `status_returning` holds function names whose every indexed declaration
/// returns Status or Result<T>; names that also appear with another return
/// type land in `ambiguous` and are exempt from unchecked-status (a
/// token-level linter cannot resolve overloads).
struct FunctionIndex {
  std::set<std::string> status_returning;
  std::set<std::string> ambiguous;
  /// Names seen with a non-Status return type; a later Status declaration of
  /// the same name becomes ambiguous. (Populated by IndexFunctions.)
  std::set<std::string> seen_other;

  /// True when `name` is known to return Status/Result unambiguously.
  bool IsStatusFunction(const std::string& name) const {
    return status_returning.count(name) > 0 && ambiguous.count(name) == 0;
  }
};

/// \brief Source text with comments and string/char literals blanked out,
/// split into lines, plus the comment text per line (for suppressions).
struct ScrubbedFile {
  std::vector<std::string> code;      ///< literals/comments replaced by spaces
  std::vector<std::string> comments;  ///< comment text only, per line
};

/// Strips comments and literals; the scrubbed text is what rules match on.
ScrubbedFile Scrub(const std::string& content);

/// First pass: records function declarations/definitions of `content` into
/// `index` (call once per file, then lint with the merged index).
void IndexFunctions(const std::string& content, FunctionIndex* index);

/// A string literal with its 1-based source line (scrubbing erases literals,
/// so the fault-site audit extracts them from the raw text separately).
struct StringLiteral {
  int line = 0;
  std::string value;
};

/// Every double-quoted literal in `content`, comment-aware (literals inside
/// comments are not returned). Escapes are kept verbatim.
std::vector<StringLiteral> ExtractStringLiterals(const std::string& content);

/// \name Token helpers shared by both tools.
/// @{
std::string Trim(const std::string& s);
bool Contains(const std::string& haystack, const std::string& needle);
/// Normalizes path separators and guarantees a leading slash so that
/// "src/mem/buffer.cc" and "/root/repo/src/mem/buffer.cc" both match
/// InDir(path, "src/mem").
std::string NormalizePath(const std::string& path);
bool InDir(const std::string& normalized_path, const std::string& dir);
bool IsIdentChar(char c);
/// C++ keywords a function-shaped regex must not mistake for names.
const std::set<std::string>& Keywords();
/// All positions where `word` occurs as a whole word in `line`.
std::vector<size_t> WordOccurrences(const std::string& line,
                                    const std::string& word);
/// Last non-space character before `pos`, or '\0'.
char LastCodeCharBefore(const std::string& line, size_t pos);
/// @}

/// True when a `// <tag>: allow(<rule>)` comment on `line` (1-based) or the
/// line above names `rule` (or the `*` wildcard). `tag` is "sirius-lint" or
/// "sirius-analyze"; each tool only honours its own tag.
bool IsSuppressed(const ScrubbedFile& scrubbed, int line,
                  const std::string& tag, const std::string& rule);

}  // namespace sirius::analysis
