#include "frontend.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <regex>
#include <sstream>

namespace sirius::analysis {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string NormalizePath(const std::string& path) {
  std::string p = "/" + path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool InDir(const std::string& normalized_path, const std::string& dir) {
  return Contains(normalized_path, "/" + dir + "/");
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "if",     "for",     "while",   "switch",   "return", "sizeof",
      "catch",  "new",     "delete",  "else",     "case",   "goto",
      "const",  "static",  "virtual", "inline",   "explicit",
      "constexpr", "typename", "template", "using", "typedef",
      "friend", "operator", "throw",  "co_return", "co_await", "public",
      "private", "protected", "struct", "class",  "enum",   "namespace",
      "do",     "break",   "continue", "default", "alignof", "decltype",
      "noexcept", "assert",
  };
  return kKeywords;
}

namespace {

bool MatchesWord(const std::string& line, const std::string& word, size_t pos) {
  if (pos > 0 && IsIdentChar(line[pos - 1])) return false;
  const size_t end = pos + word.size();
  if (end < line.size() && IsIdentChar(line[end])) return false;
  return true;
}

}  // namespace

std::vector<size_t> WordOccurrences(const std::string& line,
                                    const std::string& word) {
  std::vector<size_t> out;
  size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    if (MatchesWord(line, word, pos)) out.push_back(pos);
    pos += word.size();
  }
  return out;
}

char LastCodeCharBefore(const std::string& line, size_t pos) {
  while (pos > 0) {
    --pos;
    if (line[pos] != ' ' && line[pos] != '\t') return line[pos];
  }
  return '\0';
}

ScrubbedFile Scrub(const std::string& content) {
  ScrubbedFile out;
  std::string code_line, comment_line;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;

  auto flush = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          if (i > 0 && content[i - 1] == 'R') {
            // Raw string literal R"delim( ... )delim": blank it wholesale,
            // preserving line structure (SQL blocks and test fixtures hold
            // quotes and parens that would desynchronize the simple string
            // state machine). The introducing 'R' is blanked too.
            size_t p = i + 1;
            std::string delim;
            while (p < content.size() && content[p] != '(' &&
                   delim.size() < 16) {
              delim += content[p++];
            }
            const std::string closer = ")" + delim + "\"";
            const size_t end = content.find(closer, p);
            const size_t stop = end == std::string::npos
                                    ? content.size()
                                    : end + closer.size();
            if (!code_line.empty()) code_line.back() = ' ';
            for (size_t j = i; j < stop; ++j) {
              if (content[j] == '\n') {
                flush();
              } else {
                code_line += ' ';
              }
            }
            i = stop - 1;
          } else {
            state = State::kString;
            code_line += ' ';
          }
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  flush();
  return out;
}

void IndexFunctions(const std::string& content, FunctionIndex* index) {
  const ScrubbedFile scrubbed = Scrub(content);
  // type name( — where type is an identifier path with an optional template
  // argument list and optional pointer/reference.
  static const std::regex re_fn(
      R"(([A-Za-z_][A-Za-z0-9_:]*(?:<[^<>;{}()]*>)?)\s*[*&]?\s+([A-Za-z_]\w*)\s*\()");
  for (const std::string& line : scrubbed.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), re_fn), end;
         it != end; ++it) {
      std::string type = (*it)[1];
      const std::string name = (*it)[2];
      if (Keywords().count(type) > 0 || Keywords().count(name) > 0) continue;
      // Strip namespace qualifiers off the return type.
      const size_t colons = type.rfind("::");
      std::string base = colons == std::string::npos
                             ? type
                             : type.substr(colons + 2);
      const bool is_status =
          base == "Status" || base.rfind("Result<", 0) == 0;
      if (is_status) {
        index->status_returning.insert(name);
      } else {
        index->seen_other.insert(name);
      }
    }
  }
  // Names that appear with both a Status and a non-Status return type are
  // overload sets a token-level linter cannot resolve; exempt them.
  for (const std::string& name : index->status_returning) {
    if (index->seen_other.count(name) > 0) index->ambiguous.insert(name);
  }
}

std::vector<StringLiteral> ExtractStringLiterals(const std::string& content) {
  std::vector<StringLiteral> out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  int line = 1;
  std::string current;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      if (state == State::kString) {
        // Unterminated literal (should not happen in valid code): drop it.
        state = State::kCode;
        current.clear();
      }
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          if (i > 0 && content[i - 1] == 'R') {
            // Raw strings are code-shaped blobs (SQL, test fixtures), not
            // site names: skip without extracting.
            size_t p = i + 1;
            std::string delim;
            while (p < content.size() && content[p] != '(' &&
                   delim.size() < 16) {
              delim += content[p++];
            }
            const std::string closer = ")" + delim + "\"";
            const size_t end = content.find(closer, p);
            const size_t stop = end == std::string::npos
                                    ? content.size()
                                    : end + closer.size();
            for (size_t j = i; j < stop; ++j) {
              if (content[j] == '\n') ++line;
            }
            i = stop - 1;
          } else {
            state = State::kString;
            current.clear();
          }
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          current += c;
          current += next;
          ++i;
        } else if (c == '"') {
          out.push_back(StringLiteral{line, current});
          state = State::kCode;
        } else {
          current += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

bool IsSuppressed(const ScrubbedFile& scrubbed, int line,
                  const std::string& tag, const std::string& rule) {
  const std::string marker = tag + ": allow(";
  for (int delta = 0; delta >= -1; --delta) {
    const int line_idx = line - 1 + delta;
    if (line_idx < 0 ||
        static_cast<size_t>(line_idx) >= scrubbed.comments.size()) {
      continue;
    }
    const std::string& comment = scrubbed.comments[line_idx];
    const size_t at = comment.find(marker);
    if (at == std::string::npos) continue;
    const size_t open = comment.find('(', at);
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    const std::string rules = comment.substr(open + 1, close - open - 1);
    if (Contains(rules, rule) || Trim(rules) == "*") return true;
  }
  return false;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendFindingArray(std::ostringstream& os,
                        const std::vector<Finding>& findings) {
  os << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) os << ",";
    os << "{\"file\":\"" << JsonEscape(f.file) << "\",\"line\":" << f.line
       << ",\"rule\":\"" << JsonEscape(f.rule) << "\",\"message\":\""
       << JsonEscape(f.message) << "\"}";
  }
  os << "]";
}

}  // namespace

std::string FindingsToJson(const std::string& tool, size_t files,
                           const std::vector<Finding>& findings,
                           const std::vector<Finding>& suppressed) {
  std::ostringstream os;
  os << "{\"tool\":\"" << JsonEscape(tool) << "\",\"files\":" << files
     << ",\"findings\":";
  AppendFindingArray(os, findings);
  os << ",\"suppressed\":";
  AppendFindingArray(os, suppressed);
  os << "}";
  return os.str();
}

}  // namespace sirius::analysis
