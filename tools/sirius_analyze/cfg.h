// sirius_analyze parsing layer: function extraction, structured statement
// trees, and per-function statement-level CFGs, all built over the shared
// analysis_frontend scrubber (no libclang — same trade as sirius_lint, but
// one level up: statements and control flow instead of lines).
//
// The parser is deliberately approximate where C++ is undecidable at the
// token level; it is exact where the checks need it to be:
//   - brace structure (namespaces, classes, function bodies, nested scopes)
//   - statement boundaries and if/else/loop/switch shape
//   - early returns, including SIRIUS_RETURN_NOT_OK/SIRIUS_ASSIGN_OR_RETURN
//   - lambdas, which are split out as separate anonymous functions so work
//     deferred to a thread pool is never attributed to the submitting
//     function's lock scope.

#pragma once

#include <string>
#include <vector>

#include "frontend.h"

namespace sirius::analyze {

/// One parsed statement (scrubbed text, whitespace-collapsed).
struct Stmt {
  int line = 0;  ///< 1-based line of the statement's first token
  std::string text;
};

/// A node in a function body's structured statement tree.
struct BodyNode {
  enum class Kind {
    kStmt,    ///< plain statement (may conditionally return, see cfg.cc)
    kIf,      ///< stmt = condition; then_body / else_body
    kLoop,    ///< for / while / do: stmt = header; then_body = body
    kSwitch,  ///< stmt = selector; then_body = body (treated as optional)
    kBlock,   ///< bare { } scope (lock scopes): then_body = body
  };
  Kind kind = Kind::kStmt;
  Stmt stmt;
  std::vector<BodyNode> then_body;
  std::vector<BodyNode> else_body;  ///< kIf only
};

/// One function (or lambda) definition with its parsed body.
struct FunctionDef {
  std::string name;  ///< unqualified; "<lambda>" for lambdas
  std::string cls;   ///< enclosing class when determinable, else ""
  std::string file;
  int line = 0;  ///< line the body's opening brace is on
  bool is_lambda = false;
  std::vector<BodyNode> body;

  std::string qualified() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

/// Extracts every function/method/lambda definition from one scrubbed file.
std::vector<FunctionDef> ParseFunctions(const std::string& path,
                                        const analysis::ScrubbedFile& scrubbed);

/// \brief Statement-level control-flow graph for one function body.
///
/// Basic blocks hold consecutive statements; a block's terminator decides
/// its successors. `exit` is the single synthetic exit block every return
/// path reaches. A statement wrapped in SIRIUS_RETURN_NOT_OK /
/// SIRIUS_ASSIGN_OR_RETURN ends its block with both a fall-through and an
/// exit successor (the early Status-propagation edge).
struct Cfg {
  struct Block {
    std::vector<Stmt> stmts;
    std::vector<int> succ;
    /// When the block's terminating statement is a conditional early return
    /// (RETURN_NOT_OK-style), the index into `succ` of the exit edge, else
    /// -1. The ledger check uses it: a conditional return wrapping the
    /// *acquire itself* exits with the pre-acquire balance.
    int cond_exit_succ = -1;
    /// For kIf condition blocks guarding an acquire's status variable
    /// (`if (!st.ok()) return ...` right after `st = x->Grow(n)`): the
    /// checked variable name, else "". See analyze.cc.
    std::string checked_var;
    /// Index into `succ` of the branch taken when the check FAILS (the
    /// then-edge of `if (!st.ok())`), else -1.
    int check_fail_succ = -1;
  };
  std::vector<Block> blocks;
  int entry = 0;
  int exit = 0;
};

/// Builds the CFG for `fn`'s body.
Cfg BuildCfg(const FunctionDef& fn);

}  // namespace sirius::analyze
