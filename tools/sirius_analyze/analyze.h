// sirius_analyze: flow-sensitive whole-program checks over the parsed
// function set (see cfg.h). Four rules, all interprocedural where it
// matters:
//
//   lock-order           cycles in the mutex-acquisition order graph,
//                        propagated through the call graph (potential
//                        ABBA deadlocks)
//   blocking-under-lock  calls that block (stream syncs, spill joins,
//                        collectives, server re-entry) while a std::mutex
//                        guard is live, directly or via a callee
//   ledger-balance       Reservation::Grow / pool TryReserve /
//                        PinnedHostAlloc must balance on every CFG exit
//                        path, including RETURN_NOT_OK early returns
//   fault-site-coverage  fault-injection site strings in src/ must agree
//                        with registrations, test sweeps, and DESIGN.md
//
// Findings use the shared {file,line,rule,message} schema from
// analysis_frontend; suppression is `// sirius-analyze: allow(<rule>)` on
// the finding line or the line above.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "cfg.h"
#include "frontend.h"

namespace sirius::analyze {

inline constexpr char kRuleLockOrder[] = "lock-order";
inline constexpr char kRuleBlockingUnderLock[] = "blocking-under-lock";
inline constexpr char kRuleLedgerBalance[] = "ledger-balance";
inline constexpr char kRuleFaultSiteCoverage[] = "fault-site-coverage";

struct AnalyzerInput {
  /// path (forward slashes) -> raw file content. The flow checks
  /// (lock-order, blocking-under-lock, ledger-balance) run over files under
  /// src/; the fault-site audit additionally reads tests/ for sweep
  /// coverage.
  std::map<std::string, std::string> files;
  /// DESIGN.md content, "" when absent (then the doc cross-check is
  /// skipped).
  std::string design_md;
};

/// Runs all four checks. Suppressed findings are appended to `suppressed`
/// when non-null. Returned findings are sorted by (file, line, rule).
std::vector<analysis::Finding> Analyze(
    const AnalyzerInput& in, std::vector<analysis::Finding>* suppressed);

}  // namespace sirius::analyze
