#include "cfg.h"

#include <cctype>
#include <regex>

namespace sirius::analyze {

using analysis::IsIdentChar;
using analysis::Keywords;
using analysis::Trim;

namespace {

/// Character cursor over the joined scrubbed text with line tracking.
struct Cursor {
  const std::string* text = nullptr;
  size_t pos = 0;
  int line = 1;

  bool done() const { return pos >= text->size(); }
  char peek() const { return done() ? '\0' : (*text)[pos]; }
  void advance() {
    if (!done()) {
      if ((*text)[pos] == '\n') ++line;
      ++pos;
    }
  }
};

void SkipWs(Cursor& cur) {
  while (!cur.done() && std::isspace(static_cast<unsigned char>(cur.peek()))) {
    cur.advance();
  }
}

/// Appends `c` to `out` collapsing all whitespace runs to single spaces.
void AppendNormalized(std::string* out, char c) {
  if (std::isspace(static_cast<unsigned char>(c))) {
    if (!out->empty() && out->back() != ' ') *out += ' ';
  } else {
    *out += c;
  }
}

std::string ReadIdent(Cursor& cur) {
  std::string w;
  while (!cur.done() && IsIdentChar(cur.peek())) {
    w += cur.peek();
    cur.advance();
  }
  return w;
}

/// Consumes a balanced (...) group (cursor on '('); returns the inside text.
std::string ConsumeParens(Cursor& cur) {
  std::string out;
  if (cur.peek() != '(') return out;
  cur.advance();
  int depth = 1;
  while (!cur.done() && depth > 0) {
    const char c = cur.peek();
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth == 0) {
        cur.advance();
        break;
      }
    }
    AppendNormalized(&out, c);
    cur.advance();
  }
  return out;
}

/// Consumes a balanced {...} group; cursor must be just PAST the '{'.
void SkipBalancedBraces(Cursor& cur) {
  int depth = 1;
  while (!cur.done() && depth > 0) {
    const char c = cur.peek();
    if (c == '{') ++depth;
    if (c == '}') --depth;
    cur.advance();
  }
}

/// True when the accumulated statement text ends in a lambda introducer
/// (so the '{' the cursor sits on opens a lambda body):
///   [cap](args) [mutable|noexcept] [-> type] {     or      [cap] {
bool EndsWithLambdaIntro(const std::string& text) {
  std::string s = Trim(text);
  if (s.empty()) return false;
  // Strip a trailing "-> type" return annotation (only after the last ')').
  const size_t last_close = s.rfind(')');
  if (last_close != std::string::npos) {
    const size_t arrow = s.find("->", last_close);
    if (arrow != std::string::npos) s = Trim(s.substr(0, arrow));
  }
  // Strip trailing specifier words.
  for (;;) {
    bool stripped = false;
    for (const char* w : {"mutable", "noexcept", "constexpr"}) {
      const std::string word = w;
      if (s.size() >= word.size() &&
          s.compare(s.size() - word.size(), word.size(), word) == 0 &&
          (s.size() == word.size() ||
           !IsIdentChar(s[s.size() - word.size() - 1]))) {
        s = Trim(s.substr(0, s.size() - word.size()));
        stripped = true;
      }
    }
    if (!stripped) break;
  }
  if (s.empty()) return false;
  // Optionally strip a trailing balanced (params) group.
  if (s.back() == ')') {
    int depth = 0;
    size_t i = s.size();
    while (i > 0) {
      --i;
      if (s[i] == ')') ++depth;
      if (s[i] == '(') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (depth != 0) return false;
    s = Trim(s.substr(0, i));
    if (s.empty()) return false;
  }
  // Must now end with a balanced [capture] whose '[' does not follow an
  // identifier / ')' / ']' (which would make it a subscript).
  if (s.back() != ']') return false;
  int depth = 0;
  size_t i = s.size();
  while (i > 0) {
    --i;
    if (s[i] == ']') ++depth;
    if (s[i] == '[') {
      --depth;
      if (depth == 0) break;
    }
  }
  if (depth != 0) return false;
  if (i == 0) return true;
  size_t j = i;
  while (j > 0 && s[j - 1] == ' ') --j;
  if (j == 0) return true;
  const char before = s[j - 1];
  return !(IsIdentChar(before) || before == ')' || before == ']');
}

struct ParseCtx {
  std::string file;
  std::string cls;  ///< class context lambdas inherit ([this] captures)
  std::vector<FunctionDef>* out = nullptr;
};

std::vector<BodyNode> ParseBody(Cursor& cur, ParseCtx& ctx);
BodyNode ParseItem(Cursor& cur, ParseCtx& ctx);

/// Accumulates one plain statement up to its terminating ';' (or an
/// unconsumed '}' closing the scope). Lambdas encountered mid-statement are
/// split out as separate FunctionDefs so deferred work is never attributed
/// to the enclosing scope.
BodyNode ParseStmt(Cursor& cur, ParseCtx& ctx) {
  BodyNode node;
  node.kind = BodyNode::Kind::kStmt;
  node.stmt.line = cur.line;
  std::string& text = node.stmt.text;
  int depth = 0;
  while (!cur.done()) {
    const char c = cur.peek();
    if (c == '(' || c == '[') {
      ++depth;
      text += c;
      cur.advance();
    } else if (c == ')' || c == ']') {
      --depth;
      text += c;
      cur.advance();
    } else if (c == ';' && depth <= 0) {
      cur.advance();
      break;
    } else if (c == '}') {
      break;  // scope closes without ';' (label, missing stmt): leave it
    } else if (c == '{') {
      if (EndsWithLambdaIntro(text)) {
        cur.advance();
        FunctionDef lam;
        lam.name = "<lambda>";
        lam.cls = ctx.cls;
        lam.file = ctx.file;
        lam.line = cur.line;
        lam.is_lambda = true;
        lam.body = ParseBody(cur, ctx);
        ctx.out->push_back(std::move(lam));
        text += " <<lambda>> ";
      } else {
        // Braced initializer / aggregate: consume, keep a placeholder.
        cur.advance();
        SkipBalancedBraces(cur);
        text += " {} ";
      }
    } else {
      AppendNormalized(&text, c);
      cur.advance();
    }
  }
  text = Trim(text);
  return node;
}

/// Parses `{ body }` or one single-statement branch.
std::vector<BodyNode> ParseBranch(Cursor& cur, ParseCtx& ctx) {
  SkipWs(cur);
  if (cur.peek() == '{') {
    cur.advance();
    return ParseBody(cur, ctx);
  }
  std::vector<BodyNode> one;
  if (!cur.done() && cur.peek() != '}') one.push_back(ParseItem(cur, ctx));
  return one;
}

BodyNode ParseItem(Cursor& cur, ParseCtx& ctx) {
  SkipWs(cur);
  const int start_line = cur.line;
  const size_t save_pos = cur.pos;
  const int save_line = cur.line;
  const std::string word = ReadIdent(cur);

  if (word == "if") {
    SkipWs(cur);
    {  // optional `constexpr`
      const size_t p = cur.pos;
      const int l = cur.line;
      if (ReadIdent(cur) != "constexpr") {
        cur.pos = p;
        cur.line = l;
      }
    }
    SkipWs(cur);
    BodyNode n;
    n.kind = BodyNode::Kind::kIf;
    n.stmt.line = start_line;
    n.stmt.text = Trim(ConsumeParens(cur));
    n.then_body = ParseBranch(cur, ctx);
    SkipWs(cur);
    const size_t p = cur.pos;
    const int l = cur.line;
    if (ReadIdent(cur) == "else") {
      SkipWs(cur);
      if (cur.peek() == '{') {
        cur.advance();
        n.else_body = ParseBody(cur, ctx);
      } else if (!cur.done() && cur.peek() != '}') {
        n.else_body.push_back(ParseItem(cur, ctx));  // else-if chains
      }
    } else {
      cur.pos = p;
      cur.line = l;
    }
    return n;
  }
  if (word == "for" || word == "while") {
    SkipWs(cur);
    BodyNode n;
    n.kind = BodyNode::Kind::kLoop;
    n.stmt.line = start_line;
    n.stmt.text = Trim(ConsumeParens(cur));
    n.then_body = ParseBranch(cur, ctx);
    return n;
  }
  if (word == "do") {
    BodyNode n;
    n.kind = BodyNode::Kind::kLoop;
    n.stmt.line = start_line;
    n.then_body = ParseBranch(cur, ctx);
    SkipWs(cur);
    (void)ReadIdent(cur);  // "while"
    SkipWs(cur);
    n.stmt.text = Trim(ConsumeParens(cur));
    SkipWs(cur);
    if (cur.peek() == ';') cur.advance();
    return n;
  }
  if (word == "switch") {
    SkipWs(cur);
    BodyNode n;
    n.kind = BodyNode::Kind::kSwitch;
    n.stmt.line = start_line;
    n.stmt.text = Trim(ConsumeParens(cur));
    SkipWs(cur);
    if (cur.peek() == '{') {
      cur.advance();
      n.then_body = ParseBody(cur, ctx);
    }
    return n;
  }
  if (word == "try") {
    SkipWs(cur);
    if (cur.peek() == '{') {
      cur.advance();
      BodyNode n;
      n.kind = BodyNode::Kind::kBlock;
      n.stmt.line = start_line;
      n.then_body = ParseBody(cur, ctx);
      return n;
    }
  }
  if (word == "catch") {
    SkipWs(cur);
    BodyNode n;
    n.kind = BodyNode::Kind::kSwitch;  // may-or-may-not-run semantics
    n.stmt.line = start_line;
    n.stmt.text = Trim(ConsumeParens(cur));
    SkipWs(cur);
    if (cur.peek() == '{') {
      cur.advance();
      n.then_body = ParseBody(cur, ctx);
    }
    return n;
  }

  // Plain statement (re-scan from the start so `word` is part of the text).
  cur.pos = save_pos;
  cur.line = save_line;
  return ParseStmt(cur, ctx);
}

std::vector<BodyNode> ParseBody(Cursor& cur, ParseCtx& ctx) {
  std::vector<BodyNode> items;
  for (;;) {
    SkipWs(cur);
    if (cur.done()) break;
    const char c = cur.peek();
    if (c == '}') {
      cur.advance();
      break;
    }
    if (c == ';') {
      cur.advance();
      continue;
    }
    if (c == '{') {
      cur.advance();
      BodyNode b;
      b.kind = BodyNode::Kind::kBlock;
      b.stmt.line = cur.line;
      b.then_body = ParseBody(cur, ctx);
      items.push_back(std::move(b));
      continue;
    }
    items.push_back(ParseItem(cur, ctx));
  }
  return items;
}

/// Tries to read `head` as a function signature ending just before '{'.
/// On success fills the unqualified `name` and, for out-of-line
/// `Class::name` definitions, `cls`.
bool TryParseFunctionHead(const std::string& head, std::string* name,
                          std::string* cls) {
  const std::string h = Trim(head);
  if (h.empty() || h[0] == '#') return false;
  // First '(' at paren AND angle depth 0 (skips std::function<void(int)>).
  int paren = 0, angle = 0;
  size_t open = std::string::npos;
  for (size_t i = 0; i < h.size(); ++i) {
    const char c = h[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(') {
      if (paren == 0 && angle == 0) {
        open = i;
        break;
      }
      ++paren;
    }
    if (c == ')' && paren > 0) --paren;
  }
  if (open == std::string::npos) return false;
  // Identifier chain reading backwards: name, optionally Class::name.
  size_t e = open;
  while (e > 0 && h[e - 1] == ' ') --e;
  size_t b = e;
  while (b > 0 && (IsIdentChar(h[b - 1]) || h[b - 1] == '~')) --b;
  if (b == e) return false;
  std::string nm = h.substr(b, e - b);
  std::string chain = nm;
  while (b >= 2 && h[b - 1] == ':' && h[b - 2] == ':') {
    size_t e2 = b - 2;
    size_t b2 = e2;
    while (b2 > 0 && IsIdentChar(h[b2 - 1])) --b2;
    if (b2 == e2) break;
    chain = h.substr(b2, e2 - b2) + "::" + chain;
    b = b2;
  }
  if (!nm.empty() && nm[0] == '~') nm = nm.substr(1);  // destructors
  if (nm.empty() || Keywords().count(nm) > 0 || nm == "operator") return false;
  // Trailer after the matching ')' must look like a signature's tail.
  int depth = 0;
  size_t close = std::string::npos;
  for (size_t i = open; i < h.size(); ++i) {
    if (h[i] == '(') ++depth;
    if (h[i] == ')') {
      --depth;
      if (depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == std::string::npos) return false;
  std::string trailer = Trim(h.substr(close + 1));
  for (;;) {
    bool stripped = false;
    for (const char* w : {"const", "noexcept", "override", "final", "mutable",
                          "try"}) {
      const std::string word = w;
      if (trailer.rfind(word, 0) == 0 &&
          (trailer.size() == word.size() ||
           !IsIdentChar(trailer[word.size()]))) {
        trailer = Trim(trailer.substr(word.size()));
        stripped = true;
      }
    }
    if (!stripped) break;
  }
  if (!trailer.empty() && trailer.rfind("->", 0) != 0 &&
      !(trailer[0] == ':' && (trailer.size() < 2 || trailer[1] != ':'))) {
    return false;
  }
  if (trailer.find('=') != std::string::npos &&
      trailer.rfind("->", 0) != 0) {
    return false;
  }
  *name = nm;
  const size_t qual = chain.rfind("::");
  *cls = qual == std::string::npos ? "" : chain.substr(0, qual);
  return true;
}

bool ContainsWord(const std::string& s, const std::string& w) {
  return !analysis::WordOccurrences(s, w).empty();
}

/// Scans a namespace/class/file scope, extracting function definitions.
void ScanScope(Cursor& cur, const std::string& cls, ParseCtx& base) {
  std::string head;
  while (!cur.done()) {
    const char c = cur.peek();
    if (c == ';') {
      head.clear();
      cur.advance();
      continue;
    }
    if (c == '}') {
      cur.advance();
      return;
    }
    if (c != '{') {
      AppendNormalized(&head, c);
      cur.advance();
      continue;
    }
    // Opening brace: classify what the head introduces.
    const int body_line = cur.line;
    cur.advance();
    const std::string h = Trim(head);
    head.clear();
    std::string fn_name, fn_cls;
    if (ContainsWord(h, "enum")) {
      SkipBalancedBraces(cur);
    } else if (TryParseFunctionHead(h, &fn_name, &fn_cls)) {
      FunctionDef fn;
      fn.name = fn_name;
      fn.cls = fn_cls.empty() ? cls : fn_cls;
      fn.file = base.file;
      fn.line = body_line;
      ParseCtx ctx = base;
      ctx.cls = fn.cls;
      fn.body = ParseBody(cur, ctx);
      base.out->push_back(std::move(fn));
    } else if (ContainsWord(h, "class") || ContainsWord(h, "struct") ||
               ContainsWord(h, "union")) {
      // `template <class T> struct Foo` — the LAST class/struct match names
      // the type being defined.
      static const std::regex re_cls(R"(\b(?:class|struct|union)\s+(?:\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*))");
      std::string inner_cls;
      for (std::sregex_iterator it(h.begin(), h.end(), re_cls), end; it != end;
           ++it) {
        inner_cls = (*it)[1];
      }
      ScanScope(cur, inner_cls.empty() ? cls : inner_cls, base);
    } else if (ContainsWord(h, "namespace")) {
      ScanScope(cur, cls, base);
    } else if (EndsWithLambdaIntro(h)) {
      FunctionDef lam;
      lam.name = "<lambda>";
      lam.cls = cls;
      lam.file = base.file;
      lam.line = body_line;
      lam.is_lambda = true;
      ParseCtx ctx = base;
      ctx.cls = cls;
      lam.body = ParseBody(cur, ctx);
      base.out->push_back(std::move(lam));
    } else {
      // Initializer list, extern block, or something we cannot classify:
      // keep brace structure intact and move on.
      SkipBalancedBraces(cur);
    }
  }
}

}  // namespace

std::vector<FunctionDef> ParseFunctions(
    const std::string& path, const analysis::ScrubbedFile& scrubbed) {
  std::string joined;
  size_t total = 0;
  for (const std::string& l : scrubbed.code) total += l.size() + 1;
  joined.reserve(total);
  // Preprocessor lines (and their continuations) are blanked: #include /
  // #define text is not statement flow, and a directive bleeding into a
  // scope head would make the next function unrecognizable.
  bool continuation = false;
  for (const std::string& l : scrubbed.code) {
    const std::string t = Trim(l);
    const bool directive = continuation || (!t.empty() && t[0] == '#');
    continuation = directive && !t.empty() && t.back() == '\\';
    if (directive) {
      joined.append(l.size(), ' ');
    } else {
      joined += l;
    }
    joined += '\n';
  }
  std::vector<FunctionDef> out;
  ParseCtx ctx;
  ctx.file = path;
  ctx.out = &out;
  Cursor cur;
  cur.text = &joined;
  ScanScope(cur, "", ctx);
  return out;
}

// ---------------------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------------------

namespace {

bool StartsWithWord(const std::string& s, const char* w) {
  const std::string word = w;
  return s.rfind(word, 0) == 0 &&
         (s.size() == word.size() || !IsIdentChar(s[word.size()]));
}

bool IsCondReturnMacro(const std::string& text) {
  return StartsWithWord(text, "SIRIUS_RETURN_NOT_OK") ||
         StartsWithWord(text, "SIRIUS_ASSIGN_OR_RETURN");
}

/// `!st.ok()` / `! st.ok()` → "st" (the guard of an acquire's status var).
std::string NegatedOkVar(const std::string& cond) {
  static const std::regex re(R"(^!\s*([A-Za-z_]\w*)\s*\.\s*ok\s*\(\s*\)$)");
  std::smatch m;
  const std::string c = Trim(cond);
  if (std::regex_match(c, m, re)) return m[1];
  return "";
}

struct CfgBuilder {
  Cfg cfg;
  /// break targets (loops and switches) / continue targets (loops only).
  std::vector<int> break_stack;
  std::vector<int> continue_stack;

  int NewBlock() {
    cfg.blocks.emplace_back();
    return static_cast<int>(cfg.blocks.size()) - 1;
  }
  void Edge(int from, int to) { cfg.blocks[from].succ.push_back(to); }

  int Emit(const std::vector<BodyNode>& items, int cur) {
    for (const BodyNode& node : items) {
      switch (node.kind) {
        case BodyNode::Kind::kStmt: {
          const std::string& t = node.stmt.text;
          if (StartsWithWord(t, "return") || StartsWithWord(t, "co_return") ||
              StartsWithWord(t, "throw")) {
            cfg.blocks[cur].stmts.push_back(node.stmt);
            Edge(cur, cfg.exit);
            cur = NewBlock();
          } else if (IsCondReturnMacro(t)) {
            cfg.blocks[cur].stmts.push_back(node.stmt);
            const int next = NewBlock();
            Edge(cur, next);
            Edge(cur, cfg.exit);
            cfg.blocks[cur].cond_exit_succ = 1;
            cur = next;
          } else if (StartsWithWord(t, "break")) {
            cfg.blocks[cur].stmts.push_back(node.stmt);
            Edge(cur, break_stack.empty() ? cfg.exit : break_stack.back());
            cur = NewBlock();
          } else if (StartsWithWord(t, "continue")) {
            cfg.blocks[cur].stmts.push_back(node.stmt);
            Edge(cur,
                 continue_stack.empty() ? cfg.exit : continue_stack.back());
            cur = NewBlock();
          } else {
            cfg.blocks[cur].stmts.push_back(node.stmt);
          }
          break;
        }
        case BodyNode::Kind::kIf: {
          cfg.blocks[cur].stmts.push_back(node.stmt);
          const int then_b = NewBlock();
          const int after = NewBlock();
          Edge(cur, then_b);  // succ[0] = then
          const std::string var = NegatedOkVar(node.stmt.text);
          if (!var.empty()) {
            cfg.blocks[cur].checked_var = var;
            cfg.blocks[cur].check_fail_succ = 0;
          }
          const int then_end = Emit(node.then_body, then_b);
          Edge(then_end, after);
          if (!node.else_body.empty()) {
            const int else_b = NewBlock();
            Edge(cur, else_b);
            const int else_end = Emit(node.else_body, else_b);
            Edge(else_end, after);
          } else {
            Edge(cur, after);
          }
          cur = after;
          break;
        }
        case BodyNode::Kind::kLoop: {
          const int header = NewBlock();
          Edge(cur, header);
          cfg.blocks[header].stmts.push_back(node.stmt);
          const int body_b = NewBlock();
          const int after = NewBlock();
          Edge(header, body_b);
          Edge(header, after);
          break_stack.push_back(after);
          continue_stack.push_back(header);
          const int body_end = Emit(node.then_body, body_b);
          Edge(body_end, header);
          continue_stack.pop_back();
          break_stack.pop_back();
          cur = after;
          break;
        }
        case BodyNode::Kind::kSwitch: {
          cfg.blocks[cur].stmts.push_back(node.stmt);
          const int body_b = NewBlock();
          const int after = NewBlock();
          Edge(cur, body_b);
          Edge(cur, after);  // the body may not run (no matching case)
          break_stack.push_back(after);
          const int body_end = Emit(node.then_body, body_b);
          Edge(body_end, after);
          break_stack.pop_back();
          cur = after;
          break;
        }
        case BodyNode::Kind::kBlock: {
          cur = Emit(node.then_body, cur);
          break;
        }
      }
    }
    return cur;
  }
};

}  // namespace

Cfg BuildCfg(const FunctionDef& fn) {
  CfgBuilder b;
  b.cfg.entry = b.NewBlock();  // 0
  b.cfg.exit = b.NewBlock();   // 1
  const int last = b.Emit(fn.body, b.cfg.entry);
  b.Edge(last, b.cfg.exit);
  return b.cfg;
}

}  // namespace sirius::analyze
