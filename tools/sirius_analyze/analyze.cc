#include "analyze.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace sirius::analyze {

using analysis::Finding;
using analysis::InDir;
using analysis::IsIdentChar;
using analysis::IsSuppressed;
using analysis::Keywords;
using analysis::NormalizePath;
using analysis::ScrubbedFile;
using analysis::Trim;
using analysis::WordOccurrences;

namespace {

// ---------------------------------------------------------------------------
// Small token utilities
// ---------------------------------------------------------------------------

std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// One `name(` call site inside a statement, with its `x.` / `x->` receiver
/// when present.
struct CallRef {
  std::string name;
  std::string recv;
};

std::vector<CallRef> ExtractCalls(const std::string& text) {
  std::vector<CallRef> out;
  const size_t n = text.size();
  size_t i = 0;
  while (i < n) {
    if (!IsIdentChar(text[i]) || std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    const size_t b = i;
    while (i < n && IsIdentChar(text[i])) ++i;
    const std::string word = text.substr(b, i - b);
    size_t j = i;
    while (j < n && text[j] == ' ') ++j;
    if (j >= n || text[j] != '(') continue;
    if (Keywords().count(word) > 0) continue;
    CallRef c;
    c.name = word;
    // Receiver: ident immediately before `.` / `->` preceding the name.
    size_t k = b;
    while (k > 0 && text[k - 1] == ' ') --k;
    size_t sep = 0;  // 1 = '.', 2 = '->'
    if (k >= 1 && text[k - 1] == '.') {
      sep = 1;
      k -= 1;
    } else if (k >= 2 && text[k - 2] == '-' && text[k - 1] == '>') {
      sep = 2;
      k -= 2;
    }
    if (sep != 0) {
      while (k > 0 && text[k - 1] == ' ') --k;
      const size_t e2 = k;
      while (k > 0 && IsIdentChar(text[k - 1])) --k;
      c.recv = text.substr(k, e2 - k);
    }
    out.push_back(std::move(c));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lock model
// ---------------------------------------------------------------------------

/// A mutex acquisition parsed out of one statement.
struct LockAcq {
  std::string raw;    ///< mutex expression as written (this-> stripped)
  bool deferred = false;
};

const std::regex& GuardRe() {
  static const std::regex re(
      R"((?:std\s*::\s*)?(lock_guard|unique_lock|scoped_lock|shared_lock)\s*(?:<[^<>]*>)?\s+\w+\s*\(([^()]*)\))");
  return re;
}

const std::regex& ManualLockRe() {
  static const std::regex re(
      R"(([A-Za-z_]\w*(?:(?:\.|->)\w+)*)\s*(?:\.|->)\s*(lock|try_lock|unlock)\s*\(\s*\))");
  return re;
}

std::string CleanLockExpr(std::string s) {
  s = Trim(s);
  const std::string kThisArrow = "this->";
  if (s.rfind(kThisArrow, 0) == 0) s = s.substr(kThisArrow.size());
  while (!s.empty() && (s[0] == '&' || s[0] == '*')) s = Trim(s.substr(1));
  return s;
}

/// Canonical cross-function identity of a mutex: members are qualified by
/// the owning class, file-scope mutexes by the file stem, `g_`-prefixed
/// globals stand alone.
std::string CanonicalLock(const std::string& expr, const FunctionDef& fn) {
  if (expr.rfind("g_", 0) == 0) return expr;
  if (!fn.cls.empty()) return fn.cls + "::" + expr;
  return FileStem(fn.file) + "::" + expr;
}

/// Guard / manual-lock acquisitions in one statement. `released` receives
/// mutex expressions explicitly `.unlock()`ed.
std::vector<LockAcq> StmtAcquires(const std::string& text,
                                  std::vector<std::string>* released) {
  std::vector<LockAcq> out;
  for (std::sregex_iterator it(text.begin(), text.end(), GuardRe()), end;
       it != end; ++it) {
    const std::string kind = (*it)[1];
    const std::string args = (*it)[2];
    const bool deferred = args.find("defer_lock") != std::string::npos ||
                          args.find("adopt_lock") != std::string::npos;
    // scoped_lock may name several mutexes; the others take the mutex first.
    std::vector<std::string> parts;
    std::string cur;
    for (char c : args) {
      if (c == ',') {
        parts.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    parts.push_back(cur);
    const size_t take = kind == "scoped_lock" ? parts.size() : 1;
    for (size_t i = 0; i < take && i < parts.size(); ++i) {
      const std::string expr = CleanLockExpr(parts[i]);
      if (expr.empty() || expr.find("defer_lock") != std::string::npos ||
          expr.find("adopt_lock") != std::string::npos) {
        continue;
      }
      out.push_back({expr, deferred});
    }
  }
  for (std::sregex_iterator it(text.begin(), text.end(), ManualLockRe()), end;
       it != end; ++it) {
    const std::string expr = CleanLockExpr((*it)[1]);
    const std::string op = (*it)[2];
    if (op == "unlock") {
      if (released != nullptr) released->push_back(expr);
    } else {
      out.push_back({expr, false});
    }
  }
  return out;
}

/// Callee names treated as potentially long-blocking: stream syncs, thread
/// and spill joins, collective exchanges, and serving-loop re-entry.
/// `future.get()` / `cv.wait()` are deliberately absent — joining futures
/// under the server mutex is the repo's discrete-event protocol (see
/// src/serve/serve.cc Pump).
const std::set<std::string>& BlockingCallees() {
  static const std::set<std::string> kSet = {
      "Sync",     "Synchronize", "WaitIdle",  "Join",      "join",
      "DrainAll", "RoundTrip",   "Step",      "AllToAll",  "AllReduce",
      "AllGather", "Broadcast",  "Multicast", "Scatter",
  };
  return kSet;
}

// ---------------------------------------------------------------------------
// Per-function summaries + call graph
// ---------------------------------------------------------------------------

struct FuncSummary {
  const FunctionDef* def = nullptr;
  std::set<std::string> calls;        ///< bare callee names
  std::set<std::string> may_acquire;  ///< canonical locks (transitive)
  bool may_block = false;
  std::string block_why;  ///< human chain: "Sync() at file:line" etc.
};

void CollectStmts(const std::vector<BodyNode>& nodes,
                  std::vector<const Stmt*>* out) {
  for (const BodyNode& n : nodes) {
    out->push_back(&n.stmt);
    CollectStmts(n.then_body, out);
    CollectStmts(n.else_body, out);
  }
}

// ---------------------------------------------------------------------------
// Lexical lock walk (lock-order edges + blocking-under-lock findings)
// ---------------------------------------------------------------------------

struct HeldLock {
  std::string lock;
  int line = 0;
};

struct EdgeWitness {
  std::string file;
  int line = 0;
  std::string desc;
};

struct LockWalkCtx {
  const FunctionDef* fn = nullptr;
  const std::map<std::string, const FuncSummary*>* unique_fns = nullptr;
  const std::map<std::string, FuncSummary>* summaries = nullptr;
  std::map<std::string, std::map<std::string, EdgeWitness>>* edges = nullptr;
  std::vector<Finding>* findings = nullptr;
};

void AddEdge(LockWalkCtx& ctx, const std::string& from, const std::string& to,
             int line, const std::string& desc) {
  auto& slot = (*ctx.edges)[from];
  if (slot.count(to) == 0) {
    slot[to] = EdgeWitness{ctx.fn->file, line, desc};
  }
}

void WalkStmtUnderLocks(LockWalkCtx& ctx, const Stmt& stmt,
                        std::vector<HeldLock>* held) {
  // Calls first: blocking checks and call-through acquisition edges use the
  // locks held BEFORE this statement's own guards take effect.
  const FuncSummary* self = nullptr;
  for (const CallRef& call : ExtractCalls(stmt.text)) {
    (void)self;
    if (!held->empty() && BlockingCallees().count(call.name) > 0) {
      // Condition-variable receivers never block the mutex they use.
      if (call.recv.find("cv") != std::string::npos ||
          call.recv.find("cond") != std::string::npos) {
        continue;
      }
      ctx.findings->push_back(Finding{
          ctx.fn->file, stmt.line, kRuleBlockingUnderLock,
          "call to " + call.name + "() may block while holding mutex '" +
              held->back().lock + "' (held since line " +
              std::to_string(held->back().line) + ") in " +
              ctx.fn->qualified()});
      continue;
    }
    auto uit = ctx.unique_fns->find(call.name);
    if (uit == ctx.unique_fns->end()) continue;
    const FuncSummary& callee = *uit->second;
    if (callee.def == ctx.fn) continue;  // direct recursion: no new facts
    if (!held->empty() && callee.may_block) {
      ctx.findings->push_back(Finding{
          ctx.fn->file, stmt.line, kRuleBlockingUnderLock,
          "call to " + call.name + "() while holding mutex '" +
              held->back().lock + "' may block: " + callee.block_why});
    }
    for (const HeldLock& h : *held) {
      for (const std::string& acq : callee.may_acquire) {
        AddEdge(ctx, h.lock, acq, stmt.line,
                ctx.fn->qualified() + " holds '" + h.lock + "' and calls " +
                    call.name + "() which acquires '" + acq + "'");
      }
    }
  }
  // Acquisitions and explicit unlocks.
  std::vector<std::string> released;
  for (const LockAcq& acq : StmtAcquires(stmt.text, &released)) {
    if (acq.deferred) continue;
    const std::string lock = CanonicalLock(acq.raw, *ctx.fn);
    for (const HeldLock& h : *held) {
      if (h.lock == lock) continue;  // scoped_lock sibling / same guard expr
      AddEdge(ctx, h.lock, lock, stmt.line,
              ctx.fn->qualified() + " acquires '" + lock +
                  "' while holding '" + h.lock + "'");
    }
    held->push_back(HeldLock{lock, stmt.line});
  }
  for (const std::string& rel : released) {
    const std::string lock = CanonicalLock(rel, *ctx.fn);
    for (size_t i = held->size(); i > 0; --i) {
      if ((*held)[i - 1].lock == lock) {
        held->erase(held->begin() + static_cast<long>(i - 1));
        break;
      }
    }
  }
}

void WalkBodyUnderLocks(LockWalkCtx& ctx, const std::vector<BodyNode>& nodes,
                        std::vector<HeldLock>* held) {
  const size_t base = held->size();
  for (const BodyNode& node : nodes) {
    WalkStmtUnderLocks(ctx, node.stmt, held);
    switch (node.kind) {
      case BodyNode::Kind::kStmt:
        break;
      case BodyNode::Kind::kIf: {
        const size_t b = held->size();
        WalkBodyUnderLocks(ctx, node.then_body, held);
        held->resize(b);
        WalkBodyUnderLocks(ctx, node.else_body, held);
        held->resize(b);
        break;
      }
      case BodyNode::Kind::kLoop:
      case BodyNode::Kind::kSwitch:
      case BodyNode::Kind::kBlock: {
        const size_t b = held->size();
        WalkBodyUnderLocks(ctx, node.then_body, held);
        held->resize(b);
        break;
      }
    }
  }
  held->resize(base);
}

// ---------------------------------------------------------------------------
// Lock graph cycle detection (Tarjan SCC)
// ---------------------------------------------------------------------------

struct SccState {
  const std::map<std::string, std::map<std::string, EdgeWitness>>* edges;
  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int next = 0;
  std::vector<std::vector<std::string>> sccs;

  void Visit(const std::string& v) {
    index[v] = low[v] = next++;
    stack.push_back(v);
    on_stack.insert(v);
    auto it = edges->find(v);
    if (it != edges->end()) {
      for (const auto& [w, _] : it->second) {
        if (index.count(w) == 0) {
          Visit(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack.count(w) > 0) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> scc;
      for (;;) {
        const std::string w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

void ReportLockCycles(
    const std::map<std::string, std::map<std::string, EdgeWitness>>& edges,
    std::vector<Finding>* findings) {
  SccState scc;
  scc.edges = &edges;
  std::set<std::string> nodes;
  for (const auto& [from, tos] : edges) {
    nodes.insert(from);
    for (const auto& [to, _] : tos) nodes.insert(to);
  }
  for (const std::string& n : nodes) {
    if (scc.index.count(n) == 0) scc.Visit(n);
  }
  for (std::vector<std::string>& group : scc.sccs) {
    std::sort(group.begin(), group.end());
    const bool self_loop =
        group.size() == 1 && edges.count(group[0]) > 0 &&
        edges.at(group[0]).count(group[0]) > 0;
    if (group.size() < 2 && !self_loop) continue;
    // Witness edges inside the SCC, lexicographically first location wins
    // for attribution.
    const std::set<std::string> members(group.begin(), group.end());
    const EdgeWitness* attr = nullptr;
    std::string detail;
    for (const std::string& from : group) {
      auto eit = edges.find(from);
      if (eit == edges.end()) continue;
      for (const auto& [to, w] : eit->second) {
        if (members.count(to) == 0) continue;
        if (!detail.empty()) detail += "; ";
        detail += w.desc + " at " + w.file + ":" + std::to_string(w.line);
        if (attr == nullptr || w.file < attr->file ||
            (w.file == attr->file && w.line < attr->line)) {
          attr = &w;
        }
      }
    }
    if (attr == nullptr) continue;
    std::string msg;
    if (self_loop) {
      msg = "mutex '" + group[0] +
            "' may be re-acquired while already held (std::mutex is "
            "non-recursive): " + detail;
    } else {
      std::string ring;
      for (const std::string& m : group) {
        if (!ring.empty()) ring += " -> ";
        ring += "'" + m + "'";
      }
      msg = "lock-order cycle (potential ABBA deadlock) between " + ring +
            ": " + detail;
    }
    findings->push_back(Finding{attr->file, attr->line, kRuleLockOrder, msg});
  }
}

// ---------------------------------------------------------------------------
// Ledger balance (CFG dataflow)
// ---------------------------------------------------------------------------

constexpr int kOpReset = 100;  ///< Release(): the whole reservation drops
constexpr char kPinnedKey[] = "\xABpinned\xBB";

struct LedgerOp {
  std::string key;  ///< receiver name, or kPinnedKey for the host-alloc pair
  int delta = 0;    ///< +1 acquire, -1 release, kOpReset
  std::string name;
};

const std::regex& LedgerRe() {
  static const std::regex re(
      R"((?:(\w+)\s*(?:->|\.)\s*)?\b(Grow|TryReserve|Shrink|Release|PinnedHostAlloc|PinnedHostFree)\s*\()");
  return re;
}

std::vector<LedgerOp> StmtLedgerOps(const std::string& text) {
  std::vector<LedgerOp> out;
  for (std::sregex_iterator it(text.begin(), text.end(), LedgerRe()), end;
       it != end; ++it) {
    const std::string recv = (*it)[1];
    const std::string name = (*it)[2];
    LedgerOp op;
    op.name = name;
    if (name == "PinnedHostAlloc") {
      op.key = kPinnedKey;
      op.delta = +1;
    } else if (name == "PinnedHostFree") {
      op.key = kPinnedKey;
      op.delta = -1;
    } else {
      op.key = recv;
      if (name == "Grow" || name == "TryReserve") {
        op.delta = +1;
      } else if (name == "Shrink") {
        op.delta = -1;
      } else {  // Release
        op.delta = kOpReset;
      }
    }
    out.push_back(std::move(op));
  }
  return out;
}

/// Variable a statement assigns into (`st = ...`, `auto st = ...`), else "".
std::string AssignedVar(const std::string& text) {
  size_t eq = std::string::npos;
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    const char c = text[i];
    if (c == '=' && text[i + 1] != '=' &&
        (i == 0 || (text[i - 1] != '=' && text[i - 1] != '!' &&
                    text[i - 1] != '<' && text[i - 1] != '>'))) {
      eq = i;
      break;
    }
    if (c == '(') break;  // call before any '=': not a plain assignment
  }
  if (eq == std::string::npos) return "";
  size_t e = eq;
  while (e > 0 && text[e - 1] == ' ') --e;
  size_t b = e;
  while (b > 0 && IsIdentChar(text[b - 1])) --b;
  return text.substr(b, e - b);
}

const std::regex& TryReserveCondRe() {
  static const std::regex re(
      R"(^(!?)\s*(?:(\w+)\s*(?:->|\.)\s*)?TryReserve\s*\(.*\)$)");
  return re;
}

struct LedgerCheck {
  const FunctionDef* fn = nullptr;
  Cfg cfg;
  std::vector<std::string> keys;  ///< gated (both-sides-present) keys
  std::map<std::string, int> key_index;
  std::map<std::string, int> first_acquire_line;
  std::map<std::string, int> first_release_line;
};

using LedgerState = std::vector<int>;  // balance per key, clamped

void ApplyOp(const LedgerCheck& chk, const LedgerOp& op, LedgerState* s) {
  auto it = chk.key_index.find(op.key);
  if (it == chk.key_index.end()) return;
  int& v = (*s)[it->second];
  if (op.delta == kOpReset) {
    v = 0;
  } else {
    v = std::max(-8, std::min(8, v + op.delta));
  }
}

void CheckLedger(const FunctionDef& fn, std::vector<Finding>* findings) {
  // Gate: analyze only (receiver) keys with an acquire AND a release in this
  // function — ownership transfers (RAII handles returned to the caller) and
  // pure-release helpers are out of scope by construction.
  LedgerCheck chk;
  chk.fn = &fn;
  std::vector<const Stmt*> stmts;
  CollectStmts(fn.body, &stmts);
  std::map<std::string, bool> has_acq, has_rel;
  for (const Stmt* s : stmts) {
    for (const LedgerOp& op : StmtLedgerOps(s->text)) {
      if (op.delta == +1) {
        has_acq[op.key] = true;
        if (chk.first_acquire_line.count(op.key) == 0) {
          chk.first_acquire_line[op.key] = s->line;
        }
      } else {
        has_rel[op.key] = true;
        if (chk.first_release_line.count(op.key) == 0) {
          chk.first_release_line[op.key] = s->line;
        }
      }
    }
  }
  for (const auto& [key, _] : has_acq) {
    if (has_rel.count(key) > 0) {
      chk.key_index[key] = static_cast<int>(chk.keys.size());
      chk.keys.push_back(key);
    }
  }
  if (chk.keys.empty()) return;

  chk.cfg = BuildCfg(fn);
  const size_t nblocks = chk.cfg.blocks.size();
  std::vector<std::set<LedgerState>> states(nblocks);
  std::vector<int> worklist = {chk.cfg.entry};
  states[static_cast<size_t>(chk.cfg.entry)].insert(
      LedgerState(chk.keys.size(), 0));
  bool overflow = false;
  while (!worklist.empty() && !overflow) {
    const int bi = worklist.back();
    worklist.pop_back();
    const Cfg::Block& blk = chk.cfg.blocks[static_cast<size_t>(bi)];
    for (const LedgerState& in : states[static_cast<size_t>(bi)]) {
      // Base walk applies every statement; branch-dependent effects of the
      // final statement are handled per successor edge below.
      const Stmt* last = blk.stmts.empty() ? nullptr : &blk.stmts.back();
      std::smatch trycond;
      const bool branch_try =
          last != nullptr && blk.succ.size() >= 2 && blk.cond_exit_succ < 0 &&
          std::regex_match(last->text, trycond, TryReserveCondRe());
      // `st = r.Grow(n); if (!st.ok()) return st;` — both statements land in
      // this block; the fail edge must drop the acquire of the statement
      // assigning the checked variable.
      int skip_for_fail = -1;
      if (!blk.checked_var.empty()) {
        for (size_t si = 0; si < blk.stmts.size(); ++si) {
          if (AssignedVar(blk.stmts[si].text) == blk.checked_var &&
              !StmtLedgerOps(blk.stmts[si].text).empty()) {
            skip_for_fail = static_cast<int>(si);
          }
        }
      }
      LedgerState before_last = in;  // excludes the final statement's ops
      LedgerState fall = in;
      LedgerState fail = in;  // excludes the checked-var acquire
      for (size_t si = 0; si < blk.stmts.size(); ++si) {
        const bool is_last = si + 1 == blk.stmts.size();
        if (is_last && branch_try) break;  // cond effect applied per edge
        for (const LedgerOp& op : StmtLedgerOps(blk.stmts[si].text)) {
          ApplyOp(chk, op, &fall);
          if (!is_last) ApplyOp(chk, op, &before_last);
          if (static_cast<int>(si) != skip_for_fail) ApplyOp(chk, op, &fail);
        }
      }
      for (size_t si = 0; si < blk.succ.size(); ++si) {
        LedgerState out = fall;
        if (static_cast<int>(si) == blk.cond_exit_succ) {
          // RETURN_NOT_OK(x.Grow(n)) exits with the PRE-acquire balance: a
          // failed Grow granted nothing.
          out = before_last;
        } else if (branch_try) {
          // `if (x.TryReserve(n))`: only one edge carries the acquire.
          const bool negated = trycond[1].length() > 0;
          const bool acquired_edge = negated ? si != 0 : si == 0;
          if (acquired_edge) {
            const std::string recv = trycond[2];
            LedgerOp op{recv, +1, "TryReserve"};
            ApplyOp(chk, op, &out);
          }
        } else if (static_cast<int>(si) == blk.check_fail_succ &&
                   skip_for_fail >= 0) {
          out = fail;
        }
        auto& dst = states[static_cast<size_t>(blk.succ[si])];
        if (dst.size() > 64) {
          overflow = true;  // pathological shape: bail, report nothing
          break;
        }
        if (dst.insert(out).second) worklist.push_back(blk.succ[si]);
      }
      if (overflow) break;
    }
  }
  if (overflow) return;

  std::set<std::string> reported;
  for (const LedgerState& s :
       states[static_cast<size_t>(chk.cfg.exit)]) {
    for (size_t k = 0; k < chk.keys.size(); ++k) {
      if (s[k] == 0) continue;
      const std::string& key = chk.keys[k];
      if (!reported.insert(key).second) continue;
      const std::string what =
          key == kPinnedKey
              ? "PinnedHostAlloc/PinnedHostFree"
              : (key.empty() ? "Grow/TryReserve"
                             : "'" + key + "' Grow/TryReserve");
      if (s[k] > 0) {
        findings->push_back(Finding{
            fn.file, chk.first_acquire_line[key], kRuleLedgerBalance,
            what + " acquired in " + fn.qualified() +
                " is not released on every exit path (a Status early-return "
                "leaks the reservation)"});
      } else {
        findings->push_back(Finding{
            fn.file, chk.first_release_line[key], kRuleLedgerBalance,
            what + " in " + fn.qualified() +
                " is released more times than it is acquired on some path"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fault-site coverage audit
// ---------------------------------------------------------------------------

const std::regex& FaultDefineRe() {
  static const std::regex re(
      R"(SIRIUS_FAULT_DEFINE_SITE\s*\(\s*\w+\s*,\s*"([^"]*)\")");
  return re;
}

/// True when the scrubbed code on `line` (or the line above, for wrapped
/// argument lists) passes a string to a fault-injector API.
bool InInjectorContext(const ScrubbedFile& scrubbed, int line) {
  static const std::regex re(
      R"((?:\.|->)\s*(Arm|Disarm|Check|IsArmed|injected|stats)\s*\(|ScopedFault)");
  for (int l = line; l >= line - 1 && l >= 1; --l) {
    if (l > static_cast<int>(scrubbed.code.size())) continue;
    const std::string& code = scrubbed.code[static_cast<size_t>(l - 1)];
    if (l < line) {
      // Lookback only covers a call whose argument list wraps onto the
      // literal's line; a balanced previous line is unrelated context.
      const long opens = std::count(code.begin(), code.end(), '(') -
                         std::count(code.begin(), code.end(), ')');
      if (opens <= 0) continue;
    }
    if (code.find("SIRIUS_FAULT_DEFINE_SITE") != std::string::npos) {
      return false;  // the registration itself, not a usage
    }
    if (std::regex_search(code, re)) return true;
  }
  return false;
}

std::string SiteFamily(const std::string& site) {
  const size_t dot = site.find('.');
  return dot == std::string::npos ? site : site.substr(0, dot);
}

struct SiteDef {
  std::string file;
  int line = 0;
};

void AuditFaultSites(const AnalyzerInput& in,
                     const std::map<std::string, ScrubbedFile>& scrubbed,
                     std::vector<Finding>* findings) {
  // Registrations live in src/.
  std::map<std::string, SiteDef> registered;
  std::set<std::string> families;
  for (const auto& [path, content] : in.files) {
    if (!InDir(NormalizePath(path), "src")) continue;
    std::istringstream ls(content);
    std::string line;
    int ln = 0;
    while (std::getline(ls, line)) {
      ++ln;
      std::smatch m;
      std::string rest = line;
      while (std::regex_search(rest, m, FaultDefineRe())) {
        const std::string site = m[1];
        if (registered.count(site) > 0) {
          findings->push_back(Finding{
              path, ln, kRuleFaultSiteCoverage,
              "fault site \"" + site + "\" registered twice (also at " +
                  registered[site].file + ":" +
                  std::to_string(registered[site].line) + ")"});
        } else {
          registered[site] = SiteDef{path, ln};
          families.insert(SiteFamily(site));
        }
        rest = m.suffix();
      }
    }
  }

  // Literals used against injector APIs must be registered (typo drift);
  // only families that exist are audited so synthetic unit-test sites
  // ("some.site") stay out of scope.
  std::set<std::string> test_literals;
  for (const auto& [path, content] : in.files) {
    const std::string norm = NormalizePath(path);
    const bool in_src = InDir(norm, "src");
    const bool in_tests = InDir(norm, "tests");
    if (!in_src && !in_tests) continue;
    auto sit = scrubbed.find(path);
    if (sit == scrubbed.end()) continue;
    for (const analysis::StringLiteral& lit :
         analysis::ExtractStringLiterals(content)) {
      if (in_tests) test_literals.insert(lit.value);
      if (registered.count(lit.value) > 0) continue;
      if (families.count(SiteFamily(lit.value)) == 0) continue;
      if (!InInjectorContext(sit->second, lit.line)) continue;
      findings->push_back(Finding{
          path, lit.line, kRuleFaultSiteCoverage,
          "fault site \"" + lit.value +
              "\" is not registered via SIRIUS_FAULT_DEFINE_SITE (family "
              "\"" + SiteFamily(lit.value) +
              "\" is registered — likely a typo or missing registration)"});
    }
  }

  // Every registered site must be exercised by tests (literal mention: the
  // chaos sweeps iterate fault::KnownSites(), so a named assertion anywhere
  // in tests/ is the contract) and documented in DESIGN.md.
  const bool have_tests = [&in] {
    for (const auto& [path, _] : in.files) {
      if (InDir(NormalizePath(path), "tests")) return true;
    }
    return false;
  }();
  for (const auto& [site, def] : registered) {
    if (have_tests && test_literals.count(site) == 0) {
      findings->push_back(Finding{
          def.file, def.line, kRuleFaultSiteCoverage,
          "fault site \"" + site +
              "\" has no test coverage: no tests/ file names it (chaos "
              "sweeps must assert on each site at least once)"});
    }
    if (!in.design_md.empty() &&
        in.design_md.find(site) == std::string::npos) {
      findings->push_back(Finding{
          def.file, def.line, kRuleFaultSiteCoverage,
          "fault site \"" + site + "\" is not documented in DESIGN.md"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

std::vector<Finding> Analyze(const AnalyzerInput& in,
                             std::vector<Finding>* suppressed) {
  std::map<std::string, ScrubbedFile> scrubbed;
  std::vector<FunctionDef> functions;  // src/ only: flow checks' universe
  for (const auto& [path, content] : in.files) {
    ScrubbedFile sf = analysis::Scrub(content);
    if (InDir(NormalizePath(path), "src")) {
      std::vector<FunctionDef> fns = ParseFunctions(path, sf);
      for (FunctionDef& fn : fns) functions.push_back(std::move(fn));
    }
    scrubbed.emplace(path, std::move(sf));
  }

  // --- summaries -----------------------------------------------------------
  // Name -> definitions; interprocedural facts only flow through names with
  // exactly one definition (a token-level tool cannot resolve overloads).
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < functions.size(); ++i) {
    if (!functions[i].is_lambda) by_name[functions[i].name].push_back(i);
  }
  std::map<std::string, FuncSummary> summaries;  // keyed by file:line id
  auto fn_id = [](const FunctionDef& fn) {
    return fn.file + ":" + std::to_string(fn.line);
  };
  for (const FunctionDef& fn : functions) {
    FuncSummary s;
    s.def = &fn;
    std::vector<const Stmt*> stmts;
    CollectStmts(fn.body, &stmts);
    for (const Stmt* st : stmts) {
      for (const CallRef& c : ExtractCalls(st->text)) {
        s.calls.insert(c.name);
        if (!s.may_block && BlockingCallees().count(c.name) > 0 &&
            c.recv.find("cv") == std::string::npos &&
            c.recv.find("cond") == std::string::npos) {
          s.may_block = true;
          s.block_why = fn.qualified() + " calls " + c.name + "() at " +
                        fn.file + ":" + std::to_string(st->line);
        }
      }
      for (const LockAcq& a : StmtAcquires(st->text, nullptr)) {
        if (!a.deferred) s.may_acquire.insert(CanonicalLock(a.raw, fn));
      }
    }
    summaries.emplace(fn_id(fn), std::move(s));
  }
  std::map<std::string, const FuncSummary*> unique_fns;
  std::map<std::string, FuncSummary*> unique_mut;
  for (const auto& [name, idxs] : by_name) {
    if (idxs.size() != 1) continue;
    FuncSummary& s = summaries.at(fn_id(functions[idxs[0]]));
    unique_fns[name] = &s;
    unique_mut[name] = &s;
  }
  // Fixpoint: propagate may_acquire and may_block through unique callees.
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [id, s] : summaries) {
      for (const std::string& callee : s.calls) {
        auto uit = unique_mut.find(callee);
        if (uit == unique_mut.end()) continue;
        const FuncSummary& cs = *uit->second;
        if (cs.def == s.def) continue;
        for (const std::string& l : cs.may_acquire) {
          if (s.may_acquire.insert(l).second) changed = true;
        }
        if (cs.may_block && !s.may_block) {
          s.may_block = true;
          s.block_why = s.def->qualified() + " -> " + cs.block_why;
          changed = true;
        }
      }
    }
  }

  // --- flow checks ---------------------------------------------------------
  std::vector<Finding> findings;
  std::map<std::string, std::map<std::string, EdgeWitness>> edges;
  for (const FunctionDef& fn : functions) {
    LockWalkCtx ctx;
    ctx.fn = &fn;
    ctx.unique_fns = &unique_fns;
    ctx.summaries = &summaries;
    ctx.edges = &edges;
    ctx.findings = &findings;
    std::vector<HeldLock> held;
    WalkBodyUnderLocks(ctx, fn.body, &held);
    CheckLedger(fn, &findings);
  }
  ReportLockCycles(edges, &findings);

  // --- fault-site audit ----------------------------------------------------
  AuditFaultSites(in, scrubbed, &findings);

  // --- suppression filter --------------------------------------------------
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    auto sit = scrubbed.find(f.file);
    if (sit != scrubbed.end() &&
        IsSuppressed(sit->second, f.line, "sirius-analyze", f.rule)) {
      if (suppressed != nullptr) suppressed->push_back(std::move(f));
    } else {
      kept.push_back(std::move(f));
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return kept;
}

}  // namespace sirius::analyze
