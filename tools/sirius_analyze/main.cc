// sirius_analyze driver: whole-program flow-sensitive checks over the repo.
//
//   sirius_analyze [--format=text|json] [--allow-suppressions-everywhere] ROOT
//
// ROOT is the repository root; the tool analyzes ROOT/src (flow checks) and
// ROOT/tests + ROOT/DESIGN.md (fault-site coverage cross-check). Exits
// non-zero on findings.
//
// Suppressions (`// sirius-analyze: allow(<rule>)`) are honoured everywhere
// except src/serve/, src/cluster/ and src/mem/ — concurrency and accounting
// findings in the serving tiers and the memory governor must be fixed, not
// waved off.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool InNoSuppressZone(const std::string& path) {
  const std::string p = "/" + path;
  return p.find("/src/engine/") != std::string::npos ||
         p.find("/src/serve/") != std::string::npos ||
         p.find("/src/cluster/") != std::string::npos ||
         p.find("/src/mem/") != std::string::npos;
}

bool CollectDir(const fs::path& dir, sirius::analyze::AnalyzerInput* in) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return true;  // tests/ may be absent
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::cerr << "sirius_analyze: walk error in " << dir << ": "
                << ec.message() << "\n";
      return false;
    }
    if (!it->is_regular_file() || !IsSourceFile(it->path())) continue;
    std::string content;
    if (!ReadFile(it->path(), &content)) {
      std::cerr << "sirius_analyze: cannot read " << it->path() << "\n";
      return false;
    }
    in->files.emplace(it->path().generic_string(), std::move(content));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool allow_suppressions_everywhere = false;
  bool json = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-suppressions-everywhere") {
      allow_suppressions_everywhere = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.size() != 1) {
    std::cerr << "usage: sirius_analyze [--format=text|json] "
                 "[--allow-suppressions-everywhere] ROOT\n";
    return 2;
  }
  const fs::path root = roots[0];
  std::error_code ec;
  if (!fs::exists(root / "src", ec)) {
    std::cerr << "sirius_analyze: " << root
              << " does not look like a repo root (no src/)\n";
    return 2;
  }

  sirius::analyze::AnalyzerInput input;
  if (!CollectDir(root / "src", &input) ||
      !CollectDir(root / "tests", &input)) {
    return 2;
  }
  (void)ReadFile(root / "DESIGN.md", &input.design_md);

  std::vector<sirius::analysis::Finding> suppressed;
  std::vector<sirius::analysis::Finding> findings =
      sirius::analyze::Analyze(input, &suppressed);

  size_t zone_suppressions = 0;
  if (!allow_suppressions_everywhere) {
    for (const sirius::analysis::Finding& f : suppressed) {
      if (InNoSuppressZone(f.file)) {
        if (!json) {
          std::cout << sirius::analysis::FormatFinding(f)
                    << " (suppression not allowed in src/serve/, "
                       "src/cluster/ or src/mem/)\n";
        } else {
          findings.push_back(f);
        }
        ++zone_suppressions;
      }
    }
  }

  if (json) {
    std::cout << sirius::analysis::FindingsToJson(
                     "sirius_analyze", input.files.size(), findings,
                     suppressed)
              << "\n";
    return (findings.empty() && zone_suppressions == 0) ? 0 : 1;
  }

  for (const sirius::analysis::Finding& f : findings) {
    std::cout << sirius::analysis::FormatFinding(f) << "\n";
  }
  std::cout << "sirius_analyze: " << input.files.size() << " files, "
            << findings.size() << " finding(s), " << suppressed.size()
            << " suppressed";
  if (zone_suppressions > 0) {
    std::cout << " (" << zone_suppressions << " illegally)";
  }
  std::cout << "\n";
  return (findings.empty() && zone_suppressions == 0) ? 0 : 1;
}
