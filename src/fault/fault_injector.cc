#include "fault/fault_injector.h"

#include <algorithm>

namespace sirius::fault {

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.seed(seed);
  for (auto& [name, site] : sites_) site.counters = SiteStats{};
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.spec = std::move(spec);
  s.armed = true;
  s.counters = SiteStats{};
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site.armed = false;
}

bool FaultInjector::IsArmed(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it != sites_.end() && it->second.armed;
}

void FaultInjector::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

Status FaultInjector::Check(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  ++s.counters.hits;
  if (!enabled_ || !s.armed) return Status::OK();

  const FaultSpec& spec = s.spec;
  if (s.counters.hits <= spec.skip_first) return Status::OK();
  if (spec.max_triggers >= 0 &&
      s.counters.injected >= static_cast<uint64_t>(spec.max_triggers)) {
    return Status::OK();
  }
  const uint64_t eligible_hit = s.counters.hits - spec.skip_first;
  if (spec.every_nth > 0 && eligible_hit % spec.every_nth != 0) {
    return Status::OK();
  }
  if (spec.probability < 1.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) >= spec.probability) return Status::OK();
  }
  ++s.counters.injected;
  std::string msg = spec.message.empty()
                        ? "injected fault at '" + site + "' (hit #" +
                              std::to_string(s.counters.hits) + ")"
                        : spec.message;
  return Status(spec.code, std::move(msg));
}

SiteStats FaultInjector::stats(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? SiteStats{} : it->second.counters;
}

uint64_t FaultInjector::injected(const std::string& site) const {
  return stats(site).injected;
}

std::vector<std::string> FaultInjector::sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) out.push_back(name);
  return out;
}

void FaultInjector::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site.counters = SiteStats{};
}

double FaultInjector::Uniform() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng_);
}

FaultInjector* FaultInjector::Global() {
  static FaultInjector injector;
  return &injector;
}

ScopedFault::ScopedFault(FaultInjector* injector, std::string site,
                         FaultSpec spec)
    : injector_(injector != nullptr ? injector : FaultInjector::Global()),
      site_(std::move(site)) {
  injector_->Arm(site_, std::move(spec));
}

ScopedFault::~ScopedFault() { injector_->Disarm(site_); }

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<std::string>& Registry() {
  static std::vector<std::string> sites;
  return sites;
}

}  // namespace

std::vector<std::string> KnownSites() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Registry();
}

namespace internal {

SiteRegistrar::SiteRegistrar(const char* name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& sites = Registry();
  auto it = std::lower_bound(sites.begin(), sites.end(), name);
  if (it == sites.end() || *it != name) sites.insert(it, name);
}

}  // namespace internal

}  // namespace sirius::fault
