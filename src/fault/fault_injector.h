// Deterministic fault injection (chaos harness for the §3.3/§3.4 recovery
// paths).
//
// A FaultInjector owns a seeded RNG and a table of *sites* — named points in
// the code (e.g. "sccl.alltoall", "dist.fragment") that consult the injector
// before doing work. Arming a site schedules failures at it: every Nth hit,
// with a probability per hit, after skipping the first K, for at most M
// triggers. Everything is deterministic under a fixed seed, so chaos tests
// can sweep sites and replay failures exactly.
//
// Layering: fault depends only on common. Retry/backoff jitter at higher
// layers draws from the injector's seeded RNG so whole recovery schedules
// replay deterministically too.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace sirius::fault {

/// \brief Failure schedule for one armed site.
struct FaultSpec {
  /// Status code injected failures carry. Unavailable and Timeout are the
  /// transient codes retry layers heal; anything else surfaces immediately.
  StatusCode code = StatusCode::kUnavailable;
  /// Message of injected statuses; defaults to "injected fault at '<site>'".
  std::string message;
  /// Chance each eligible hit fires, in [0, 1].
  double probability = 1.0;
  /// Hits to let pass untouched before the site becomes eligible.
  uint64_t skip_first = 0;
  /// When > 0, fire deterministically on every Nth eligible hit (the
  /// "pressure" schedule: 1 = every hit, 3 = hits 3, 6, 9, ...).
  uint64_t every_nth = 0;
  /// Stop firing after this many injections; -1 = unlimited. A finite count
  /// models a transient fault that heals (retries then succeed).
  int64_t max_triggers = -1;
};

/// Per-site hit/injection counters.
struct SiteStats {
  uint64_t hits = 0;      ///< times the site was checked
  uint64_t injected = 0;  ///< times a failure was injected
};

/// \brief A registry of fault sites with deterministic, seeded scheduling.
///
/// Thread-safe: sites are checked concurrently from engine worker threads.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0x51b1e5);

  /// Re-seeds the RNG and clears all counters (armed specs survive).
  void Reseed(uint64_t seed);

  /// Arms `site`: subsequent Check() calls follow `spec`'s schedule.
  void Arm(const std::string& site, FaultSpec spec);
  /// Disarms `site`; its counters survive for post-mortem queries.
  void Disarm(const std::string& site);
  void DisarmAll();
  bool IsArmed(const std::string& site) const;

  /// Master switch; a disabled injector never fires (default: enabled).
  void set_enabled(bool enabled);
  bool enabled() const;

  /// The injection point: returns OK to proceed, or the scheduled failure.
  /// Counts a hit against `site` either way.
  Status Check(const std::string& site);

  /// Counters for one site (zeros when never hit).
  SiteStats stats(const std::string& site) const;
  /// Shorthand: injections fired at `site`.
  uint64_t injected(const std::string& site) const;
  /// Every site this injector has seen (armed or checked), sorted.
  std::vector<std::string> sites() const;
  /// Clears counters only; armed specs and the RNG state survive.
  void ResetStats();

  /// One draw from the injector's seeded RNG, uniform in [0, 1). Retry
  /// layers use this for backoff jitter so schedules replay under a seed.
  double Uniform();

  /// Process-wide injector consulted when a component is not handed an
  /// explicit one. Disarmed by default, so production paths pay one map
  /// lookup per site check and nothing else.
  static FaultInjector* Global();

 private:
  struct Site {
    FaultSpec spec;
    bool armed = false;
    SiteStats counters;
  };

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  std::map<std::string, Site> sites_;
  bool enabled_ = true;
};

/// \brief RAII arm/disarm of one site (scoped enable/disable).
class ScopedFault {
 public:
  /// `injector` == nullptr arms on the global injector.
  ScopedFault(FaultInjector* injector, std::string site, FaultSpec spec);
  ~ScopedFault();

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  FaultInjector* injector() const { return injector_; }
  const std::string& site() const { return site_; }

 private:
  FaultInjector* injector_;
  std::string site_;
};

/// All sites compiled into the binary, sorted (the chaos-sweep domain).
/// Populated at static-init time by SIRIUS_FAULT_DEFINE_SITE.
std::vector<std::string> KnownSites();

namespace internal {
struct SiteRegistrar {
  explicit SiteRegistrar(const char* name);
};
}  // namespace internal

}  // namespace sirius::fault

/// Declares a fault site: a file-local name for Check() calls, registered in
/// the global KnownSites() table so chaos tests can sweep every site.
#define SIRIUS_FAULT_DEFINE_SITE(var, name)                   \
  static constexpr const char* var = name;                    \
  static const ::sirius::fault::internal::SiteRegistrar       \
      var##_registrar(name)
