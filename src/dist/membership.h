// Cluster membership: per-rank liveness derived from heartbeat leases.
//
// Extracted from DorisCluster so the control plane (§3.3) and the federated
// serving tier share one node-identity and node-loss signal. The tracker is
// plain data with no internal lock: DorisCluster guards it with its
// membership mutex, while ServeCluster is driven from a single thread and
// needs no lock at all. Callers that share an instance across threads must
// provide their own synchronization.

#pragma once

#include <vector>

namespace sirius::dist {

/// \brief Heartbeat-driven liveness for a fixed-size set of ranks.
///
/// Ranks start alive with a heartbeat at t=0. A rank is declared dead either
/// explicitly (`MarkDead`, e.g. a fragment crash or an injected
/// `cluster.node.lost`) or by lease expiry (`ExpireHeartbeats`). A later
/// heartbeat revives it — rejoin is the caller's job (re-partition, cache
/// re-warm); the tracker only reports the transition.
class Membership {
 public:
  explicit Membership(int num_ranks);

  /// Renews `rank`'s lease at `now_s` and revives it if it was dead.
  void Heartbeat(int rank, double now_s);

  /// Declares ranks dead whose last heartbeat is older than `timeout_s`.
  /// Returns how many transitions happened.
  int ExpireHeartbeats(double now_s, double timeout_s);

  /// Declares `rank` dead immediately. Returns true when this call made the
  /// transition (false when already dead or out of range).
  bool MarkDead(int rank);

  bool IsAlive(int rank) const;
  int num_alive() const;
  int num_ranks() const { return static_cast<int>(alive_.size()); }

  /// Alive ranks in ascending order.
  std::vector<int> AliveRanks() const;

 private:
  std::vector<double> last_heartbeat_s_;
  std::vector<bool> alive_;
};

}  // namespace sirius::dist
