#include "dist/fragmenter.h"

namespace sirius::dist {

using expr::ColIdx;
using expr::ExprPtr;
using plan::AggFunc;
using plan::AggItem;
using plan::ExchangeKind;
using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

namespace {

/// Rough modeled byte size of a node's output.
double EstimateBytes(const PlanNode& node, const opt::StatsProvider& stats) {
  double rows = opt::EstimateRows(node, stats);
  double row_bytes = 0;
  for (const auto& f : node.output_schema.fields()) {
    row_bytes += f.type.is_string() ? 24.0 : f.type.byte_width();
  }
  return rows * row_bytes;
}

class Fragmenter {
 public:
  Fragmenter(const opt::StatsProvider& stats, const FragmenterOptions& options)
      : stats_(stats), options_(options) {}

  Result<DistributedPlan> Fragment(const PlanPtr& node) {
    switch (node->kind) {
      case PlanKind::kTableScan:
        return DistributedPlan{node, /*gathered=*/false};

      case PlanKind::kFilter: {
        SIRIUS_ASSIGN_OR_RETURN(DistributedPlan child,
                                Fragment(node->children[0]));
        SIRIUS_ASSIGN_OR_RETURN(
            PlanPtr out, plan::MakeFilter(child.plan, node->predicate->Clone()));
        return DistributedPlan{out, child.gathered};
      }

      case PlanKind::kProject: {
        SIRIUS_ASSIGN_OR_RETURN(DistributedPlan child,
                                Fragment(node->children[0]));
        std::vector<ExprPtr> exprs;
        for (const auto& e : node->projections) exprs.push_back(e->Clone());
        SIRIUS_ASSIGN_OR_RETURN(
            PlanPtr out,
            plan::MakeProject(child.plan, std::move(exprs), node->projection_names));
        return DistributedPlan{out, child.gathered};
      }

      case PlanKind::kJoin:
        return FragmentJoin(*node);

      case PlanKind::kAggregate:
        return FragmentAggregate(*node);

      case PlanKind::kSort: {
        SIRIUS_ASSIGN_OR_RETURN(DistributedPlan child,
                                GatherIfNeeded(node->children[0]));
        SIRIUS_ASSIGN_OR_RETURN(PlanPtr out,
                                plan::MakeSort(child.plan, node->sort_keys));
        return DistributedPlan{out, true};
      }
      case PlanKind::kLimit: {
        SIRIUS_ASSIGN_OR_RETURN(DistributedPlan child,
                                GatherIfNeeded(node->children[0]));
        SIRIUS_ASSIGN_OR_RETURN(
            PlanPtr out, plan::MakeLimit(child.plan, node->limit, node->offset));
        return DistributedPlan{out, true};
      }
      case PlanKind::kDistinct: {
        SIRIUS_ASSIGN_OR_RETURN(DistributedPlan child,
                                GatherIfNeeded(node->children[0]));
        SIRIUS_ASSIGN_OR_RETURN(PlanPtr out, plan::MakeDistinct(child.plan));
        return DistributedPlan{out, true};
      }
      case PlanKind::kExchange:
        return Status::Invalid("plan already contains Exchange nodes");
    }
    return Status::Internal("unknown plan node");
  }

  Result<DistributedPlan> GatherIfNeeded(const PlanPtr& node) {
    SIRIUS_ASSIGN_OR_RETURN(DistributedPlan child, Fragment(node));
    if (child.gathered) return child;
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr out, plan::MakeExchange(child.plan, ExchangeKind::kGather, {}));
    return DistributedPlan{out, true};
  }

 private:
  Result<DistributedPlan> FragmentJoin(const PlanNode& node) {
    SIRIUS_ASSIGN_OR_RETURN(DistributedPlan left, Fragment(node.children[0]));
    SIRIUS_ASSIGN_OR_RETURN(DistributedPlan right, Fragment(node.children[1]));

    ExprPtr residual =
        node.residual == nullptr ? nullptr : node.residual->Clone();

    if (left.gathered && right.gathered) {
      SIRIUS_ASSIGN_OR_RETURN(
          PlanPtr out,
          plan::MakeJoin(left.plan, right.plan, node.join_type, node.left_keys,
                         node.right_keys, std::move(residual)));
      return DistributedPlan{out, true};
    }

    const double right_bytes =
        EstimateBytes(*right.plan, stats_) * options_.data_scale;
    // ASOF joins need each by-group's full right side on every node.
    const bool broadcast = node.join_type == plan::JoinType::kCross ||
                           node.join_type == plan::JoinType::kAsof ||
                           node.left_keys.empty() ||
                           right_bytes <
                               static_cast<double>(options_.broadcast_threshold_bytes);
    if (broadcast) {
      SIRIUS_ASSIGN_OR_RETURN(
          PlanPtr bcast,
          plan::MakeExchange(right.plan, ExchangeKind::kBroadcast, {}));
      PlanPtr out;
      if (node.join_type == plan::JoinType::kAsof) {
        SIRIUS_ASSIGN_OR_RETURN(
            out, plan::MakeAsofJoin(left.plan, bcast, node.left_keys,
                                    node.right_keys, node.asof_left_on,
                                    node.asof_right_on));
      } else {
        SIRIUS_ASSIGN_OR_RETURN(
            out, plan::MakeJoin(left.plan, bcast, node.join_type,
                                node.left_keys, node.right_keys,
                                std::move(residual)));
      }
      return DistributedPlan{out, left.gathered};
    }

    // Shuffle both sides by the join keys.
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr lshuf,
        plan::MakeExchange(left.plan, ExchangeKind::kShuffle, node.left_keys));
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr rshuf,
        plan::MakeExchange(right.plan, ExchangeKind::kShuffle, node.right_keys));
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr out, plan::MakeJoin(lshuf, rshuf, node.join_type, node.left_keys,
                                    node.right_keys, std::move(residual)));
    return DistributedPlan{out, false};
  }

  Result<DistributedPlan> FragmentAggregate(const PlanNode& node) {
    SIRIUS_ASSIGN_OR_RETURN(DistributedPlan child, Fragment(node.children[0]));
    if (child.gathered) {
      SIRIUS_ASSIGN_OR_RETURN(
          PlanPtr out,
          plan::MakeAggregate(child.plan, node.group_by, node.aggregates));
      return DistributedPlan{out, true};
    }

    bool has_count_distinct = false;
    for (const auto& a : node.aggregates) {
      has_count_distinct |= a.func == AggFunc::kCountDistinct;
    }
    if (has_count_distinct) {
      // Repartition by the group keys, then aggregate locally: groups are
      // disjoint across nodes, so results are exact. Without group keys the
      // data must gather first.
      if (node.group_by.empty()) {
        SIRIUS_ASSIGN_OR_RETURN(
            PlanPtr gathered,
            plan::MakeExchange(child.plan, ExchangeKind::kGather, {}));
        SIRIUS_ASSIGN_OR_RETURN(
            PlanPtr out,
            plan::MakeAggregate(gathered, node.group_by, node.aggregates));
        return DistributedPlan{out, true};
      }
      SIRIUS_ASSIGN_OR_RETURN(
          PlanPtr shuffled,
          plan::MakeExchange(child.plan, ExchangeKind::kShuffle, node.group_by));
      SIRIUS_ASSIGN_OR_RETURN(
          PlanPtr out,
          plan::MakeAggregate(shuffled, node.group_by, node.aggregates));
      return DistributedPlan{out, false};
    }

    // Two-phase aggregation: local partial -> gather -> final merge.
    // Partial items; avg splits into sum + count.
    std::vector<AggItem> partial;
    struct FinalSpec {
      AggFunc merge_func;   // over the partial column
      int partial_col;      // position among partial aggregates
      int partial_col2 = -1;  // avg: the count column
    };
    std::vector<FinalSpec> finals;
    for (const auto& a : node.aggregates) {
      FinalSpec spec;
      switch (a.func) {
        case AggFunc::kSum:
        case AggFunc::kMin:
        case AggFunc::kMax:
          spec.merge_func = a.func;
          spec.partial_col = static_cast<int>(partial.size());
          partial.push_back({a.func, a.arg_column, "p" + std::to_string(partial.size())});
          break;
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          spec.merge_func = AggFunc::kSum;  // counts merge by summing
          spec.partial_col = static_cast<int>(partial.size());
          partial.push_back({a.func, a.arg_column, "p" + std::to_string(partial.size())});
          break;
        case AggFunc::kAvg: {
          spec.merge_func = AggFunc::kAvg;  // marker: handled in the project
          spec.partial_col = static_cast<int>(partial.size());
          partial.push_back(
              {AggFunc::kSum, a.arg_column, "p" + std::to_string(partial.size())});
          spec.partial_col2 = static_cast<int>(partial.size());
          partial.push_back(
              {AggFunc::kCount, a.arg_column, "p" + std::to_string(partial.size())});
          break;
        }
        case AggFunc::kCountDistinct:
          return Status::Internal("count_distinct handled above");
      }
      finals.push_back(spec);
    }

    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr partial_agg,
        plan::MakeAggregate(child.plan, node.group_by, partial));
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr gathered,
        plan::MakeExchange(partial_agg, ExchangeKind::kGather, {}));

    // Final merge: group by the (leading) key columns of the partial schema.
    const int num_keys = static_cast<int>(node.group_by.size());
    std::vector<int> final_keys(num_keys);
    for (int k = 0; k < num_keys; ++k) final_keys[k] = k;
    std::vector<AggItem> merge_items;
    for (size_t p = 0; p < partial.size(); ++p) {
      AggFunc f = partial[p].func;
      AggFunc merge = (f == AggFunc::kCount || f == AggFunc::kCountStar)
                          ? AggFunc::kSum
                          : f;
      merge_items.push_back(
          {merge, num_keys + static_cast<int>(p), "m" + std::to_string(p)});
    }
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr final_agg,
        plan::MakeAggregate(gathered, final_keys, merge_items));

    // Final projection restores the original aggregate's output schema.
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    for (int k = 0; k < num_keys; ++k) {
      proj.push_back(ColIdx(k, final_agg->output_schema.field(k).type));
      names.push_back(node.output_schema.field(k).name);
    }
    for (size_t a = 0; a < node.aggregates.size(); ++a) {
      const FinalSpec& spec = finals[a];
      const int base = num_keys;
      if (node.aggregates[a].func == AggFunc::kAvg) {
        ExprPtr sum_col = ColIdx(
            base + spec.partial_col,
            final_agg->output_schema.field(base + spec.partial_col).type);
        ExprPtr cnt_col = ColIdx(
            base + spec.partial_col2,
            final_agg->output_schema.field(base + spec.partial_col2).type);
        proj.push_back(expr::Div(std::move(sum_col), std::move(cnt_col)));
      } else {
        proj.push_back(ColIdx(
            base + spec.partial_col,
            final_agg->output_schema.field(base + spec.partial_col).type));
      }
      names.push_back(node.output_schema.field(num_keys + a).name);
    }
    SIRIUS_ASSIGN_OR_RETURN(PlanPtr out,
                            plan::MakeProject(final_agg, proj, names));
    if (!out->output_schema.Equals(node.output_schema)) {
      return Status::Internal("two-phase aggregation changed the schema from [" +
                              node.output_schema.ToString() + "] to [" +
                              out->output_schema.ToString() + "]");
    }
    return DistributedPlan{out, true};
  }

  const opt::StatsProvider& stats_;
  const FragmenterOptions& options_;
};

}  // namespace

Result<DistributedPlan> FragmentPlan(const plan::PlanPtr& plan,
                                     const opt::StatsProvider& stats,
                                     const FragmenterOptions& options) {
  Fragmenter fragmenter(stats, options);
  SIRIUS_ASSIGN_OR_RETURN(DistributedPlan result,
                          fragmenter.GatherIfNeeded(plan));
  return result;
}

}  // namespace sirius::dist
