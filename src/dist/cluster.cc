#include "dist/cluster.h"

#include <algorithm>

#include "gdf/copying.h"
#include "gdf/partition.h"
#include "host/cpu_executor.h"

namespace sirius::dist {

using format::TablePtr;
using plan::ExchangeKind;
using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

// Control-plane fault sites: a fragment crashing on one node mid-query, and
// a node's heartbeat lease expiring while a query is in flight.
SIRIUS_FAULT_DEFINE_SITE(kSiteFragment, "dist.fragment");
SIRIUS_FAULT_DEFINE_SITE(kSiteHeartbeat, "dist.heartbeat");

// ---------------------------------------------------------------------------
// TempTableRegistry
// ---------------------------------------------------------------------------

std::string TempTableRegistry::Register(std::vector<TablePtr> parts) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = "__exchange_" + std::to_string(next_id_++);
  tables_[name] = std::move(parts);
  return name;
}

Status TempTableRegistry::Deregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(name) == 0) {
    return Status::KeyError("temp table '" + name + "' not registered");
  }
  return Status::OK();
}

size_t TempTableRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

// ---------------------------------------------------------------------------
// DorisCluster
// ---------------------------------------------------------------------------

DorisCluster::DorisCluster(Options options)
    : options_(options),
      coordinator_([&] {
        host::Database::Options db;
        db.engine = options.engine;
        db.data_scale = options.data_scale;
        return db;
      }()),
      comm_(options.num_nodes, options.network),
      membership_(options.num_nodes) {
  for (int r = 0; r < options_.num_nodes; ++r) {
    auto node = std::make_unique<NodeState>();
    node->rank = r;
    node->buffer = std::make_unique<engine::BufferManager>([&] {
      engine::BufferManager::Options bm;
      bm.device_capacity_bytes = static_cast<uint64_t>(
          options_.device.mem_capacity_gib * (1ull << 30));
      return bm;
    }());
    nodes_.push_back(std::move(node));
  }
}

Status DorisCluster::LoadPartitioned(const std::string& name,
                                     const TablePtr& table) {
  // Coordinator keeps global metadata (and the authoritative copy used for
  // plan statistics and fault recovery, §3.4).
  SIRIUS_RETURN_NOT_OK(coordinator_.CreateTable(name, table));
  gdf::Context ctx;  // partitioning at load time is not charged to queries
  SIRIUS_ASSIGN_OR_RETURN(
      std::vector<TablePtr> parts,
      gdf::HashPartition(ctx, table, {0}, static_cast<size_t>(options_.num_nodes)));
  std::lock_guard<std::mutex> lock(membership_mu_);
  for (int r = 0; r < options_.num_nodes; ++r) {
    SIRIUS_RETURN_NOT_OK(nodes_[r]->catalog.CreateTable(name, parts[r]));
    // The node's partition changed: cached columns for it are stale.
    nodes_[r]->buffer->EvictAll();
  }
  partition_layout_.clear();
  for (int r = 0; r < options_.num_nodes; ++r) partition_layout_.push_back(r);
  return Status::OK();
}

Result<std::vector<int>> DorisCluster::PrepareActiveNodes(bool* re_partitioned) {
  // Membership snapshot + possible re-layout are one atomic step: two
  // concurrent queries must not both observe a changed membership and race
  // to re-partition the same tables.
  std::lock_guard<std::mutex> lock(membership_mu_);
  if (re_partitioned != nullptr) *re_partitioned = false;
  std::vector<int> actives = membership_.AliveRanks();
  if (actives.empty()) {
    return Status::Unavailable("no alive compute nodes in the cluster");
  }
  if (actives == partition_layout_) return actives;
  // Membership changed: recover by re-partitioning every table from the
  // coordinator's authoritative copy onto the surviving nodes.
  gdf::Context ctx;
  for (const auto& name : coordinator_.catalog().TableNames()) {
    SIRIUS_ASSIGN_OR_RETURN(TablePtr full, coordinator_.catalog().GetTable(name));
    SIRIUS_ASSIGN_OR_RETURN(
        std::vector<TablePtr> parts,
        gdf::HashPartition(ctx, full, {0}, actives.size()));
    for (size_t i = 0; i < actives.size(); ++i) {
      SIRIUS_RETURN_NOT_OK(
          nodes_[actives[i]]->catalog.CreateTable(name, parts[i]));
    }
  }
  // Every surviving node now holds different rows under the same table
  // names; drop the stale column caches.
  for (int r : actives) nodes_[r]->buffer->EvictAll();
  partition_layout_ = actives;
  if (re_partitioned != nullptr) *re_partitioned = true;
  return actives;
}

void DorisCluster::Heartbeat(int rank, double now_s) {
  std::lock_guard<std::mutex> lock(membership_mu_);
  membership_.Heartbeat(rank, now_s);
}

int DorisCluster::ExpireHeartbeats(double now_s, double timeout_s) {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return membership_.ExpireHeartbeats(now_s, timeout_s);
}

bool DorisCluster::IsAlive(int rank) const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return membership_.IsAlive(rank);
}

int DorisCluster::num_alive() const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return membership_.num_alive();
}

namespace {

/// Distributed intermediate state: one table per node, or a single table on
/// the coordinator node after a gather.
struct DistState {
  std::vector<TablePtr> parts;
  bool gathered = false;
};

class DistExecutor {
 public:
  /// `trace` may be null (tracing off). `trace_base_s` places this attempt
  /// on the simulated time axis; the executor maintains a per-node "ready"
  /// clock from there, so the trace shows genuine overlap: a lightly-loaded
  /// rank's downstream fragment starts before the collective's slowest rank
  /// finishes.
  DistExecutor(const DorisCluster::Options& options,
               std::vector<NodeState*> nodes, net::Communicator* comm,
               TempTableRegistry* registry, sim::Timeline* timeline,
               fault::FaultInjector* injector, obs::TraceRecorder* trace,
               double trace_base_s)
      : options_(options),
        nodes_(std::move(nodes)),
        comm_(comm),
        registry_(registry),
        timeline_(timeline),
        injector_(injector),
        trace_(trace),
        node_ready_(nodes_.size(), trace_base_s) {
    if (trace_ != nullptr) {
      node_tracks_.resize(nodes_.size());
      for (size_t i = 0; i < nodes_.size(); ++i) {
        node_tracks_[i] =
            trace_->RegisterTrack("node-" + std::to_string(nodes_[i]->rank));
      }
      link_track_ = trace_->RegisterTrack("link");
      comm_->set_trace(trace_, link_track_);
    }
  }

  /// Global rank of the node whose fragment failed, or -1. The coordinator
  /// uses this to mark the node dead and re-run on the survivors.
  int failed_rank() const { return failed_rank_; }
  /// SCCL link retries healed during this attempt.
  int collective_retries() const { return collective_retries_; }
  /// Simulated backoff charged for those retries.
  double retry_backoff_seconds() const { return retry_backoff_s_; }
  /// Latest simulated instant any node reached (attempt end for the trace).
  double trace_end_s() const {
    double m = 0.0;
    for (double t : node_ready_) m = std::max(m, t);
    return m;
  }

  Result<DistState> Exec(const PlanNode& node) {
    switch (node.kind) {
      case PlanKind::kExchange:
        return ExecExchange(node);
      case PlanKind::kTableScan:
        return ExecScan(node);
      default: {
        std::vector<DistState> children;
        for (const auto& c : node.children) {
          SIRIUS_ASSIGN_OR_RETURN(DistState s, Exec(*c));
          children.push_back(std::move(s));
        }
        return ExecLocal(node, children);
      }
    }
  }

 private:
  int n() const { return static_cast<int>(nodes_.size()); }

  /// Per-fragment injection point: a firing site means the node running
  /// this fragment died. Records the first casualty's global rank.
  Status NodeFaultCheck(int local_rank) {
    Status st = injector_->Check(kSiteFragment);
    if (!st.ok() && failed_rank_ < 0) {
      failed_rank_ = nodes_[local_rank]->rank;
      return st.WithContext("node " + std::to_string(failed_rank_) +
                            " failed executing a fragment");
    }
    return st;
  }

  void AccumulateRetryStats(const net::CollectiveResult& coll) {
    collective_retries_ += coll.retries;
    retry_backoff_s_ += coll.backoff_seconds;
  }

  gdf::Context NodeContext(sim::Timeline* t, int local_rank) const {
    gdf::Context ctx;
    ctx.mr = mem::DefaultResource();
    ctx.sim.device = options_.device;
    ctx.sim.engine = options_.engine;
    ctx.sim.timeline = t;
    ctx.sim.data_scale = options_.data_scale;
    if (trace_ != nullptr) {
      ctx.sim.trace = trace_;
      ctx.sim.track = node_tracks_[local_rank];
      ctx.sim.trace_base = node_ready_[local_rank];
    }
    return ctx;
  }

  /// Merges per-node op timelines with barrier semantics: the cluster waits
  /// for the slowest node, so each category advances by its per-node max.
  void MergeNodeTimelines(const std::vector<sim::Timeline>& per_node) {
    std::map<sim::OpCategory, double> maxima;
    for (const auto& t : per_node) {
      for (const auto& [cat, secs] : t.breakdown()) {
        maxima[cat] = std::max(maxima[cat], secs);
      }
    }
    for (const auto& [cat, secs] : maxima) timeline_->Charge(cat, secs);
  }

  /// Charges the merged timelines and advances each node's trace clock by
  /// its own local time (nodes proceed independently between barriers).
  void Advance(const std::vector<sim::Timeline>& per_node) {
    MergeNodeTimelines(per_node);
    for (size_t r = 0; r < node_ready_.size(); ++r) {
      node_ready_[r] += per_node[r].total_seconds();
    }
  }

  Result<DistState> ExecScan(const PlanNode& node) {
    DistState state;
    state.parts.resize(n());
    std::vector<sim::Timeline> node_times(n());
    for (int r = 0; r < n(); ++r) {
      SIRIUS_RETURN_NOT_OK(NodeFaultCheck(r));
      gdf::Context ctx = NodeContext(&node_times[r], r);
      SIRIUS_ASSIGN_OR_RETURN(TablePtr base,
                              nodes_[r]->catalog.GetTable(node.table_name));
      obs::Span op_span(trace_, TrackFor(r), "op:TableScan", "fragment",
                        ctx.sim.TraceClock());
      if (nodes_[r]->buffer != nullptr) {
        // Scan through the node's buffer manager: the projected columns are
        // served from (or loaded into) the device cache, charging decode
        // plus any cold host-link transfer, and hit/miss counters.
        SIRIUS_ASSIGN_OR_RETURN(
            state.parts[r],
            nodes_[r]->buffer->GetOrCacheColumns(node.table_name, base,
                                                 node.scan_columns, ctx.sim));
      } else {
        SIRIUS_ASSIGN_OR_RETURN(state.parts[r],
                                host::ApplyNode(node, {base}, ctx));
      }
    }
    Advance(node_times);
    return state;
  }

  Result<DistState> ExecLocal(const PlanNode& node,
                              const std::vector<DistState>& children) {
    // A node participates when the inputs are partitioned; after a gather
    // only the coordinator (rank 0) runs.
    bool gathered = !children.empty() && children[0].gathered;
    for (const auto& c : children) {
      if (node.kind == PlanKind::kJoin) continue;  // join handled below
      if (c.gathered != gathered) {
        return Status::Internal("mixed gathered/partitioned inputs");
      }
    }
    if (node.kind == PlanKind::kJoin) {
      // Left side drives the distribution; the right side is either
      // broadcast (replicated on every node) or co-shuffled.
      gathered = children[0].gathered;
    }

    DistState state;
    state.gathered = gathered;
    state.parts.assign(n(), nullptr);
    std::vector<sim::Timeline> node_times(n());
    const int active = gathered ? 1 : n();
    for (int r = 0; r < active; ++r) {
      SIRIUS_RETURN_NOT_OK(NodeFaultCheck(r));
      gdf::Context ctx = NodeContext(&node_times[r], r);
      std::vector<TablePtr> inputs;
      for (const auto& c : children) {
        TablePtr part = c.parts[r];
        if (part == nullptr && c.gathered) part = c.parts[0];
        if (part == nullptr) {
          return Status::Internal("missing partition for rank " +
                                  std::to_string(r));
        }
        inputs.push_back(std::move(part));
      }
      obs::Span op_span(trace_, TrackFor(r),
                        std::string("op:") + plan::PlanKindName(node.kind),
                        "fragment", ctx.sim.TraceClock());
      SIRIUS_ASSIGN_OR_RETURN(state.parts[r],
                              host::ApplyNode(node, inputs, ctx));
    }
    Advance(node_times);
    return state;
  }

  /// Entry barrier of a collective: every participating rank must arrive
  /// before the link moves data. Returns the collective's simulated start
  /// and aims the communicator's trace at it.
  double CollectiveBarrier() {
    double start = 0.0;
    for (double t : node_ready_) start = std::max(start, t);
    for (double& t : node_ready_) t = start;
    comm_->set_trace_start(start);
    return start;
  }

  /// Books the collective: retry stats, the global exchange charge, and
  /// per-rank completion — ranks with less traffic come out of the
  /// collective earlier, which is exactly the overlap the trace shows.
  void FinishCollective(double start_s, const net::CollectiveResult& coll) {
    AccumulateRetryStats(coll);
    timeline_->Charge(sim::OpCategory::kExchange, coll.seconds);
    for (size_t r = 0; r < node_ready_.size(); ++r) {
      node_ready_[r] = start_s + (r < coll.per_rank_seconds.size()
                                      ? coll.per_rank_seconds[r]
                                      : coll.seconds);
    }
  }

  Result<DistState> ExecExchange(const PlanNode& node) {
    SIRIUS_ASSIGN_OR_RETURN(DistState child, Exec(*node.children[0]));
    // Exchanged intermediates live in the registry while in flight; the
    // guard deregisters on *every* exit path, including mid-exchange faults.
    TempTableGuard guard(registry_, registry_->Register(child.parts));

    gdf::Context silent;  // collective-internal work is part of its cost
    silent.mr = mem::DefaultResource();

    DistState state;
    switch (node.exchange) {
      case ExchangeKind::kShuffle: {
        // Partition locally on every node (charged as exchange prep)...
        std::vector<std::vector<TablePtr>> matrix(n());
        std::vector<sim::Timeline> node_times(n());
        for (int r = 0; r < n(); ++r) {
          gdf::Context ctx = NodeContext(&node_times[r], r);
          TablePtr part = child.gathered && r > 0
                              ? nullptr
                              : child.parts[r];
          if (part == nullptr) {
            // Gathered input: only rank 0 holds data; others send nothing.
            SIRIUS_ASSIGN_OR_RETURN(
                TablePtr empty,
                gdf::SliceTable(ctx, child.parts[0], 0, 0));
            matrix[r].assign(n(), empty);
            continue;
          }
          SIRIUS_ASSIGN_OR_RETURN(
              matrix[r], gdf::HashPartition(ctx, part, node.partition_keys,
                                            static_cast<size_t>(n())));
        }
        Advance(node_times);
        // ...then all-to-all over the network.
        const double t0 = CollectiveBarrier();
        SIRIUS_ASSIGN_OR_RETURN(
            net::CollectiveResult coll,
            comm_->AllToAll(matrix, silent, options_.data_scale));
        FinishCollective(t0, coll);
        state.parts = std::move(coll.per_rank);
        state.gathered = false;
        break;
      }
      case ExchangeKind::kGather: {
        std::vector<TablePtr> inputs = child.parts;
        if (child.gathered) {
          state = child;  // already on the coordinator
          break;
        }
        const double t0 = CollectiveBarrier();
        SIRIUS_ASSIGN_OR_RETURN(
            net::CollectiveResult coll,
            comm_->Gather(inputs, /*root=*/0, silent, options_.data_scale));
        FinishCollective(t0, coll);
        state.parts = std::move(coll.per_rank);
        state.gathered = true;
        break;
      }
      case ExchangeKind::kBroadcast: {
        TablePtr full;
        if (child.gathered) {
          full = child.parts[0];
        } else {
          const double t0 = CollectiveBarrier();
          SIRIUS_ASSIGN_OR_RETURN(
              net::CollectiveResult gathered,
              comm_->Gather(child.parts, 0, silent, options_.data_scale));
          FinishCollective(t0, gathered);
          full = gathered.per_rank[0];
        }
        const double t1 = CollectiveBarrier();
        SIRIUS_ASSIGN_OR_RETURN(
            net::CollectiveResult coll,
            comm_->Broadcast(full, /*root=*/0, options_.data_scale));
        FinishCollective(t1, coll);
        state.parts = std::move(coll.per_rank);
        state.gathered = false;
        break;
      }
      case ExchangeKind::kMulticast: {
        std::vector<int> all(n());
        for (int r = 0; r < n(); ++r) all[r] = r;
        TablePtr full = child.gathered ? child.parts[0] : nullptr;
        if (full == nullptr) {
          const double t0 = CollectiveBarrier();
          SIRIUS_ASSIGN_OR_RETURN(
              net::CollectiveResult gathered,
              comm_->Gather(child.parts, 0, silent, options_.data_scale));
          FinishCollective(t0, gathered);
          full = gathered.per_rank[0];
        }
        const double t1 = CollectiveBarrier();
        SIRIUS_ASSIGN_OR_RETURN(
            net::CollectiveResult coll,
            comm_->Multicast(full, 0, all, options_.data_scale));
        FinishCollective(t1, coll);
        state.parts = std::move(coll.per_rank);
        state.gathered = false;
        break;
      }
    }
    // The consuming fragment owns the data now.
    SIRIUS_RETURN_NOT_OK(guard.Release());
    return state;
  }

  obs::TrackId TrackFor(int local_rank) const {
    return trace_ != nullptr ? node_tracks_[local_rank] : 0;
  }

  const DorisCluster::Options& options_;
  std::vector<NodeState*> nodes_;  ///< alive nodes only
  net::Communicator* comm_;
  TempTableRegistry* registry_;
  sim::Timeline* timeline_;
  fault::FaultInjector* injector_;
  obs::TraceRecorder* trace_;
  /// Trace overlay: per-node simulated "free at" clocks and lanes.
  std::vector<double> node_ready_;
  std::vector<obs::TrackId> node_tracks_;
  obs::TrackId link_track_ = 0;
  int failed_rank_ = -1;
  int collective_retries_ = 0;
  double retry_backoff_s_ = 0;
};

}  // namespace

Result<DistQueryResult> DorisCluster::RunAttempt(const DistributedPlan& dplan,
                                                 RecoveryStats* recovery,
                                                 int* failed_rank,
                                                 obs::TraceRecorder* trace,
                                                 double trace_base_s,
                                                 double* trace_end_s) {
  *failed_rank = -1;
  *trace_end_s = trace_base_s;
  bool re_partitioned = false;
  SIRIUS_ASSIGN_OR_RETURN(std::vector<int> actives,
                          PrepareActiveNodes(&re_partitioned));
  if (re_partitioned) ++recovery->re_partitions;
  std::vector<NodeState*> active_nodes;
  for (int r : actives) active_nodes.push_back(nodes_[r].get());
  net::Communicator comm(static_cast<int>(actives.size()), options_.network,
                         injector(), options_.collective_retry);

  DistQueryResult result;
  result.timeline.Charge(sim::OpCategory::kOther, options_.coordinator_overhead_s);
  const double exec_base_s = trace_base_s + options_.coordinator_overhead_s;
  if (trace != nullptr) {
    trace->AddComplete(trace->RegisterTrack("coordinator"),
                       "coordinator-overhead", "coordinator", trace_base_s,
                       exec_base_s, {});
  }

  DistExecutor executor(options_, std::move(active_nodes), &comm,
                        &temp_registry_, &result.timeline, injector(), trace,
                        exec_base_s);
  auto out = executor.Exec(*dplan.plan);
  recovery->collective_retries += executor.collective_retries();
  recovery->retry_backoff_seconds += executor.retry_backoff_seconds();
  *trace_end_s = std::max(exec_base_s, executor.trace_end_s());
  if (!out.ok()) {
    *failed_rank = executor.failed_rank();
    return out.status();
  }
  DistState state = std::move(out).ValueOrDie();
  if (!state.gathered) {
    return Status::Internal("distributed plan did not gather its result");
  }
  result.table = state.parts[0];
  result.total_seconds = result.timeline.total_seconds();
  result.exchange_seconds = result.timeline.seconds(sim::OpCategory::kExchange);
  result.other_seconds = result.timeline.seconds(sim::OpCategory::kOther);
  result.compute_seconds =
      result.total_seconds - result.exchange_seconds - result.other_seconds;
  return result;
}

Result<DistQueryResult> DorisCluster::Query(const std::string& sql) {
  const int quorum = std::max(1, options_.quorum);
  if (num_alive() < quorum) {
    return Status::Unavailable(
        "cluster below quorum: " + std::to_string(num_alive()) +
        " alive node(s), quorum is " + std::to_string(quorum));
  }

  // Coordinator: parse + optimize on global metadata (§3.3).
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr plan, coordinator_.PlanSql(sql));
  SIRIUS_RETURN_NOT_OK(options_.capabilities.Check(*plan));

  FragmenterOptions frag;
  frag.broadcast_threshold_bytes = options_.engine.distributed_broadcast_joins
                                       ? UINT64_MAX
                                       : options_.broadcast_threshold_bytes;
  frag.data_scale = options_.data_scale;
  SIRIUS_ASSIGN_OR_RETURN(DistributedPlan dplan,
                          FragmentPlan(plan, coordinator_.catalog(), frag));
  SIRIUS_RETURN_NOT_OK(dplan.plan->Validate());

  // Execute with a bounded recovery loop (§3.3/§3.4): a node lost to a
  // fragment failure or an expired heartbeat is marked dead, data is
  // re-partitioned onto the survivors, and the query re-runs once per unit
  // of retry budget. Anything that is not a node failure surfaces as-is.
  std::unique_ptr<obs::TraceRecorder> recorder;
  obs::TrackId coord_track = 0;
  if (options_.tracing) {
    obs::TraceRecorder::Options topt;
    topt.capacity = options_.trace_capacity;
    topt.unbounded = options_.detailed_trace;
    recorder = std::make_unique<obs::TraceRecorder>(topt);
    coord_track = recorder->RegisterTrack("coordinator");
  }
  double trace_now = 0.0;  // simulated clock carried across attempts

  RecoveryStats recovery;
  const int budget = std::max(0, options_.query_retry_budget);
  for (int attempt = 0;; ++attempt) {
    // Heartbeat leases are checked once per attempt per node; an injected
    // expiry kills the node before its fragments are dispatched.
    {
      std::lock_guard<std::mutex> lock(membership_mu_);
      for (auto& node : nodes_) {
        if (membership_.IsAlive(node->rank) &&
            !injector()->Check(kSiteHeartbeat).ok()) {
          membership_.MarkDead(node->rank);
          ++recovery.node_failures;
          if (recorder != nullptr) {
            recorder->AddInstant(coord_track,
                                 "recovery:node-" + std::to_string(node->rank) +
                                     "-dead",
                                 "recovery", trace_now);
          }
        }
      }
    }
    if (num_alive() < quorum) {
      return Status::Unavailable(
          "cluster dropped below quorum during recovery: " +
          std::to_string(num_alive()) + " alive node(s), quorum is " +
          std::to_string(quorum));
    }

    int failed_rank = -1;
    double attempt_end_s = trace_now;
    auto out = RunAttempt(dplan, &recovery, &failed_rank, recorder.get(),
                          trace_now, &attempt_end_s);
    if (out.ok()) {
      DistQueryResult result = std::move(out).ValueOrDie();
      result.recovery = recovery;
      if (recorder != nullptr) {
        result.profile = std::make_shared<obs::QueryProfile>(recorder->Finish());
      }
      return result;
    }
    trace_now = attempt_end_s;
    if (failed_rank < 0) return out.status();  // not a node failure
    {
      std::lock_guard<std::mutex> lock(membership_mu_);
      membership_.MarkDead(failed_rank);
    }
    ++recovery.node_failures;
    if (recorder != nullptr) {
      recorder->AddInstant(
          coord_track, "recovery:node-" + std::to_string(failed_rank) + "-dead",
          "recovery", trace_now);
    }
    if (attempt >= budget) {
      return out.status().WithContext(
          "query retry budget (" + std::to_string(budget) + ") exhausted");
    }
    ++recovery.query_retries;
    if (recorder != nullptr) {
      recorder->AddInstant(coord_track, "recovery:query-retry", "recovery",
                           trace_now);
    }
  }
}

}  // namespace sirius::dist
