// Plan fragmenter: rewrites a single-node plan into a distributed plan with
// explicit Exchange operators (paper §3.2.4 models exchange as dedicated
// physical operators; §3.3 describes fragment-per-node execution).
//
// Strategies:
//   - joins: broadcast the build side when its modeled size is small,
//     otherwise shuffle both inputs by the join keys (the Q3 behaviour the
//     paper analyses: "the plan shuffles both the orders and lineitem
//     tables");
//   - aggregates: two-phase (local partial -> gather -> final merge), with
//     avg decomposed into sum/count; count(distinct) repartitions by the
//     group keys instead;
//   - sort/limit/distinct: gather first.

#pragma once

#include "common/result.h"
#include "opt/stats.h"
#include "plan/plan.h"

namespace sirius::dist {

struct FragmenterOptions {
  /// Broadcast joins when the build side's modeled bytes stay under this.
  uint64_t broadcast_threshold_bytes = 16ull << 20;
  /// Modeled-scale multiplier used for the broadcast decision.
  double data_scale = 1.0;
};

/// \brief A distributed plan: the rewritten tree plus whether its output
/// ends up on the coordinator node (gathered) or stays partitioned.
struct DistributedPlan {
  plan::PlanPtr plan;
  bool gathered = false;
};

/// Rewrites `plan` for distributed execution. The result always ends
/// gathered (the coordinator returns rows to the client, §3.3).
Result<DistributedPlan> FragmentPlan(const plan::PlanPtr& plan,
                                     const opt::StatsProvider& stats,
                                     const FragmenterOptions& options);

}  // namespace sirius::dist
