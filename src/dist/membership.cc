#include "dist/membership.h"

#include <cstddef>

namespace sirius::dist {

Membership::Membership(int num_ranks)
    : last_heartbeat_s_(static_cast<size_t>(num_ranks < 0 ? 0 : num_ranks), 0.0),
      alive_(last_heartbeat_s_.size(), true) {}

void Membership::Heartbeat(int rank, double now_s) {
  if (rank < 0 || rank >= num_ranks()) return;
  last_heartbeat_s_[rank] = now_s;
  alive_[rank] = true;
}

int Membership::ExpireHeartbeats(double now_s, double timeout_s) {
  int expired = 0;
  for (int r = 0; r < num_ranks(); ++r) {
    if (alive_[r] && now_s - last_heartbeat_s_[r] > timeout_s) {
      alive_[r] = false;
      ++expired;
    }
  }
  return expired;
}

bool Membership::MarkDead(int rank) {
  if (rank < 0 || rank >= num_ranks() || !alive_[rank]) return false;
  alive_[rank] = false;
  return true;
}

bool Membership::IsAlive(int rank) const {
  return rank >= 0 && rank < num_ranks() && alive_[rank];
}

int Membership::num_alive() const {
  int n = 0;
  for (bool a : alive_) n += a ? 1 : 0;
  return n;
}

std::vector<int> Membership::AliveRanks() const {
  std::vector<int> ranks;
  for (int r = 0; r < num_ranks(); ++r) {
    if (alive_[r]) ranks.push_back(r);
  }
  return ranks;
}

}  // namespace sirius::dist
