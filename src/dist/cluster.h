// DorisX: the distributed host database (Apache Doris stand-in, paper §3.3).
//
// The coordinator owns the control plane: node registry with heartbeats,
// query planning (on global metadata), plan fragmenting, and dispatch.
// Fragments execute per node — on the CPU engine (Doris/ClickHouse
// baselines) or on per-node Sirius GPU engines — with the SCCL exchange
// layer moving intermediates, which are tracked in a temporary-table
// registry while in flight (§3.2.4).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/fragmenter.h"
#include "engine/capabilities.h"
#include "host/database.h"
#include "net/sccl.h"
#include "sim/cost_model.h"
#include "sim/device.h"

namespace sirius::dist {

/// \brief In-flight exchanged intermediates, registered as temporary tables
/// and deregistered once the consuming fragment finishes (§3.2.4).
class TempTableRegistry {
 public:
  /// Registers per-node partitions under a fresh name; returns the name.
  std::string Register(std::vector<format::TablePtr> parts);
  Status Deregister(const std::string& name);
  size_t active_count() const;
  /// Total registrations over the registry's lifetime.
  uint64_t total_registered() const { return next_id_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<format::TablePtr>> tables_;
  uint64_t next_id_ = 0;
};

/// \brief One compute node: local partition catalog + heartbeat state.
struct NodeState {
  int rank = 0;
  host::Catalog catalog;       ///< this node's partitions
  double last_heartbeat_s = 0;
  bool alive = true;
};

/// Result of one distributed query, with the Table 2 breakdown.
struct DistQueryResult {
  format::TablePtr table;
  sim::Timeline timeline;
  double total_seconds = 0;
  double compute_seconds = 0;   ///< local GPU/CPU execution
  double exchange_seconds = 0;  ///< SCCL collectives
  double other_seconds = 0;     ///< coordinator: optimize/dispatch/results
};

/// \brief A cluster of compute nodes with a coordinator.
class DorisCluster {
 public:
  struct Options {
    int num_nodes = 4;
    /// Per-node execution device + engine profile.
    sim::DeviceProfile device = sim::XeonGold6526Y();
    sim::EngineProfile engine = sim::DorisProfile();
    sim::Link network = sim::Infiniband400();
    double data_scale = 1.0;
    uint64_t broadcast_threshold_bytes = 16ull << 20;
    /// Fixed coordinator-side time per query ("Other" in Table 2).
    double coordinator_overhead_s = 0.045;
    /// SQL feature coverage of the per-node engine; the paper's distributed
    /// Sirius supports a subset of the single-node engine (§3.4).
    engine::Capabilities capabilities;
  };

  explicit DorisCluster(Options options);

  /// Hash-partitions `table` by its first column across the nodes and
  /// registers it on every node plus the coordinator's global catalog.
  Status LoadPartitioned(const std::string& name, const format::TablePtr& table);

  /// Plans on the coordinator, fragments, and executes across the nodes.
  Result<DistQueryResult> Query(const std::string& sql);

  /// \name Control plane (§3.2.1) and fault tolerance (§3.4).
  ///
  /// When heartbeats expire, the next query transparently re-partitions
  /// every table from the coordinator's copy onto the surviving nodes and
  /// runs there; recovered nodes rejoin the same way.
  /// @{
  void Heartbeat(int rank, double now_s);
  /// Marks nodes dead when their last heartbeat is older than `timeout_s`.
  int ExpireHeartbeats(double now_s, double timeout_s);
  bool IsAlive(int rank) const;
  int num_alive() const;
  /// @}

  int num_nodes() const { return options_.num_nodes; }
  const Options& options() const { return options_; }
  host::Database& coordinator() { return coordinator_; }
  TempTableRegistry& temp_registry() { return temp_registry_; }

 private:
  /// Re-distributes all tables across the currently-alive nodes when the
  /// membership changed since the last layout. Returns the alive ranks.
  Result<std::vector<int>> PrepareActiveNodes();

  Options options_;
  host::Database coordinator_;  ///< global metadata + planning
  std::vector<std::unique_ptr<NodeState>> nodes_;
  net::Communicator comm_;
  TempTableRegistry temp_registry_;
  std::vector<int> partition_layout_;  ///< ranks data is currently spread over
};

}  // namespace sirius::dist
