// DorisX: the distributed host database (Apache Doris stand-in, paper §3.3).
//
// The coordinator owns the control plane: node registry with heartbeats,
// query planning (on global metadata), plan fragmenting, and dispatch.
// Fragments execute per node — on the CPU engine (Doris/ClickHouse
// baselines) or on per-node Sirius GPU engines — with the SCCL exchange
// layer moving intermediates, which are tracked in a temporary-table
// registry while in flight (§3.2.4).

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/fragmenter.h"
#include "dist/membership.h"
#include "engine/buffer_manager.h"
#include "engine/capabilities.h"
#include "fault/fault_injector.h"
#include "host/database.h"
#include "net/sccl.h"
#include "sim/cost_model.h"
#include "sim/device.h"

namespace sirius::dist {

/// \brief In-flight exchanged intermediates, registered as temporary tables
/// and deregistered once the consuming fragment finishes (§3.2.4).
class TempTableRegistry {
 public:
  /// Registers per-node partitions under a fresh name; returns the name.
  std::string Register(std::vector<format::TablePtr> parts);
  Status Deregister(const std::string& name);
  size_t active_count() const;
  /// Total registrations over the registry's lifetime.
  uint64_t total_registered() const { return next_id_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<format::TablePtr>> tables_;
  uint64_t next_id_ = 0;
};

/// \brief RAII deregistration of one temp-table entry.
///
/// Fragments can fail (or be failed by the fault injector) between
/// registering an exchanged intermediate and consuming it; the guard keeps
/// `active_count()` honest on every exit path.
class TempTableGuard {
 public:
  TempTableGuard(TempTableRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~TempTableGuard() {
    if (registry_ != nullptr) registry_->Deregister(name_).ok();
  }

  TempTableGuard(const TempTableGuard&) = delete;
  TempTableGuard& operator=(const TempTableGuard&) = delete;

  /// Deregisters now (the consuming fragment took ownership) and reports
  /// whether the entry was still registered.
  Status Release() {
    if (registry_ == nullptr) return Status::OK();
    TempTableRegistry* r = registry_;
    registry_ = nullptr;
    return r->Deregister(name_);
  }

  const std::string& name() const { return name_; }

 private:
  TempTableRegistry* registry_;
  std::string name_;
};

/// \brief One compute node: local partition catalog, buffer manager for
/// scanned columns (hits/misses/evictions show up in query traces), and
/// heartbeat state.
struct NodeState {
  int rank = 0;
  host::Catalog catalog;       ///< this node's partitions
  /// Device-side column cache for this node's scans. Invalidated whenever
  /// the coordinator re-partitions data onto a changed membership.
  std::unique_ptr<engine::BufferManager> buffer;
};

/// \brief Recovery actions taken while answering one query (§3.3/§3.4
/// fault tolerance). Tests and benches assert on these, not just answers.
struct RecoveryStats {
  /// Transient SCCL link failures healed by retrying.
  int collective_retries = 0;
  /// Simulated time spent in collective retry backoff (charged to the
  /// timeline's exchange bucket).
  double retry_backoff_seconds = 0;
  /// Nodes declared dead during this query (fragment failure or heartbeat
  /// expiry).
  int node_failures = 0;
  /// Full re-runs of the query on the surviving membership.
  int query_retries = 0;
  /// Table re-layouts onto a changed membership.
  int re_partitions = 0;
};

/// Result of one distributed query, with the Table 2 breakdown.
struct DistQueryResult {
  format::TablePtr table;
  sim::Timeline timeline;
  double total_seconds = 0;
  double compute_seconds = 0;   ///< local GPU/CPU execution
  double exchange_seconds = 0;  ///< SCCL collectives
  double other_seconds = 0;     ///< coordinator: optimize/dispatch/results
  RecoveryStats recovery;       ///< recovery actions taken for this query
  /// Per-query trace: fragment spans per node, collective/retry spans on
  /// the link lane, recovery events on the coordinator lane. Null when
  /// Options::tracing is off.
  std::shared_ptr<obs::QueryProfile> profile;
};

/// \brief A cluster of compute nodes with a coordinator.
class DorisCluster {
 public:
  struct Options {
    int num_nodes = 4;
    /// Per-node execution device + engine profile.
    sim::DeviceProfile device = sim::XeonGold6526Y();
    sim::EngineProfile engine = sim::DorisProfile();
    sim::Link network = sim::Infiniband400();
    double data_scale = 1.0;
    uint64_t broadcast_threshold_bytes = 16ull << 20;
    /// Fixed coordinator-side time per query ("Other" in Table 2).
    double coordinator_overhead_s = 0.045;
    /// SQL feature coverage of the per-node engine; the paper's distributed
    /// Sirius supports a subset of the single-node engine (§3.4).
    engine::Capabilities capabilities;
    /// Fault injector consulted by the exchange layer and the per-fragment
    /// execution sites; nullptr uses the (disarmed) global injector.
    fault::FaultInjector* injector = nullptr;
    /// Retry schedule for transient collective failures.
    net::RetryPolicy collective_retry;
    /// Full query re-runs allowed after a node dies mid-query.
    int query_retry_budget = 1;
    /// Minimum alive nodes required to serve queries; below this Query()
    /// returns Status::Unavailable without touching the data plane.
    int quorum = 1;
    /// Per-query tracing (DistQueryResult::profile). Same span budget rules
    /// as the single-node engine.
    bool tracing = true;
    bool detailed_trace = false;
    size_t trace_capacity = 8192;
  };

  explicit DorisCluster(Options options);

  /// Hash-partitions `table` by its first column across the nodes and
  /// registers it on every node plus the coordinator's global catalog.
  Status LoadPartitioned(const std::string& name, const format::TablePtr& table);

  /// Plans on the coordinator, fragments, and executes across the nodes.
  Result<DistQueryResult> Query(const std::string& sql);

  /// \name Control plane (§3.2.1) and fault tolerance (§3.4).
  ///
  /// When heartbeats expire, the next query transparently re-partitions
  /// every table from the coordinator's copy onto the surviving nodes and
  /// runs there; recovered nodes rejoin the same way.
  /// @{
  void Heartbeat(int rank, double now_s);
  /// Marks nodes dead when their last heartbeat is older than `timeout_s`.
  int ExpireHeartbeats(double now_s, double timeout_s);
  bool IsAlive(int rank) const;
  int num_alive() const;
  /// @}

  int num_nodes() const { return options_.num_nodes; }
  const Options& options() const { return options_; }
  host::Database& coordinator() { return coordinator_; }
  TempTableRegistry& temp_registry() { return temp_registry_; }

 private:
  /// Re-distributes all tables across the currently-alive nodes when the
  /// membership changed since the last layout. Returns the alive ranks.
  /// Sets *re_partitioned when a new layout was installed.
  Result<std::vector<int>> PrepareActiveNodes(bool* re_partitioned = nullptr);

  /// One execution attempt of the fragmented plan over the current
  /// membership. On a node failure, sets *failed_rank to the global rank of
  /// the dead node (else leaves it -1).
  Result<DistQueryResult> RunAttempt(const DistributedPlan& dplan,
                                     RecoveryStats* recovery, int* failed_rank,
                                     obs::TraceRecorder* trace,
                                     double trace_base_s, double* trace_end_s);

  fault::FaultInjector* injector() const {
    return options_.injector != nullptr ? options_.injector
                                        : fault::FaultInjector::Global();
  }

  Options options_;
  host::Database coordinator_;  ///< global metadata + planning
  std::vector<std::unique_ptr<NodeState>> nodes_;
  net::Communicator comm_;
  TempTableRegistry temp_registry_;
  /// Guards cluster membership (the heartbeat tracker) and the partition
  /// layout. Queries may run concurrently (the serving layer submits from
  /// many sessions); membership reads/writes and re-partitioning serialize
  /// on this mutex while fragment execution itself proceeds in parallel.
  mutable std::mutex membership_mu_;
  Membership membership_;
  std::vector<int> partition_layout_;  ///< ranks data is currently spread over
};

}  // namespace sirius::dist
