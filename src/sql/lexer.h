// SQL lexer.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace sirius::sql {

enum class TokenKind : uint8_t {
  kIdentifier,  ///< lower-cased; keywords are identifiers matched contextually
  kInteger,
  kDecimal,  ///< numeric literal with a '.' — text preserved
  kString,   ///< '...' with '' escapes resolved
  kOperator, ///< + - * / = <> != < <= > >= ( ) , . ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< identifier (lower-cased), operator, string body,
                      ///< or numeric text
  int64_t ival = 0;   ///< kInteger value
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// Tokenizes `sql`. Identifiers and keywords are lower-cased; string
/// literals keep their case. `--` line comments are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sirius::sql
