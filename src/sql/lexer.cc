#include "sql/lexer.h"

#include <cctype>

namespace sirius::sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.kind = TokenKind::kIdentifier;
      tok.text = sql.substr(start, i - start);
      for (auto& ch : tok.text) ch = static_cast<char>(std::tolower(ch));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool has_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (!has_dot && sql[i] == '.' && i + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(sql[i + 1]))))) {
        if (sql[i] == '.') has_dot = true;
        ++i;
      }
      tok.text = sql.substr(start, i - start);
      if (has_dot) {
        tok.kind = TokenKind::kDecimal;
      } else {
        tok.kind = TokenKind::kInteger;
        tok.ival = std::stoll(tok.text);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            body += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(body);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Operators.
    tok.kind = TokenKind::kOperator;
    if ((c == '<' && i + 1 < n && (sql[i + 1] == '=' || sql[i + 1] == '>')) ||
        (c == '>' && i + 1 < n && sql[i + 1] == '=') ||
        (c == '!' && i + 1 < n && sql[i + 1] == '=')) {
      tok.text = sql.substr(i, 2);
      if (tok.text == "!=") tok.text = "<>";
      i += 2;
    } else {
      static const std::string kSingle = "+-*/=<>(),.;";
      if (kSingle.find(c) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sirius::sql
