// Recursive-descent SQL parser covering the full TPC-H subset: correlated
// subqueries (EXISTS / IN / scalar), derived tables, WITH, LEFT OUTER JOIN,
// CASE, BETWEEN, LIKE, IN lists, date/interval literals, substring/extract.

#pragma once

#include "common/result.h"
#include "sql/ast.h"

namespace sirius::sql {

/// Parses one SELECT statement (optionally ';'-terminated).
Result<SelectPtr> ParseSql(const std::string& sql);

}  // namespace sirius::sql
