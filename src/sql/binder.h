// SQL binder: AST -> bound logical plan, including subquery decorrelation.
//
// Subqueries never survive into the plan IR; they are rewritten into joins
// (the rewrites that make TPC-H's Q2/Q4/Q17/Q20/Q21/Q22 join-dominated,
// matching the paper's Figure 5 breakdown):
//   - [NOT] EXISTS (correlated)         -> semi/anti join (+ residual preds)
//   - x [NOT] IN (subquery)             -> semi/anti join on x
//   - cmp with correlated agg subquery  -> group-by on correlation keys +
//                                          inner join + filter
//   - cmp with uncorrelated scalar sub  -> single-row cross join + filter

#pragma once

#include "common/result.h"
#include "format/table.h"
#include "plan/plan.h"
#include "sql/ast.h"

namespace sirius::sql {

/// \brief Table-name -> schema resolution for binding (the host database's
/// catalog surface).
class CatalogInterface {
 public:
  virtual ~CatalogInterface() = default;
  virtual Result<format::Schema> GetTableSchema(const std::string& name) const = 0;
};

/// Binds a parsed statement into a logical plan against `catalog`.
Result<plan::PlanPtr> BindSelect(const SelectStmt& stmt,
                                 const CatalogInterface& catalog);

/// Convenience: parse + bind.
Result<plan::PlanPtr> SqlToPlan(const std::string& sql,
                                const CatalogInterface& catalog);

}  // namespace sirius::sql
