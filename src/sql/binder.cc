#include "sql/binder.h"

#include <map>
#include <set>

#include "expr/expr.h"
#include "expr/udf.h"
#include "sql/parser.h"

namespace sirius::sql {

using expr::ColIdx;
using expr::ExprPtr;
using format::DataType;
using format::Scalar;
using format::TypeId;
using plan::AggFunc;
using plan::AggItem;
using plan::PlanPtr;

namespace {

// ---------------------------------------------------------------------------
// Relations and name resolution
// ---------------------------------------------------------------------------

/// A column's resolvable names: optional qualifier (table alias) + name.
struct NameEntry {
  std::string qualifier;
  std::string name;
};

/// A bound relation: plan + name table parallel to the output schema.
struct Rel {
  PlanPtr plan;
  std::vector<NameEntry> names;

  size_t width() const { return plan->output_schema.num_fields(); }
  DataType type_of(int i) const { return plan->output_schema.field(i).type; }
};

/// Resolves qualifier.name in `rel`. Entries at positions >= prefer_from are
/// preferred (inner scope of a combined outer++inner schema). Returns -1
/// when absent; error on ambiguity within the winning range.
Result<int> ResolveColumn(const Rel& rel, const std::string& qualifier,
                          const std::string& name, size_t prefer_from = 0) {
  auto scan = [&](size_t begin, size_t end) -> Result<int> {
    int found = -1;
    for (size_t i = begin; i < end; ++i) {
      const NameEntry& e = rel.names[i];
      if (e.name != name) continue;
      if (!qualifier.empty() && e.qualifier != qualifier) continue;
      if (found >= 0) {
        return Status::BindError("ambiguous column reference '" +
                                 (qualifier.empty() ? name : qualifier + "." + name) +
                                 "'");
      }
      found = static_cast<int>(i);
    }
    return found;
  };
  if (prefer_from > 0 && prefer_from < rel.names.size()) {
    SIRIUS_ASSIGN_OR_RETURN(int idx, scan(prefer_from, rel.names.size()));
    if (idx >= 0) return idx;
    return scan(0, prefer_from);
  }
  return scan(0, rel.names.size());
}

/// Aggregates discovered while converting the SELECT/HAVING/ORDER BY of an
/// aggregate query.
struct AggCollector {
  const Rel* pre_rel = nullptr;
  std::vector<ExprPtr> group_exprs;          // bound against pre_rel
  std::vector<std::string> group_rendered;
  struct Entry {
    AggFunc func;
    ExprPtr arg;  // null for count(*)
    std::string rendered;
    DataType out_type;
  };
  std::vector<Entry> entries;

  int FindGroup(const std::string& rendered) const {
    for (size_t i = 0; i < group_rendered.size(); ++i) {
      if (group_rendered[i] == rendered) return static_cast<int>(i);
    }
    return -1;
  }
  int AddAgg(AggFunc func, ExprPtr arg, const std::string& rendered,
             DataType out_type) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].rendered == rendered) return static_cast<int>(i);
    }
    entries.push_back({func, std::move(arg), rendered, out_type});
    return static_cast<int>(entries.size()) - 1;
  }
};

DataType AggResultTypeOf(AggFunc f, const DataType& in) {
  switch (f) {
    case AggFunc::kSum:
      if (in.id == TypeId::kFloat64) return format::Float64();
      if (in.is_decimal()) return in;
      return format::Int64();
    case AggFunc::kMin:
    case AggFunc::kMax:
      return in;
    case AggFunc::kAvg:
      return format::Float64();
    default:
      return format::Int64();
  }
}

bool IsAggName(const std::string& n) {
  return n == "sum" || n == "avg" || n == "min" || n == "max" || n == "count";
}

bool ContainsAggregate(const AstExpr& e) {
  if (e.kind == AstKind::kFuncCall && IsAggName(e.name)) return true;
  for (const auto& a : e.args) {
    if (a != nullptr && ContainsAggregate(*a)) return true;
  }
  return false;
}

bool ContainsSubquery(const AstExpr& e) {
  if (e.subquery != nullptr) return true;
  for (const auto& a : e.args) {
    if (a != nullptr && ContainsSubquery(*a)) return true;
  }
  return false;
}

void SplitConjuncts(const AstExprPtr& e, std::vector<AstExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == AstKind::kBinary && e->name == "and") {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

class Binder;

/// Conversion context for AST -> expr::Expr.
struct ConvCtx {
  Binder* binder = nullptr;
  const Rel* rel = nullptr;
  size_t prefer_from = 0;  ///< resolution preference boundary in `rel`
  AggCollector* agg = nullptr;
  /// Pointer-identified scalar-subquery node to replace with `replacement`.
  const AstExpr* replace_node = nullptr;
  ExprPtr replacement;
  /// When set, uncorrelated scalar subqueries are bound and queued here; the
  /// produced reference is ColIdx(base_width + queue position).
  std::vector<PlanPtr>* pending_subs = nullptr;
  size_t base_width = 0;

  ConvCtx Plain() const {
    ConvCtx c;
    c.binder = binder;
    c.rel = rel;
    c.prefer_from = prefer_from;
    c.replace_node = replace_node;
    c.replacement = replacement;
    return c;
  }
};

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

class Binder {
 public:
  explicit Binder(const CatalogInterface& catalog) : catalog_(catalog) {}

  Result<Rel> BindStatement(const SelectStmt& stmt) {
    size_t pushed = 0;
    for (const auto& cte : stmt.ctes) {
      ctes_.emplace_back(cte.name, cte.query);
      ++pushed;
    }
    auto result = BindSelectBody(stmt);
    ctes_.resize(ctes_.size() - pushed);
    return result;
  }

  Result<ExprPtr> Convert(const AstExprPtr& ast, ConvCtx& ctx);

 private:
  friend struct ConvCtx;

  // ---------- FROM ----------

  Result<Rel> BindTable(const std::string& name, const std::string& alias) {
    // CTEs shadow base tables; latest definition wins.
    for (auto it = ctes_.rbegin(); it != ctes_.rend(); ++it) {
      if (it->first == name) {
        SIRIUS_ASSIGN_OR_RETURN(Rel rel, BindStatement(*it->second));
        for (auto& e : rel.names) e.qualifier = alias;
        return rel;
      }
    }
    SIRIUS_ASSIGN_OR_RETURN(format::Schema schema, catalog_.GetTableSchema(name));
    SIRIUS_ASSIGN_OR_RETURN(PlanPtr scan, plan::MakeScan(name, schema, {}));
    Rel rel;
    rel.plan = std::move(scan);
    for (const auto& f : schema.fields()) rel.names.push_back({alias, f.name});
    return rel;
  }

  Result<Rel> BindFromItem(const FromItemPtr& f) {
    switch (f->kind) {
      case FromKind::kTable:
        return BindTable(f->table_name, f->alias);
      case FromKind::kSubquery: {
        SIRIUS_ASSIGN_OR_RETURN(Rel rel, BindStatement(*f->subquery));
        for (auto& e : rel.names) e.qualifier = f->alias;
        return rel;
      }
      case FromKind::kJoin: {
        SIRIUS_ASSIGN_OR_RETURN(Rel left, BindFromItem(f->left));
        SIRIUS_ASSIGN_OR_RETURN(Rel right, BindFromItem(f->right));
        if (f->asof) {
          return BindAsofJoin(std::move(left), std::move(right), f->on);
        }
        return BindExplicitJoin(std::move(left), std::move(right), f->left_outer,
                                f->on);
      }
    }
    return Status::Internal("bad from item");
  }

  /// LEFT/INNER JOIN ... ON: equality conjuncts between sides become join
  /// keys, everything else stays in the join's residual condition (required
  /// for LEFT JOIN semantics, e.g. TPC-H Q13's NOT LIKE in the ON clause).
  Result<Rel> BindExplicitJoin(Rel left, Rel right, bool left_outer,
                               const AstExprPtr& on) {
    std::vector<AstExprPtr> conjuncts;
    SplitConjuncts(on, &conjuncts);

    Rel combined;
    combined.names = left.names;
    combined.names.insert(combined.names.end(), right.names.begin(),
                          right.names.end());

    std::vector<int> lkeys, rkeys;
    std::vector<ExprPtr> residuals;
    for (const auto& c : conjuncts) {
      if (c->kind == AstKind::kBinary && c->name == "=") {
        int li = -1, ri = -1;
        if (TryResolveBareColumn(*c->args[0], left, &li) &&
            TryResolveBareColumn(*c->args[1], right, &ri)) {
          lkeys.push_back(li);
          rkeys.push_back(ri);
          continue;
        }
        li = ri = -1;
        if (TryResolveBareColumn(*c->args[0], right, &ri) &&
            TryResolveBareColumn(*c->args[1], left, &li)) {
          lkeys.push_back(li);
          rkeys.push_back(ri);
          continue;
        }
      }
      // Residual: bind against combined schema. Needs the combined plan to
      // exist for Convert's type lookups, so build a throwaway schema rel.
      ConvCtx ctx;
      ctx.binder = this;
      Rel tmp = MakeCombinedRel(left, right);
      ctx.rel = &tmp;
      ctx.prefer_from = left.width();
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr e, Convert(c, ctx));
      residuals.push_back(std::move(e));
    }
    if (lkeys.empty()) {
      return Status::NotImplemented("JOIN ... ON without equality condition");
    }
    ExprPtr residual = expr::ConjoinAll(residuals);
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr join,
        plan::MakeJoin(left.plan, right.plan,
                       left_outer ? plan::JoinType::kLeft : plan::JoinType::kInner,
                       std::move(lkeys), std::move(rkeys), std::move(residual)));
    Rel rel;
    rel.plan = std::move(join);
    rel.names = std::move(combined.names);
    return rel;
  }

  /// ASOF JOIN ... ON: equality conjuncts become "by" keys; exactly one
  /// inequality (l.t >= r.t, or r.t <= l.t) names the ordering columns.
  Result<Rel> BindAsofJoin(Rel left, Rel right, const AstExprPtr& on) {
    std::vector<AstExprPtr> conjuncts;
    SplitConjuncts(on, &conjuncts);

    std::vector<int> by_left, by_right;
    int left_on = -1, right_on = -1;
    for (const auto& c : conjuncts) {
      if (c->kind != AstKind::kBinary) {
        return Status::NotImplemented("ASOF JOIN ON supports only =, >=, <=");
      }
      int li = -1, ri = -1;
      const bool fwd = TryResolveBareColumn(*c->args[0], left, &li) &&
                       TryResolveBareColumn(*c->args[1], right, &ri);
      const bool rev = !fwd && TryResolveBareColumn(*c->args[0], right, &ri) &&
                       TryResolveBareColumn(*c->args[1], left, &li);
      if (!fwd && !rev) {
        return Status::NotImplemented(
            "ASOF JOIN ON conditions must compare one column per side");
      }
      if (c->name == "=") {
        by_left.push_back(li);
        by_right.push_back(ri);
        continue;
      }
      // Ordering condition: left.t >= right.t in some spelling.
      const bool ge_shape = (fwd && c->name == ">=") || (rev && c->name == "<=");
      if (!ge_shape) {
        return Status::NotImplemented(
            "ASOF JOIN ordering condition must be left >= right");
      }
      if (left_on >= 0) {
        return Status::Invalid("ASOF JOIN: multiple ordering conditions");
      }
      left_on = li;
      right_on = ri;
    }
    if (left_on < 0) {
      return Status::Invalid("ASOF JOIN requires an inequality condition");
    }
    Rel rel;
    rel.names = left.names;
    rel.names.insert(rel.names.end(), right.names.begin(), right.names.end());
    SIRIUS_ASSIGN_OR_RETURN(
        rel.plan, plan::MakeAsofJoin(left.plan, right.plan, by_left, by_right,
                                     left_on, right_on));
    return rel;
  }

  /// A Rel whose plan is a cross join of `left` and `right` (schema purposes
  /// for residual binding; the real join node replaces it).
  Rel MakeCombinedRel(const Rel& left, const Rel& right) {
    Rel rel;
    rel.plan = plan::MakeJoin(left.plan, right.plan, plan::JoinType::kCross, {}, {})
                   .ValueOrDie();
    rel.names = left.names;
    rel.names.insert(rel.names.end(), right.names.begin(), right.names.end());
    return rel;
  }

  bool TryResolveBareColumn(const AstExpr& ast, const Rel& rel, int* index) {
    if (ast.kind != AstKind::kColumn) return false;
    auto res = ResolveColumn(rel, ast.name, ast.text);
    if (!res.ok() || res.ValueOrDie() < 0) return false;
    *index = res.ValueOrDie();
    return true;
  }

  Result<Rel> BindFromList(const std::vector<FromItemPtr>& from) {
    if (from.empty()) {
      return Status::NotImplemented("SELECT without FROM");
    }
    SIRIUS_ASSIGN_OR_RETURN(Rel rel, BindFromItem(from[0]));
    for (size_t i = 1; i < from.size(); ++i) {
      SIRIUS_ASSIGN_OR_RETURN(Rel next, BindFromItem(from[i]));
      SIRIUS_ASSIGN_OR_RETURN(
          PlanPtr join,
          plan::MakeJoin(rel.plan, next.plan, plan::JoinType::kCross, {}, {}));
      rel.plan = std::move(join);
      rel.names.insert(rel.names.end(), next.names.begin(), next.names.end());
    }
    return rel;
  }

  // ---------- WHERE (with decorrelation) ----------

  /// Applies one conjunct to `rel` (filter or subquery rewrite).
  Result<Rel> ApplyConjunct(Rel rel, const AstExprPtr& conjunct,
                            AggCollector* agg_ctx) {
    if (!ContainsSubquery(*conjunct)) {
      ConvCtx ctx;
      ctx.binder = this;
      ctx.rel = &rel;
      ctx.agg = agg_ctx;
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr pred, Convert(conjunct, ctx));
      SIRIUS_ASSIGN_OR_RETURN(rel.plan, plan::MakeFilter(rel.plan, std::move(pred)));
      return rel;
    }
    // EXISTS / NOT EXISTS.
    if (conjunct->kind == AstKind::kExists) {
      return BindExistsJoin(std::move(rel), *conjunct);
    }
    // x [NOT] IN (subquery).
    if (conjunct->kind == AstKind::kInSubquery) {
      return BindInSubqueryJoin(std::move(rel), *conjunct, agg_ctx);
    }
    // Comparison against a scalar subquery.
    if (conjunct->kind == AstKind::kBinary) {
      const AstExpr* sub = nullptr;
      if (conjunct->args[0]->kind == AstKind::kScalarSubquery) {
        sub = conjunct->args[0].get();
      } else if (conjunct->args[1]->kind == AstKind::kScalarSubquery) {
        sub = conjunct->args[1].get();
      }
      if (sub != nullptr) {
        return BindScalarSubqueryCompare(std::move(rel), conjunct, *sub, agg_ctx);
      }
    }
    return Status::NotImplemented("unsupported subquery form: predicate " +
                                  std::to_string(static_cast<int>(conjunct->kind)));
  }

  /// Partitions a correlated subquery's WHERE into inner-only filters,
  /// outer=inner equality key pairs, and residual predicates.
  struct CorrelationSplit {
    Rel inner;                       // filtered inner relation
    std::vector<int> outer_keys;
    std::vector<int> inner_keys;
    ExprPtr residual;                // bound against outer ++ inner
  };

  Result<CorrelationSplit> SplitCorrelated(const Rel& outer, const SelectStmt& sub) {
    SIRIUS_ASSIGN_OR_RETURN(Rel inner, BindFromList(sub.from));
    std::vector<AstExprPtr> conjuncts;
    SplitConjuncts(sub.where, &conjuncts);

    std::vector<AstExprPtr> inner_only;
    std::vector<AstExprPtr> residual_asts;
    CorrelationSplit split;
    for (const auto& c : conjuncts) {
      // Inner-only? (Inner scope shadows outer, per SQL.)
      ConvCtx ictx;
      ictx.binder = this;
      ictx.rel = &inner;
      if (!ContainsSubquery(*c) && Convert(c, ictx).ok()) {
        inner_only.push_back(c);
        continue;
      }
      // outer.col = inner.col?
      if (c->kind == AstKind::kBinary && c->name == "=") {
        int oi = -1, ii = -1;
        if (TryResolveBareColumn(*c->args[0], outer, &oi) &&
            TryResolveBareColumn(*c->args[1], inner, &ii)) {
          split.outer_keys.push_back(oi);
          split.inner_keys.push_back(ii);
          continue;
        }
        oi = ii = -1;
        if (TryResolveBareColumn(*c->args[0], inner, &ii) &&
            TryResolveBareColumn(*c->args[1], outer, &oi)) {
          split.outer_keys.push_back(oi);
          split.inner_keys.push_back(ii);
          continue;
        }
      }
      residual_asts.push_back(c);
    }
    // Apply inner-only conjuncts (may themselves contain nested subqueries).
    for (const auto& c : inner_only) {
      SIRIUS_ASSIGN_OR_RETURN(inner, ApplyConjunct(std::move(inner), c, nullptr));
    }
    // Bind residuals against outer ++ (filtered) inner.
    if (!residual_asts.empty()) {
      Rel combined = MakeCombinedRel(outer, inner);
      std::vector<ExprPtr> residuals;
      for (const auto& c : residual_asts) {
        if (ContainsSubquery(*c)) {
          return Status::NotImplemented("nested subquery in correlated residual");
        }
        ConvCtx ctx;
        ctx.binder = this;
        ctx.rel = &combined;
        ctx.prefer_from = outer.width();
        SIRIUS_ASSIGN_OR_RETURN(ExprPtr e, Convert(c, ctx));
        residuals.push_back(std::move(e));
      }
      split.residual = expr::ConjoinAll(residuals);
    }
    split.inner = std::move(inner);
    return split;
  }

  Result<Rel> BindExistsJoin(Rel rel, const AstExpr& conjunct) {
    SIRIUS_ASSIGN_OR_RETURN(CorrelationSplit split,
                            SplitCorrelated(rel, *conjunct.subquery));
    if (split.outer_keys.empty()) {
      return Status::NotImplemented("EXISTS without equality correlation");
    }
    SIRIUS_ASSIGN_OR_RETURN(
        rel.plan, plan::MakeJoin(rel.plan, split.inner.plan,
                                 conjunct.negated ? plan::JoinType::kAnti
                                                  : plan::JoinType::kSemi,
                                 split.outer_keys, split.inner_keys,
                                 split.residual));
    return rel;  // semi/anti joins preserve the left schema and names
  }

  Result<Rel> BindInSubqueryJoin(Rel rel, const AstExpr& conjunct,
                                 AggCollector* agg_ctx) {
    // TPC-H IN-subqueries are uncorrelated w.r.t. the enclosing scope.
    SIRIUS_ASSIGN_OR_RETURN(Rel sub, BindStatement(*conjunct.subquery));
    if (sub.width() != 1) {
      return Status::BindError("IN subquery must produce one column");
    }
    // The probe value: usually a bare column; otherwise append a projection.
    ConvCtx ctx;
    ctx.binder = this;
    ctx.rel = &rel;
    ctx.agg = agg_ctx;
    SIRIUS_ASSIGN_OR_RETURN(ExprPtr value, Convert(conjunct.args[0], ctx));
    const size_t original_width = rel.width();
    int key_col;
    bool appended = false;
    if (value->kind == expr::ExprKind::kColumnRef) {
      key_col = value->column_index;
    } else {
      SIRIUS_ASSIGN_OR_RETURN(rel, AppendComputedColumn(std::move(rel), value,
                                                        "__in_probe"));
      key_col = static_cast<int>(rel.width()) - 1;
      appended = true;
    }
    SIRIUS_ASSIGN_OR_RETURN(
        rel.plan,
        plan::MakeJoin(rel.plan, sub.plan,
                       conjunct.negated ? plan::JoinType::kAnti
                                        : plan::JoinType::kSemi,
                       {key_col}, {0}, nullptr));
    if (appended) {
      SIRIUS_ASSIGN_OR_RETURN(rel, ProjectToWidth(std::move(rel), original_width));
    }
    return rel;
  }

  Result<Rel> BindScalarSubqueryCompare(Rel rel, const AstExprPtr& conjunct,
                                        const AstExpr& sub, AggCollector* agg_ctx) {
    const size_t original_width = rel.width();
    // Uncorrelated if it binds standalone.
    auto standalone = BindStatement(*sub.subquery);
    if (standalone.ok()) {
      Rel sub_rel = std::move(standalone).ValueOrDie();
      if (sub_rel.width() != 1) {
        return Status::BindError("scalar subquery must produce one column");
      }
      DataType vt = sub_rel.type_of(0);
      SIRIUS_ASSIGN_OR_RETURN(
          rel.plan, plan::MakeJoin(rel.plan, sub_rel.plan, plan::JoinType::kCross,
                                   {}, {}));
      rel.names.push_back({"", "__scalar"});
      ConvCtx ctx;
      ctx.binder = this;
      ctx.rel = &rel;
      ctx.agg = agg_ctx;
      ctx.replace_node = &sub;
      ctx.replacement = ColIdx(static_cast<int>(original_width), vt);
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr pred, Convert(conjunct, ctx));
      SIRIUS_ASSIGN_OR_RETURN(rel.plan, plan::MakeFilter(rel.plan, std::move(pred)));
      return ProjectToWidth(std::move(rel), original_width);
    }

    // Correlated aggregate subquery: group the inner side by its correlation
    // keys, join, filter on the comparison.
    SIRIUS_ASSIGN_OR_RETURN(CorrelationSplit split,
                            SplitCorrelated(rel, *sub.subquery));
    if (split.outer_keys.empty()) {
      return Status::NotImplemented(
          "correlated scalar subquery without equality correlation");
    }
    if (split.residual != nullptr) {
      return Status::NotImplemented(
          "correlated scalar subquery with non-equality correlation");
    }
    if (sub.subquery->items.size() != 1 || sub.subquery->items[0].expr == nullptr) {
      return Status::BindError("scalar subquery must select one expression");
    }
    // Build: Aggregate(inner keys, aggs) -> Project([keys, value]).
    AggCollector collector;
    collector.pre_rel = &split.inner;
    for (int k : split.inner_keys) {
      collector.group_exprs.push_back(ColIdx(k, split.inner.type_of(k)));
      collector.group_rendered.push_back(collector.group_exprs.back()->ToString());
    }
    ConvCtx vctx;
    vctx.binder = this;
    vctx.rel = &split.inner;
    vctx.agg = &collector;
    SIRIUS_ASSIGN_OR_RETURN(ExprPtr value_expr,
                            Convert(sub.subquery->items[0].expr, vctx));
    SIRIUS_ASSIGN_OR_RETURN(Rel agg_rel,
                            BuildAggregate(split.inner, collector));
    // Project to [keys..., value].
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    for (size_t k = 0; k < split.inner_keys.size(); ++k) {
      proj.push_back(ColIdx(static_cast<int>(k), agg_rel.type_of(static_cast<int>(k))));
      names.push_back("__k" + std::to_string(k));
    }
    proj.push_back(value_expr);
    names.push_back("__scalar");
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr sub_plan, plan::MakeProject(agg_rel.plan, proj, names));

    const size_t num_keys = split.inner_keys.size();
    std::vector<int> sub_keys(num_keys);
    for (size_t k = 0; k < num_keys; ++k) sub_keys[k] = static_cast<int>(k);
    SIRIUS_ASSIGN_OR_RETURN(
        rel.plan, plan::MakeJoin(rel.plan, sub_plan, plan::JoinType::kInner,
                                 split.outer_keys, sub_keys));
    for (size_t k = 0; k < num_keys; ++k) rel.names.push_back({"", "__k"});
    rel.names.push_back({"", "__scalar"});

    DataType vt = rel.type_of(static_cast<int>(original_width + num_keys));
    ConvCtx ctx;
    ctx.binder = this;
    ctx.rel = &rel;
    ctx.agg = agg_ctx;
    ctx.replace_node = &sub;
    ctx.replacement =
        ColIdx(static_cast<int>(original_width + num_keys), vt);
    SIRIUS_ASSIGN_OR_RETURN(ExprPtr pred, Convert(conjunct, ctx));
    SIRIUS_ASSIGN_OR_RETURN(rel.plan, plan::MakeFilter(rel.plan, std::move(pred)));
    return ProjectToWidth(std::move(rel), original_width);
  }

  // ---------- helpers ----------

  Result<Rel> AppendComputedColumn(Rel rel, ExprPtr e, const std::string& name) {
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    for (size_t i = 0; i < rel.width(); ++i) {
      proj.push_back(ColIdx(static_cast<int>(i), rel.type_of(static_cast<int>(i))));
      names.push_back(rel.plan->output_schema.field(i).name);
    }
    proj.push_back(std::move(e));
    names.push_back(name);
    SIRIUS_ASSIGN_OR_RETURN(rel.plan,
                            plan::MakeProject(rel.plan, std::move(proj), names));
    rel.names.push_back({"", name});
    return rel;
  }

  Result<Rel> ProjectToWidth(Rel rel, size_t width) {
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    for (size_t i = 0; i < width; ++i) {
      proj.push_back(ColIdx(static_cast<int>(i), rel.type_of(static_cast<int>(i))));
      names.push_back(rel.plan->output_schema.field(i).name);
    }
    SIRIUS_ASSIGN_OR_RETURN(rel.plan,
                            plan::MakeProject(rel.plan, std::move(proj), names));
    rel.names.resize(width);
    return rel;
  }

  /// Builds PreProject + Aggregate from a filled collector. Output schema:
  /// [group keys..., aggregates...].
  Result<Rel> BuildAggregate(const Rel& input, const AggCollector& collector) {
    std::vector<ExprPtr> pre;
    std::vector<std::string> pre_names;
    for (size_t k = 0; k < collector.group_exprs.size(); ++k) {
      pre.push_back(collector.group_exprs[k]);
      pre_names.push_back("k" + std::to_string(k));
    }
    std::vector<AggItem> items;
    int arg_pos = static_cast<int>(collector.group_exprs.size());
    for (size_t a = 0; a < collector.entries.size(); ++a) {
      const auto& e = collector.entries[a];
      AggItem item;
      item.func = e.func;
      item.name = "agg" + std::to_string(a);
      if (e.arg != nullptr) {
        pre.push_back(e.arg);
        pre_names.push_back("a" + std::to_string(a));
        item.arg_column = arg_pos++;
      }
      items.push_back(std::move(item));
    }
    if (pre.empty()) {
      // Pure count(*) with no keys: keep a constant column so the input's
      // cardinality survives the projection.
      pre.push_back(expr::LitInt(1));
      pre_names.push_back("__one");
    }
    SIRIUS_ASSIGN_OR_RETURN(PlanPtr pre_plan,
                            plan::MakeProject(input.plan, pre, pre_names));
    std::vector<int> group_cols(collector.group_exprs.size());
    for (size_t k = 0; k < group_cols.size(); ++k) group_cols[k] = static_cast<int>(k);
    SIRIUS_ASSIGN_OR_RETURN(
        PlanPtr agg_plan, plan::MakeAggregate(pre_plan, group_cols, items));
    Rel rel;
    rel.plan = std::move(agg_plan);
    for (size_t i = 0; i < rel.plan->output_schema.num_fields(); ++i) {
      rel.names.push_back({"", rel.plan->output_schema.field(i).name});
    }
    return rel;
  }

  // ---------- SELECT body ----------

  Result<Rel> BindSelectBody(const SelectStmt& stmt) {
    SIRIUS_ASSIGN_OR_RETURN(Rel rel, BindFromList(stmt.from));

    // WHERE: plain conjuncts first (cheap filters), then subquery rewrites.
    std::vector<AstExprPtr> conjuncts;
    SplitConjuncts(stmt.where, &conjuncts);
    for (const auto& c : conjuncts) {
      if (!ContainsSubquery(*c)) {
        SIRIUS_ASSIGN_OR_RETURN(rel, ApplyConjunct(std::move(rel), c, nullptr));
      }
    }
    for (const auto& c : conjuncts) {
      if (ContainsSubquery(*c)) {
        SIRIUS_ASSIGN_OR_RETURN(rel, ApplyConjunct(std::move(rel), c, nullptr));
      }
    }

    // Aggregate detection.
    bool has_agg = !stmt.group_by.empty();
    for (const auto& item : stmt.items) {
      if (item.expr != nullptr && ContainsAggregate(*item.expr)) has_agg = true;
    }
    if (stmt.having != nullptr) has_agg = true;

    std::vector<ExprPtr> select_exprs;
    std::vector<std::string> select_names;
    Rel value_rel;  // the relation final projections are bound against
    AggCollector collector;

    if (has_agg) {
      collector.pre_rel = &rel;
      for (const auto& g : stmt.group_by) {
        ConvCtx gctx;
        gctx.binder = this;
        gctx.rel = &rel;
        SIRIUS_ASSIGN_OR_RETURN(ExprPtr ge, Convert(g, gctx));
        collector.group_rendered.push_back(ge->ToString());
        collector.group_exprs.push_back(std::move(ge));
      }
      // Convert select items (fills the collector).
      ConvCtx sctx;
      sctx.binder = this;
      sctx.rel = &rel;
      sctx.agg = &collector;
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const auto& item = stmt.items[i];
        if (item.expr == nullptr) {
          return Status::BindError("SELECT * not allowed with GROUP BY");
        }
        SIRIUS_ASSIGN_OR_RETURN(ExprPtr e, Convert(item.expr, sctx));
        select_names.push_back(!item.alias.empty()
                                   ? item.alias
                                   : DeriveName(*item.expr, i));
        select_exprs.push_back(std::move(e));
      }
      // HAVING conjuncts referencing only aggregates/keys convert in the
      // same pass (so new aggregates are registered before the Aggregate
      // node is built). Subquery conjuncts are applied after aggregation.
      std::vector<AstExprPtr> having;
      SplitConjuncts(stmt.having, &having);
      std::vector<ExprPtr> having_plain;
      std::vector<AstExprPtr> having_subs;
      for (const auto& h : having) {
        if (ContainsSubquery(*h)) {
          // Pre-register aggregates appearing outside the subquery.
          having_subs.push_back(h);
          PreRegisterAggs(*h, sctx);
        } else {
          SIRIUS_ASSIGN_OR_RETURN(ExprPtr e, Convert(h, sctx));
          having_plain.push_back(std::move(e));
        }
      }
      // ORDER BY expressions may introduce aggregates too.
      std::vector<ExprPtr> order_exprs(stmt.order_by.size());
      std::vector<int> order_alias_pos(stmt.order_by.size(), -1);
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        int pos = FindAliasOrOrdinal(stmt, *stmt.order_by[i].expr);
        if (pos == -2) {
          return Status::BindError("ORDER BY position out of range");
        }
        if (pos >= 0) {
          order_alias_pos[i] = pos;
        } else {
          SIRIUS_ASSIGN_OR_RETURN(order_exprs[i],
                                  Convert(stmt.order_by[i].expr, sctx));
        }
      }

      SIRIUS_ASSIGN_OR_RETURN(value_rel, BuildAggregate(rel, collector));
      for (const auto& h : having_plain) {
        SIRIUS_ASSIGN_OR_RETURN(value_rel.plan,
                                plan::MakeFilter(value_rel.plan, h));
      }
      for (const auto& h : having_subs) {
        ConvCtx hctx;
        hctx.binder = this;
        hctx.rel = &value_rel;
        hctx.agg = &collector;  // already-built aggregates resolve by render
        SIRIUS_ASSIGN_OR_RETURN(value_rel,
                                ApplyConjunct(std::move(value_rel), h, &collector));
      }
      return FinishSelect(stmt, std::move(value_rel), std::move(select_exprs),
                          std::move(select_names), order_exprs, order_alias_pos);
    }

    // Non-aggregate path.
    value_rel = rel;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (item.expr == nullptr) {  // '*'
        for (size_t c = 0; c < value_rel.width(); ++c) {
          select_exprs.push_back(
              ColIdx(static_cast<int>(c), value_rel.type_of(static_cast<int>(c))));
          select_names.push_back(value_rel.names[c].name);
        }
        continue;
      }
      ConvCtx ctx;
      ctx.binder = this;
      ctx.rel = &value_rel;
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr e, Convert(item.expr, ctx));
      select_names.push_back(!item.alias.empty() ? item.alias
                                                 : DeriveName(*item.expr, i));
      select_exprs.push_back(std::move(e));
    }
    std::vector<ExprPtr> order_exprs(stmt.order_by.size());
    std::vector<int> order_alias_pos(stmt.order_by.size(), -1);
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      int pos = FindAliasOrOrdinal(stmt, *stmt.order_by[i].expr);
      if (pos == -2) {
        return Status::BindError("ORDER BY position out of range");
      }
      if (pos >= 0) {
        order_alias_pos[i] = pos;
      } else {
        ConvCtx ctx;
        ctx.binder = this;
        ctx.rel = &value_rel;
        SIRIUS_ASSIGN_OR_RETURN(order_exprs[i], Convert(stmt.order_by[i].expr, ctx));
      }
    }
    return FinishSelect(stmt, std::move(value_rel), std::move(select_exprs),
                        std::move(select_names), order_exprs, order_alias_pos);
  }

  /// Registers aggregates appearing in `e` outside any subquery, so the
  /// Aggregate node includes them before HAVING-subquery rewrites run.
  void PreRegisterAggs(const AstExpr& e, ConvCtx& ctx) {
    if (e.subquery != nullptr) return;
    if (e.kind == AstKind::kFuncCall && IsAggName(e.name)) {
      auto self = std::make_shared<AstExpr>(e);
      (void)Convert(self, ctx);  // registration side effect; errors surface later
      return;
    }
    for (const auto& a : e.args) {
      if (a != nullptr) PreRegisterAggs(*a, ctx);
    }
  }

  /// ORDER BY item as a select alias or 1-based ordinal; -1 if neither.
  int FindAliasOrOrdinal(const SelectStmt& stmt, const AstExpr& e) {
    if (e.kind == AstKind::kColumn && e.name.empty()) {
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (stmt.items[i].alias == e.text) return static_cast<int>(i);
      }
    }
    if (e.kind == AstKind::kIntLiteral) {
      if (e.ival >= 1 && e.ival <= static_cast<int64_t>(stmt.items.size())) {
        return static_cast<int>(e.ival) - 1;
      }
      return -2;  // out-of-range ordinal: an error, not an expression
    }
    return -1;
  }

  static std::string DeriveName(const AstExpr& e, size_t pos) {
    if (e.kind == AstKind::kColumn) return e.text;
    return "col" + std::to_string(pos);
  }

  /// Final projection, DISTINCT, ORDER BY (with hidden sort columns), LIMIT.
  Result<Rel> FinishSelect(const SelectStmt& stmt, Rel value_rel,
                           std::vector<ExprPtr> select_exprs,
                           std::vector<std::string> select_names,
                           const std::vector<ExprPtr>& order_exprs,
                           const std::vector<int>& order_alias_pos) {
    const size_t visible = select_exprs.size();
    // Sort keys: alias/ordinal position, matching projection, or hidden.
    std::vector<plan::SortKey> sort_keys(stmt.order_by.size());
    std::vector<ExprPtr> all_exprs = select_exprs;
    std::vector<std::string> all_names = select_names;
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      int pos = order_alias_pos[i];
      if (pos < 0) {
        const std::string rendered = order_exprs[i]->ToString();
        for (size_t j = 0; j < select_exprs.size(); ++j) {
          if (select_exprs[j]->ToString() == rendered) {
            pos = static_cast<int>(j);
            break;
          }
        }
        if (pos < 0) {
          pos = static_cast<int>(all_exprs.size());
          all_exprs.push_back(order_exprs[i]);
          all_names.push_back("__sort" + std::to_string(i));
        }
      }
      sort_keys[i] = {pos, stmt.order_by[i].descending};
    }

    Rel rel;
    SIRIUS_ASSIGN_OR_RETURN(
        rel.plan, plan::MakeProject(value_rel.plan, all_exprs, all_names));
    for (const auto& n : all_names) rel.names.push_back({"", n});

    if (stmt.distinct) {
      SIRIUS_ASSIGN_OR_RETURN(rel.plan, plan::MakeDistinct(rel.plan));
    }
    if (!sort_keys.empty()) {
      SIRIUS_ASSIGN_OR_RETURN(rel.plan, plan::MakeSort(rel.plan, sort_keys));
    }
    if (all_exprs.size() != visible) {
      SIRIUS_ASSIGN_OR_RETURN(rel, ProjectToWidth(std::move(rel), visible));
    }
    if (stmt.limit >= 0) {
      SIRIUS_ASSIGN_OR_RETURN(rel.plan, plan::MakeLimit(rel.plan, stmt.limit));
    }
    return rel;
  }

  const CatalogInterface& catalog_;
  std::vector<std::pair<std::string, SelectPtr>> ctes_;
};

}  // namespace

// ---------------------------------------------------------------------------
// AST expression conversion
// ---------------------------------------------------------------------------

namespace {

bool ContainsColumn(const AstExpr& e) {
  if (e.kind == AstKind::kColumn) return true;
  for (const auto& a : e.args) {
    if (a != nullptr && ContainsColumn(*a)) return true;
  }
  return false;
}

/// Folds `date +/- interval` with literal operands.
Result<ExprPtr> FoldDateInterval(const expr::Expr& date_lit, const AstExpr& interval,
                                 bool add) {
  int32_t days = static_cast<int32_t>(date_lit.literal.int_value());
  int64_t n = add ? interval.ival : -interval.ival;
  if (interval.text == "day") {
    return expr::Lit(Scalar::FromDate(days + static_cast<int32_t>(n)));
  }
  int y, m, d;
  format::CivilFromDays(days, &y, &m, &d);
  int64_t months = interval.text == "year" ? n * 12 : n;
  int64_t total = (y * 12 + (m - 1)) + months;
  y = static_cast<int>(total / 12);
  m = static_cast<int>(total % 12) + 1;
  return expr::Lit(Scalar::FromDate(format::DaysFromCivil(y, m, d)));
}

int DecimalScaleOf(const std::string& text) {
  auto dot = text.find('.');
  if (dot == std::string::npos) return 0;
  return static_cast<int>(text.size() - dot - 1);
}

Result<AggFunc> AggFuncOf(const AstExpr& e) {
  if (e.name == "sum") return AggFunc::kSum;
  if (e.name == "avg") return AggFunc::kAvg;
  if (e.name == "min") return AggFunc::kMin;
  if (e.name == "max") return AggFunc::kMax;
  if (e.name == "count") {
    if (!e.args.empty() && e.args[0]->kind == AstKind::kStar) {
      return AggFunc::kCountStar;
    }
    return e.distinct ? AggFunc::kCountDistinct : AggFunc::kCount;
  }
  return Status::BindError("unknown function '" + e.name + "'");
}

}  // namespace

Result<ExprPtr> Binder::Convert(const AstExprPtr& ast, ConvCtx& ctx) {
  const AstExpr& e = *ast;
  switch (e.kind) {
    case AstKind::kColumn: {
      // In aggregate context, bare columns must be group keys.
      if (ctx.agg != nullptr) {
        ConvCtx plain = ctx.Plain();
        plain.rel = ctx.agg->pre_rel;
        SIRIUS_ASSIGN_OR_RETURN(ExprPtr c, Convert(ast, plain));
        int g = ctx.agg->FindGroup(c->ToString());
        if (g < 0) {
          return Status::BindError("column '" + e.text +
                                   "' must appear in GROUP BY");
        }
        return ColIdx(g, c->type);
      }
      SIRIUS_ASSIGN_OR_RETURN(int idx,
                              ResolveColumn(*ctx.rel, e.name, e.text,
                                            ctx.prefer_from));
      if (idx < 0) {
        return Status::BindError(
            "column '" + (e.name.empty() ? e.text : e.name + "." + e.text) +
            "' not found");
      }
      return ColIdx(idx, ctx.rel->type_of(idx));
    }
    case AstKind::kIntLiteral:
      return expr::LitInt(e.ival);
    case AstKind::kDecimalLiteral:
      return expr::LitDecimal(e.text, DecimalScaleOf(e.text));
    case AstKind::kStringLiteral:
      return expr::LitString(e.text);
    case AstKind::kDateLiteral: {
      int32_t days = format::ParseDate(e.text);
      if (days == INT32_MIN) {
        return Status::BindError("bad date literal '" + e.text + "'");
      }
      return expr::Lit(Scalar::FromDate(days));
    }
    case AstKind::kIntervalLiteral:
      return Status::BindError("interval literal outside date arithmetic");
    case AstKind::kStar:
      return Status::BindError("'*' outside count(*)");
    case AstKind::kBinary: {
      // Agg-context subtree matching: a fully-convertible subtree equal to a
      // group-by expression becomes a key reference.
      if (ctx.agg != nullptr && ContainsColumn(e) && !ContainsAggregate(e) &&
          !ContainsSubquery(e)) {
        ConvCtx plain = ctx.Plain();
        plain.rel = ctx.agg->pre_rel;
        auto attempt = Convert(ast, plain);
        if (attempt.ok()) {
          int g = ctx.agg->FindGroup(attempt.ValueOrDie()->ToString());
          if (g >= 0) {
            return ColIdx(g, attempt.ValueOrDie()->type);
          }
          // Not a group key: fall through and recurse so aggregates deeper
          // in the tree (there are none here) or keys inside it match.
        }
      }
      // Date +/- interval folding.
      if ((e.name == "+" || e.name == "-")) {
        const bool right_interval = e.args[1]->kind == AstKind::kIntervalLiteral;
        if (right_interval) {
          SIRIUS_ASSIGN_OR_RETURN(ExprPtr l, Convert(e.args[0], ctx));
          if (l->kind == expr::ExprKind::kLiteral &&
              l->type.id == TypeId::kDate32) {
            return FoldDateInterval(*l, *e.args[1], e.name == "+");
          }
          return Status::NotImplemented("interval arithmetic on non-literal date");
        }
      }
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr l, Convert(e.args[0], ctx));
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr r, Convert(e.args[1], ctx));
      expr::BinaryOp op;
      if (e.name == "+") {
        op = expr::BinaryOp::kAdd;
      } else if (e.name == "-") {
        op = expr::BinaryOp::kSub;
      } else if (e.name == "*") {
        op = expr::BinaryOp::kMul;
      } else if (e.name == "/") {
        op = expr::BinaryOp::kDiv;
      } else if (e.name == "=") {
        op = expr::BinaryOp::kEq;
      } else if (e.name == "<>") {
        op = expr::BinaryOp::kNe;
      } else if (e.name == "<") {
        op = expr::BinaryOp::kLt;
      } else if (e.name == "<=") {
        op = expr::BinaryOp::kLe;
      } else if (e.name == ">") {
        op = expr::BinaryOp::kGt;
      } else if (e.name == ">=") {
        op = expr::BinaryOp::kGe;
      } else if (e.name == "and") {
        op = expr::BinaryOp::kAnd;
      } else if (e.name == "or") {
        op = expr::BinaryOp::kOr;
      } else {
        return Status::BindError("unknown operator '" + e.name + "'");
      }
      return expr::Binary(op, std::move(l), std::move(r));
    }
    case AstKind::kUnaryMinus: {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr c, Convert(e.args[0], ctx));
      return expr::Negate(std::move(c));
    }
    case AstKind::kNot: {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr c, Convert(e.args[0], ctx));
      return expr::Not(std::move(c));
    }
    case AstKind::kIsNull: {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr c, Convert(e.args[0], ctx));
      return e.negated ? expr::IsNotNull(std::move(c)) : expr::IsNull(std::move(c));
    }
    case AstKind::kBetween: {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr v, Convert(e.args[0], ctx));
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr lo, Convert(e.args[1], ctx));
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr hi, Convert(e.args[2], ctx));
      ExprPtr v2 = v->Clone();
      ExprPtr both = expr::And(expr::Ge(std::move(v), std::move(lo)),
                               expr::Le(std::move(v2), std::move(hi)));
      return e.negated ? expr::Not(std::move(both)) : std::move(both);
    }
    case AstKind::kLike: {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr v, Convert(e.args[0], ctx));
      return e.negated ? expr::NotLike(std::move(v), e.text)
                       : expr::Like(std::move(v), e.text);
    }
    case AstKind::kInList: {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr v, Convert(e.args[0], ctx));
      std::vector<Scalar> items;
      for (size_t i = 1; i < e.args.size(); ++i) {
        SIRIUS_ASSIGN_OR_RETURN(ExprPtr item, Convert(e.args[i], ctx));
        if (item->kind != expr::ExprKind::kLiteral) {
          return Status::BindError("IN list items must be literals");
        }
        items.push_back(item->literal);
      }
      ExprPtr in = expr::InList(std::move(v), std::move(items));
      return e.negated ? expr::Not(std::move(in)) : std::move(in);
    }
    case AstKind::kSubstring: {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr v, Convert(e.args[0], ctx));
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr from, Convert(e.args[1], ctx));
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr len, Convert(e.args[2], ctx));
      if (from->kind != expr::ExprKind::kLiteral ||
          len->kind != expr::ExprKind::kLiteral) {
        return Status::NotImplemented("substring with non-literal bounds");
      }
      return expr::Substring(std::move(v), from->literal.int_value(),
                             len->literal.int_value());
    }
    case AstKind::kExtractYear: {
      // In agg context, extract(year from x) may itself be a group key.
      if (ctx.agg != nullptr) {
        ConvCtx plain = ctx.Plain();
        plain.rel = ctx.agg->pre_rel;
        auto attempt = Convert(ast, plain);
        if (attempt.ok()) {
          int g = ctx.agg->FindGroup(attempt.ValueOrDie()->ToString());
          if (g >= 0) return ColIdx(g, attempt.ValueOrDie()->type);
        }
      }
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr v, Convert(e.args[0], ctx));
      return expr::ExtractYear(std::move(v));
    }
    case AstKind::kCase: {
      std::vector<ExprPtr> parts;
      for (const auto& a : e.args) {
        SIRIUS_ASSIGN_OR_RETURN(ExprPtr p, Convert(a, ctx));
        parts.push_back(std::move(p));
      }
      return expr::CaseWhen(std::move(parts));
    }
    case AstKind::kFuncCall: {
      if (!IsAggName(e.name)) {
        // Registered scalar UDFs bind like built-ins (§3.4).
        if (expr::UdfRegistry::Global()->Contains(e.name)) {
          std::vector<ExprPtr> args;
          for (const auto& a : e.args) {
            SIRIUS_ASSIGN_OR_RETURN(ExprPtr arg, Convert(a, ctx));
            args.push_back(std::move(arg));
          }
          return expr::Udf(e.name, std::move(args));
        }
        return Status::BindError("unknown function '" + e.name + "'");
      }
      if (ctx.agg == nullptr) {
        return Status::BindError("aggregate '" + e.name +
                                 "' not allowed in this context");
      }
      SIRIUS_ASSIGN_OR_RETURN(AggFunc func, AggFuncOf(e));
      ExprPtr arg;
      DataType arg_type = format::Int64();
      std::string rendered = std::string(plan::AggFuncName(func)) + "(";
      if (func != AggFunc::kCountStar) {
        ConvCtx plain = ctx.Plain();
        plain.rel = ctx.agg->pre_rel;
        SIRIUS_ASSIGN_OR_RETURN(arg, Convert(e.args[0], plain));
        arg_type = arg->type;
        if ((func == AggFunc::kSum || func == AggFunc::kAvg) &&
            !arg_type.is_numeric()) {
          return Status::BindError(e.name + "() requires a numeric argument, got " +
                                   arg_type.ToString());
        }
        rendered += arg->ToString();
      }
      rendered += ")";
      DataType out = AggResultTypeOf(func, arg_type);
      int pos = ctx.agg->AddAgg(func, std::move(arg), rendered, out);
      return ColIdx(static_cast<int>(ctx.agg->group_exprs.size()) + pos, out);
    }
    case AstKind::kScalarSubquery: {
      if (ctx.replace_node == &e) return ctx.replacement;
      if (ctx.pending_subs != nullptr) {
        SIRIUS_ASSIGN_OR_RETURN(Rel sub, BindStatement(*e.subquery));
        if (sub.width() != 1) {
          return Status::BindError("scalar subquery must produce one column");
        }
        DataType t = sub.type_of(0);
        int idx = static_cast<int>(ctx.base_width + ctx.pending_subs->size());
        ctx.pending_subs->push_back(sub.plan);
        return ColIdx(idx, t);
      }
      return Status::NotImplemented("scalar subquery in this position");
    }
    case AstKind::kExists:
    case AstKind::kInSubquery:
      return Status::NotImplemented(
          "EXISTS/IN subquery must be a top-level WHERE conjunct");
  }
  return Status::Internal("unhandled AST node");
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

Result<PlanPtr> BindSelect(const SelectStmt& stmt, const CatalogInterface& catalog) {
  Binder binder(catalog);
  SIRIUS_ASSIGN_OR_RETURN(Rel rel, binder.BindStatement(stmt));
  return rel.plan;
}

Result<PlanPtr> SqlToPlan(const std::string& sql, const CatalogInterface& catalog) {
  SIRIUS_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSql(sql));
  return BindSelect(*stmt, catalog);
}

}  // namespace sirius::sql
