#include "sql/parser.h"

#include <set>

#include "sql/lexer.h"

namespace sirius::sql {

namespace {

/// Identifiers that terminate an implicit alias position.
const std::set<std::string>& ReservedWords() {
  static const std::set<std::string> kWords = {
      "where", "group",  "order", "having", "limit",  "on",    "join",
      "left",  "right",  "inner", "outer",  "select", "from",  "and",
      "or",    "not",    "union", "as",     "asc",    "desc",  "by",
      "with",  "exists", "in",    "like",   "between", "is",   "case",
      "when",  "then",   "else",  "end",    "cross",  "full",  "asof"};
  return kWords;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectPtr> ParseStatement() {
    SIRIUS_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSelect());
    MatchOp(";");
    if (!AtEnd()) return Fail("trailing tokens after statement");
    return stmt;
  }

 private:
  // ---------- token helpers ----------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && t.text == kw;
  }
  bool MatchKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) return Fail("expected '" + kw + "'");
    return Status::OK();
  }
  bool PeekOp(const std::string& op, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kOperator && t.text == op;
  }
  bool MatchOp(const std::string& op) {
    if (PeekOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectOp(const std::string& op) {
    if (!MatchOp(op)) return Fail("expected '" + op + "'");
    return Status::OK();
  }
  Status Fail(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " + std::to_string(Peek().offset) +
                              " (token '" + Peek().text + "')");
  }

  // ---------- statements ----------

  Result<SelectPtr> ParseSelect() {
    auto stmt = std::make_shared<SelectStmt>();
    if (MatchKeyword("with")) {
      for (;;) {
        if (Peek().kind != TokenKind::kIdentifier) return Fail("expected CTE name");
        CteDef cte;
        cte.name = Advance().text;
        MatchKeyword("as");
        SIRIUS_RETURN_NOT_OK(ExpectOp("("));
        SIRIUS_ASSIGN_OR_RETURN(cte.query, ParseSelect());
        SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
        stmt->ctes.push_back(std::move(cte));
        if (!MatchOp(",")) break;
      }
    }
    SIRIUS_RETURN_NOT_OK(ExpectKeyword("select"));
    if (MatchKeyword("distinct")) stmt->distinct = true;

    // Select list.
    for (;;) {
      SelectItem item;
      if (PeekOp("*")) {
        Advance();
        item.expr = nullptr;  // bare star
      } else {
        SIRIUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("as")) {
          if (Peek().kind != TokenKind::kIdentifier) return Fail("expected alias");
          item.alias = Advance().text;
        } else if (Peek().kind == TokenKind::kIdentifier &&
                   ReservedWords().count(Peek().text) == 0) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
      if (!MatchOp(",")) break;
    }

    if (MatchKeyword("from")) {
      for (;;) {
        SIRIUS_ASSIGN_OR_RETURN(FromItemPtr f, ParseFromItem());
        stmt->from.push_back(std::move(f));
        if (!MatchOp(",")) break;
      }
    }

    if (MatchKeyword("where")) {
      SIRIUS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (PeekKeyword("group")) {
      Advance();
      SIRIUS_RETURN_NOT_OK(ExpectKeyword("by"));
      for (;;) {
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!MatchOp(",")) break;
      }
    }
    if (MatchKeyword("having")) {
      SIRIUS_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (PeekKeyword("order")) {
      Advance();
      SIRIUS_RETURN_NOT_OK(ExpectKeyword("by"));
      for (;;) {
        OrderItem item;
        SIRIUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.descending = true;
        } else {
          MatchKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
        if (!MatchOp(",")) break;
      }
    }
    if (MatchKeyword("limit")) {
      if (Peek().kind != TokenKind::kInteger) return Fail("expected LIMIT count");
      stmt->limit = Advance().ival;
    }
    return stmt;
  }

  Result<FromItemPtr> ParseFromPrimary() {
    auto item = std::make_shared<FromItem>();
    if (MatchOp("(")) {
      item->kind = FromKind::kSubquery;
      SIRIUS_ASSIGN_OR_RETURN(item->subquery, ParseSelect());
      SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
    } else {
      if (Peek().kind != TokenKind::kIdentifier) return Fail("expected table name");
      item->kind = FromKind::kTable;
      item->table_name = Advance().text;
      item->alias = item->table_name;
    }
    if (MatchKeyword("as")) {
      if (Peek().kind != TokenKind::kIdentifier) return Fail("expected alias");
      item->alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier &&
               ReservedWords().count(Peek().text) == 0) {
      item->alias = Advance().text;
    }
    if (item->kind == FromKind::kSubquery && item->alias.empty()) {
      item->alias = "__subquery";
    }
    return item;
  }

  Result<FromItemPtr> ParseFromItem() {
    SIRIUS_ASSIGN_OR_RETURN(FromItemPtr left, ParseFromPrimary());
    for (;;) {
      bool left_outer = false;
      bool asof = false;
      if (PeekKeyword("asof")) {
        Advance();
        SIRIUS_RETURN_NOT_OK(ExpectKeyword("join"));
        asof = true;
      } else if (PeekKeyword("left")) {
        Advance();
        MatchKeyword("outer");
        SIRIUS_RETURN_NOT_OK(ExpectKeyword("join"));
        left_outer = true;
      } else if (PeekKeyword("inner")) {
        Advance();
        SIRIUS_RETURN_NOT_OK(ExpectKeyword("join"));
      } else if (PeekKeyword("join")) {
        Advance();
      } else {
        return left;
      }
      SIRIUS_ASSIGN_OR_RETURN(FromItemPtr right, ParseFromPrimary());
      SIRIUS_RETURN_NOT_OK(ExpectKeyword("on"));
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr on, ParseExpr());
      auto join = std::make_shared<FromItem>();
      join->kind = FromKind::kJoin;
      join->left = std::move(left);
      join->right = std::move(right);
      join->left_outer = left_outer;
      join->asof = asof;
      join->on = std::move(on);
      left = std::move(join);
    }
  }

  // ---------- expressions ----------

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    SIRIUS_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    while (MatchKeyword("or")) {
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
      left = MakeBinary("or", std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    SIRIUS_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    while (MatchKeyword("and")) {
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
      left = MakeBinary("and", std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (PeekKeyword("not") && !PeekKeyword("exists", 1)) {
      Advance();
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kNot;
      e->args = {std::move(inner)};
      return e;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    SIRIUS_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
    // Negated postfix forms: NOT IN / NOT LIKE / NOT BETWEEN.
    bool negated = false;
    if (PeekKeyword("not") &&
        (PeekKeyword("in", 1) || PeekKeyword("like", 1) || PeekKeyword("between", 1))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("between")) {
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr low, ParseAdditive());
      SIRIUS_RETURN_NOT_OK(ExpectKeyword("and"));
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr high, ParseAdditive());
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kBetween;
      e->negated = negated;
      e->args = {std::move(left), std::move(low), std::move(high)};
      return e;
    }
    if (MatchKeyword("like")) {
      if (Peek().kind != TokenKind::kString) return Fail("expected LIKE pattern");
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kLike;
      e->negated = negated;
      e->text = Advance().text;
      e->args = {std::move(left)};
      return e;
    }
    if (MatchKeyword("in")) {
      SIRIUS_RETURN_NOT_OK(ExpectOp("("));
      if (PeekKeyword("select") || PeekKeyword("with")) {
        auto e = std::make_shared<AstExpr>();
        e->kind = AstKind::kInSubquery;
        e->negated = negated;
        SIRIUS_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
        SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
        e->args = {std::move(left)};
        return e;
      }
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kInList;
      e->negated = negated;
      e->args.push_back(std::move(left));
      for (;;) {
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr item, ParseAdditive());
        e->args.push_back(std::move(item));
        if (!MatchOp(",")) break;
      }
      SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    if (MatchKeyword("is")) {
      bool is_not = MatchKeyword("not");
      SIRIUS_RETURN_NOT_OK(ExpectKeyword("null"));
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kIsNull;
      e->negated = is_not;
      e->args = {std::move(left)};
      return e;
    }
    if (negated) return Fail("expected IN/LIKE/BETWEEN after NOT");
    static const char* kCmpOps[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kCmpOps) {
      if (PeekOp(op)) {
        Advance();
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<AstExprPtr> ParseAdditive() {
    SIRIUS_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
    for (;;) {
      if (PeekOp("+") || PeekOp("-")) {
        std::string op = Advance().text;
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
        left = MakeBinary(op, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<AstExprPtr> ParseMultiplicative() {
    SIRIUS_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
    for (;;) {
      if (PeekOp("*") || PeekOp("/")) {
        std::string op = Advance().text;
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
        left = MakeBinary(op, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<AstExprPtr> ParseUnary() {
    if (MatchOp("-")) {
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr inner, ParseUnary());
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kUnaryMinus;
      e->args = {std::move(inner)};
      return e;
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& t = Peek();
    // Parenthesized expression or scalar subquery.
    if (PeekOp("(")) {
      Advance();
      if (PeekKeyword("select") || PeekKeyword("with")) {
        auto e = std::make_shared<AstExpr>();
        e->kind = AstKind::kScalarSubquery;
        SIRIUS_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
        SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
        return e;
      }
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
      return inner;
    }
    if (t.kind == TokenKind::kInteger) {
      Advance();
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kIntLiteral;
      e->ival = t.ival;
      return e;
    }
    if (t.kind == TokenKind::kDecimal) {
      Advance();
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kDecimalLiteral;
      e->text = t.text;
      return e;
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kStringLiteral;
      e->text = t.text;
      return e;
    }
    if (t.kind != TokenKind::kIdentifier) return Fail("expected expression");

    // Keyword-introduced forms.
    if (t.text == "date" && Peek(1).kind == TokenKind::kString) {
      Advance();
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kDateLiteral;
      e->text = Advance().text;
      return e;
    }
    if (t.text == "interval") {
      Advance();
      if (Peek().kind != TokenKind::kString && Peek().kind != TokenKind::kInteger) {
        return Fail("expected interval quantity");
      }
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kIntervalLiteral;
      const Token& q = Advance();
      e->ival = q.kind == TokenKind::kInteger ? q.ival : std::stoll(q.text);
      if (Peek().kind != TokenKind::kIdentifier) return Fail("expected interval unit");
      e->text = Advance().text;
      if (!e->text.empty() && e->text.back() == 's') e->text.pop_back();
      if (e->text != "day" && e->text != "month" && e->text != "year") {
        return Fail("unsupported interval unit '" + e->text + "'");
      }
      return e;
    }
    if (t.text == "case") {
      Advance();
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kCase;
      while (MatchKeyword("when")) {
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
        SIRIUS_RETURN_NOT_OK(ExpectKeyword("then"));
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr val, ParseExpr());
        e->args.push_back(std::move(cond));
        e->args.push_back(std::move(val));
      }
      if (MatchKeyword("else")) {
        SIRIUS_ASSIGN_OR_RETURN(AstExprPtr val, ParseExpr());
        e->args.push_back(std::move(val));
      }
      SIRIUS_RETURN_NOT_OK(ExpectKeyword("end"));
      return e;
    }
    if (t.text == "exists" || (t.text == "not" && PeekKeyword("exists", 1))) {
      bool negated = t.text == "not";
      Advance();
      if (negated) SIRIUS_RETURN_NOT_OK(ExpectKeyword("exists"));
      SIRIUS_RETURN_NOT_OK(ExpectOp("("));
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kExists;
      e->negated = negated;
      SIRIUS_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    if (t.text == "substring" && PeekOp("(", 1)) {
      Advance();
      Advance();  // (
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kSubstring;
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr value, ParseExpr());
      AstExprPtr from, length;
      if (MatchKeyword("from")) {
        SIRIUS_ASSIGN_OR_RETURN(from, ParseExpr());
        SIRIUS_RETURN_NOT_OK(ExpectKeyword("for"));
        SIRIUS_ASSIGN_OR_RETURN(length, ParseExpr());
      } else {
        SIRIUS_RETURN_NOT_OK(ExpectOp(","));
        SIRIUS_ASSIGN_OR_RETURN(from, ParseExpr());
        SIRIUS_RETURN_NOT_OK(ExpectOp(","));
        SIRIUS_ASSIGN_OR_RETURN(length, ParseExpr());
      }
      SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
      e->args = {std::move(value), std::move(from), std::move(length)};
      return e;
    }
    if (t.text == "extract" && PeekOp("(", 1)) {
      Advance();
      Advance();  // (
      if (!MatchKeyword("year")) return Fail("only extract(year ...) supported");
      SIRIUS_RETURN_NOT_OK(ExpectKeyword("from"));
      SIRIUS_ASSIGN_OR_RETURN(AstExprPtr value, ParseExpr());
      SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kExtractYear;
      e->args = {std::move(value)};
      return e;
    }
    // Function call.
    if (PeekOp("(", 1)) {
      auto e = std::make_shared<AstExpr>();
      e->kind = AstKind::kFuncCall;
      e->name = Advance().text;
      Advance();  // (
      if (PeekOp("*")) {
        Advance();
        auto star = std::make_shared<AstExpr>();
        star->kind = AstKind::kStar;
        e->args.push_back(std::move(star));
      } else if (!PeekOp(")")) {
        if (MatchKeyword("distinct")) e->distinct = true;
        for (;;) {
          SIRIUS_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
          if (!MatchOp(",")) break;
        }
      }
      SIRIUS_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    // Column reference: ident or ident.ident.
    auto e = std::make_shared<AstExpr>();
    e->kind = AstKind::kColumn;
    e->text = Advance().text;
    if (PeekOp(".") && Peek(1).kind == TokenKind::kIdentifier) {
      Advance();
      e->name = e->text;           // qualifier
      e->text = Advance().text;    // column
    }
    return e;
  }

  static AstExprPtr MakeBinary(std::string op, AstExprPtr l, AstExprPtr r) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstKind::kBinary;
    e->name = std::move(op);
    e->args = {std::move(l), std::move(r)};
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectPtr> ParseSql(const std::string& sql) {
  SIRIUS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace sirius::sql
