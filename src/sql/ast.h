// Parsed SQL abstract syntax tree (pre-binding).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sirius::sql {

struct SelectStmt;
using SelectPtr = std::shared_ptr<SelectStmt>;

enum class AstKind : uint8_t {
  kColumn,        ///< possibly qualified: name or alias.name
  kIntLiteral,
  kDecimalLiteral,  ///< textual, scale derived from digits after the point
  kStringLiteral,
  kDateLiteral,     ///< date 'YYYY-MM-DD'
  kIntervalLiteral, ///< interval 'n' day|month|year
  kStar,            ///< * (count(*) argument)
  kBinary,          ///< arithmetic/comparison/logic via op string
  kUnaryMinus,
  kNot,
  kIsNull,          ///< negated => IS NOT NULL
  kBetween,         ///< args: value, low, high
  kLike,            ///< args: value; pattern in `text`; negated => NOT LIKE
  kInList,          ///< args[0] = value, args[1..] = list items
  kInSubquery,      ///< args[0] = value; `subquery`
  kExists,          ///< `subquery`; negated => NOT EXISTS
  kScalarSubquery,  ///< `subquery` used as a scalar value
  kFuncCall,        ///< name(args...), `distinct` for count(distinct x)
  kCase,            ///< args: when1, then1, ..., [else]
  kSubstring,       ///< substring(x from a for b): args: x, a, b
  kExtractYear,     ///< extract(year from x): args: x
};

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

/// \brief One parsed expression node.
struct AstExpr {
  AstKind kind = AstKind::kIntLiteral;
  /// kColumn: qualifier ("" if none); kFuncCall: function name; kBinary: op
  /// ("+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "and", "or").
  std::string name;
  /// kColumn: column name; kStringLiteral/kDecimalLiteral/kDateLiteral:
  /// text; kLike: pattern; kIntervalLiteral: unit (day/month/year).
  std::string text;
  int64_t ival = 0;  ///< kIntLiteral / kIntervalLiteral count
  bool negated = false;
  bool distinct = false;
  std::vector<AstExprPtr> args;
  SelectPtr subquery;
};

/// \brief One item of the SELECT list.
struct SelectItem {
  AstExprPtr expr;   ///< null for bare '*'
  std::string alias; ///< empty if none
};

enum class FromKind : uint8_t { kTable, kSubquery, kJoin };

struct FromItem;
using FromItemPtr = std::shared_ptr<FromItem>;

/// \brief One FROM-clause relation: base table, derived table, or an
/// explicit JOIN (only LEFT OUTER and INNER appear in TPC-H).
struct FromItem {
  FromKind kind = FromKind::kTable;
  std::string table_name;  ///< kTable
  std::string alias;       ///< binding alias ("" => table name)
  SelectPtr subquery;      ///< kSubquery
  // kJoin
  FromItemPtr left;
  FromItemPtr right;
  bool left_outer = false;
  bool asof = false;  ///< ASOF JOIN (latest right row with r.on <= l.on)
  AstExprPtr on;
};

struct OrderItem {
  AstExprPtr expr;
  bool descending = false;
};

/// \brief A WITH-clause entry (non-recursive CTE).
struct CteDef {
  std::string name;
  SelectPtr query;
};

/// \brief A parsed SELECT statement.
struct SelectStmt {
  std::vector<CteDef> ctes;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<FromItemPtr> from;
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
};

}  // namespace sirius::sql
