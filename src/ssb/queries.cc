#include "ssb/queries.h"

#include <array>

namespace sirius::ssb {

namespace {

// Flight 1 restricts the fact table by date + measure predicates (no
// group-by); flight 2 fans out over part x supplier with a string group-by;
// flight 3 is the deep customer x supplier x date tree grouped on
// (padded) city/nation strings; flight 4 joins all four dimensions into a
// profit rollup. Money columns are plain Int64, so every aggregate is exact
// integer arithmetic on both devices.
const std::array<std::string, 13> kQueries = {
    // q1.1: revenue from one year of discounted small orders
    R"(select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, dwdate
where lo_orderdate = d_datekey
  and d_year = 1993
  and lo_discount between 1 and 3
  and lo_quantity < 25)",

    // q1.2: one month, mid-range discounts
    R"(select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, dwdate
where lo_orderdate = d_datekey
  and d_yearmonthnum = 199401
  and lo_discount between 4 and 6
  and lo_quantity between 26 and 35)",

    // q1.3: one week, narrow discount band
    R"(select sum(lo_extendedprice * lo_discount) as revenue
from lineorder, dwdate
where lo_orderdate = d_datekey
  and d_weeknuminyear = 6
  and d_year = 1994
  and lo_discount between 5 and 7
  and lo_quantity between 26 and 35)",

    // q2.1: revenue by year and brand for one category / region
    R"(select sum(lo_revenue) as revenue, d_year, p_brand1
from lineorder, dwdate, ssb_part, ssb_supplier
where lo_orderdate = d_datekey
  and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey
  and p_category = 'MFGR#12'
  and s_region = 'AMERICA'
group by d_year, p_brand1
order by d_year, p_brand1)",

    // q2.2: brand range (range form so the padded variant matches)
    R"(select sum(lo_revenue) as revenue, d_year, p_brand1
from lineorder, dwdate, ssb_part, ssb_supplier
where lo_orderdate = d_datekey
  and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey
  and p_brand1 >= 'MFGR#2221' and p_brand1 < 'MFGR#2228~'
  and s_region = 'ASIA'
group by d_year, p_brand1
order by d_year, p_brand1)",

    // q2.3: single brand (range form so the padded variant matches)
    R"(select sum(lo_revenue) as revenue, d_year, p_brand1
from lineorder, dwdate, ssb_part, ssb_supplier
where lo_orderdate = d_datekey
  and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey
  and p_brand1 >= 'MFGR#2239' and p_brand1 < 'MFGR#2239~'
  and s_region = 'EUROPE'
group by d_year, p_brand1
order by d_year, p_brand1)",

    // q3.1: revenue by customer/supplier nation within one region
    R"(select c_nation, s_nation, d_year, sum(lo_revenue) as revenue
from ssb_customer, lineorder, ssb_supplier, dwdate
where lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey
  and c_region = 'ASIA'
  and s_region = 'ASIA'
  and d_year >= 1992 and d_year <= 1997
group by c_nation, s_nation, d_year
order by d_year asc, revenue desc)",

    // q3.2: city-level drill-down within one nation
    R"(select c_city, s_city, d_year, sum(lo_revenue) as revenue
from ssb_customer, lineorder, ssb_supplier, dwdate
where lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey
  and c_nation = 'UNITED STATES'
  and s_nation = 'UNITED STATES'
  and d_year >= 1992 and d_year <= 1997
group by c_city, s_city, d_year
order by d_year asc, revenue desc)",

    // q3.3: two specific cities (range form so the padded variant matches)
    R"(select c_city, s_city, d_year, sum(lo_revenue) as revenue
from ssb_customer, lineorder, ssb_supplier, dwdate
where lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey
  and (c_city >= 'UNITED KI1' and c_city < 'UNITED KI1~'
    or c_city >= 'UNITED KI5' and c_city < 'UNITED KI5~')
  and (s_city >= 'UNITED KI1' and s_city < 'UNITED KI1~'
    or s_city >= 'UNITED KI5' and s_city < 'UNITED KI5~')
  and d_year >= 1992 and d_year <= 1997
group by c_city, s_city, d_year
order by d_year asc, revenue desc)",

    // q3.4: two cities in one month
    R"(select c_city, s_city, d_year, sum(lo_revenue) as revenue
from ssb_customer, lineorder, ssb_supplier, dwdate
where lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey
  and (c_city >= 'UNITED KI1' and c_city < 'UNITED KI1~'
    or c_city >= 'UNITED KI5' and c_city < 'UNITED KI5~')
  and (s_city >= 'UNITED KI1' and s_city < 'UNITED KI1~'
    or s_city >= 'UNITED KI5' and s_city < 'UNITED KI5~')
  and d_yearmonth = 'Dec1997'
group by c_city, s_city, d_year
order by d_year asc, revenue desc)",

    // q4.1: profit by year and customer nation, two manufacturers
    R"(select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit
from dwdate, ssb_customer, ssb_supplier, ssb_part, lineorder
where lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and lo_partkey = p_partkey
  and lo_orderdate = d_datekey
  and c_region = 'AMERICA'
  and s_region = 'AMERICA'
  and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
group by d_year, c_nation
order by d_year, c_nation)",

    // q4.2: profit drill-down to supplier nation x category, two years
    R"(select d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) as profit
from dwdate, ssb_customer, ssb_supplier, ssb_part, lineorder
where lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and lo_partkey = p_partkey
  and lo_orderdate = d_datekey
  and c_region = 'AMERICA'
  and s_region = 'AMERICA'
  and (d_year = 1997 or d_year = 1998)
  and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
group by d_year, s_nation, p_category
order by d_year, s_nation, p_category)",

    // q4.3: profit drill-down to supplier city x brand, one category
    R"(select d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) as profit
from dwdate, ssb_customer, ssb_supplier, ssb_part, lineorder
where lo_custkey = c_custkey
  and lo_suppkey = s_suppkey
  and lo_partkey = p_partkey
  and lo_orderdate = d_datekey
  and s_nation = 'UNITED STATES'
  and (d_year = 1997 or d_year = 1998)
  and p_category = 'MFGR#14'
group by d_year, s_city, p_brand1
order by d_year, s_city, p_brand1)",
};

const std::array<std::string, 13> kNames = {
    "q1.1", "q1.2", "q1.3", "q2.1", "q2.2", "q2.3", "q3.1",
    "q3.2", "q3.3", "q3.4", "q4.1", "q4.2", "q4.3"};

}  // namespace

const std::string& Query(int q) {
  SIRIUS_CHECK(q >= 1 && q <= NumQueries());
  return kQueries[static_cast<size_t>(q - 1)];
}

const std::string& QueryName(int q) {
  SIRIUS_CHECK(q >= 1 && q <= NumQueries());
  return kNames[static_cast<size_t>(q - 1)];
}

int NumQueries() { return 13; }

Status LoadSsb(host::Database* db, const SsbOptions& options) {
  for (const auto& name : TableNames()) {
    SIRIUS_ASSIGN_OR_RETURN(format::TablePtr table,
                            GenerateTable(name, options));
    SIRIUS_RETURN_NOT_OK(db->CreateTable(name, std::move(table)));
  }
  return Status::OK();
}

}  // namespace sirius::ssb
