#include "ssb/dbgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "format/builder.h"

namespace sirius::ssb {

using format::ColumnBuilder;
using format::DataType;
using format::Schema;
using format::TablePtr;

namespace {

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64-based, seeded per table; same construction
// as src/tpch/dbgen.cc so both families share one portability story)
// ---------------------------------------------------------------------------

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ULL + 1) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform in [0, 1) from the 53 high bits (bit-exact across platforms).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  template <typename T>
  const T& Pick(const std::vector<T>& list) {
    return list[Next() % list.size()];
  }

 private:
  uint64_t state_;
};

/// Draws ranks 1..n with probability proportional to 1/rank^s (s = 0 is
/// uniform). The CDF is precomputed once per column; a draw is one uniform
/// plus a binary search, so generation stays O(rows log n) at any skew.
class ZipfPicker {
 public:
  ZipfPicker(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double total = 0;
    for (int64_t r = 1; r <= n; ++r) {
      total += s == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(r), s);
      cdf_[static_cast<size_t>(r - 1)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  /// A key in [1, n]; rank 1 (key 1) is the hottest under skew.
  int64_t Pick(Rng& rng) const {
    const double u = rng.Uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int64_t>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

// ---------------------------------------------------------------------------
// Value domains
// ---------------------------------------------------------------------------

const std::vector<std::string>& Regions() {
  static const std::vector<std::string> v = {"AFRICA", "AMERICA", "ASIA",
                                             "EUROPE", "MIDDLE EAST"};
  return v;
}

struct NationDef {
  const char* name;
  int region;
};

const std::vector<NationDef>& Nations() {
  static const std::vector<NationDef> v = {
      {"ALGERIA", 0},        {"ARGENTINA", 1},  {"BRAZIL", 1},
      {"CANADA", 1},         {"EGYPT", 4},      {"ETHIOPIA", 0},
      {"FRANCE", 3},         {"GERMANY", 3},    {"INDIA", 2},
      {"INDONESIA", 2},      {"IRAN", 4},       {"IRAQ", 4},
      {"JAPAN", 2},          {"JORDAN", 4},     {"KENYA", 0},
      {"MOROCCO", 0},        {"MOZAMBIQUE", 0}, {"PERU", 1},
      {"CHINA", 2},          {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
      {"VIETNAM", 2},        {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
      {"UNITED STATES", 1}};
  return v;
}

const std::vector<std::string>& Segments() {
  static const std::vector<std::string> v = {"AUTOMOBILE", "BUILDING",
                                             "FURNITURE", "MACHINERY",
                                             "HOUSEHOLD"};
  return v;
}
const std::vector<std::string>& Priorities() {
  static const std::vector<std::string> v = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                             "4-NOT SPECIFIED", "5-LOW"};
  return v;
}
const std::vector<std::string>& ShipModes() {
  static const std::vector<std::string> v = {"REG AIR", "AIR", "RAIL", "SHIP",
                                             "TRUCK", "MAIL", "FOB"};
  return v;
}
const std::vector<std::string>& Colors() {
  static const std::vector<std::string> v = {
      "almond", "antique", "aquamarine", "azure",  "beige",   "bisque",
      "black",  "blanched", "blue",      "blush",  "brown",   "burlywood",
      "coral",  "cornsilk", "cream",     "cyan",   "dark",    "deep",
      "dim",    "drab",     "firebrick", "floral", "forest",  "frosted",
      "ghost",  "goldenrod", "green",    "grey",   "honeydew", "hot",
      "indian", "ivory",    "khaki",     "lace",   "lavender", "lawn",
      "lemon",  "light",    "lime",      "linen",  "magenta", "maroon",
      "medium", "metallic", "midnight",  "mint",   "misty",   "moccasin",
      "navajo", "navy",     "olive",     "orange", "orchid",  "pale",
      "papaya", "peach",    "peru",      "pink",   "plum",    "powder",
      "puff",   "purple",   "red",       "rose",   "rosy",    "royal",
      "saddle", "salmon",   "sandy",     "seashell", "sienna", "sky",
      "slate",  "smoke",    "snow",      "spring", "steel",   "tan",
      "thistle", "tomato",  "turquoise", "violet", "wheat",   "white",
      "yellow"};
  return v;
}
const std::vector<std::string>& TypeSyllable1() {
  static const std::vector<std::string> v = {"STANDARD", "SMALL", "MEDIUM",
                                             "LARGE", "ECONOMY", "PROMO"};
  return v;
}
const std::vector<std::string>& TypeSyllable2() {
  static const std::vector<std::string> v = {"ANODIZED", "BURNISHED", "PLATED",
                                             "POLISHED", "BRUSHED"};
  return v;
}
const std::vector<std::string>& TypeSyllable3() {
  static const std::vector<std::string> v = {"TIN", "NICKEL", "BRASS", "STEEL",
                                             "COPPER"};
  return v;
}
const std::vector<std::string>& Container1() {
  static const std::vector<std::string> v = {"SM", "LG", "MED", "JUMBO",
                                             "WRAP"};
  return v;
}
const std::vector<std::string>& Container2() {
  static const std::vector<std::string> v = {"CASE", "BOX", "BAG", "JAR",
                                             "PKG", "PACK", "CAN", "DRUM"};
  return v;
}
const std::vector<std::string>& Seasons() {
  static const std::vector<std::string> v = {"Winter", "Spring", "Summer",
                                             "Fall", "Christmas"};
  return v;
}
const std::vector<std::string>& AddressWords() {
  static const std::vector<std::string> v = {
      "oak",   "elm",    "maple", "cedar", "pine",  "birch",
      "ash",   "willow", "haven", "grove", "ridge", "vale"};
  return v;
}

const char* const kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                     "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
const char* const kDayNames[7] = {"Sunday",   "Monday", "Tuesday", "Wednesday",
                                  "Thursday", "Friday", "Saturday"};

std::string PadKeyName(const char* prefix, int64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

std::string Phone(Rng& rng, int64_t nationkey) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(nationkey + 10),
                static_cast<int>(rng.Range(100, 999)),
                static_cast<int>(rng.Range(100, 999)),
                static_cast<int>(rng.Range(1000, 9999)));
  return buf;
}

std::string Address(Rng& rng) {
  std::string out = std::to_string(rng.Range(1, 9999));
  for (int i = 0; i < 2; ++i) out += " " + rng.Pick(AddressWords());
  return out;
}

/// SSB city: the nation name truncated to nine characters plus a digit
/// ("UNITED KI1"). 10 cities per nation.
std::string City(const std::string& nation, int64_t city_digit) {
  std::string base = nation.substr(0, 9);
  return base + static_cast<char>('0' + city_digit);
}

// ---------------------------------------------------------------------------
// String-heavy padding
// ---------------------------------------------------------------------------

/// Deterministic lowercase suffix derived from the value itself, so every
/// occurrence of one logical value pads identically (group-by cardinalities
/// match the unpadded variant exactly). Lowercase sorts after the
/// uppercase/digit domains, so a padded value stays inside any
/// [value, next-prefix) range predicate.
std::string PadValue(const std::string& value, int pad) {
  if (pad <= 0) return value;
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : value) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  const int extra = static_cast<int>(h % static_cast<uint64_t>(pad / 2 + 1));
  std::string out = value;
  out.reserve(value.size() + static_cast<size_t>(pad + extra));
  for (int i = 0; i < pad + extra; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    out.push_back(static_cast<char>('a' + (h >> 33) % 26));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Calendar (1992-01-01 .. 1998-12-31)
// ---------------------------------------------------------------------------

constexpr int kFirstYear = 1992;
constexpr int kLastYear = 1998;

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int y, int m) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return m == 2 && IsLeap(y) ? 29 : kDays[m - 1];
}

struct CivilDate {
  int year;
  int month;  ///< 1-12
  int day;    ///< 1-31
  int day_of_year;  ///< 1-based
};

/// All days of the SSB calendar in order, built once.
const std::vector<CivilDate>& Calendar() {
  static const std::vector<CivilDate> v = [] {
    std::vector<CivilDate> days;
    for (int y = kFirstYear; y <= kLastYear; ++y) {
      int doy = 0;
      for (int m = 1; m <= 12; ++m) {
        for (int d = 1; d <= DaysInMonth(y, m); ++d) {
          ++doy;
          days.push_back(CivilDate{y, m, d, doy});
        }
      }
    }
    return days;
  }();
  return v;
}

int64_t DateKey(const CivilDate& c) {
  return static_cast<int64_t>(c.year) * 10000 + c.month * 100 + c.day;
}

// ---------------------------------------------------------------------------
// Cardinalities
// ---------------------------------------------------------------------------

struct Cardinalities {
  int64_t customers;
  int64_t suppliers;
  int64_t parts;
  int64_t orders;  ///< lineorder has 1-7 lines per order (avg 4)
};

Cardinalities CardsFor(double sf) {
  Cardinalities c;
  c.customers = std::max<int64_t>(50, static_cast<int64_t>(30000 * sf));
  c.suppliers = std::max<int64_t>(40, static_cast<int64_t>(2000 * sf));
  c.parts = std::max<int64_t>(200, static_cast<int64_t>(200000 * sf));
  c.orders = std::max<int64_t>(100, static_cast<int64_t>(1500000 * sf));
  return c;
}

uint64_t TableSeed(const SsbOptions& o, uint64_t table_index) {
  return o.seed * 0x9e3779b97f4a7c15ULL + table_index * 131 + 17;
}

int64_t PriceCents(int64_t partkey) {
  return 90000 + ((partkey / 10) % 20001) + 100 * (partkey % 1000);
}

// ---------------------------------------------------------------------------
// Table generators
// ---------------------------------------------------------------------------

Result<TablePtr> GenCustomer(const SsbOptions& o, const Cardinalities& cards) {
  format::TableBuilder b(CustomerSchema());
  Rng rng(TableSeed(o, 1));
  const int pad = o.string_heavy ? o.string_pad : 0;
  for (int64_t key = 1; key <= cards.customers; ++key) {
    const NationDef& nation = rng.Pick(Nations());
    const int64_t nationkey =
        static_cast<int64_t>(&nation - Nations().data());
    b.column(0).AppendInt(key);
    b.column(1).AppendString(PadValue(PadKeyName("Customer", key), pad));
    b.column(2).AppendString(PadValue(Address(rng), pad));
    b.column(3).AppendString(PadValue(City(nation.name, rng.Range(0, 9)), pad));
    b.column(4).AppendString(nation.name);
    b.column(5).AppendString(Regions()[static_cast<size_t>(nation.region)]);
    b.column(6).AppendString(Phone(rng, nationkey));
    b.column(7).AppendString(rng.Pick(Segments()));
  }
  return b.Finish();
}

Result<TablePtr> GenSupplier(const SsbOptions& o, const Cardinalities& cards) {
  format::TableBuilder b(SupplierSchema());
  Rng rng(TableSeed(o, 2));
  const int pad = o.string_heavy ? o.string_pad : 0;
  for (int64_t key = 1; key <= cards.suppliers; ++key) {
    // Cycle nations so every nation keeps suppliers at tiny scale factors
    // (the flight-3/4 nation predicates stay non-empty); the city digit
    // stays random.
    const NationDef& nation =
        Nations()[static_cast<size_t>((key - 1) % Nations().size())];
    const int64_t nationkey = (key - 1) % static_cast<int64_t>(Nations().size());
    b.column(0).AppendInt(key);
    b.column(1).AppendString(PadValue(PadKeyName("Supplier", key), pad));
    b.column(2).AppendString(PadValue(Address(rng), pad));
    b.column(3).AppendString(PadValue(City(nation.name, rng.Range(0, 9)), pad));
    b.column(4).AppendString(nation.name);
    b.column(5).AppendString(Regions()[static_cast<size_t>(nation.region)]);
    b.column(6).AppendString(Phone(rng, nationkey));
  }
  return b.Finish();
}

Result<TablePtr> GenPart(const SsbOptions& o, const Cardinalities& cards) {
  format::TableBuilder b(PartSchema());
  Rng rng(TableSeed(o, 3));
  const int pad = o.string_heavy ? o.string_pad : 0;
  for (int64_t key = 1; key <= cards.parts; ++key) {
    const int64_t mfgr = rng.Range(1, 5);
    const int64_t category = rng.Range(1, 5);
    const int64_t brand = rng.Range(1, 40);
    const std::string mfgr_s = "MFGR#" + std::to_string(mfgr);
    const std::string category_s = mfgr_s + std::to_string(category);
    const std::string brand_s = category_s + std::to_string(brand);
    b.column(0).AppendInt(key);
    b.column(1).AppendString(
        PadValue(rng.Pick(Colors()) + " " + rng.Pick(Colors()), pad));
    b.column(2).AppendString(mfgr_s);
    b.column(3).AppendString(category_s);
    b.column(4).AppendString(PadValue(brand_s, pad));
    b.column(5).AppendString(rng.Pick(Colors()));
    b.column(6).AppendString(rng.Pick(TypeSyllable1()) + " " +
                             rng.Pick(TypeSyllable2()) + " " +
                             rng.Pick(TypeSyllable3()));
    b.column(7).AppendInt(rng.Range(1, 50));
    b.column(8).AppendString(rng.Pick(Container1()) + " " +
                             rng.Pick(Container2()));
  }
  return b.Finish();
}

Result<TablePtr> GenDate() {
  format::TableBuilder b(DateSchema());
  char buf[16];
  for (const CivilDate& c : Calendar()) {
    // Day of week from the civil date (1992-01-01 was a Wednesday).
    const int64_t key = DateKey(c);
    const int64_t epoch_days = format::DaysFromCivil(c.year, c.month, c.day);
    const int dow = static_cast<int>((epoch_days % 7 + 7 + 4) % 7);
    b.column(0).AppendInt(key);
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
    b.column(1).AppendString(buf);
    b.column(2).AppendString(kDayNames[dow]);
    b.column(3).AppendString(kMonthNames[c.month - 1]);
    b.column(4).AppendInt(c.year);
    b.column(5).AppendInt(static_cast<int64_t>(c.year) * 100 + c.month);
    b.column(6).AppendString(std::string(kMonthNames[c.month - 1]) +
                             std::to_string(c.year));
    b.column(7).AppendInt(c.day_of_year);
    b.column(8).AppendInt((c.day_of_year - 1) / 7 + 1);
    b.column(9).AppendString(
        c.month == 12 ? Seasons()[4]
                      : Seasons()[static_cast<size_t>((c.month % 12) / 3)]);
  }
  return b.Finish();
}

Result<TablePtr> GenLineorder(const SsbOptions& o, const Cardinalities& cards) {
  format::TableBuilder b(LineorderSchema());
  Rng rng(TableSeed(o, 4));
  const ZipfPicker cust_pick(cards.customers, o.skew);
  const ZipfPicker part_pick(cards.parts, o.skew);
  const ZipfPicker supp_pick(cards.suppliers, o.skew);
  const int64_t num_days = static_cast<int64_t>(Calendar().size());
  for (int64_t i = 1; i <= cards.orders; ++i) {
    // Sparse order keys like TPC-H (8 per 32-key block).
    const int64_t key = (i - 1) / 8 * 32 + (i - 1) % 8 + 1;
    const int64_t lines = rng.Range(1, 7);
    const int64_t custkey = cust_pick.Pick(rng);
    const int64_t order_day = rng.Range(0, num_days - 1);
    const int64_t orderdate = DateKey(Calendar()[static_cast<size_t>(order_day)]);
    const std::string& priority = rng.Pick(Priorities());
    // The order total spans all of the order's lines, so the lines are
    // buffered, summed, and only then appended.
    struct Line {
      int64_t partkey, suppkey, quantity, extended, discount, revenue;
      int64_t commitdate;
      const std::string* shipmode;
    };
    std::vector<Line> order_lines;
    order_lines.reserve(static_cast<size_t>(lines));
    int64_t ordtotal = 0;
    for (int64_t ln = 1; ln <= lines; ++ln) {
      Line l;
      l.partkey = part_pick.Pick(rng);
      l.suppkey = supp_pick.Pick(rng);
      l.quantity = rng.Range(1, 50);
      l.extended = l.quantity * PriceCents(l.partkey) / 100;
      l.discount = rng.Range(0, 10);
      l.revenue = l.extended * (100 - l.discount) / 100;
      const int64_t commit_day =
          std::min<int64_t>(order_day + rng.Range(30, 90), num_days - 1);
      l.commitdate = DateKey(Calendar()[static_cast<size_t>(commit_day)]);
      l.shipmode = &rng.Pick(ShipModes());
      ordtotal += l.extended;
      order_lines.push_back(l);
    }
    for (int64_t ln = 1; ln <= lines; ++ln) {
      const Line& l = order_lines[static_cast<size_t>(ln - 1)];
      b.column(0).AppendInt(key);
      b.column(1).AppendInt(ln);
      b.column(2).AppendInt(custkey);
      b.column(3).AppendInt(l.partkey);
      b.column(4).AppendInt(l.suppkey);
      b.column(5).AppendInt(orderdate);
      b.column(6).AppendString(priority);
      b.column(7).AppendInt(0);
      b.column(8).AppendInt(l.quantity);
      b.column(9).AppendInt(l.extended);
      b.column(10).AppendInt(ordtotal);
      b.column(11).AppendInt(l.discount);
      b.column(12).AppendInt(l.revenue);
      b.column(13).AppendInt(PriceCents(l.partkey) * 6 / 10);
      b.column(14).AppendInt(rng.Range(0, 8));
      b.column(15).AppendInt(l.commitdate);
      b.column(16).AppendString(*l.shipmode);
    }
  }
  return b.Finish();
}

}  // namespace

// ---------------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------------

Schema CustomerSchema() {
  return Schema({{"c_custkey", format::Int64()},
                 {"c_name", format::String()},
                 {"c_address", format::String()},
                 {"c_city", format::String()},
                 {"c_nation", format::String()},
                 {"c_region", format::String()},
                 {"c_phone", format::String()},
                 {"c_mktsegment", format::String()}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", format::Int64()},
                 {"s_name", format::String()},
                 {"s_address", format::String()},
                 {"s_city", format::String()},
                 {"s_nation", format::String()},
                 {"s_region", format::String()},
                 {"s_phone", format::String()}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", format::Int64()},
                 {"p_name", format::String()},
                 {"p_mfgr", format::String()},
                 {"p_category", format::String()},
                 {"p_brand1", format::String()},
                 {"p_color", format::String()},
                 {"p_type", format::String()},
                 {"p_size", format::Int64()},
                 {"p_container", format::String()}});
}

Schema DateSchema() {
  return Schema({{"d_datekey", format::Int64()},
                 {"d_date", format::String()},
                 {"d_dayofweek", format::String()},
                 {"d_month", format::String()},
                 {"d_year", format::Int64()},
                 {"d_yearmonthnum", format::Int64()},
                 {"d_yearmonth", format::String()},
                 {"d_daynuminyear", format::Int64()},
                 {"d_weeknuminyear", format::Int64()},
                 {"d_sellingseason", format::String()}});
}

Schema LineorderSchema() {
  return Schema({{"lo_orderkey", format::Int64()},
                 {"lo_linenumber", format::Int64()},
                 {"lo_custkey", format::Int64()},
                 {"lo_partkey", format::Int64()},
                 {"lo_suppkey", format::Int64()},
                 {"lo_orderdate", format::Int64()},
                 {"lo_orderpriority", format::String()},
                 {"lo_shippriority", format::Int64()},
                 {"lo_quantity", format::Int64()},
                 {"lo_extendedprice", format::Int64()},
                 {"lo_ordtotalprice", format::Int64()},
                 {"lo_discount", format::Int64()},
                 {"lo_revenue", format::Int64()},
                 {"lo_supplycost", format::Int64()},
                 {"lo_tax", format::Int64()},
                 {"lo_commitdate", format::Int64()},
                 {"lo_shipmode", format::String()}});
}

const std::vector<std::string>& TableNames() {
  static const std::vector<std::string> v = {"ssb_customer", "ssb_supplier",
                                             "ssb_part", "dwdate",
                                             "lineorder"};
  return v;
}

int NumDateRows() { return static_cast<int>(Calendar().size()); }

int64_t DateKeyAt(int index) {
  return DateKey(Calendar().at(static_cast<size_t>(index)));
}

Result<TablePtr> GenerateTable(const std::string& name,
                               const SsbOptions& options) {
  const Cardinalities cards = CardsFor(options.sf);
  if (name == "ssb_customer") return GenCustomer(options, cards);
  if (name == "ssb_supplier") return GenSupplier(options, cards);
  if (name == "ssb_part") return GenPart(options, cards);
  if (name == "dwdate") return GenDate();
  if (name == "lineorder") return GenLineorder(options, cards);
  return Status::KeyError("unknown SSB table '" + name + "'");
}

}  // namespace sirius::ssb
