// The 13 SSB queries (four flights) adapted to the in-repo SSB schema, and a
// loader. Predicates over columns the string-heavy variant pads (p_brand1,
// c_city, s_city) are written in range form [value, value~) so one query text
// is correct for every generator variant: padded values extend their logical
// value with lowercase characters, all of which sort below '~'.

#pragma once

#include <string>

#include "common/result.h"
#include "host/database.h"
#include "ssb/dbgen.h"

namespace sirius::ssb {

/// SQL text of SSB query q (1-13, flights q1.1 .. q4.3).
const std::string& Query(int q);

/// Flight-style name of query q: "q1.1" .. "q4.3".
const std::string& QueryName(int q);

/// Number of queries (13).
int NumQueries();

/// Generates all five tables with `options` and registers them in `db`.
Status LoadSsb(host::Database* db, const SsbOptions& options);

}  // namespace sirius::ssb
