// Deterministic in-repo Star Schema Benchmark (SSB) data generator.
//
// Second first-class workload family next to src/tpch: one denormalized
// fact table (lineorder) surrounded by four dimension tables (customer,
// supplier, part, date), following the SSB specification's schema, key
// structure and value domains (O'Neil et al., "Star Schema Benchmark").
// Cardinalities scale with `sf`: customer 30k*sf, supplier 2k*sf,
// part 200k*sf, lineorder ~6M*sf (1-7 lines per order); the date dimension
// is fixed at one row per day of 1992-01-01 .. 1998-12-31.
//
// Two knobs the TPC-H family does not have (the paper's §4.2 pain points):
//
//  * `skew` — Zipf exponent applied to the fact table's dimension foreign
//    keys (lo_custkey / lo_partkey / lo_suppkey). 0 = uniform (the SSB
//    default); 1-2 concentrate the join build sides onto a few hot keys.
//  * `string_heavy` — lengthens the payload/group-by string columns
//    (names, cities, p_brand1) with a deterministic per-value suffix, so
//    string sort-based group-bys and string predicates dominate. Padded
//    values keep their logical prefix: range predicates written as
//    [value, next-prefix) match identically in both variants.
//
// Same options => identical bytes, across processes and platforms.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/table.h"

namespace sirius::ssb {

/// Generation knobs; the default is the plain SSB configuration.
struct SsbOptions {
  double sf = 0.01;
  /// Zipf exponent on lo_custkey / lo_partkey / lo_suppkey (0 = uniform).
  double skew = 0.0;
  /// Lengthen group-by/payload strings (names, cities, p_brand1).
  bool string_heavy = false;
  /// Extra characters appended to each padded value when string_heavy.
  int string_pad = 64;
  /// Salt mixed into every per-table generator stream.
  uint64_t seed = 0;
};

/// Table schemas (SSB column names; money columns are integer cents).
format::Schema CustomerSchema();
format::Schema SupplierSchema();
format::Schema PartSchema();
format::Schema DateSchema();
format::Schema LineorderSchema();

/// \brief Generates one SSB table (deterministic: same options => identical
/// bytes). Valid names: ssb_customer, ssb_supplier, ssb_part, dwdate,
/// lineorder. The ssb_ prefix keeps the dimensions disjoint from the TPC-H
/// tables of the same role, so both families coexist in one catalog
/// (heterogeneous serving workloads).
Result<format::TablePtr> GenerateTable(const std::string& name,
                                       const SsbOptions& options);

/// All five table names in generation order.
const std::vector<std::string>& TableNames();

/// Number of days in the date dimension (1992-01-01 .. 1998-12-31).
int NumDateRows();

/// d_datekey (yyyymmdd) of day `index` in [0, NumDateRows()).
int64_t DateKeyAt(int index);

}  // namespace sirius::ssb
