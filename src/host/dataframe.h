// DataFrame: a composable, Ibis/DataFusion-style front-end over the same
// plan IR and Substrait boundary the SQL path uses (paper §3.4 names both
// as future host integrations). Every verb returns a new immutable frame;
// Collect() optimizes and executes — on the attached Sirius accelerator
// when present.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "host/database.h"

namespace sirius::host {

/// \brief One requested aggregate, by column name.
struct AggSpec {
  plan::AggFunc func = plan::AggFunc::kCountStar;
  /// Input column name ("" for count(*)).
  std::string column;
  /// Output column name.
  std::string as;
};

/// \brief An immutable, lazily-evaluated relational expression.
class DataFrame {
 public:
  /// Starts a frame from a base table.
  static Result<DataFrame> Scan(Database* db, const std::string& table);

  /// Rows where `predicate` (column refs by name) is true.
  Result<DataFrame> Filter(expr::ExprPtr predicate) const;

  /// Projects expressions with output names.
  Result<DataFrame> Select(std::vector<std::pair<std::string, expr::ExprPtr>>
                               named_exprs) const;

  /// Equi join on same-length key-name lists.
  Result<DataFrame> Join(const DataFrame& right,
                         const std::vector<std::string>& left_keys,
                         const std::vector<std::string>& right_keys,
                         plan::JoinType type = plan::JoinType::kInner) const;

  /// ASOF join: latest right row with right_on <= left_on per by-key group.
  Result<DataFrame> AsofJoin(const DataFrame& right,
                             const std::string& left_on,
                             const std::string& right_on,
                             const std::vector<std::string>& by_left = {},
                             const std::vector<std::string>& by_right = {}) const;

  /// Group-by + aggregates (by column names).
  Result<DataFrame> Aggregate(const std::vector<std::string>& group_by,
                              const std::vector<AggSpec>& aggs) const;

  /// ORDER BY the named columns ((name, descending) pairs).
  Result<DataFrame> Sort(
      const std::vector<std::pair<std::string, bool>>& keys) const;

  Result<DataFrame> Limit(int64_t n) const;
  Result<DataFrame> Distinct() const;

  const format::Schema& schema() const { return plan_->output_schema; }

  /// Optimizes and executes (accelerator-aware with graceful fallback).
  Result<QueryResult> Collect() const;

  /// The optimized plan, rendered (EXPLAIN).
  Result<std::string> Explain() const;

  /// The optimized plan in the Substrait wire format — a DataFrame program
  /// crosses the same boundary SQL queries do.
  Result<std::string> ToSubstrait() const;

 private:
  DataFrame(Database* db, plan::PlanPtr plan)
      : db_(db), plan_(std::move(plan)) {}

  /// Resolves a column name to its index in this frame's schema.
  Result<int> ColumnIndex(const std::string& name) const;

  Database* db_;
  plan::PlanPtr plan_;
};

}  // namespace sirius::host
