// In-memory catalog of the DuckX host database.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "format/table.h"
#include "opt/stats.h"
#include "sql/binder.h"

namespace sirius::host {

/// \brief Named tables + schemas. Doubles as the binder's catalog surface
/// and the optimizer's statistics provider.
class Catalog : public sql::CatalogInterface, public opt::StatsProvider {
 public:
  /// Registers (or replaces) a table.
  Status CreateTable(const std::string& name, format::TablePtr table);

  Result<format::TablePtr> GetTable(const std::string& name) const;
  Result<format::Schema> GetTableSchema(const std::string& name) const override;
  double TableRows(const std::string& name) const override;
  /// Exact distinct count, computed lazily on first request and cached.
  double ColumnDistinct(const std::string& table,
                        const std::string& column) const override;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Total bytes across all tables (sizing the cache region).
  uint64_t TotalBytes() const;

  /// Monotone write-version of the catalog: bumped by every CreateTable
  /// (create or replace). Cache layers stamp entries with the version they
  /// were built under and treat a version change as invalidation — any
  /// catalog write may change any cached query's answer.
  uint64_t version() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, format::TablePtr> tables_;
  uint64_t version_ = 0;  ///< guarded by mu_
  mutable std::map<std::string, double> ndv_cache_;  ///< "table.column" -> ndv
};

}  // namespace sirius::host
