#include "host/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "format/builder.h"

namespace sirius::host {

using format::ColumnBuilder;
using format::DataType;
using format::Schema;
using format::TablePtr;
using format::TypeId;

namespace {

/// Splits one CSV record (RFC-4180 quoting: "" escapes a quote inside a
/// quoted cell). Returns cell texts plus per-cell "was quoted" flags.
Status SplitRecord(const std::string& line, char delimiter,
                   std::vector<std::string>* cells, std::vector<bool>* quoted) {
  cells->clear();
  quoted->clear();
  std::string cell;
  bool in_quotes = false, cell_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      in_quotes = true;
      cell_quoted = true;
    } else if (c == delimiter) {
      cells->push_back(std::move(cell));
      quoted->push_back(cell_quoted);
      cell.clear();
      cell_quoted = false;
    } else {
      cell += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV record");
  cells->push_back(std::move(cell));
  quoted->push_back(cell_quoted);
  return Status::OK();
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' || s[0] == '+' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool LooksLikeDate(const std::string& s) {
  return s.size() == 10 && s[4] == '-' && s[7] == '-' &&
         format::ParseDate(s) != INT32_MIN;
}

Status AppendCell(ColumnBuilder* b, const DataType& type, const std::string& cell,
                  bool was_quoted, const CsvOptions& options, size_t line_no) {
  if (!was_quoted && cell == options.null_token) {
    b->AppendNull();
    return Status::OK();
  }
  auto fail = [&](const char* what) {
    return Status::ParseError("CSV line " + std::to_string(line_no) + ": '" +
                              cell + "' is not a valid " + what);
  };
  switch (type.id) {
    case TypeId::kInt32:
    case TypeId::kInt64: {
      if (!LooksLikeInt(cell)) return fail("integer");
      b->AppendInt(std::stoll(cell));
      return Status::OK();
    }
    case TypeId::kFloat64: {
      if (!LooksLikeDouble(cell)) return fail("number");
      b->AppendDouble(std::stod(cell));
      return Status::OK();
    }
    case TypeId::kDecimal64: {
      if (!LooksLikeDouble(cell)) return fail("decimal");
      return b->AppendScalar(format::Scalar::FromDouble(std::stod(cell)));
    }
    case TypeId::kDate32: {
      int32_t days = format::ParseDate(cell);
      if (days == INT32_MIN) return fail("date");
      b->AppendInt(days);
      return Status::OK();
    }
    case TypeId::kBool: {
      if (cell == "true" || cell == "1") {
        b->AppendBool(true);
      } else if (cell == "false" || cell == "0") {
        b->AppendBool(false);
      } else {
        return fail("bool");
      }
      return Status::OK();
    }
    case TypeId::kString:
      b->AppendString(cell);
      return Status::OK();
    case TypeId::kList:
      return Status::NotImplemented("CSV does not support LIST columns");
  }
  return Status::Internal("unhandled CSV type");
}

Result<std::vector<std::string>> ReadLines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

Result<TablePtr> ParseLines(const std::vector<std::string>& lines,
                            const Schema& schema, bool skip_header,
                            const CsvOptions& options) {
  format::TableBuilder builder(schema);
  std::vector<std::string> cells;
  std::vector<bool> quoted;
  for (size_t i = skip_header ? 1 : 0; i < lines.size(); ++i) {
    SIRIUS_RETURN_NOT_OK(SplitRecord(lines[i], options.delimiter, &cells, &quoted));
    if (cells.size() != schema.num_fields()) {
      return Status::ParseError(
          "CSV line " + std::to_string(i + 1) + ": expected " +
          std::to_string(schema.num_fields()) + " cells, got " +
          std::to_string(cells.size()));
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      SIRIUS_RETURN_NOT_OK(AppendCell(&builder.column(c), schema.field(c).type,
                                      cells[c], quoted[c], options, i + 1));
    }
  }
  return builder.Finish();
}

Result<Schema> InferSchema(const std::vector<std::string>& lines,
                           const CsvOptions& options) {
  if (lines.empty()) return Status::ParseError("CSV: empty input");
  if (!options.has_header) {
    return Status::Invalid("CSV type inference requires a header line");
  }
  std::vector<std::string> names;
  std::vector<bool> quoted;
  SIRIUS_RETURN_NOT_OK(SplitRecord(lines[0], options.delimiter, &names, &quoted));

  const size_t cols = names.size();
  // Per-column candidate lattice: int -> double -> date -> string.
  std::vector<bool> can_int(cols, true), can_double(cols, true),
      can_date(cols, true), saw_value(cols, false);
  std::vector<std::string> cells;
  const size_t limit = std::min(lines.size(), options.inference_rows + 1);
  for (size_t i = 1; i < limit; ++i) {
    SIRIUS_RETURN_NOT_OK(SplitRecord(lines[i], options.delimiter, &cells, &quoted));
    if (cells.size() != cols) {
      return Status::ParseError("CSV line " + std::to_string(i + 1) +
                                ": ragged row during inference");
    }
    for (size_t c = 0; c < cols; ++c) {
      if (!quoted[c] && cells[c] == options.null_token) continue;
      saw_value[c] = true;
      if (quoted[c]) {  // quoted cells are strings by intent
        can_int[c] = can_double[c] = can_date[c] = false;
        continue;
      }
      can_int[c] = can_int[c] && LooksLikeInt(cells[c]);
      can_double[c] = can_double[c] && LooksLikeDouble(cells[c]);
      can_date[c] = can_date[c] && LooksLikeDate(cells[c]);
    }
  }
  Schema schema;
  for (size_t c = 0; c < cols; ++c) {
    DataType t = format::String();
    if (saw_value[c]) {
      if (can_int[c]) {
        t = format::Int64();
      } else if (can_date[c]) {
        t = format::Date32();
      } else if (can_double[c]) {
        t = format::Float64();
      }
    }
    schema.AddField({names[c], t});
  }
  return schema;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos || s.find('\n') != std::string::npos;
}

std::string QuoteCell(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<TablePtr> ParseCsv(const std::string& text, const Schema& schema,
                          const CsvOptions& options) {
  std::istringstream in(text);
  SIRIUS_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(in));
  return ParseLines(lines, schema, options.has_header, options);
}

Result<TablePtr> ParseCsvInferSchema(const std::string& text,
                                     const CsvOptions& options) {
  std::istringstream in(text);
  SIRIUS_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(in));
  SIRIUS_ASSIGN_OR_RETURN(Schema schema, InferSchema(lines, options));
  return ParseLines(lines, schema, /*skip_header=*/true, options);
}

Result<TablePtr> ReadCsv(const std::string& path, const Schema& schema,
                         const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open '" + path + "'");
  SIRIUS_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(in));
  return ParseLines(lines, schema, options.has_header, options);
}

Result<TablePtr> ReadCsvInferSchema(const std::string& path,
                                    const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open '" + path + "'");
  SIRIUS_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(in));
  SIRIUS_ASSIGN_OR_RETURN(Schema schema, InferSchema(lines, options));
  return ParseLines(lines, schema, /*skip_header=*/true, options);
}

Result<std::string> FormatCsv(const TablePtr& table, const CsvOptions& options) {
  std::ostringstream out;
  if (options.has_header) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << table->schema().field(c).name;
    }
    out << "\n";
  }
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const auto& col = table->column(c);
      if (col->IsNull(r)) {
        out << options.null_token;
        continue;
      }
      if (col->type().is_string()) {
        std::string cell(col->StringAt(r));
        out << (NeedsQuoting(cell, options.delimiter) ? QuoteCell(cell) : cell);
      } else {
        format::Scalar s = col->GetScalar(r);
        std::string rendered = s.ToString();
        // Scalar::ToString quotes strings; everything else is plain.
        out << rendered;
      }
    }
    out << "\n";
  }
  return out.str();
}

Status WriteCsv(const TablePtr& table, const std::string& path,
                const CsvOptions& options) {
  SIRIUS_ASSIGN_OR_RETURN(std::string text, FormatCsv(table, options));
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open '" + path + "'");
  out << text;
  return out.good() ? Status::OK()
                    : Status::IOError("write failed for '" + path + "'");
}

}  // namespace sirius::host
