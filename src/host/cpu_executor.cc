#include "host/cpu_executor.h"

#include "gdf/asof.h"
#include "gdf/compute.h"
#include "gdf/copying.h"
#include "gdf/filter.h"
#include "gdf/join.h"
#include "gdf/partition.h"
#include "gdf/sort.h"

namespace sirius::host {

using format::ColumnPtr;
using format::TablePtr;
using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

gdf::AggKind ToGdfAgg(plan::AggFunc f) {
  switch (f) {
    case plan::AggFunc::kSum:
      return gdf::AggKind::kSum;
    case plan::AggFunc::kMin:
      return gdf::AggKind::kMin;
    case plan::AggFunc::kMax:
      return gdf::AggKind::kMax;
    case plan::AggFunc::kCount:
      return gdf::AggKind::kCount;
    case plan::AggFunc::kCountStar:
      return gdf::AggKind::kCountStar;
    case plan::AggFunc::kAvg:
      return gdf::AggKind::kAvg;
    case plan::AggFunc::kCountDistinct:
      return gdf::AggKind::kCountDistinct;
  }
  return gdf::AggKind::kCountStar;
}

namespace {

gdf::JoinType ToGdfJoin(plan::JoinType t) {
  switch (t) {
    case plan::JoinType::kInner:
      return gdf::JoinType::kInner;
    case plan::JoinType::kLeft:
      return gdf::JoinType::kLeft;
    case plan::JoinType::kSemi:
      return gdf::JoinType::kSemi;
    case plan::JoinType::kAnti:
      return gdf::JoinType::kAnti;
    case plan::JoinType::kCross:
    case plan::JoinType::kAsof:
      return gdf::JoinType::kInner;  // handled separately
  }
  return gdf::JoinType::kInner;
}

Result<TablePtr> ExecScan(const PlanNode& node, const TablePtr& base,
                          const gdf::Context& ctx) {
  SIRIUS_ASSIGN_OR_RETURN(TablePtr out, base->SelectColumns(node.scan_columns));
  sim::KernelCost cost;
  cost.seq_bytes = out->MemoryUsage();
  cost.rows = out->num_rows();
  ctx.Charge(sim::OpCategory::kScan, cost);
  return out;
}

Result<TablePtr> ExecFilter(const PlanNode& node, const TablePtr& input,
                            const gdf::Context& ctx) {
  SIRIUS_ASSIGN_OR_RETURN(ColumnPtr mask,
                          gdf::ComputeColumn(ctx, *node.predicate, input,
                                             sim::OpCategory::kFilter));
  return gdf::ApplyBooleanMask(ctx, input, mask);
}

Result<TablePtr> ExecProject(const PlanNode& node, const TablePtr& input,
                             const gdf::Context& ctx) {
  std::vector<ColumnPtr> cols;
  cols.reserve(node.projections.size());
  for (const auto& e : node.projections) {
    SIRIUS_ASSIGN_OR_RETURN(
        ColumnPtr c, gdf::ComputeColumn(ctx, *e, input, sim::OpCategory::kProject));
    cols.push_back(std::move(c));
  }
  return format::Table::Make(node.output_schema, std::move(cols));
}

Result<TablePtr> ExecJoin(const PlanNode& node, const TablePtr& left,
                          const TablePtr& right, const gdf::Context& ctx) {
  gdf::JoinResult pairs;
  if (node.join_type == plan::JoinType::kCross) {
    SIRIUS_ASSIGN_OR_RETURN(
        pairs, gdf::CrossJoin(ctx, left->num_rows(), right->num_rows()));
  } else if (node.join_type == plan::JoinType::kAsof) {
    std::vector<ColumnPtr> lby, rby;
    for (int k : node.left_keys) lby.push_back(left->column(k));
    for (int k : node.right_keys) rby.push_back(right->column(k));
    SIRIUS_ASSIGN_OR_RETURN(
        pairs, gdf::AsofJoin(ctx, left->column(node.asof_left_on),
                             right->column(node.asof_right_on), lby, rby));
  } else {
    std::vector<ColumnPtr> lkeys, rkeys;
    for (int k : node.left_keys) lkeys.push_back(left->column(k));
    for (int k : node.right_keys) rkeys.push_back(right->column(k));
    gdf::JoinOptions options;
    options.type = ToGdfJoin(node.join_type);
    if (node.residual != nullptr) {
      options.residual = node.residual.get();
      options.left_table = left;
      options.right_table = right;
    }
    SIRIUS_ASSIGN_OR_RETURN(pairs, gdf::HashJoin(ctx, lkeys, rkeys, options));
  }

  const bool emits_right = node.join_type == plan::JoinType::kInner ||
                           node.join_type == plan::JoinType::kLeft ||
                           node.join_type == plan::JoinType::kCross ||
                           node.join_type == plan::JoinType::kAsof;
  SIRIUS_ASSIGN_OR_RETURN(
      TablePtr lg,
      gdf::GatherTable(ctx, left, pairs.left_indices, sim::OpCategory::kJoin));
  std::vector<ColumnPtr> cols = lg->columns();
  if (emits_right) {
    SIRIUS_ASSIGN_OR_RETURN(
        TablePtr rg,
        gdf::GatherTable(ctx, right, pairs.right_indices, sim::OpCategory::kJoin,
                         /*nulls_for_negative=*/node.join_type ==
                                 plan::JoinType::kLeft ||
                             node.join_type == plan::JoinType::kAsof));
    for (const auto& c : rg->columns()) cols.push_back(c);
  }
  return format::Table::Make(node.output_schema, std::move(cols));
}

Result<TablePtr> ExecAggregate(const PlanNode& node, const TablePtr& input,
                               const gdf::Context& ctx) {
  std::vector<ColumnPtr> keys;
  std::vector<std::string> key_names;
  for (size_t k = 0; k < node.group_by.size(); ++k) {
    keys.push_back(input->column(node.group_by[k]));
    key_names.push_back(node.output_schema.field(k).name);
  }
  std::vector<gdf::AggRequest> aggs;
  for (size_t a = 0; a < node.aggregates.size(); ++a) {
    gdf::AggRequest req;
    req.kind = ToGdfAgg(node.aggregates[a].func);
    req.column = node.aggregates[a].arg_column;
    req.name = node.output_schema.field(node.group_by.size() + a).name;
    aggs.push_back(std::move(req));
  }
  return gdf::GroupByAggregate(ctx, keys, key_names, input, aggs);
}

Result<TablePtr> ExecSort(const PlanNode& node, const TablePtr& input,
                          const gdf::Context& ctx) {
  std::vector<int> cols;
  std::vector<bool> desc;
  for (const auto& k : node.sort_keys) {
    cols.push_back(k.column);
    desc.push_back(k.descending);
  }
  return gdf::SortTable(ctx, input, cols, desc);
}

Result<TablePtr> ExecLimit(const PlanNode& node, const TablePtr& input,
                           const gdf::Context& ctx) {
  size_t limit =
      node.limit < 0 ? input->num_rows() : static_cast<size_t>(node.limit);
  return gdf::SliceTable(ctx, input, static_cast<size_t>(node.offset), limit);
}

Result<TablePtr> ExecDistinct(const TablePtr& input, const gdf::Context& ctx) {
  if (input->num_columns() == 0) return input;
  SIRIUS_ASSIGN_OR_RETURN(std::vector<gdf::index_t> indices,
                          gdf::DistinctIndices(ctx, input->columns()));
  return gdf::GatherTable(ctx, input, indices, sim::OpCategory::kGroupBy);
}

}  // namespace

Result<TablePtr> ApplyNode(const PlanNode& node,
                           const std::vector<TablePtr>& children,
                           const gdf::Context& ctx) {
  switch (node.kind) {
    case PlanKind::kTableScan:
      return ExecScan(node, children.at(0), ctx);
    case PlanKind::kFilter:
      return ExecFilter(node, children.at(0), ctx);
    case PlanKind::kProject:
      return ExecProject(node, children.at(0), ctx);
    case PlanKind::kJoin:
      return ExecJoin(node, children.at(0), children.at(1), ctx);
    case PlanKind::kAggregate:
      return ExecAggregate(node, children.at(0), ctx);
    case PlanKind::kSort:
      return ExecSort(node, children.at(0), ctx);
    case PlanKind::kLimit:
      return ExecLimit(node, children.at(0), ctx);
    case PlanKind::kDistinct:
      return ExecDistinct(children.at(0), ctx);
    case PlanKind::kExchange:
      // Single-node execution: exchange is the identity.
      return children.at(0);
  }
  return Status::Internal("unknown plan node");
}

Result<TablePtr> ExecutePlan(const PlanPtr& plan, const TableResolver& resolver,
                             const gdf::Context& ctx) {
  std::vector<TablePtr> children;
  if (plan->kind == PlanKind::kTableScan) {
    SIRIUS_ASSIGN_OR_RETURN(TablePtr base, resolver(plan->table_name));
    children.push_back(std::move(base));
  } else {
    for (const auto& c : plan->children) {
      SIRIUS_ASSIGN_OR_RETURN(TablePtr r, ExecutePlan(c, resolver, ctx));
      children.push_back(std::move(r));
    }
  }
  return ApplyNode(*plan, children, ctx);
}

}  // namespace sirius::host
