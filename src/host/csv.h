// CSV import/export for the host database.
//
// The paper (§3.2.3): "Sirius relies on the host database to read data from
// disk" — this is that disk path. Supports RFC-4180-style quoting, headers,
// NULL tokens, explicit schemas and type inference.

#pragma once

#include <string>

#include "common/result.h"
#include "format/table.h"

namespace sirius::host {

struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names.
  bool has_header = true;
  /// Unquoted cells equal to this parse as NULL.
  std::string null_token = "";
  /// Rows examined for type inference (schema-less reads).
  size_t inference_rows = 100;
};

/// Reads a CSV file against an explicit schema (column count must match;
/// names come from the schema, the header line is skipped if present).
Result<format::TablePtr> ReadCsv(const std::string& path,
                                 const format::Schema& schema,
                                 const CsvOptions& options = {});

/// Reads a CSV file, inferring column types (INT64 -> FLOAT64 -> DATE32 ->
/// STRING) from the first `inference_rows` rows. Requires a header for
/// column names.
Result<format::TablePtr> ReadCsvInferSchema(const std::string& path,
                                            const CsvOptions& options = {});

/// Writes a table as CSV (header + quoted strings where needed).
Status WriteCsv(const format::TablePtr& table, const std::string& path,
                const CsvOptions& options = {});

/// \name In-memory variants (testing and embedding).
/// @{
Result<format::TablePtr> ParseCsv(const std::string& text,
                                  const format::Schema& schema,
                                  const CsvOptions& options = {});
Result<format::TablePtr> ParseCsvInferSchema(const std::string& text,
                                             const CsvOptions& options = {});
Result<std::string> FormatCsv(const format::TablePtr& table,
                              const CsvOptions& options = {});
/// @}

}  // namespace sirius::host
