// DuckX: the embedded analytical host database (DuckDB stand-in).
//
// Owns the catalog, SQL front-end (parse -> bind -> optimize), the CPU
// execution engine, and the Substrait export used for drop-in acceleration:
// when an Accelerator is attached, optimized plans are serialized and routed
// to it instead of the CPU engine, with graceful fallback (paper §3.2.2).

#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "host/catalog.h"
#include "obs/trace.h"
#include "host/cpu_executor.h"
#include "opt/optimizer.h"
#include "plan/substrait.h"
#include "sim/cost_model.h"

namespace sirius::host {

/// \brief Result of one query: the rows plus the simulated-time account.
struct QueryResult {
  format::TablePtr table;
  sim::Timeline timeline;
  plan::PlanPtr optimized_plan;
  /// True when the query ran on the attached accelerator (GPU path).
  bool accelerated = false;
  /// True when the accelerator rejected the plan and the CPU engine ran it.
  bool fell_back = false;
  /// Per-query trace snapshot (span tree + metrics over simulated time).
  /// Null when the engine ran with tracing off or the CPU path executed.
  std::shared_ptr<obs::QueryProfile> profile;
  /// Device activity behind `timeline`: kernel launches and HBM traffic.
  /// Zero on the CPU path (only the accelerator counts kernels).
  sim::KernelStats kernels;
};

/// \brief Drop-in execution engine interface (implemented by Sirius).
///
/// Receives the serialized plan exactly as it crosses the host-DB boundary
/// in the paper (§3.1). Returning a non-OK status (typically
/// UnsupportedOnDevice) triggers host-side fallback.
class Accelerator {
 public:
  virtual ~Accelerator() = default;
  virtual Result<QueryResult> ExecuteSubstrait(const std::string& plan_text) = 0;
  virtual std::string name() const = 0;
};

/// \brief The embedded host database.
class Database {
 public:
  struct Options {
    sim::DeviceProfile device = sim::M7i16xlarge();
    sim::EngineProfile engine = sim::DuckDbProfile();
    /// Cost-model multiplier: modeled scale factor / loaded scale factor.
    double data_scale = 1.0;
  };

  Database() : Database(Options{}) {}
  explicit Database(Options options);

  Catalog& catalog() { return catalog_; }
  const Options& options() const { return options_; }

  Status CreateTable(const std::string& name, format::TablePtr table) {
    return catalog_.CreateTable(name, std::move(table));
  }

  /// Parse + bind + optimize (join reordering honors the engine profile).
  Result<plan::PlanPtr> PlanSql(const std::string& sql);

  /// The drop-in boundary: the optimized plan in wire format.
  Result<std::string> ExportSubstrait(const std::string& sql);

  /// EXPLAIN: the optimized plan rendered with cardinality estimates.
  Result<std::string> Explain(const std::string& sql);

  /// Runs a SQL query: on the accelerator when attached (with graceful
  /// fallback), otherwise on the CPU engine.
  Result<QueryResult> Query(const std::string& sql);

  /// Executes an already-optimized plan on the CPU engine.
  Result<QueryResult> ExecutePlanCpu(const plan::PlanPtr& plan);

  /// Executes an already-optimized plan through the normal routing: the
  /// attached accelerator when present (with graceful fallback), otherwise
  /// the CPU engine. The path every front-end (SQL, DataFrame) funnels into.
  Result<QueryResult> ExecutePlanRouted(const plan::PlanPtr& plan);

  /// Attaches/detaches the drop-in accelerator (not owned).
  void SetAccelerator(Accelerator* accelerator) { accelerator_ = accelerator; }

 private:
  Options options_;
  Catalog catalog_;
  Accelerator* accelerator_ = nullptr;
};

}  // namespace sirius::host
