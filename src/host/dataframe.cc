#include "host/dataframe.h"

#include "opt/optimizer.h"
#include "plan/substrait.h"

namespace sirius::host {

using plan::PlanPtr;

Result<DataFrame> DataFrame::Scan(Database* db, const std::string& table) {
  if (db == nullptr) return Status::Invalid("DataFrame::Scan: null database");
  SIRIUS_ASSIGN_OR_RETURN(format::Schema schema,
                          db->catalog().GetTableSchema(table));
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr scan, plan::MakeScan(table, schema, {}));
  return DataFrame(db, std::move(scan));
}

Result<int> DataFrame::ColumnIndex(const std::string& name) const {
  int idx = plan_->output_schema.IndexOf(name);
  if (idx < 0) {
    return Status::BindError("DataFrame: column '" + name +
                             "' not found in schema [" +
                             plan_->output_schema.ToString() + "]");
  }
  return idx;
}

Result<DataFrame> DataFrame::Filter(expr::ExprPtr predicate) const {
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr out,
                          plan::MakeFilter(plan_, std::move(predicate)));
  return DataFrame(db_, std::move(out));
}

Result<DataFrame> DataFrame::Select(
    std::vector<std::pair<std::string, expr::ExprPtr>> named_exprs) const {
  std::vector<expr::ExprPtr> exprs;
  std::vector<std::string> names;
  for (auto& [name, e] : named_exprs) {
    names.push_back(name);
    exprs.push_back(std::move(e));
  }
  SIRIUS_ASSIGN_OR_RETURN(
      PlanPtr out, plan::MakeProject(plan_, std::move(exprs), std::move(names)));
  return DataFrame(db_, std::move(out));
}

Result<DataFrame> DataFrame::Join(const DataFrame& right,
                                  const std::vector<std::string>& left_keys,
                                  const std::vector<std::string>& right_keys,
                                  plan::JoinType type) const {
  if (db_ != right.db_) {
    return Status::Invalid("DataFrame::Join: frames from different databases");
  }
  if (left_keys.size() != right_keys.size()) {
    return Status::Invalid("DataFrame::Join: key count mismatch");
  }
  std::vector<int> lk, rk;
  for (const auto& k : left_keys) {
    SIRIUS_ASSIGN_OR_RETURN(int i, ColumnIndex(k));
    lk.push_back(i);
  }
  for (const auto& k : right_keys) {
    SIRIUS_ASSIGN_OR_RETURN(int i, right.ColumnIndex(k));
    rk.push_back(i);
  }
  SIRIUS_ASSIGN_OR_RETURN(
      PlanPtr out, plan::MakeJoin(plan_, right.plan_, type, lk, rk));
  return DataFrame(db_, std::move(out));
}

Result<DataFrame> DataFrame::AsofJoin(
    const DataFrame& right, const std::string& left_on,
    const std::string& right_on, const std::vector<std::string>& by_left,
    const std::vector<std::string>& by_right) const {
  std::vector<int> bl, br;
  for (const auto& k : by_left) {
    SIRIUS_ASSIGN_OR_RETURN(int i, ColumnIndex(k));
    bl.push_back(i);
  }
  for (const auto& k : by_right) {
    SIRIUS_ASSIGN_OR_RETURN(int i, right.ColumnIndex(k));
    br.push_back(i);
  }
  SIRIUS_ASSIGN_OR_RETURN(int lo, ColumnIndex(left_on));
  SIRIUS_ASSIGN_OR_RETURN(int ro, right.ColumnIndex(right_on));
  SIRIUS_ASSIGN_OR_RETURN(
      PlanPtr out, plan::MakeAsofJoin(plan_, right.plan_, bl, br, lo, ro));
  return DataFrame(db_, std::move(out));
}

Result<DataFrame> DataFrame::Aggregate(const std::vector<std::string>& group_by,
                                       const std::vector<AggSpec>& aggs) const {
  std::vector<int> keys;
  for (const auto& g : group_by) {
    SIRIUS_ASSIGN_OR_RETURN(int i, ColumnIndex(g));
    keys.push_back(i);
  }
  std::vector<plan::AggItem> items;
  for (const auto& a : aggs) {
    plan::AggItem item;
    item.func = a.func;
    item.name = a.as;
    if (a.func != plan::AggFunc::kCountStar) {
      SIRIUS_ASSIGN_OR_RETURN(item.arg_column, ColumnIndex(a.column));
    }
    items.push_back(std::move(item));
  }
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr out,
                          plan::MakeAggregate(plan_, keys, std::move(items)));
  return DataFrame(db_, std::move(out));
}

Result<DataFrame> DataFrame::Sort(
    const std::vector<std::pair<std::string, bool>>& keys) const {
  std::vector<plan::SortKey> sort_keys;
  for (const auto& [name, desc] : keys) {
    SIRIUS_ASSIGN_OR_RETURN(int i, ColumnIndex(name));
    sort_keys.push_back({i, desc});
  }
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr out,
                          plan::MakeSort(plan_, std::move(sort_keys)));
  return DataFrame(db_, std::move(out));
}

Result<DataFrame> DataFrame::Limit(int64_t n) const {
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr out, plan::MakeLimit(plan_, n));
  return DataFrame(db_, std::move(out));
}

Result<DataFrame> DataFrame::Distinct() const {
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr out, plan::MakeDistinct(plan_));
  return DataFrame(db_, std::move(out));
}

Result<QueryResult> DataFrame::Collect() const {
  opt::OptimizerOptions options;
  options.reorder_joins = db_->options().engine.reorder_joins;
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr optimized,
                          opt::Optimize(plan_, db_->catalog(), options));
  return db_->ExecutePlanRouted(optimized);
}

Result<std::string> DataFrame::Explain() const {
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr optimized,
                          opt::Optimize(plan_, db_->catalog(), {}));
  return optimized->ToString();
}

Result<std::string> DataFrame::ToSubstrait() const {
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr optimized,
                          opt::Optimize(plan_, db_->catalog(), {}));
  return plan::SerializePlan(optimized);
}

}  // namespace sirius::host
