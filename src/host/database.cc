#include "host/database.h"

#include "common/logging.h"

namespace sirius::host {

Database::Database(Options options) : options_(std::move(options)) {}

Result<plan::PlanPtr> Database::PlanSql(const std::string& sql) {
  SIRIUS_ASSIGN_OR_RETURN(plan::PlanPtr bound, sql::SqlToPlan(sql, catalog_));
  opt::OptimizerOptions opt_options;
  opt_options.reorder_joins = options_.engine.reorder_joins;
  return opt::Optimize(bound, catalog_, opt_options);
}

Result<std::string> Database::ExportSubstrait(const std::string& sql) {
  SIRIUS_ASSIGN_OR_RETURN(plan::PlanPtr plan, PlanSql(sql));
  return plan::SerializePlan(plan);
}

Result<std::string> Database::Explain(const std::string& sql) {
  SIRIUS_ASSIGN_OR_RETURN(plan::PlanPtr plan, PlanSql(sql));
  return plan->ToString();
}

Result<QueryResult> Database::ExecutePlanCpu(const plan::PlanPtr& plan) {
  QueryResult result;
  result.optimized_plan = plan;
  result.timeline.Charge(sim::OpCategory::kOther,
                         options_.engine.fixed_query_overhead_s);
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  ctx.sim.device = options_.device;
  ctx.sim.engine = options_.engine;
  ctx.sim.timeline = &result.timeline;
  ctx.sim.data_scale = options_.data_scale;
  auto resolver = [this](const std::string& name) {
    return catalog_.GetTable(name);
  };
  SIRIUS_ASSIGN_OR_RETURN(result.table, ExecutePlan(plan, resolver, ctx));
  return result;
}

Result<QueryResult> Database::Query(const std::string& sql) {
  SIRIUS_ASSIGN_OR_RETURN(plan::PlanPtr plan, PlanSql(sql));
  return ExecutePlanRouted(plan);
}

Result<QueryResult> Database::ExecutePlanRouted(const plan::PlanPtr& plan) {
  if (accelerator_ != nullptr) {
    std::string wire = plan::SerializePlan(plan);
    auto accelerated = accelerator_->ExecuteSubstrait(wire);
    if (accelerated.ok()) {
      QueryResult result = std::move(accelerated).ValueOrDie();
      result.optimized_plan = plan;
      result.accelerated = true;
      return result;
    }
    // Graceful fallback to the host CPU engine (paper §3.2.2).
    SIRIUS_LOG(Info) << "accelerator '" << accelerator_->name()
                     << "' declined plan (" << accelerated.status().ToString()
                     << "); falling back to CPU";
    SIRIUS_ASSIGN_OR_RETURN(QueryResult result, ExecutePlanCpu(plan));
    result.fell_back = true;
    return result;
  }
  return ExecutePlanCpu(plan);
}

}  // namespace sirius::host
