// Recursive (operator-at-a-time) plan executor over the GDF kernels.
//
// This is the CPU execution path of the host databases (DuckX / the
// distributed baselines). Sirius' own engine (src/engine) uses the
// pipeline/push model instead; both produce identical results, which the
// test suite exploits for cross-engine validation.

#pragma once

#include <functional>

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"
#include "gdf/groupby.h"
#include "plan/plan.h"

namespace sirius::host {

/// Resolves a scan's base table at execution time.
using TableResolver =
    std::function<Result<format::TablePtr>(const std::string&)>;

/// \brief Executes a bound plan tree bottom-up, charging `ctx`'s cost model.
///
/// Exchange nodes are executed as no-ops (single-node semantics); the
/// distributed runtime (src/dist) intercepts them.
Result<format::TablePtr> ExecutePlan(const plan::PlanPtr& plan,
                                     const TableResolver& resolver,
                                     const gdf::Context& ctx);

/// \brief Applies one operator to already-computed child tables.
///
/// For kTableScan, children[0] must hold the (full-width) base table; the
/// scan's column projection is applied here. Used by the distributed
/// runtime, which owns the recursion and the exchanges between fragments.
Result<format::TablePtr> ApplyNode(const plan::PlanNode& node,
                                   const std::vector<format::TablePtr>& children,
                                   const gdf::Context& ctx);

/// Maps a plan aggregate function to the kernel-level enum.
gdf::AggKind ToGdfAgg(plan::AggFunc f);

}  // namespace sirius::host
