#include "host/catalog.h"

#include <unordered_set>

#include "gdf/row_ops.h"

namespace sirius::host {

Status Catalog::CreateTable(const std::string& name, format::TablePtr table) {
  if (table == nullptr) return Status::Invalid("CreateTable: null table");
  std::lock_guard<std::mutex> lock(mu_);
  tables_[name] = std::move(table);
  ndv_cache_.clear();  // stats for a replaced table are stale
  ++version_;
  return Status::OK();
}

uint64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

Result<format::TablePtr> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("table '" + name + "' does not exist");
  }
  return it->second;
}

Result<format::Schema> Catalog::GetTableSchema(const std::string& name) const {
  SIRIUS_ASSIGN_OR_RETURN(format::TablePtr t, GetTable(name));
  return t->schema();
}

double Catalog::TableRows(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? -1 : static_cast<double>(it->second->num_rows());
}

double Catalog::ColumnDistinct(const std::string& table,
                               const std::string& column) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = table + "." + column;
  auto cached = ndv_cache_.find(key);
  if (cached != ndv_cache_.end()) return cached->second;
  auto it = tables_.find(table);
  if (it == tables_.end()) return -1;
  format::ColumnPtr col = it->second->ColumnByName(column);
  if (col == nullptr) return -1;
  // Exact count via value hashes (64-bit collisions are negligible at the
  // cardinalities an estimator cares about).
  std::unordered_set<uint64_t> values;
  values.reserve(col->length());
  for (size_t i = 0; i < col->length(); ++i) {
    values.insert(gdf::HashValueAt(*col, i));
  }
  double ndv = static_cast<double>(values.size());
  ndv_cache_[key] = ndv;
  return ndv;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

uint64_t Catalog::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    (void)name;
    total += table->MemoryUsage();
  }
  return total;
}

}  // namespace sirius::host
