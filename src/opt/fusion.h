// Fusion costing: prices what a fused single-pass execution of a pipeline's
// streaming chain saves over materialized step-at-a-time execution.
//
// Per the Presto-style placement direction ("Accelerating Presto with GPUs",
// PAPERS.md), fusion is a *priced* decision, not a hard-coded one: the
// engine's fused-stage compiler describes each chain abstractly and the
// optimizer credits the skipped HBM round trips and kernel launches.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/device.h"

namespace sirius::opt {

/// Streaming operator kinds a fused pass can flow a selection vector through.
enum class FusedOpKind : uint8_t {
  kFilter,
  kProject,
  kProbe,
};

/// \brief Abstract descriptor of one streaming step of a pipeline, as seen
/// by the fused-stage compiler (planner estimates, not measured values).
struct FusionStepDesc {
  FusedOpKind kind = FusedOpKind::kFilter;
  /// Estimated rows flowing out of the step (< 0 = unknown).
  double est_rows_out = -1;
  /// Estimated bytes of the gathered intermediate the materialized step
  /// would write (< 0 = unknown).
  double est_bytes_out = -1;
  /// Kernel launches the materialized execution pays beyond the operator's
  /// own compute (mask compaction + gather for a filter, two gathers for a
  /// probe, ...).
  int materialize_launches = 2;
};

/// \brief What fusing one chain is worth.
struct FusionDecision {
  bool fuse = false;
  /// Modeled seconds the fused pass saves (HBM round trips + launches).
  double credit_s = 0;
  /// HBM write + read-back traffic the fusion skips, in (unscaled) bytes.
  uint64_t saved_bytes = 0;
  /// Kernel launches skipped (the fused pass itself still launches once).
  int saved_launches = 0;
};

/// \brief Prices fusing `steps` into one pass on `dev`.
///
/// The materialized default writes each step's gathered intermediate to HBM
/// and the next step (or the sink) reads it back: two sequential passes over
/// `est_bytes_out` plus `materialize_launches` launches per step. A fused
/// pass keeps rows in a selection vector and pays a single launch for the
/// whole chain. Unknown estimates credit only the launches — fusing is never
/// priced *worse* than materializing, because the fused pass reads at most
/// what the materialized chain reads.
FusionDecision PriceFusion(const sim::DeviceProfile& dev,
                           const std::vector<FusionStepDesc>& steps,
                           double data_scale = 1.0);

}  // namespace sirius::opt
