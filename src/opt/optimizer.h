// Cost-based plan optimizer: filter pushdown, cross-join -> equi-join
// conversion, greedy join ordering with build-side selection, and column
// pruning.
//
// The `reorder_joins` switch is the planning-policy half of the paper's
// ClickHouse baseline ("not optimized for join-heavy workloads", §4.2):
// with it off, joins stay in syntactic order and always build on the
// right input.

#pragma once

#include "common/result.h"
#include "opt/stats.h"
#include "plan/plan.h"

namespace sirius::opt {

struct OptimizerOptions {
  bool push_filters = true;
  bool reorder_joins = true;
  bool prune_columns = true;
};

/// Optimizes a bound plan. The output plan computes exactly the same result
/// with the same output schema.
Result<plan::PlanPtr> Optimize(const plan::PlanPtr& plan, const StatsProvider& stats,
                               const OptimizerOptions& options = {});

/// Column-pruning pass alone (exposed for tests).
Result<plan::PlanPtr> PruneColumns(const plan::PlanPtr& plan);

}  // namespace sirius::opt
