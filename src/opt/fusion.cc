#include "opt/fusion.h"

#include <algorithm>

namespace sirius::opt {

FusionDecision PriceFusion(const sim::DeviceProfile& dev,
                           const std::vector<FusionStepDesc>& steps,
                           double data_scale) {
  FusionDecision d;
  if (steps.empty()) return d;

  const double gb = 1e9;
  double saved_s = 0;
  uint64_t saved_bytes = 0;
  int saved_launches = 0;
  for (const auto& s : steps) {
    if (s.est_bytes_out > 0) {
      // Materialized execution writes the gathered intermediate and the next
      // consumer reads it back: two streaming passes the fusion skips.
      const double bytes = 2.0 * s.est_bytes_out;
      saved_bytes += static_cast<uint64_t>(bytes);
      saved_s += bytes * data_scale / (dev.mem_bw_gbps * gb);
    }
    saved_launches += s.materialize_launches;
  }
  // The fused pass pays one launch for the whole chain.
  saved_launches = std::max(0, saved_launches - 1);
  saved_s += saved_launches * dev.launch_overhead_us * 1e-6;

  d.fuse = saved_s > 0;
  d.credit_s = saved_s;
  d.saved_bytes = saved_bytes;
  d.saved_launches = saved_launches;
  return d;
}

}  // namespace sirius::opt
