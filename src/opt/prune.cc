// Column pruning: narrows scans and intermediate schemas to the columns
// actually referenced upstream (projection pushdown).

#include <algorithm>
#include <functional>
#include <set>

#include "opt/optimizer.h"

namespace sirius::opt {

using expr::ColIdx;
using expr::Expr;
using expr::ExprPtr;
using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

namespace {

void RemapColumns(Expr* e, const std::vector<int>& old_to_new) {
  if (e->kind == expr::ExprKind::kColumnRef) {
    SIRIUS_CHECK(e->column_index >= 0 &&
                 static_cast<size_t>(e->column_index) < old_to_new.size());
    e->column_index = old_to_new[e->column_index];
    SIRIUS_CHECK(e->column_index >= 0);
  }
  for (const auto& c : e->children) RemapColumns(c.get(), old_to_new);
}

void CollectExprColumns(const ExprPtr& e, std::set<int>* out) {
  if (e == nullptr) return;
  std::vector<int> cols;
  e->CollectColumns(&cols);
  out->insert(cols.begin(), cols.end());
}

/// Prunes `node` so it produces (at least) the columns in `needed`.
/// Fills `old_to_new` (size = original width; -1 for dropped columns).
Result<PlanPtr> Prune(const PlanPtr& node, const std::set<int>& needed,
                      std::vector<int>* old_to_new) {
  const size_t width = node->output_schema.num_fields();
  auto identity_map = [&]() {
    old_to_new->assign(width, 0);
    for (size_t i = 0; i < width; ++i) (*old_to_new)[i] = static_cast<int>(i);
  };

  switch (node->kind) {
    case PlanKind::kTableScan: {
      std::vector<int> keep_cols;
      old_to_new->assign(width, -1);
      for (size_t i = 0; i < width; ++i) {
        if (needed.count(static_cast<int>(i))) {
          (*old_to_new)[i] = static_cast<int>(keep_cols.size());
          keep_cols.push_back(node->scan_columns[i]);
        }
      }
      if (keep_cols.empty()) {  // keep one column so the row count survives
        keep_cols.push_back(node->scan_columns[0]);
        (*old_to_new)[0] = 0;
      }
      auto scan = std::make_shared<PlanNode>(*node);
      scan->scan_columns = keep_cols;
      format::Schema out;
      for (size_t i = 0; i < width; ++i) {
        if ((*old_to_new)[i] >= 0) out.AddField(node->output_schema.field(i));
      }
      scan->output_schema = std::move(out);
      return scan;
    }

    case PlanKind::kFilter: {
      std::set<int> child_needed = needed;
      CollectExprColumns(node->predicate, &child_needed);
      std::vector<int> child_map;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(node->children[0], child_needed, &child_map));
      ExprPtr pred = node->predicate->Clone();
      RemapColumns(pred.get(), child_map);
      *old_to_new = child_map;  // filter passes its child's schema through
      return plan::MakeFilter(child, std::move(pred));
    }

    case PlanKind::kProject: {
      std::set<int> child_needed;
      std::vector<int> kept;
      old_to_new->assign(width, -1);
      for (size_t i = 0; i < width; ++i) {
        if (needed.count(static_cast<int>(i))) {
          (*old_to_new)[i] = static_cast<int>(kept.size());
          kept.push_back(static_cast<int>(i));
          CollectExprColumns(node->projections[i], &child_needed);
        }
      }
      if (kept.empty() && !node->projections.empty()) {
        kept.push_back(0);
        (*old_to_new)[0] = 0;
        CollectExprColumns(node->projections[0], &child_needed);
      }
      std::vector<int> child_map;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(node->children[0], child_needed, &child_map));
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (int i : kept) {
        ExprPtr e = node->projections[i]->Clone();
        RemapColumns(e.get(), child_map);
        exprs.push_back(std::move(e));
        names.push_back(node->projection_names[i]);
      }
      return plan::MakeProject(child, std::move(exprs), std::move(names));
    }

    case PlanKind::kJoin: {
      const size_t lw = node->children[0]->output_schema.num_fields();
      const bool emits_right = node->join_type == plan::JoinType::kInner ||
                               node->join_type == plan::JoinType::kLeft ||
                               node->join_type == plan::JoinType::kCross ||
                               node->join_type == plan::JoinType::kAsof;
      std::set<int> lneed, rneed;
      for (int g : needed) {
        if (g < static_cast<int>(lw)) {
          lneed.insert(g);
        } else {
          rneed.insert(g - static_cast<int>(lw));
        }
      }
      for (int k : node->left_keys) lneed.insert(k);
      for (int k : node->right_keys) rneed.insert(k);
      if (node->join_type == plan::JoinType::kAsof) {
        lneed.insert(node->asof_left_on);
        rneed.insert(node->asof_right_on);
      }
      if (node->residual != nullptr) {
        std::set<int> rescols;
        CollectExprColumns(node->residual, &rescols);
        for (int g : rescols) {
          if (g < static_cast<int>(lw)) {
            lneed.insert(g);
          } else {
            rneed.insert(g - static_cast<int>(lw));
          }
        }
      }
      std::vector<int> lmap, rmap;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr left, Prune(node->children[0], lneed, &lmap));
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr right, Prune(node->children[1], rneed, &rmap));
      std::vector<int> lkeys, rkeys;
      for (size_t k = 0; k < node->left_keys.size(); ++k) {
        lkeys.push_back(lmap[node->left_keys[k]]);
        rkeys.push_back(rmap[node->right_keys[k]]);
      }
      ExprPtr residual;
      if (node->residual != nullptr) {
        const size_t new_lw = left->output_schema.num_fields();
        std::vector<int> combined(lw + node->children[1]->output_schema.num_fields(),
                                  -1);
        for (size_t i = 0; i < lmap.size(); ++i) combined[i] = lmap[i];
        for (size_t i = 0; i < rmap.size(); ++i) {
          combined[lw + i] =
              rmap[i] < 0 ? -1 : rmap[i] + static_cast<int>(new_lw);
        }
        residual = node->residual->Clone();
        RemapColumns(residual.get(), combined);
      }
      PlanPtr join;
      if (node->join_type == plan::JoinType::kAsof) {
        SIRIUS_ASSIGN_OR_RETURN(
            join, plan::MakeAsofJoin(left, right, lkeys, rkeys,
                                     lmap[node->asof_left_on],
                                     rmap[node->asof_right_on]));
      } else {
        SIRIUS_ASSIGN_OR_RETURN(
            join, plan::MakeJoin(left, right, node->join_type, lkeys, rkeys,
                                 std::move(residual)));
      }
      const size_t new_lw = left->output_schema.num_fields();
      old_to_new->assign(width, -1);
      for (size_t i = 0; i < lmap.size(); ++i) (*old_to_new)[i] = lmap[i];
      if (emits_right) {
        for (size_t i = 0; i < rmap.size(); ++i) {
          (*old_to_new)[lw + i] =
              rmap[i] < 0 ? -1 : rmap[i] + static_cast<int>(new_lw);
        }
      }
      return join;
    }

    case PlanKind::kAggregate: {
      // Group keys always survive (they define the grouping); unused
      // aggregates are dropped.
      const size_t num_keys = node->group_by.size();
      std::set<int> child_needed;
      for (int k : node->group_by) child_needed.insert(k);
      std::vector<int> kept_aggs;
      for (size_t a = 0; a < node->aggregates.size(); ++a) {
        if (needed.count(static_cast<int>(num_keys + a))) {
          kept_aggs.push_back(static_cast<int>(a));
          if (node->aggregates[a].arg_column >= 0) {
            child_needed.insert(node->aggregates[a].arg_column);
          }
        }
      }
      if (kept_aggs.empty() && !node->aggregates.empty() && num_keys == 0) {
        // Global aggregate with nothing needed: keep one (row count shape).
        kept_aggs.push_back(0);
        if (node->aggregates[0].arg_column >= 0) {
          child_needed.insert(node->aggregates[0].arg_column);
        }
      }
      std::vector<int> child_map;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(node->children[0], child_needed, &child_map));
      std::vector<int> group_by;
      for (int k : node->group_by) group_by.push_back(child_map[k]);
      std::vector<plan::AggItem> aggs;
      for (int a : kept_aggs) {
        plan::AggItem item = node->aggregates[a];
        if (item.arg_column >= 0) item.arg_column = child_map[item.arg_column];
        aggs.push_back(std::move(item));
      }
      old_to_new->assign(width, -1);
      for (size_t k = 0; k < num_keys; ++k) (*old_to_new)[k] = static_cast<int>(k);
      for (size_t j = 0; j < kept_aggs.size(); ++j) {
        (*old_to_new)[num_keys + kept_aggs[j]] = static_cast<int>(num_keys + j);
      }
      return plan::MakeAggregate(child, std::move(group_by), std::move(aggs));
    }

    case PlanKind::kSort: {
      std::set<int> child_needed = needed;
      for (const auto& k : node->sort_keys) child_needed.insert(k.column);
      std::vector<int> child_map;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(node->children[0], child_needed, &child_map));
      std::vector<plan::SortKey> keys;
      for (const auto& k : node->sort_keys) {
        keys.push_back({child_map[k.column], k.descending});
      }
      *old_to_new = child_map;
      return plan::MakeSort(child, std::move(keys));
    }

    case PlanKind::kLimit: {
      std::vector<int> child_map;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(node->children[0], needed, &child_map));
      *old_to_new = child_map;
      return plan::MakeLimit(child, node->limit, node->offset);
    }

    case PlanKind::kDistinct: {
      // Distinct deduplicates whole rows: every column is semantically
      // load-bearing, so nothing below it may be dropped.
      std::set<int> all;
      for (size_t i = 0; i < node->children[0]->output_schema.num_fields(); ++i) {
        all.insert(static_cast<int>(i));
      }
      std::vector<int> child_map;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(node->children[0], all, &child_map));
      identity_map();
      return plan::MakeDistinct(child);
    }

    case PlanKind::kExchange: {
      std::set<int> child_needed = needed;
      for (int k : node->partition_keys) child_needed.insert(k);
      std::vector<int> child_map;
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr child,
                              Prune(node->children[0], child_needed, &child_map));
      std::vector<int> keys;
      for (int k : node->partition_keys) keys.push_back(child_map[k]);
      *old_to_new = child_map;
      return plan::MakeExchange(child, node->exchange, std::move(keys));
    }
  }
  return Status::Internal("prune: unhandled node");
}

}  // namespace

Result<PlanPtr> PruneColumns(const PlanPtr& plan) {
  std::set<int> all;
  for (size_t i = 0; i < plan->output_schema.num_fields(); ++i) {
    all.insert(static_cast<int>(i));
  }
  std::vector<int> map;
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr pruned, Prune(plan, all, &map));
  // Restore the exact original schema (order + names) if anything moved.
  bool identity = pruned->output_schema.Equals(plan->output_schema);
  if (identity) return pruned;
  std::vector<ExprPtr> proj;
  std::vector<std::string> names;
  for (size_t i = 0; i < plan->output_schema.num_fields(); ++i) {
    SIRIUS_CHECK(map[i] >= 0);
    proj.push_back(ColIdx(map[i], plan->output_schema.field(i).type));
    names.push_back(plan->output_schema.field(i).name);
  }
  return plan::MakeProject(pruned, std::move(proj), std::move(names));
}

}  // namespace sirius::opt
