// Statistics and cardinality estimation for the cost-based optimizer.

#pragma once

#include <map>
#include <string>

#include "plan/plan.h"

namespace sirius::opt {

/// \brief Table cardinalities, supplied by the host database's catalog.
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  /// Row count of a base table; <0 when unknown.
  virtual double TableRows(const std::string& name) const = 0;
  /// Distinct values in a base-table column; <0 when unknown.
  virtual double ColumnDistinct(const std::string& table,
                                const std::string& column) const {
    (void)table;
    (void)column;
    return -1;
  }
};

/// Fixed map-based provider (tests, and the DuckX catalog adapter).
class MapStats : public StatsProvider {
 public:
  explicit MapStats(std::map<std::string, double> rows) : rows_(std::move(rows)) {}
  double TableRows(const std::string& name) const override {
    auto it = rows_.find(name);
    return it == rows_.end() ? -1 : it->second;
  }

 private:
  std::map<std::string, double> rows_;
};

/// Heuristic selectivity of a bound predicate (textbook constants: equality
/// 0.05, range 0.3, LIKE 0.15, conjunction multiplies, disjunction adds).
double EstimateSelectivity(const expr::Expr& pred);

/// Bottom-up output-cardinality estimate of a plan node.
double EstimateRows(const plan::PlanNode& node, const StatsProvider& stats);

/// Distinct-value estimate for output column `col` of `node` (NDV),
/// capped at the node's row estimate.
double EstimateDistinct(const plan::PlanNode& node, int col,
                        const StatsProvider& stats);

/// Annotates `estimated_rows` through the tree (for EXPLAIN and ordering).
void AnnotateEstimates(plan::PlanNode* node, const StatsProvider& stats);

}  // namespace sirius::opt
