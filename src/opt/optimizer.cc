#include "opt/optimizer.h"

#include <algorithm>
#include <functional>
#include <set>

namespace sirius::opt {

using expr::ColIdx;
using expr::Expr;
using expr::ExprKind;
using expr::ExprPtr;
using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

namespace {

// ---------------------------------------------------------------------------
// Expression index utilities
// ---------------------------------------------------------------------------

void RemapColumns(Expr* e, const std::function<int(int)>& fn) {
  if (e->kind == ExprKind::kColumnRef) {
    e->column_index = fn(e->column_index);
    SIRIUS_CHECK(e->column_index >= 0);
  }
  for (const auto& c : e->children) RemapColumns(c.get(), fn);
}

ExprPtr CloneShifted(const Expr& e, int delta) {
  ExprPtr out = e.Clone();
  RemapColumns(out.get(), [delta](int i) { return i + delta; });
  return out;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bop == expr::BinaryOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

// ---------------------------------------------------------------------------
// Region flattening: Filter / inner / cross join trees
// ---------------------------------------------------------------------------

bool IsRegionInternal(const PlanNode& n) {
  if (n.kind == PlanKind::kFilter) return true;
  if (n.kind == PlanKind::kJoin &&
      (n.join_type == plan::JoinType::kInner ||
       n.join_type == plan::JoinType::kCross) &&
      n.residual == nullptr) {
    return true;
  }
  // Inner joins with residuals also flatten: the residual becomes a conjunct.
  if (n.kind == PlanKind::kJoin && n.join_type == plan::JoinType::kInner) {
    return true;
  }
  return false;
}

struct FlatRel {
  PlanPtr plan;
  size_t offset = 0;  ///< first column position in the flattened schema
  size_t width = 0;
  double est = 0;
  std::vector<ExprPtr> filters;  ///< pushed single-relation conjuncts (local)
};

size_t Flatten(const PlanPtr& node, size_t base, std::vector<FlatRel>* rels,
               std::vector<ExprPtr>* conjuncts) {
  if (node->kind == PlanKind::kFilter) {
    size_t w = Flatten(node->children[0], base, rels, conjuncts);
    std::vector<ExprPtr> parts;
    SplitConjuncts(node->predicate, &parts);
    for (const auto& p : parts) {
      conjuncts->push_back(CloneShifted(*p, static_cast<int>(base)));
    }
    return w;
  }
  if (IsRegionInternal(*node)) {  // inner or cross join
    size_t lw = Flatten(node->children[0], base, rels, conjuncts);
    size_t rw = Flatten(node->children[1], base + lw, rels, conjuncts);
    const auto& l_schema = node->children[0]->output_schema;
    const auto& r_schema = node->children[1]->output_schema;
    for (size_t k = 0; k < node->left_keys.size(); ++k) {
      int li = node->left_keys[k];
      int ri = node->right_keys[k];
      conjuncts->push_back(expr::Eq(
          ColIdx(static_cast<int>(base) + li, l_schema.field(li).type),
          ColIdx(static_cast<int>(base + lw) + ri, r_schema.field(ri).type)));
    }
    if (node->residual != nullptr) {
      std::vector<ExprPtr> parts;
      SplitConjuncts(node->residual, &parts);
      for (const auto& p : parts) {
        conjuncts->push_back(CloneShifted(*p, static_cast<int>(base)));
      }
    }
    return lw + rw;
  }
  FlatRel rel;
  rel.plan = node;
  rel.offset = base;
  rel.width = node->output_schema.num_fields();
  rels->push_back(std::move(rel));
  return rels->back().width;
}

void SplitDisjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary && e->bop == expr::BinaryOp::kOr) {
    SplitDisjuncts(e->children[0], out);
    SplitDisjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

/// For OR-of-AND conjuncts (TPC-H Q19 shape), appends the factors common to
/// every OR branch as additional conjuncts. The original OR stays in place
/// (redundant but correct), while the extracted equality factors become join
/// edges instead of forcing a cross product.
void ExtractOrCommonFactors(std::vector<ExprPtr>* conjuncts) {
  std::vector<ExprPtr> extracted;
  for (const auto& c : *conjuncts) {
    if (c->kind != ExprKind::kBinary || c->bop != expr::BinaryOp::kOr) continue;
    std::vector<ExprPtr> branches;
    SplitDisjuncts(c, &branches);
    if (branches.size() < 2) continue;
    std::vector<ExprPtr> first;
    SplitConjuncts(branches[0], &first);
    for (const auto& candidate : first) {
      const std::string rendered = candidate->ToString();
      bool in_all = true;
      for (size_t b = 1; b < branches.size() && in_all; ++b) {
        std::vector<ExprPtr> parts;
        SplitConjuncts(branches[b], &parts);
        bool found = false;
        for (const auto& p : parts) found |= p->ToString() == rendered;
        in_all = found;
      }
      if (in_all) extracted.push_back(candidate->Clone());
    }
  }
  for (auto& e : extracted) conjuncts->push_back(std::move(e));
}

int RelOfColumn(const std::vector<FlatRel>& rels, int global) {
  for (size_t i = 0; i < rels.size(); ++i) {
    if (static_cast<size_t>(global) >= rels[i].offset &&
        static_cast<size_t>(global) < rels[i].offset + rels[i].width) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// An equi-join edge between two relations.
struct JoinEdge {
  int rel_a, col_a;  ///< local column
  int rel_b, col_b;
  bool used = false;
};

// ---------------------------------------------------------------------------
// Region re-planning
// ---------------------------------------------------------------------------

class RegionPlanner {
 public:
  RegionPlanner(const StatsProvider& stats, const OptimizerOptions& options,
                std::function<Result<PlanPtr>(const PlanPtr&)> optimize_child)
      : stats_(stats), options_(options), optimize_child_(std::move(optimize_child)) {}

  Result<PlanPtr> Plan(const PlanPtr& region_root) {
    std::vector<FlatRel> rels;
    std::vector<ExprPtr> conjuncts;
    Flatten(region_root, 0, &rels, &conjuncts);
    ExtractOrCommonFactors(&conjuncts);

    // Optimize each base relation's subtree first.
    for (auto& r : rels) {
      SIRIUS_ASSIGN_OR_RETURN(r.plan, optimize_child_(r.plan));
    }

    // Classify conjuncts.
    std::vector<JoinEdge> edges;
    struct PostConjunct {
      ExprPtr pred;
      std::set<int> rels;
    };
    std::vector<PostConjunct> post;
    for (const auto& c : conjuncts) {
      std::vector<int> cols;
      c->CollectColumns(&cols);
      std::set<int> touched;
      for (int g : cols) touched.insert(RelOfColumn(rels, g));
      if (touched.size() <= 1 && options_.push_filters) {
        int rid = touched.empty() ? 0 : *touched.begin();
        ExprPtr local = c->Clone();
        int off = static_cast<int>(rels[rid].offset);
        RemapColumns(local.get(), [off](int i) { return i - off; });
        rels[rid].filters.push_back(std::move(local));
        continue;
      }
      if (touched.size() == 2 && c->kind == ExprKind::kBinary &&
          c->bop == expr::BinaryOp::kEq &&
          c->children[0]->kind == ExprKind::kColumnRef &&
          c->children[1]->kind == ExprKind::kColumnRef) {
        int ga = c->children[0]->column_index;
        int gb = c->children[1]->column_index;
        int ra = RelOfColumn(rels, ga);
        int rb = RelOfColumn(rels, gb);
        edges.push_back({ra, ga - static_cast<int>(rels[ra].offset), rb,
                         gb - static_cast<int>(rels[rb].offset), false});
        continue;
      }
      post.push_back({c->Clone(), touched});
    }

    // Apply pushed filters; estimate.
    for (auto& r : rels) {
      if (!r.filters.empty()) {
        ExprPtr pred = expr::ConjoinAll(r.filters);
        SIRIUS_ASSIGN_OR_RETURN(r.plan, plan::MakeFilter(r.plan, pred));
      }
      r.est = EstimateRows(*r.plan, stats_);
    }

    // Join order.
    std::vector<int> order(rels.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    if (options_.reorder_joins && rels.size() > 2) {
      order = GreedyOrder(rels, edges);
    }

    // Build the tree.
    PlanPtr current = rels[order[0]].plan;
    double cur_est = rels[order[0]].est;
    std::vector<int> position(rels.size(), -1);  // rel -> column offset
    position[order[0]] = 0;
    std::set<int> in_set{order[0]};

    auto remap_post = [&](const ExprPtr& pred) {
      ExprPtr out = pred->Clone();
      RemapColumns(out.get(), [&](int g) {
        int rid = RelOfColumn(rels, g);
        return position[rid] + (g - static_cast<int>(rels[rid].offset));
      });
      return out;
    };

    for (size_t step = 1; step < order.size(); ++step) {
      int rid = order[step];
      const FlatRel& r = rels[rid];
      // Keys between the current set and r.
      std::vector<int> lkeys, rkeys;
      for (auto& e : edges) {
        if (e.used) continue;
        int in_rel = -1, new_col = -1, in_col = -1;
        if (e.rel_a == rid && in_set.count(e.rel_b)) {
          in_rel = e.rel_b;
          new_col = e.col_a;
          in_col = e.col_b;
        } else if (e.rel_b == rid && in_set.count(e.rel_a)) {
          in_rel = e.rel_a;
          new_col = e.col_b;
          in_col = e.col_a;
        } else {
          continue;
        }
        lkeys.push_back(position[in_rel] + in_col);
        rkeys.push_back(new_col);
        e.used = true;
      }
      const size_t cur_width = current->output_schema.num_fields();
      // Build side is the right join input; put the smaller side there.
      PlanPtr next;
      if (lkeys.empty()) {
        SIRIUS_ASSIGN_OR_RETURN(
            next, plan::MakeJoin(current, r.plan, plan::JoinType::kCross, {}, {}));
        position[rid] = static_cast<int>(cur_width);
      } else if (r.est <= cur_est || !options_.reorder_joins) {
        // Probe with the accumulated (larger) side, build on r.
        SIRIUS_ASSIGN_OR_RETURN(
            next, plan::MakeJoin(current, r.plan, plan::JoinType::kInner, lkeys,
                                 rkeys));
        position[rid] = static_cast<int>(cur_width);
      } else {
        // r is larger: make it the probe side, build on the accumulated set.
        SIRIUS_ASSIGN_OR_RETURN(
            next, plan::MakeJoin(r.plan, current, plan::JoinType::kInner, rkeys,
                                 lkeys));
        const int r_width = static_cast<int>(r.width);
        for (int& p : position) {
          if (p >= 0) p += r_width;
        }
        position[rid] = 0;
      }
      current = std::move(next);
      in_set.insert(rid);
      cur_est = EstimateRows(*current, stats_);

      // Apply post conjuncts that just became evaluable.
      std::vector<ExprPtr> ready;
      for (auto& pc : post) {
        if (pc.pred == nullptr) continue;
        bool ok = true;
        for (int need : pc.rels) ok &= in_set.count(need) > 0;
        if (ok) {
          ready.push_back(remap_post(pc.pred));
          pc.pred = nullptr;
        }
      }
      if (!ready.empty()) {
        SIRIUS_ASSIGN_OR_RETURN(
            current, plan::MakeFilter(current, expr::ConjoinAll(ready)));
        cur_est = EstimateRows(*current, stats_);
      }
    }

    // Single-relation regions may still have post conjuncts (e.g. filters
    // over one relation when pushdown is disabled).
    {
      std::vector<ExprPtr> ready;
      for (auto& pc : post) {
        if (pc.pred != nullptr) {
          ready.push_back(remap_post(pc.pred));
          pc.pred = nullptr;
        }
      }
      if (!ready.empty()) {
        SIRIUS_ASSIGN_OR_RETURN(
            current, plan::MakeFilter(current, expr::ConjoinAll(ready)));
      }
    }
    // Unused edges (both relations already joined through other edges):
    // apply as filters.
    {
      std::vector<ExprPtr> ready;
      for (const auto& e : edges) {
        if (e.used) continue;
        int ga = static_cast<int>(rels[e.rel_a].offset) + e.col_a;
        int gb = static_cast<int>(rels[e.rel_b].offset) + e.col_b;
        ExprPtr eq = expr::Eq(
            ColIdx(ga, rels[e.rel_a].plan->output_schema.field(e.col_a).type),
            ColIdx(gb, rels[e.rel_b].plan->output_schema.field(e.col_b).type));
        ready.push_back(remap_post(eq));
      }
      if (!ready.empty()) {
        SIRIUS_ASSIGN_OR_RETURN(
            current, plan::MakeFilter(current, expr::ConjoinAll(ready)));
      }
    }

    // Restore the original column order.
    bool identity = true;
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    const auto& schema = region_root->output_schema;
    for (size_t g = 0; g < schema.num_fields(); ++g) {
      int rid = RelOfColumn(rels, static_cast<int>(g));
      int pos = position[rid] + (static_cast<int>(g) -
                                 static_cast<int>(rels[rid].offset));
      if (pos != static_cast<int>(g)) identity = false;
      proj.push_back(ColIdx(pos, schema.field(g).type));
      names.push_back(schema.field(g).name);
    }
    if (identity && current->output_schema.num_fields() == schema.num_fields()) {
      return current;
    }
    return plan::MakeProject(current, std::move(proj), std::move(names));
  }

 private:
  /// Multi-start greedy: simulates a greedy expansion from every possible
  /// first relation and keeps the order with the smallest total intermediate
  /// cardinality. Join sizes use the NDV formula |L||R| / max_key(ndv).
  std::vector<int> GreedyOrder(const std::vector<FlatRel>& rels,
                               const std::vector<JoinEdge>& edges) {
    const size_t n = rels.size();
    // Per-edge denominator: the larger distinct count of its two key sides.
    std::vector<double> edge_den(edges.size(), 1.0);
    for (size_t e = 0; e < edges.size(); ++e) {
      double na = EstimateDistinct(*rels[edges[e].rel_a].plan, edges[e].col_a,
                                   stats_);
      double nb = EstimateDistinct(*rels[edges[e].rel_b].plan, edges[e].col_b,
                                   stats_);
      edge_den[e] = std::max(1.0, std::max(na, nb));
    }

    std::vector<int> best_order;
    double best_total = 0;
    for (size_t start = 0; start < n; ++start) {
      std::vector<bool> chosen(n, false);
      std::vector<int> order{static_cast<int>(start)};
      chosen[start] = true;
      double cur = rels[start].est;
      double total = cur;
      while (order.size() < n) {
        int best = -1;
        double best_cost = 0;
        bool best_connected = false;
        for (size_t i = 0; i < n; ++i) {
          if (chosen[i]) continue;
          double den = 0;  // 0 == disconnected
          for (size_t e = 0; e < edges.size(); ++e) {
            const auto& edge = edges[e];
            if ((edge.rel_a == static_cast<int>(i) && chosen[edge.rel_b]) ||
                (edge.rel_b == static_cast<int>(i) && chosen[edge.rel_a])) {
              den = std::max(den, edge_den[e]);
            }
          }
          const bool connected = den > 0;
          double cost = connected ? std::max(1.0, cur * rels[i].est / den)
                                  : cur * rels[i].est;
          if (best < 0 || (connected && !best_connected) ||
              (connected == best_connected && cost < best_cost)) {
            best = static_cast<int>(i);
            best_cost = cost;
            best_connected = connected;
          }
        }
        order.push_back(best);
        chosen[best] = true;
        cur = best_cost;
        total += cur;
      }
      if (best_order.empty() || total < best_total) {
        best_order = order;
        best_total = total;
      }
    }
    return best_order;
  }

  const StatsProvider& stats_;
  const OptimizerOptions& options_;
  std::function<Result<PlanPtr>(const PlanPtr&)> optimize_child_;
};

Result<PlanPtr> OptimizeNode(const PlanPtr& node, const StatsProvider& stats,
                             const OptimizerOptions& options) {
  if (node->kind == PlanKind::kFilter || IsRegionInternal(*node)) {
    RegionPlanner planner(stats, options, [&](const PlanPtr& child) {
      return OptimizeNode(child, stats, options);
    });
    return planner.Plan(node);
  }
  auto copy = std::make_shared<PlanNode>(*node);
  for (auto& c : copy->children) {
    SIRIUS_ASSIGN_OR_RETURN(c, OptimizeNode(c, stats, options));
  }
  return copy;
}

}  // namespace

Result<PlanPtr> Optimize(const PlanPtr& plan, const StatsProvider& stats,
                         const OptimizerOptions& options) {
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr optimized, OptimizeNode(plan, stats, options));
  if (options.prune_columns) {
    SIRIUS_ASSIGN_OR_RETURN(optimized, PruneColumns(optimized));
  }
  AnnotateEstimates(optimized.get(), stats);
  SIRIUS_RETURN_NOT_OK(optimized->Validate());
  if (!optimized->output_schema.Equals(plan->output_schema)) {
    return Status::Internal("optimizer changed the output schema");
  }
  return optimized;
}

}  // namespace sirius::opt
