#include "opt/stats.h"

#include <algorithm>
#include <cmath>

namespace sirius::opt {

using expr::BinaryOp;
using expr::Expr;
using expr::ExprKind;

double EstimateSelectivity(const Expr& pred) {
  switch (pred.kind) {
    case ExprKind::kBinary:
      switch (pred.bop) {
        case BinaryOp::kAnd:
          return EstimateSelectivity(*pred.children[0]) *
                 EstimateSelectivity(*pred.children[1]);
        case BinaryOp::kOr: {
          double a = EstimateSelectivity(*pred.children[0]);
          double b = EstimateSelectivity(*pred.children[1]);
          return std::min(1.0, a + b - a * b);
        }
        case BinaryOp::kEq:
          return 0.05;
        case BinaryOp::kNe:
          return 0.9;
        default:
          return 0.3;  // range predicates
      }
    case ExprKind::kUnary:
      if (pred.uop == expr::UnaryOp::kNot) {
        return std::max(0.05, 1.0 - EstimateSelectivity(*pred.children[0]));
      }
      return 0.5;
    case ExprKind::kFunction:
      if (pred.fop == expr::FuncOp::kLike) return 0.15;
      if (pred.fop == expr::FuncOp::kNotLike) return 0.85;
      return 0.5;
    case ExprKind::kInList:
      return std::min(1.0, 0.05 * static_cast<double>(pred.in_list.size()));
    default:
      return 0.5;
  }
}

double EstimateRows(const plan::PlanNode& node, const StatsProvider& stats) {
  using plan::PlanKind;
  switch (node.kind) {
    case PlanKind::kTableScan: {
      double r = stats.TableRows(node.table_name);
      return r < 0 ? 1000.0 : r;
    }
    case PlanKind::kFilter: {
      double child = EstimateRows(*node.children[0], stats);
      return std::max(1.0, child * EstimateSelectivity(*node.predicate));
    }
    case PlanKind::kProject:
    case PlanKind::kExchange:
      return EstimateRows(*node.children[0], stats);
    case PlanKind::kJoin: {
      double l = EstimateRows(*node.children[0], stats);
      double r = EstimateRows(*node.children[1], stats);
      switch (node.join_type) {
        case plan::JoinType::kCross:
          return l * r;
        case plan::JoinType::kSemi:
          return std::max(1.0, l * 0.5);
        case plan::JoinType::kAnti:
          return std::max(1.0, l * 0.5);
        case plan::JoinType::kLeft:
          return std::max(l, l * r / std::max(1.0, std::max(l, r)));
        case plan::JoinType::kAsof:
          return l;  // exactly one (or zero) match per left row
        case plan::JoinType::kInner: {
          if (node.left_keys.empty()) return l * r;
          // Textbook NDV formula: |L ⋈ R| = |L||R| / max_k(ndv) — the
          // denominator is the largest per-key distinct count.
          double den = 1.0;
          for (size_t k = 0; k < node.left_keys.size(); ++k) {
            double nl = EstimateDistinct(*node.children[0], node.left_keys[k],
                                         stats);
            double nr = EstimateDistinct(*node.children[1], node.right_keys[k],
                                         stats);
            den = std::max(den, std::max(nl, nr));
          }
          double sel = 1.0;
          if (node.residual != nullptr) sel = EstimateSelectivity(*node.residual);
          return std::max(1.0, l * r / den * sel);
        }
      }
      return l * r;
    }
    case PlanKind::kAggregate: {
      double child = EstimateRows(*node.children[0], stats);
      if (node.group_by.empty()) return 1.0;
      // sqrt heuristic, capped by input size.
      return std::max(1.0, std::min(child, 30.0 * std::sqrt(child)));
    }
    case PlanKind::kSort:
      return EstimateRows(*node.children[0], stats);
    case PlanKind::kDistinct:
      return std::max(1.0, EstimateRows(*node.children[0], stats) * 0.5);
    case PlanKind::kLimit: {
      double child = EstimateRows(*node.children[0], stats);
      return node.limit >= 0 ? std::min(child, static_cast<double>(node.limit))
                             : child;
    }
  }
  return 1000.0;
}

double EstimateDistinct(const plan::PlanNode& node, int col,
                        const StatsProvider& stats) {
  using plan::PlanKind;
  const double rows = EstimateRows(node, stats);
  double ndv = rows;
  switch (node.kind) {
    case PlanKind::kTableScan: {
      double d = stats.ColumnDistinct(node.table_name,
                                      node.output_schema.field(col).name);
      ndv = d < 0 ? rows : d;
      break;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
    case PlanKind::kExchange:
      ndv = EstimateDistinct(*node.children[0], col, stats);
      break;
    case PlanKind::kProject: {
      const auto& e = node.projections[col];
      if (e->kind == expr::ExprKind::kColumnRef) {
        ndv = EstimateDistinct(*node.children[0], e->column_index, stats);
      }
      break;
    }
    case PlanKind::kJoin: {
      const int lw =
          static_cast<int>(node.children[0]->output_schema.num_fields());
      ndv = col < lw
                ? EstimateDistinct(*node.children[0], col, stats)
                : EstimateDistinct(*node.children[1], col - lw, stats);
      break;
    }
    case PlanKind::kAggregate: {
      if (col < static_cast<int>(node.group_by.size())) {
        ndv = EstimateDistinct(*node.children[0], node.group_by[col], stats);
      }
      break;
    }
  }
  return std::max(1.0, std::min(ndv, rows));
}

void AnnotateEstimates(plan::PlanNode* node, const StatsProvider& stats) {
  for (const auto& c : node->children) AnnotateEstimates(c.get(), stats);
  node->estimated_rows = EstimateRows(*node, stats);
}

}  // namespace sirius::opt
