// QueryProfile exporters: Chrome trace-event JSON and a text summary.

#pragma once

#include <string>

#include "obs/trace.h"

namespace sirius::obs {

/// Serializes `profile` in Chrome trace-event format (the JSON object form:
/// `{"traceEvents": [...]}`), loadable in chrome://tracing or Perfetto.
/// Simulated seconds map to microseconds; each track becomes one named
/// thread under pid 0. Output is deterministic: spans in profile order
/// (already canonically sorted by Finish()), timestamps with fixed
/// precision, no pointers or insertion-order ids.
std::string ToChromeTraceJson(const QueryProfile& profile);

/// Human-readable summary: per-category simulated-time totals, the slowest
/// spans, and the counter/gauge block. `top_n` bounds the span list.
std::string ToTextSummary(const QueryProfile& profile, size_t top_n = 10);

}  // namespace sirius::obs
