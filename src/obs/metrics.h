// Process-lifetime metrics registry.
//
// Counters are monotonically increasing atomics that writers bump without a
// lock. Reset() does not zero them — it captures per-counter baselines under
// the registry mutex, and Snapshot() reports value-minus-baseline under the
// same mutex. That makes Reset/Snapshot atomic with respect to each other,
// so a reset concurrent with a running query can never produce a torn view
// (some counters reset, others not) or a lost increment: the underlying
// totals only ever grow. SiriusEngine::Stats is a view over one of these.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sirius::obs {

/// \brief One lock-free monotone counter. Obtained from a MetricsRegistry;
/// pointers remain stable for the registry's lifetime.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raw monotone total, ignoring baselines. Mostly for tests.
  uint64_t raw() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
  uint64_t baseline_ = 0;  ///< guarded by the registry mutex
};

/// \brief Named counters and gauges with snapshot-consistent reset.
///
/// Thread-safe. Counter writers never contend with readers; Snapshot() and
/// Reset() serialize on one mutex.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use. The
  /// returned pointer is stable; hot paths should cache it.
  Counter* GetCounter(const std::string& name);

  /// Sets a gauge to its latest value.
  void SetGauge(const std::string& name, double value);

  /// Counter values since the last Reset(), all read under one lock.
  std::map<std::string, uint64_t> Snapshot() const;
  /// Latest gauge values.
  std::map<std::string, double> Gauges() const;

  /// Rebases every counter so subsequent Snapshot()s start from zero.
  /// Atomic with respect to Snapshot(); safe while writers are running.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace sirius::obs
