#include "obs/trace.h"

#include <algorithm>

namespace sirius::obs {

double SpanRecord::Attr(const std::string& key, double fallback) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return fallback;
}

std::vector<const SpanRecord*> QueryProfile::SpansInCategory(
    const std::string& category) const {
  std::vector<const SpanRecord*> out;
  for (const auto& s : spans) {
    if (category.empty() || s.category == category) out.push_back(&s);
  }
  return out;
}

std::vector<const SpanRecord*> QueryProfile::SpansNamed(
    const std::string& prefix) const {
  std::vector<const SpanRecord*> out;
  for (const auto& s : spans) {
    if (s.name.compare(0, prefix.size(), prefix) == 0) out.push_back(&s);
  }
  return out;
}

size_t QueryProfile::CountCategory(const std::string& category) const {
  return SpansInCategory(category).size();
}

size_t QueryProfile::CountNamed(const std::string& prefix) const {
  return SpansNamed(prefix).size();
}

uint64_t QueryProfile::Counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double QueryProfile::MaxEnd() const {
  double m = 0.0;
  for (const auto& s : spans) m = std::max(m, s.end_s);
  return m;
}

TraceRecorder::TraceRecorder() : TraceRecorder(Options()) {}

TraceRecorder::TraceRecorder(Options options)
    : enabled_(options.enabled),
      unbounded_(options.unbounded),
      capacity_(options.capacity) {
  if (enabled_ && !unbounded_) spans_.reserve(capacity_);
}

TrackId TraceRecorder::RegisterTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<TrackId>(i);
  }
  tracks_.push_back(name);
  return static_cast<TrackId>(tracks_.size() - 1);
}

SpanId TraceRecorder::BeginSpan(TrackId track, std::string name,
                                std::string category, double start_s) {
  if (!enabled_) return kInvalidSpan;
  std::lock_guard<std::mutex> lock(mu_);
  if (!unbounded_ && spans_.size() >= capacity_) {
    ++dropped_;
    return kInvalidSpan;
  }
  SpanRecord rec;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.track = track;
  rec.start_s = start_s;
  rec.end_s = start_s;
  spans_.push_back(std::move(rec));
  return static_cast<SpanId>(spans_.size() - 1);
}

void TraceRecorder::EndSpan(SpanId span, double end_s) {
  if (span < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<size_t>(span) < spans_.size()) {
    spans_[static_cast<size_t>(span)].end_s = end_s;
  }
}

void TraceRecorder::SetAttr(SpanId span, const std::string& key, double value) {
  if (span < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<size_t>(span) < spans_.size()) {
    spans_[static_cast<size_t>(span)].attrs.emplace_back(key, value);
  }
}

void TraceRecorder::AddComplete(
    TrackId track, std::string name, std::string category, double start_s,
    double end_s, std::vector<std::pair<std::string, double>> attrs) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!unbounded_ && spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  SpanRecord rec;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.track = track;
  rec.start_s = start_s;
  rec.end_s = end_s;
  rec.attrs = std::move(attrs);
  spans_.push_back(std::move(rec));
}

void TraceRecorder::AddInstant(TrackId track, std::string name,
                               std::string category, double at_s) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!unbounded_ && spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  SpanRecord rec;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.track = track;
  rec.start_s = at_s;
  rec.end_s = at_s;
  rec.instant = true;
  spans_.push_back(std::move(rec));
}

void TraceRecorder::AddCounter(const std::string& name, uint64_t delta) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void TraceRecorder::SetGauge(const std::string& name, double value) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

uint64_t TraceRecorder::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

QueryProfile TraceRecorder::Finish() const {
  QueryProfile profile;
  {
    std::lock_guard<std::mutex> lock(mu_);
    profile.tracks = tracks_;
    profile.spans = spans_;
    profile.counters = counters_;
    profile.gauges = gauges_;
    profile.dropped_spans = dropped_;
  }
  // Deterministic order: thread-pool interleaving permutes insertion order
  // across tracks, but within one track recording is single-threaded, so a
  // stable sort by (track, start) reproduces one canonical layout.
  std::stable_sort(profile.spans.begin(), profile.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.track != b.track) return a.track < b.track;
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     return a.name < b.name;
                   });
  return profile;
}

Span::Span(TraceRecorder* recorder, TrackId track, std::string name,
           std::string category, const Clock& clock)
    : recorder_(recorder), clock_(clock) {
  if (recorder_ != nullptr) {
    id_ = recorder_->BeginSpan(track, std::move(name), std::move(category),
                               clock_.Now());
  }
}

Span::Span(Span&& other) noexcept
    : recorder_(other.recorder_), id_(other.id_), clock_(other.clock_) {
  other.recorder_ = nullptr;
  other.id_ = kInvalidSpan;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    recorder_ = other.recorder_;
    id_ = other.id_;
    clock_ = other.clock_;
    other.recorder_ = nullptr;
    other.id_ = kInvalidSpan;
  }
  return *this;
}

void Span::SetAttr(const std::string& key, double value) {
  if (recorder_ != nullptr) recorder_->SetAttr(id_, key, value);
}

void Span::End() {
  if (recorder_ != nullptr && id_ != kInvalidSpan) {
    recorder_->EndSpan(id_, clock_.Now());
  }
  recorder_ = nullptr;
  id_ = kInvalidSpan;
}

}  // namespace sirius::obs
