#include "obs/metrics.h"

namespace sirius::obs {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->raw() - counter->baseline_;
  }
  return out;
}

std::map<std::string, double> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->baseline_ = counter->raw();
  }
  gauges_.clear();
}

}  // namespace sirius::obs
