#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace sirius::obs {
namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Fixed-precision decimal so exports are byte-stable across platforms.
std::string FormatMicros(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string FormatAttr(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string ToChromeTraceJson(const QueryProfile& profile) {
  std::string out;
  out.reserve(256 + profile.spans.size() * 160);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // One named "thread" per track so the UI labels the lanes.
  for (size_t t = 0; t < profile.tracks.size(); ++t) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(t) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendJsonString(&out, profile.tracks[t]);
    out += "}}";
  }
  for (const auto& s : profile.spans) {
    comma();
    out += "{\"ph\":";
    out += s.instant ? "\"i\"" : "\"X\"";
    out += ",\"pid\":0,\"tid\":" + std::to_string(s.track) + ",\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"cat\":";
    AppendJsonString(&out, s.category);
    out += ",\"ts\":" + FormatMicros(s.start_s);
    if (s.instant) {
      out += ",\"s\":\"t\"";
    } else {
      out += ",\"dur\":" + FormatMicros(s.duration_s());
    }
    if (!s.attrs.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < s.attrs.size(); ++i) {
        if (i > 0) out += ",";
        AppendJsonString(&out, s.attrs[i].first);
        out += ":" + FormatAttr(s.attrs[i].second);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string ToTextSummary(const QueryProfile& profile, size_t top_n) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "query profile: %zu spans on %zu tracks, %.6f simulated s\n",
                profile.spans.size(), profile.tracks.size(), profile.MaxEnd());
  os << buf;
  if (profile.dropped_spans > 0) {
    os << "  (" << profile.dropped_spans
       << " spans dropped; rerun with detailed_trace for the full set)\n";
  }

  std::map<std::string, std::pair<size_t, double>> by_category;
  for (const auto& s : profile.spans) {
    auto& slot = by_category[s.category];
    slot.first += 1;
    slot.second += s.duration_s();
  }
  os << "by category:\n";
  for (const auto& [cat, agg] : by_category) {
    std::snprintf(buf, sizeof(buf), "  %-12s %6zu spans  %12.6f s\n",
                  cat.c_str(), agg.first, agg.second);
    os << buf;
  }

  std::vector<const SpanRecord*> slowest;
  for (const auto& s : profile.spans) {
    if (!s.instant) slowest.push_back(&s);
  }
  std::stable_sort(slowest.begin(), slowest.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->duration_s() > b->duration_s();
                   });
  if (slowest.size() > top_n) slowest.resize(top_n);
  os << "slowest spans:\n";
  for (const auto* s : slowest) {
    const std::string& track = s->track >= 0 &&
            static_cast<size_t>(s->track) < profile.tracks.size()
        ? profile.tracks[s->track]
        : "?";
    std::snprintf(buf, sizeof(buf), "  %12.6f s  %-28s [%s] on %s\n",
                  s->duration_s(), s->name.c_str(), s->category.c_str(),
                  track.c_str());
    os << buf;
  }

  if (!profile.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : profile.counters) {
      std::snprintf(buf, sizeof(buf), "  %-32s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      os << buf;
    }
  }
  if (!profile.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : profile.gauges) {
      std::snprintf(buf, sizeof(buf), "  %-32s %.6g\n", name.c_str(), value);
      os << buf;
    }
  }
  return os.str();
}

}  // namespace sirius::obs
