// Per-query tracing over simulated time.
//
// A TraceRecorder collects spans (named intervals on a named track) and
// per-query counters/gauges. All timestamps are *simulated* seconds — the
// recorder never reads a wall clock; callers stamp spans from whatever
// simulated clock they own (engine pipelines use their sim::Timeline via
// obs::Clock). Recording is thread-safe and allocation-light: the span
// buffer is preallocated to `Options::capacity` and further spans are
// dropped (and counted) unless `Options::unbounded` is set.
//
// Spans are expected to be scoped: construct an obs::Span guard, which ends
// the span when it leaves scope. sirius_lint's `raii-span` rule enforces
// that `obs::Span` is only ever a named local.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sirius::obs {

/// One horizontal lane in the trace: a simulated stream, node, or link.
using TrackId = int32_t;
/// Handle for an in-flight span; negative means "dropped, ignore".
using SpanId = int64_t;

inline constexpr SpanId kInvalidSpan = -1;

/// \brief A simulated-time source for stamping spans.
///
/// Plain function pointer + context so obs does not depend on sim. `base`
/// offsets a local clock (e.g. a per-pipeline Timeline that starts at zero)
/// into the query-global simulated time axis.
struct Clock {
  double (*now)(const void* ctx) = nullptr;
  const void* ctx = nullptr;
  double base = 0.0;

  double Now() const { return now != nullptr ? base + now(ctx) : base; }
};

/// \brief One recorded interval (or instant, when `end_s == start_s` and
/// `instant` is set).
struct SpanRecord {
  std::string name;
  std::string category;  ///< layer: "kernel", "buffer", "collective", ...
  TrackId track = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  bool instant = false;
  /// Numeric attributes (bytes, rows, retries...). Small and by-value so a
  /// profile snapshot is self-contained.
  std::vector<std::pair<std::string, double>> attrs;

  double duration_s() const { return end_s - start_s; }
  double Attr(const std::string& key, double fallback = 0.0) const;
};

/// \brief Immutable snapshot of one query's trace: span list, track names,
/// and metric values. Returned by TraceRecorder::Finish().
///
/// Spans are stable-sorted by (track, start_s, name) so that two runs of the
/// same plan produce byte-identical exports regardless of thread-pool
/// interleaving (within one track, recording is single-threaded and hence
/// deterministic; across tracks it is not).
struct QueryProfile {
  std::vector<std::string> tracks;  ///< name by TrackId
  std::vector<SpanRecord> spans;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  uint64_t dropped_spans = 0;

  /// All spans in `category` (every category when empty).
  std::vector<const SpanRecord*> SpansInCategory(const std::string& category) const;
  /// All spans whose name starts with `prefix`.
  std::vector<const SpanRecord*> SpansNamed(const std::string& prefix) const;
  size_t CountCategory(const std::string& category) const;
  size_t CountNamed(const std::string& prefix) const;
  uint64_t Counter(const std::string& name) const;
  /// Latest end timestamp across all spans (0 when empty).
  double MaxEnd() const;
};

/// \brief Thread-safe per-query span/metric sink.
class TraceRecorder {
 public:
  struct Options {
    bool enabled = true;
    /// Preallocated span slots; spans beyond this are dropped and counted.
    size_t capacity = 8192;
    /// Grow without bound instead of dropping (Options::detailed_trace).
    bool unbounded = false;
  };

  TraceRecorder();
  explicit TraceRecorder(Options options);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_; }

  /// Registers a lane ("stream-0", "node-2", "link"). Returns its id; a
  /// repeated name returns the existing id.
  TrackId RegisterTrack(const std::string& name);

  /// Opens a span at `start_s`. Returns kInvalidSpan when disabled or full.
  SpanId BeginSpan(TrackId track, std::string name, std::string category,
                   double start_s);
  /// Closes `span` at `end_s`. Safe on kInvalidSpan.
  void EndSpan(SpanId span, double end_s);
  /// Attaches a numeric attribute to an open or closed span.
  void SetAttr(SpanId span, const std::string& key, double value);

  /// Records a complete interval in one call (the common case: the caller
  /// already knows both endpoints of simulated time).
  void AddComplete(TrackId track, std::string name, std::string category,
                   double start_s, double end_s,
                   std::vector<std::pair<std::string, double>> attrs = {});
  /// Records a zero-duration event (recovery marker, fault trigger).
  void AddInstant(TrackId track, std::string name, std::string category,
                  double at_s);

  /// Bumps a named per-query counter ("buffer.hits", "sccl.retries").
  void AddCounter(const std::string& name, uint64_t delta = 1);
  /// Sets a named gauge to its latest value.
  void SetGauge(const std::string& name, double value);

  uint64_t dropped_spans() const;

  /// Snapshots everything recorded so far into a deterministic profile.
  /// The recorder remains usable afterwards.
  QueryProfile Finish() const;

 private:
  const bool enabled_;
  const bool unbounded_;
  const size_t capacity_;

  mutable std::mutex mu_;
  std::vector<std::string> tracks_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  uint64_t dropped_ = 0;
};

/// \brief RAII guard for a span: ends it (stamped from `clock`) on scope
/// exit. Movable, not copyable; default-constructed guards are inert, so
/// tracing call sites stay branch-free when the recorder is null/disabled.
class Span {
 public:
  Span() = default;
  /// Opens a span now (per `clock`) on `recorder`. A null recorder is inert.
  Span(TraceRecorder* recorder, TrackId track, std::string name,
       std::string category, const Clock& clock);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;

  /// Attaches a numeric attribute (no-op when inert).
  void SetAttr(const std::string& key, double value);
  /// Ends the span now; idempotent.
  void End();

 private:
  TraceRecorder* recorder_ = nullptr;
  SpanId id_ = kInvalidSpan;
  Clock clock_;
};

}  // namespace sirius::obs
