#include "cluster/serve_cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "format/encoding.h"
#include "serve/query_cache.h"

namespace sirius::cluster {

// The federation's fault sites: a routing decision failing (transient codes
// skip the candidate, anything else surfaces), the replication channel
// dropping a fill or invalidation multicast (retried on later flushes under
// the replication retry budget), and a whole node dying (its tenants
// re-route to survivors; only its own replica is forgotten).
SIRIUS_FAULT_DEFINE_SITE(kSiteRoute, "cluster.route");
SIRIUS_FAULT_DEFINE_SITE(kSiteFill, "cluster.fill");
SIRIUS_FAULT_DEFINE_SITE(kSiteNodeLost, "cluster.node.lost");

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Modeled size of a version-stamp invalidation message on the wire.
constexpr uint64_t kInvalidationBytes = 64;

std::string WithRetryAfter(const std::string& msg, double retry_after_s) {
  return msg + "; retry-after=" + std::to_string(retry_after_s) + "s";
}

std::string NodeTag(int node) { return "node" + std::to_string(node); }

}  // namespace

ServeCluster::ServeCluster(host::Database* db,
                           std::vector<engine::SiriusEngine*> engines,
                           ClusterOptions options)
    : options_(options),
      db_(db),
      router_(options.num_nodes),
      membership_(options.num_nodes),
      comm_(options.num_nodes, options.fabric, options.injector,
            options.replication_retry),
      node_sessions_(static_cast<size_t>(options.num_nodes)),
      remote_hit_service_s_(static_cast<size_t>(options.num_nodes), 0.0),
      fill_egress_s_(static_cast<size_t>(options.num_nodes), 0.0),
      remote_hit_count_(static_cast<size_t>(options.num_nodes), 0),
      last_catalog_version_(db->catalog().version()),
      trace_([&] {
        obs::TraceRecorder::Options t;
        t.enabled = options.tracing;
        return t;
      }()) {
  nodes_.reserve(static_cast<size_t>(options_.num_nodes));
  for (int n = 0; n < options_.num_nodes; ++n) {
    serve::ServeOptions node_opts = options_.node;
    switch (options_.cache_mode) {
      case CacheMode::kNone:
        node_opts.result_cache = false;
        break;
      case CacheMode::kCoordinatorOnly:
        node_opts.result_cache = (n == 0);
        break;
      case CacheMode::kReplicated:
        node_opts.result_cache = true;
        break;
    }
    if (options_.cache_mode != CacheMode::kNone) {
      // Record every cacheable completion for replication. Runs under the
      // node's DES lock: append only, flushed later with no locks held.
      // In coordinator mode node 0's fills stay local (it owns the region);
      // remote fills unicast to it.
      node_opts.on_result_fill = [this, n](const serve::ResultFillEvent& e) {
        if (options_.cache_mode == CacheMode::kCoordinatorOnly && n == 0) {
          return;
        }
        PendingMsg m;
        m.origin = n;
        m.normalized_sql = e.normalized_sql;
        m.version = e.catalog_version;
        m.result = e.result;
        m.tenant = e.tenant;
        m.completed_s = e.completed_at_s;
        m.ready_s = e.completed_at_s;
        pending_.push_back(std::move(m));
      };
    }
    nodes_.push_back(std::make_unique<serve::QueryServer>(
        db_, engines[static_cast<size_t>(n)], node_opts));
    node_tracks_.push_back(trace_.RegisterTrack("node-" + std::to_string(n)));
  }
  fabric_track_ = trace_.RegisterTrack("fabric");
}

ServeCluster::~ServeCluster() = default;

void ServeCluster::RegisterTenant(const std::string& tenant, double weight) {
  for (auto& node : nodes_) node->RegisterTenant(tenant, weight);
}

serve::SessionId ServeCluster::OpenSession(const std::string& tenant) {
  serve::SessionId id = next_session_id_++;
  sessions_[id] = tenant;
  return id;
}

serve::SessionId ServeCluster::SessionFor(int node, const std::string& tenant) {
  auto& per_node = node_sessions_[static_cast<size_t>(node)];
  auto it = per_node.find(tenant);
  if (it != per_node.end()) return it->second;
  serve::SessionId local = nodes_[static_cast<size_t>(node)]->OpenSession(tenant);
  per_node.emplace(tenant, local);
  return local;
}

double ServeCluster::Frontier() const {
  double t = frontier_s_;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (membership_.IsAlive(n)) {
      t = std::max(t, nodes_[static_cast<size_t>(n)]->now_s());
    }
  }
  return t;
}

double ServeCluster::now_s() const { return Frontier(); }

void ServeCluster::MaybeEnqueueInvalidation() {
  const uint64_t v = db_->catalog().version();
  if (v == last_catalog_version_) return;
  last_catalog_version_ = v;
  if (options_.cache_mode == CacheMode::kNone) return;
  // A catalog write invalidates by stamp everywhere; the eager multicast
  // only drops stale entries from replica occupancy sooner. It is issued by
  // the control plane (origin -1), never tied to a node's life.
  PendingMsg m;
  m.invalidate = true;
  m.version = v;
  m.completed_s = frontier_s_;
  m.ready_s = frontier_s_;
  pending_.push_back(std::move(m));
}

void ServeCluster::ProbeNodeLoss(const std::string& tenant) {
  if (in_node_loss_) return;
  Status s = injector()->Check(kSiteNodeLost);
  if (s.ok()) return;
  const int victim = router_.Primary(tenant, membership_);
  if (victim >= 0) LoseNode(victim);
}

bool ServeCluster::TrySend(PendingMsg* msg, double frontier_s) {
  Status gate = injector()->Check(kSiteFill);
  if (!gate.ok()) {
    ++msg->attempts;
    const bool budget_left =
        msg->attempts < std::max(1, options_.replication_retry.max_attempts);
    if (!gate.IsTransient() || !budget_left) return false;
    ++stats_.fill_retries;
    counter(msg->invalidate ? "cluster.invalidate.retried"
                            : "cluster.fill.retried")
        ->Add();
    double backoff = options_.replication_retry.base_backoff_s *
                     std::pow(2.0, msg->attempts - 1);
    backoff = std::min(backoff, options_.replication_retry.max_backoff_s);
    msg->ready_s = std::max(frontier_s, msg->ready_s) + backoff;
    return true;
  }

  std::vector<int> dests;
  for (int n : membership_.AliveRanks()) {
    if (msg->invalidate) {
      dests.push_back(n);  // stale stamps die everywhere, origin included
    } else if (options_.cache_mode == CacheMode::kCoordinatorOnly) {
      if (n == 0 && msg->origin != 0) dests.push_back(n);
    } else if (n != msg->origin) {
      dests.push_back(n);
    }
  }
  if (dests.empty()) {
    msg->sent = true;
    msg->deliver_s = msg->completed_s;
    msg->destinations.clear();
    return true;
  }

  double seconds = 0;
  if (msg->invalidate) {
    seconds = options_.fabric.TransferSeconds(kInvalidationBytes, 1.0);
    ++stats_.invalidations_sent;
    counter("cluster.invalidate.sent")->Add();
  } else {
    const uint64_t plain =
        msg->result.table != nullptr ? msg->result.table->MemoryUsage() : 0;
    uint64_t wire = plain;
    if (options_.compress_fills && msg->result.table != nullptr) {
      uint64_t compressed = 0;
      bool all_encoded = true;
      for (size_t c = 0; c < msg->result.table->num_columns(); ++c) {
        auto enc = format::Encode(msg->result.table->column(c));
        if (!enc.ok()) {
          all_encoded = false;
          break;
        }
        compressed += enc.ValueOrDie().CompressedBytes();
      }
      if (all_encoded) wire = compressed;
    }
    const double ratio =
        plain > 0 ? static_cast<double>(wire) / static_cast<double>(plain)
                  : 1.0;
    auto mc = comm_.Multicast(msg->result.table, msg->origin, dests,
                              options_.data_scale * ratio);
    if (!mc.ok()) {
      // The transport exhausted its own retries; treat it like a transient
      // channel fault under our replication budget.
      ++msg->attempts;
      if (msg->attempts >= std::max(1, options_.replication_retry.max_attempts)) {
        return false;
      }
      ++stats_.fill_retries;
      counter("cluster.fill.retried")->Add();
      msg->ready_s = std::max(frontier_s, msg->ready_s) +
                     options_.replication_retry.base_backoff_s;
      return true;
    }
    const net::CollectiveResult& res = mc.ValueOrDie();
    seconds = res.seconds;
    if (options_.compress_fills && plain > 0) {
      // Compress once on the origin, decompress once per receiving replica
      // (modeled; replicas decode in parallel so one decode is charged).
      seconds += 2.0 * static_cast<double>(plain) * options_.data_scale /
                 (options_.codec_gbps * 1e9);
    }
    ++stats_.fills_sent;
    stats_.fill_bytes_plain +=
        static_cast<uint64_t>(static_cast<double>(plain) * options_.data_scale);
    stats_.fill_bytes_wire +=
        static_cast<uint64_t>(static_cast<double>(wire) * options_.data_scale);
    stats_.fill_seconds += seconds;
    fill_egress_s_[static_cast<size_t>(msg->origin)] += seconds;
    counter("cluster.fill.sent")->Add();
    counter("cluster." + NodeTag(msg->origin) + ".fill_sent")->Add();
  }
  msg->sent = true;
  msg->deliver_s = msg->completed_s + seconds;
  msg->destinations = std::move(dests);
  if (options_.tracing) {
    trace_.AddComplete(fabric_track_,
                       msg->invalidate
                           ? "invalidate@v" + std::to_string(msg->version)
                           : "fill:" + NodeTag(msg->origin),
                       msg->invalidate ? "invalidate" : "fill",
                       msg->completed_s, msg->deliver_s,
                       {{"destinations", static_cast<double>(
                                             msg->destinations.size())}});
  }
  return true;
}

void ServeCluster::Deliver(const PendingMsg& msg) {
  for (int n : msg.destinations) {
    if (!membership_.IsAlive(n)) continue;  // died between send and delivery
    if (msg.invalidate) {
      nodes_[static_cast<size_t>(n)]->EvictStaleCache(msg.version);
      ++stats_.invalidations_delivered;
      counter("cluster.invalidate.delivered")->Add();
    } else {
      nodes_[static_cast<size_t>(n)]->InstallCachedResult(
          msg.normalized_sql, msg.version, msg.result);
      ++stats_.fills_delivered;
      counter("cluster.fill.delivered")->Add();
      counter("cluster." + NodeTag(n) + ".fill_installed")->Add();
    }
  }
}

void ServeCluster::FlushReplication(double frontier_s, bool force) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      PendingMsg& m = *it;
      if (!m.sent) {
        if (!force && m.ready_s > frontier_s) {
          ++it;
          continue;
        }
        if (!m.invalidate && !membership_.IsAlive(m.origin)) {
          // Node lost mid-fill: the fill dies with its origin. Survivors
          // keep everything already installed; nothing is invalidated.
          ++stats_.fills_dropped;
          counter("cluster.fill.origin_lost")->Add();
          it = pending_.erase(it);
          progress = true;
          continue;
        }
        if (!TrySend(&m, frontier_s)) {
          if (m.invalidate) {
            counter("cluster.invalidate.dropped")->Add();
          } else {
            ++stats_.fills_dropped;
            counter("cluster.fill.dropped")->Add();
          }
          it = pending_.erase(it);
          progress = true;
          continue;
        }
        if (!m.sent) {  // transient fault: backoff scheduled, retry later
          // A forced drain keeps attempting (backoff is simulated time);
          // the attempt cap guarantees termination.
          if (force) progress = true;
          ++it;
          continue;
        }
        progress = true;
      }
      if (m.sent && (force || m.deliver_s <= frontier_s)) {
        Deliver(m);
        it = pending_.erase(it);
        progress = true;
        continue;
      }
      ++it;
    }
    if (!force) break;  // one pass per flush point; DrainAll drains dry
  }
}

Result<serve::QueryId> ServeCluster::Submit(
    serve::SessionId session, const std::string& sql,
    const serve::SubmitOptions& options) {
  auto sit = sessions_.find(session);
  if (sit == sessions_.end()) {
    return Status::KeyError("Submit: unknown cluster session " +
                            std::to_string(session));
  }
  const std::string& tenant = sit->second;
  const double arrival =
      options.arrival_s >= 0 ? std::max(options.arrival_s, frontier_s_)
                             : Frontier();
  frontier_s_ = std::max(frontier_s_, arrival);
  MaybeEnqueueInvalidation();
  FlushReplication(frontier_s_, /*force=*/false);
  ProbeNodeLoss(tenant);

  last_shed_.clear();
  for (int nd : router_.Preference(tenant)) {
    if (!membership_.IsAlive(nd)) continue;
    Status route = injector()->Check(kSiteRoute);
    if (!route.ok()) {
      if (route.IsTransient()) {
        // Transient route fault: skip this candidate, walk the list.
        ++stats_.route_retried;
        counter("cluster.route.retried")->Add();
        continue;
      }
      return route;
    }

    if (options_.cache_mode == CacheMode::kCoordinatorOnly && nd != 0 &&
        membership_.IsAlive(0) && !options.bypass_cache) {
      // The coordinator owns the only cache region: every remote lookup
      // consults it over the fabric, and a hit ships the result back —
      // service and egress land on node 0, the hotspot hit-anywhere removes.
      serve::QueryCache::CachedResult hit;
      const std::string norm = serve::NormalizeSql(sql);
      if (nodes_[0]->LookupCachedResult(norm, db_->catalog().version(),
                                        &hit)) {
        const uint64_t bytes =
            hit.table != nullptr ? hit.table->MemoryUsage() : 0;
        const double wire_s =
            options_.fabric.TransferSeconds(kInvalidationBytes, 1.0) +
            options_.fabric.TransferSeconds(bytes, options_.data_scale);
        const double service_s = options_.node.cache_hit_cost_s + wire_s;

        serve::QueryId id = next_query_id_++;
        Binding b;
        b.tenant = tenant;
        b.sql = sql;
        b.sub = options;
        b.cluster_terminal = true;
        b.local.id = id;
        b.local.tenant = tenant;
        b.local.priority = options.priority;
        b.local.state = serve::QueryState::kCompleted;
        b.local.status = Status::OK();
        b.local.arrival_s = arrival;
        b.local.dispatch_s = arrival;
        b.local.finish_s = arrival + service_s;
        b.local.cache_hit = true;
        b.local.node = nd;
        b.local.exec_solo_s = hit.exec_seconds;
        if (hit.table != nullptr) b.local.result_rows = hit.table->num_rows();
        if (options.keep_result) b.local.table = hit.table;
        bindings_.emplace(id, std::move(b));
        remote_hit_service_s_[0] += service_s;
        ++remote_hit_count_[0];
        ++stats_.remote_hits;
        counter("cluster.remote_hit")->Add();
        return id;
      }
    }

    serve::SubmitOptions local = options;
    local.arrival_s = arrival;
    auto submitted =
        nodes_[static_cast<size_t>(nd)]->Submit(SessionFor(nd, tenant), sql,
                                                local);
    if (submitted.ok()) {
      serve::QueryId id = next_query_id_++;
      Binding b;
      b.node = nd;
      b.local_id = submitted.ValueOrDie();
      b.tenant = tenant;
      b.sql = sql;
      b.sub = options;
      reverse_[{nd, b.local_id}] = id;
      bindings_.emplace(id, std::move(b));
      ++stats_.routed;
      counter("cluster.routed")->Add();
      counter("cluster." + NodeTag(nd) + ".routed")->Add();
      if (!last_shed_.empty()) {
        ++stats_.rerouted;
        counter("cluster.rerouted")->Add();
      }
      if (options_.tracing) {
        trace_.AddInstant(node_tracks_[static_cast<size_t>(nd)],
                          "route:" + tenant, "route", arrival);
      }
      return id;
    }
    if (!submitted.status().IsResourceExhausted()) return submitted.status();
    last_shed_.push_back(
        ShedCandidate{nd, serve::RetryAfterHint(submitted.status())});
    counter("cluster." + NodeTag(nd) + ".shed")->Add();
  }

  if (last_shed_.empty()) {
    return Status::Unavailable("no alive cluster node to route tenant '" +
                               tenant + "' to");
  }
  // Every candidate replica shed: surface the *minimum* retry-after across
  // them — the client should come back when the soonest replica frees up,
  // not when the first node consulted does.
  double min_hint = kInf;
  for (const ShedCandidate& c : last_shed_) {
    min_hint = std::min(min_hint, std::max(c.retry_after_s, 1e-3));
  }
  ++stats_.shed_all_replicas;
  counter("cluster.shed")->Add();
  return Status::ResourceExhausted(WithRetryAfter(
      "all " + std::to_string(last_shed_.size()) + " candidate replica(s) " +
          "shed tenant '" + tenant + "'",
      min_hint));
}

serve::QueryOutcome ServeCluster::Translate(const serve::QueryOutcome& out,
                                            serve::QueryId cluster_id,
                                            int node) const {
  serve::QueryOutcome t = out;
  t.id = cluster_id;
  t.node = node;
  return t;
}

Result<serve::QueryOutcome> ServeCluster::Peek(serve::QueryId id) const {
  auto it = bindings_.find(id);
  if (it == bindings_.end()) {
    return Status::KeyError("Peek: unknown cluster query " +
                            std::to_string(id));
  }
  const Binding& b = it->second;
  if (b.cluster_terminal) return b.local;
  SIRIUS_ASSIGN_OR_RETURN(
      serve::QueryOutcome out,
      nodes_[static_cast<size_t>(b.node)]->Peek(b.local_id));
  return Translate(out, id, b.node);
}

Result<serve::QueryOutcome> ServeCluster::Resolve(serve::QueryId id) {
  auto it = bindings_.find(id);
  if (it == bindings_.end()) {
    return Status::KeyError("Resolve: unknown cluster query " +
                            std::to_string(id));
  }
  Binding& b = it->second;
  if (b.cluster_terminal) return b.local;
  SIRIUS_ASSIGN_OR_RETURN(
      serve::QueryOutcome out,
      nodes_[static_cast<size_t>(b.node)]->Resolve(b.local_id));
  frontier_s_ = std::max(frontier_s_,
                         nodes_[static_cast<size_t>(b.node)]->now_s());
  FlushReplication(frontier_s_, /*force=*/false);
  return Translate(out, id, b.node);
}

int ServeCluster::EarliestNode(double* when_s) const {
  int best = -1;
  double best_t = kInf;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (!membership_.IsAlive(n)) continue;
    const double t = nodes_[static_cast<size_t>(n)]->NextDispatchTime();
    if (t < best_t) {
      best_t = t;
      best = n;
    }
  }
  if (when_s != nullptr) *when_s = best_t;
  return best;
}

double ServeCluster::NextDispatchTime() const {
  double when = kInf;
  EarliestNode(&when);
  return when;
}

Result<serve::QueryOutcome> ServeCluster::Step() {
  const int nd = EarliestNode(nullptr);
  if (nd < 0) {
    return Status::Invalid("Step: nothing queued on any alive node");
  }
  SIRIUS_ASSIGN_OR_RETURN(serve::QueryOutcome out,
                          nodes_[static_cast<size_t>(nd)]->Step());
  frontier_s_ =
      std::max(frontier_s_, nodes_[static_cast<size_t>(nd)]->now_s());
  FlushReplication(frontier_s_, /*force=*/false);
  auto rit = reverse_.find({nd, out.id});
  if (rit == reverse_.end()) return Translate(out, out.id, nd);
  return Translate(out, rit->second, nd);
}

Status ServeCluster::DrainAll() {
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (!membership_.IsAlive(n)) continue;
    SIRIUS_RETURN_NOT_OK(nodes_[static_cast<size_t>(n)]->DrainAll());
  }
  frontier_s_ = Frontier();
  // Fills recorded during the drain now flush to the end of time.
  FlushReplication(frontier_s_, /*force=*/true);
  return Status::OK();
}

void ServeCluster::RequeueBinding(serve::QueryId id, Binding* binding,
                                  double at_s) {
  ++stats_.requeued;
  counter("cluster.requeued")->Add();
  reverse_.erase({binding->node, binding->local_id});
  std::vector<ShedCandidate> sheds;
  for (int nd : router_.Preference(binding->tenant)) {
    if (!membership_.IsAlive(nd)) continue;
    serve::SubmitOptions sub = binding->sub;
    sub.arrival_s = std::max(at_s, sub.arrival_s);
    auto submitted = nodes_[static_cast<size_t>(nd)]->Submit(
        SessionFor(nd, binding->tenant), binding->sql, sub);
    if (submitted.ok()) {
      binding->node = nd;
      binding->local_id = submitted.ValueOrDie();
      ++binding->requeues;
      reverse_[{nd, binding->local_id}] = id;
      counter("cluster." + NodeTag(nd) + ".requeue_admitted")->Add();
      return;
    }
    if (!submitted.status().IsResourceExhausted()) {
      binding->cluster_terminal = true;
      binding->local.id = id;
      binding->local.tenant = binding->tenant;
      binding->local.state = serve::QueryState::kFailed;
      binding->local.status = submitted.status();
      binding->local.arrival_s = at_s;
      binding->local.finish_s = at_s;
      return;
    }
    sheds.push_back(
        ShedCandidate{nd, serve::RetryAfterHint(submitted.status())});
  }
  // Every survivor refused the re-admission: the query was admitted once,
  // so this is a terminal shed (LoadReport counts it as requeue_shed),
  // carrying the minimum retry-after across the survivors.
  double min_hint = 1e-3;
  if (!sheds.empty()) {
    min_hint = kInf;
    for (const ShedCandidate& c : sheds) {
      min_hint = std::min(min_hint, std::max(c.retry_after_s, 1e-3));
    }
  }
  ++stats_.requeue_shed;
  counter("cluster.requeue_shed")->Add();
  binding->cluster_terminal = true;
  binding->local.id = id;
  binding->local.tenant = binding->tenant;
  binding->local.state = serve::QueryState::kShed;
  binding->local.status = Status::ResourceExhausted(WithRetryAfter(
      "node loss requeue: every survivor shed tenant '" + binding->tenant +
          "'",
      min_hint));
  binding->local.retry_after_s = min_hint;
  binding->local.arrival_s = at_s;
  binding->local.finish_s = at_s;
}

void ServeCluster::LoseNode(int node) {
  if (node < 0 || node >= options_.num_nodes) return;
  if (!membership_.MarkDead(node)) return;
  in_node_loss_ = true;
  const double at_s = Frontier();
  ++stats_.nodes_lost;
  counter("cluster.node.lost")->Add();
  if (options_.tracing) {
    trace_.AddInstant(node_tracks_[static_cast<size_t>(node)], "node-lost",
                      "recovery", at_s);
  }
  // Undelivered fills this node originated die with it. Everything already
  // delivered — on any survivor — stays: a replica entry is exactly as
  // valid as its version stamp, regardless of who filled it, so node loss
  // never issues a shared invalidation.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!it->invalidate && it->origin == node && !it->sent) {
      ++stats_.fills_dropped;
      counter("cluster.fill.origin_lost")->Add();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // The dead node's tenants re-route to the survivors: every non-terminal
  // query it held re-enters admission down its tenant's preference list.
  for (auto& [id, b] : bindings_) {
    if (b.cluster_terminal || b.node != node) continue;
    auto peeked = nodes_[static_cast<size_t>(node)]->Peek(b.local_id);
    if (peeked.ok() && peeked.ValueOrDie().terminal()) continue;
    RequeueBinding(id, &b, at_s);
  }
  in_node_loss_ = false;
}

std::vector<serve::QueryOutcome> ServeCluster::Outcomes() const {
  std::vector<serve::QueryOutcome> out;
  out.reserve(bindings_.size());
  for (const auto& [id, b] : bindings_) {
    if (b.cluster_terminal) {
      out.push_back(b.local);
      continue;
    }
    auto peeked = nodes_[static_cast<size_t>(b.node)]->Peek(b.local_id);
    if (peeked.ok()) out.push_back(Translate(peeked.ValueOrDie(), id, b.node));
  }
  return out;
}

std::vector<NodeLoad> ServeCluster::node_loads() const {
  std::vector<NodeLoad> loads(static_cast<size_t>(options_.num_nodes));
  for (int n = 0; n < options_.num_nodes; ++n) {
    NodeLoad& load = loads[static_cast<size_t>(n)];
    for (const serve::QueryOutcome& out :
         nodes_[static_cast<size_t>(n)]->Outcomes()) {
      if (out.state == serve::QueryState::kCompleted && out.cache_hit) {
        ++load.cache_hits;
        load.hit_service_s += options_.node.cache_hit_cost_s;
      } else if ((out.state == serve::QueryState::kCompleted ||
                  out.state == serve::QueryState::kTimedOut) &&
                 !out.cache_hit) {
        ++load.dispatched;
        load.busy_s += std::max(out.finish_s - out.dispatch_s, 0.0);
      }
    }
    load.cache_hits += remote_hit_count_[static_cast<size_t>(n)];
    load.hit_service_s += remote_hit_service_s_[static_cast<size_t>(n)];
    load.fill_egress_s = fill_egress_s_[static_cast<size_t>(n)];
  }
  for (const ShedCandidate& c : last_shed_) {
    if (c.node >= 0 && c.node < options_.num_nodes) {
      ++loads[static_cast<size_t>(c.node)].shed;
    }
  }
  return loads;
}

obs::QueryProfile ServeCluster::Profile() const { return trace_.Finish(); }

}  // namespace sirius::cluster
