#include "cluster/routing.h"

#include <algorithm>

#include "common/hash.h"

namespace sirius::cluster {

uint64_t RendezvousRouter::Score(const std::string& tenant, int node) const {
  return HashCombine(HashString(tenant),
                     HashMix64(static_cast<uint64_t>(node) + 1));
}

std::vector<int> RendezvousRouter::Preference(const std::string& tenant) const {
  std::vector<int> order(static_cast<size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) order[static_cast<size_t>(n)] = n;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const uint64_t sa = Score(tenant, a);
    const uint64_t sb = Score(tenant, b);
    return sa != sb ? sa > sb : a < b;
  });
  return order;
}

int RendezvousRouter::Primary(const std::string& tenant,
                              const dist::Membership& membership) const {
  for (int n : Preference(tenant)) {
    if (membership.IsAlive(n)) return n;
  }
  return -1;
}

}  // namespace sirius::cluster
