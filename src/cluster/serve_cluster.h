// The federated serving tier: N QueryServers behind one QueryService.
//
// ServeCluster federates one serve::QueryServer per cluster node (each with
// its own DeviceGroup and admission pools) behind the QueryService surface,
// so the load generator and every serve-layer driver run against a cluster
// exactly as they run against one node. Three mechanisms (DESIGN.md §12):
//
//  * Tenant-sharded routing — rendezvous hashing gives each tenant a stable
//    preference order over the nodes; a submit lands on the most-preferred
//    alive node. Per-node admission backpressure re-routes: a shed on the
//    primary walks the preference list, and a shed on *every* candidate
//    surfaces the minimum retry-after hint across them (the client should
//    come back when the soonest replica frees up, not when the first one
//    tried does).
//
//  * Replicated, hit-anywhere result-cache region — each node server's
//    result cache is one replica. A fill completed on any node is
//    propagated to its peers over SCCL multicast (optionally compressed on
//    the wire; bytes, codec time and latency charged to the fabric) and
//    becomes visible at completion + transfer time, so any replica serves a
//    hit another replica filled. Catalog write-version stamps make
//    invalidation exact: an eager invalidation multicast drops stale
//    entries from replica occupancy, and even a permanently dropped
//    invalidation is correctness-safe because every lookup re-checks the
//    stamp. CacheMode::kCoordinatorOnly models the baseline: only node 0
//    caches, remote nodes consult it over the fabric per lookup and every
//    hit's service + egress is charged to node 0 (the hotspot the
//    replicated region removes).
//
//  * Node-loss recovery — losing a node (the `cluster.node.lost` fault
//    site, or LoseNode from a chaos test) marks it dead in the shared
//    dist::Membership, re-routes its non-terminal queries to the survivors
//    (re-admission may shed them), and drops only the undelivered fills it
//    originated. Its replica dies with it; entries already installed on
//    survivors — including ones the dead node filled — are never
//    invalidated, because a surviving replica's entry is exactly as valid
//    as its version stamp, regardless of who filled it.
//
// Threading discipline: ServeCluster is *externally synchronized* — one
// driver thread calls Submit/Step/Resolve/DrainAll (the FairScheduler
// precedent), while each node server keeps its own internal DES lock and
// worker pool. The cluster itself holds no mutex and never calls into a
// node while one could call back: the on_result_fill hook (invoked under a
// node's lock) only appends to the pending-replication queue; multicasts
// and peer installs run in a later flush pass with no locks held.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/routing.h"
#include "common/result.h"
#include "dist/membership.h"
#include "engine/sirius.h"
#include "fault/fault_injector.h"
#include "host/database.h"
#include "net/sccl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/load_gen.h"
#include "serve/serve.h"
#include "sim/interconnect.h"

namespace sirius::cluster {

/// How the cluster treats the result-cache region.
enum class CacheMode {
  kNone,             ///< no result caching anywhere
  kCoordinatorOnly,  ///< node 0 owns the only cache; remote hits pay the wire
  kReplicated,       ///< hit-anywhere: fills multicast to every replica
};

struct ClusterOptions {
  int num_nodes = 4;
  /// Per-node server configuration (devices, streams, admission budget,
  /// …). `result_cache` and `on_result_fill` are overridden per node
  /// according to `cache_mode`.
  serve::ServeOptions node;
  CacheMode cache_mode = CacheMode::kReplicated;
  /// Compress replicated fills on the wire (format::Encode codecs); the
  /// multicast is priced on compressed bytes plus modeled codec time.
  bool compress_fills = true;
  /// Modeled (de)compression throughput for fill payloads, GB/s per side.
  double codec_gbps = 25.0;
  /// Inter-node fabric carrying fills, invalidations and remote hits.
  sim::Link fabric = sim::Infiniband400();
  /// Scales modeled wire bytes (benches run small SFs and scale up).
  double data_scale = 1.0;
  /// Retry schedule for pending fill/invalidate deliveries gated by the
  /// "cluster.fill" site (max_attempts bounds delivery attempts).
  net::RetryPolicy replication_retry;
  /// Fault injector for the "cluster.route" / "cluster.fill" /
  /// "cluster.node.lost" sites; nullptr uses the (disarmed) global one.
  fault::FaultInjector* injector = nullptr;
  /// Cluster-level trace (route/fill/invalidate spans per node + fabric).
  bool tracing = false;
};

/// Cluster-lifetime counters (mirrored as `cluster.*` metrics).
struct ClusterStats {
  uint64_t routed = 0;          ///< submits admitted on some node
  uint64_t route_retried = 0;   ///< candidates skipped by cluster.route faults
  uint64_t rerouted = 0;        ///< sheds that moved to a later candidate
  uint64_t shed_all_replicas = 0;  ///< submits every candidate refused
  uint64_t remote_hits = 0;     ///< coordinator-mode hits served over the wire
  uint64_t fills_sent = 0;      ///< fill multicasts priced onto the fabric
  uint64_t fills_delivered = 0; ///< per-peer cache installs
  uint64_t fill_retries = 0;    ///< cluster.fill transient retries
  uint64_t fills_dropped = 0;   ///< fills lost (budget exhausted / origin died)
  uint64_t invalidations_sent = 0;
  uint64_t invalidations_delivered = 0;  ///< per-peer stale-entry evictions
  uint64_t nodes_lost = 0;
  uint64_t requeued = 0;        ///< entries re-routed off a dead node
  uint64_t requeue_shed = 0;    ///< re-routed entries every survivor refused
  uint64_t fill_bytes_plain = 0;  ///< fill payload bytes before compression
  uint64_t fill_bytes_wire = 0;   ///< bytes actually multicast
  double fill_seconds = 0;      ///< fabric + codec time charged to fills
};

/// Per-node serving load, for hotspot assertions and the bench gate.
struct NodeLoad {
  uint64_t dispatched = 0;   ///< queries executed on the node (cache misses)
  uint64_t cache_hits = 0;   ///< hits served by this node's replica
  uint64_t shed = 0;         ///< admission refusals charged to this node
  double busy_s = 0;         ///< stream-occupancy seconds of executed queries
  double hit_service_s = 0;  ///< hit service incl. remote-hit egress
  double fill_egress_s = 0;  ///< multicast time for fills this node originated
  /// Total serving load: what the bench compares across nodes.
  double load_s() const { return busy_s + hit_service_s + fill_egress_s; }
};

/// One admission candidate consulted while routing a shed submit.
struct ShedCandidate {
  int node = -1;
  double retry_after_s = 0;
};

/// \brief Federation of QueryServers with a replicated result-cache region.
class ServeCluster : public serve::QueryService {
 public:
  /// All nodes serve one shared catalog (`db`, not owned) — a single
  /// write-version stream, so invalidation stamps agree across replicas —
  /// with one engine per node (`engines[i]`, not owned, own DeviceGroup and
  /// buffer manager). `engines.size()` must equal `options.num_nodes`.
  ServeCluster(host::Database* db, std::vector<engine::SiriusEngine*> engines,
               ClusterOptions options);
  ~ServeCluster() override;

  ServeCluster(const ServeCluster&) = delete;
  ServeCluster& operator=(const ServeCluster&) = delete;

  /// \name QueryService (the LoadGenerator drives these).
  /// @{
  void RegisterTenant(const std::string& tenant, double weight) override;
  serve::SessionId OpenSession(const std::string& tenant) override;
  Result<serve::QueryId> Submit(serve::SessionId session,
                                const std::string& sql,
                                const serve::SubmitOptions& options) override;
  Result<serve::QueryOutcome> Resolve(serve::QueryId id) override;
  double NextDispatchTime() const override;
  Result<serve::QueryOutcome> Step() override;
  Result<serve::QueryOutcome> Peek(serve::QueryId id) const override;
  Status DrainAll() override;
  double now_s() const override;
  /// @}

  /// Kills `node` at the current frontier: marks it dead, re-routes its
  /// non-terminal queries to survivors, drops its undelivered fills. Only
  /// the dead node's replica is forgotten — survivors keep every entry.
  void LoseNode(int node);

  /// Terminal outcomes so far, in cluster QueryId order.
  std::vector<serve::QueryOutcome> Outcomes() const;

  /// Candidates consulted by the most recent all-replicas shed, in
  /// preference order with each node's retry-after hint (the surfaced hint
  /// is the minimum of these).
  const std::vector<ShedCandidate>& last_shed() const { return last_shed_; }

  const dist::Membership& membership() const { return membership_; }
  const RendezvousRouter& router() const { return router_; }
  serve::QueryServer& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  int num_nodes() const { return options_.num_nodes; }
  const ClusterOptions& options() const { return options_; }
  const ClusterStats& stats() const { return stats_; }
  /// Per-node serving load so far (terminal outcomes + wire charges).
  std::vector<NodeLoad> node_loads() const;
  /// Undelivered replication messages (tests drive retry/drop behavior).
  size_t pending_replication() const { return pending_.size(); }
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Snapshot of the cluster-level trace (empty when tracing is off).
  obs::QueryProfile Profile() const;

 private:
  /// One fill or invalidation in flight on the replication channel.
  struct PendingMsg {
    bool invalidate = false;
    int origin = -1;  ///< filling node; -1 = control plane (invalidations)
    std::string normalized_sql;
    uint64_t version = 0;
    serve::QueryCache::CachedResult result;  ///< fill payload
    std::string tenant;
    double completed_s = 0;  ///< when the fill finished on the origin
    double ready_s = 0;      ///< earliest next send attempt
    int attempts = 0;
    bool sent = false;       ///< priced onto the fabric, awaiting delivery
    double deliver_s = 0;    ///< visibility time once sent
    std::vector<int> destinations;  ///< captured at send time
  };

  /// Cluster query id -> where it lives.
  struct Binding {
    int node = -1;
    serve::QueryId local_id = 0;
    std::string tenant;
    std::string sql;
    serve::SubmitOptions sub;
    int requeues = 0;
    bool cluster_terminal = false;  ///< outcome held locally (not on a node)
    serve::QueryOutcome local;
  };

  /// Sends due unsent messages and installs due sent ones. `force` drains
  /// everything regardless of the frontier (DrainAll).
  void FlushReplication(double frontier_s, bool force);
  /// One send attempt for `msg` (fault gate + multicast pricing). Returns
  /// false when the message must be dropped.
  bool TrySend(PendingMsg* msg, double frontier_s);
  /// Installs `msg` on its (still-alive) destinations.
  void Deliver(const PendingMsg& msg);
  /// Enqueues an eager invalidation when the catalog version advanced.
  void MaybeEnqueueInvalidation();
  /// Node-local session for (`node`, `tenant`), opened on first use.
  serve::SessionId SessionFor(int node, const std::string& tenant);
  /// Consults the cluster.node.lost site; on a trigger, kills the victim.
  void ProbeNodeLoss(const std::string& tenant);
  /// Re-routes `binding` (whose node just died) onto the survivors.
  void RequeueBinding(serve::QueryId id, Binding* binding, double at_s);
  /// Stamps node/cluster-id onto a node-local outcome.
  serve::QueryOutcome Translate(const serve::QueryOutcome& out,
                                serve::QueryId cluster_id, int node) const;
  /// Alive node with the earliest next dispatch, or -1.
  int EarliestNode(double* when_s) const;
  double Frontier() const;
  fault::FaultInjector* injector() const {
    return options_.injector != nullptr ? options_.injector
                                        : fault::FaultInjector::Global();
  }
  obs::Counter* counter(const std::string& name) {
    return metrics_.GetCounter(name);
  }

  ClusterOptions options_;
  host::Database* db_;
  std::vector<std::unique_ptr<serve::QueryServer>> nodes_;
  RendezvousRouter router_;
  dist::Membership membership_;
  net::Communicator comm_;

  std::map<serve::QueryId, Binding> bindings_;
  std::map<std::pair<int, serve::QueryId>, serve::QueryId> reverse_;
  std::map<serve::SessionId, std::string> sessions_;
  /// Per-node (tenant -> node-local session), opened lazily.
  std::vector<std::map<std::string, serve::SessionId>> node_sessions_;
  std::vector<PendingMsg> pending_;
  std::vector<ShedCandidate> last_shed_;
  /// Remote-hit service + egress seconds charged to each node beyond what
  /// its own outcomes show (coordinator mode), and fill egress per origin.
  std::vector<double> remote_hit_service_s_;
  std::vector<double> fill_egress_s_;
  std::vector<uint64_t> remote_hit_count_;

  serve::QueryId next_query_id_ = 1;
  serve::SessionId next_session_id_ = 1;
  double frontier_s_ = 0;
  uint64_t last_catalog_version_ = 0;
  bool in_node_loss_ = false;  ///< re-entrancy guard for loss handling

  ClusterStats stats_;
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder trace_;
  std::vector<obs::TrackId> node_tracks_;
  obs::TrackId fabric_track_ = 0;
};

}  // namespace sirius::cluster
