// Tenant-sharded routing for the federated serving tier.
//
// Rendezvous (highest-random-weight) hashing gives every tenant a stable,
// uniformly-spread preference order over the cluster nodes with minimal
// disruption: when a node dies, only the tenants whose primary it was move
// (to their next-preferred node); every other tenant's routing is untouched.
// The same order doubles as the backpressure re-route path — a shed on the
// primary walks down the preference list.

#pragma once

#include <string>
#include <vector>

#include "dist/membership.h"

namespace sirius::cluster {

/// \brief Stateless tenant -> node preference order via rendezvous hashing.
class RendezvousRouter {
 public:
  explicit RendezvousRouter(int num_nodes)
      : num_nodes_(num_nodes < 1 ? 1 : num_nodes) {}

  int num_nodes() const { return num_nodes_; }

  /// Deterministic highest-random-weight score of (tenant, node).
  uint64_t Score(const std::string& tenant, int node) const;

  /// All nodes, most-preferred first (dead nodes included — callers filter
  /// against the membership so the order itself never changes).
  std::vector<int> Preference(const std::string& tenant) const;

  /// Most-preferred alive node for `tenant`, or -1 when none is alive.
  int Primary(const std::string& tenant,
              const dist::Membership& membership) const;

 private:
  int num_nodes_;
};

}  // namespace sirius::cluster
