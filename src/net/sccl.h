// SCCL: the NCCL-equivalent collective communication layer (paper §3.2.4).
//
// Sirius models exchange as dedicated physical operators implemented over
// collective primitives — broadcast, shuffle (all-to-all), merge (gather)
// and multicast. Here the cluster is in-process: data moves by pointer and
// the modeled interconnect charges simulated time (ring-algorithm cost
// model, as NCCL uses).

#pragma once

#include <vector>

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"
#include "sim/interconnect.h"

namespace sirius::net {

/// \brief Result of one collective: the received data plus its modeled cost.
struct CollectiveResult {
  /// Per-rank received tables (size = world size).
  std::vector<format::TablePtr> per_rank;
  /// Modeled wall time of the collective (the slowest rank's time).
  double seconds = 0;
  /// Total bytes that crossed the network.
  uint64_t bytes = 0;
};

/// \brief An N-rank communicator over a modeled link.
class Communicator {
 public:
  Communicator(int world_size, sim::Link link)
      : world_size_(world_size), link_(link) {}

  int world_size() const { return world_size_; }
  const sim::Link& link() const { return link_; }

  /// All-to-all (shuffle): `partitions[src][dst]` is the table src sends to
  /// dst. Every rank receives the concatenation over src of
  /// `partitions[src][rank]`. Diagonal (src == dst) traffic stays local and
  /// is free. Time: max over ranks of max(bytes sent, bytes received).
  Result<CollectiveResult> AllToAll(
      const std::vector<std::vector<format::TablePtr>>& partitions,
      const gdf::Context& ctx, double data_scale) const;

  /// Broadcast: every rank receives `table` from `root`. Ring algorithm:
  /// time ~ bytes/bw + (n-1) hops of latency.
  Result<CollectiveResult> Broadcast(const format::TablePtr& table, int root,
                                     double data_scale) const;

  /// Merge (gather): `root` receives the concatenation of all ranks' tables;
  /// other ranks receive an empty slot (nullptr).
  Result<CollectiveResult> Gather(const std::vector<format::TablePtr>& tables,
                                  int root, const gdf::Context& ctx,
                                  double data_scale) const;

  /// Multicast: rank `root` sends `table` to the given subset of ranks.
  Result<CollectiveResult> Multicast(const format::TablePtr& table, int root,
                                     const std::vector<int>& destinations,
                                     double data_scale) const;

 private:
  int world_size_;
  sim::Link link_;
};

}  // namespace sirius::net
