// SCCL: the NCCL-equivalent collective communication layer (paper §3.2.4).
//
// Sirius models exchange as dedicated physical operators implemented over
// collective primitives — broadcast, shuffle (all-to-all), merge (gather)
// and multicast. Here the cluster is in-process: data moves by pointer and
// the modeled interconnect charges simulated time (ring-algorithm cost
// model, as NCCL uses).
//
// Fault model: each collective consults a fault injector before touching
// the link ("sccl.alltoall", "sccl.broadcast", "sccl.gather",
// "sccl.multicast"). Transient failures (Unavailable/Timeout) are retried
// with capped, jittered exponential backoff; the backoff is charged as
// simulated time on the collective's result. Persistent failures exhaust
// the retry budget and surface as a clean non-OK Status.

#pragma once

#include <vector>

#include "common/result.h"
#include "fault/fault_injector.h"
#include "format/table.h"
#include "gdf/context.h"
#include "obs/trace.h"
#include "sim/interconnect.h"

namespace sirius::net {

/// \brief Retry schedule for transient collective failures.
struct RetryPolicy {
  /// Total attempts per collective (1 = no retries).
  int max_attempts = 4;
  /// First backoff; doubles per retry (NCCL-style transport re-establish).
  double base_backoff_s = 0.0005;
  /// Backoff cap.
  double max_backoff_s = 0.050;
  /// Fraction of each backoff randomized (0 = deterministic, 1 = full
  /// jitter). Jitter draws from the injector's seeded RNG.
  double jitter = 0.5;
};

/// \brief Result of one collective: the received data plus its modeled cost.
struct CollectiveResult {
  /// Per-rank received tables (size = world size).
  std::vector<format::TablePtr> per_rank;
  /// Modeled wall time of the collective (the slowest rank's time),
  /// including any retry backoff.
  double seconds = 0;
  /// Total bytes that crossed the network.
  uint64_t bytes = 0;
  /// Transient link failures healed by retrying.
  int retries = 0;
  /// Simulated time spent backing off before the collective succeeded
  /// (already included in `seconds`).
  double backoff_seconds = 0;
  /// Per-rank completion offsets (size = world size, includes backoff).
  /// Ranks with little traffic finish before `seconds` — the slack the
  /// distributed executor overlaps with downstream work.
  std::vector<double> per_rank_seconds;
};

/// \brief An N-rank communicator over a modeled link.
class Communicator {
 public:
  /// `injector` == nullptr uses the global injector (disarmed by default).
  Communicator(int world_size, sim::Link link,
               fault::FaultInjector* injector = nullptr,
               RetryPolicy retry = RetryPolicy{})
      : world_size_(world_size),
        link_(link),
        injector_(injector != nullptr ? injector
                                      : fault::FaultInjector::Global()),
        retry_(retry) {}

  int world_size() const { return world_size_; }
  const sim::Link& link() const { return link_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Attaches a trace sink: every collective emits one "collective" span on
  /// `track` (with link/bytes/retries attrs) and one "retry" span per
  /// transient attempt the retry policy healed.
  void set_trace(obs::TraceRecorder* recorder, obs::TrackId track) {
    trace_ = recorder;
    trace_track_ = track;
  }
  /// Places the next collective on the simulated time axis.
  void set_trace_start(double start_s) { trace_start_s_ = start_s; }

  /// All-to-all (shuffle): `partitions[src][dst]` is the table src sends to
  /// dst. Every rank receives the concatenation over src of
  /// `partitions[src][rank]`. Diagonal (src == dst) traffic stays local and
  /// is free. Time: max over ranks of max(bytes sent, bytes received).
  Result<CollectiveResult> AllToAll(
      const std::vector<std::vector<format::TablePtr>>& partitions,
      const gdf::Context& ctx, double data_scale) const;

  /// Broadcast: every rank receives `table` from `root`. Ring algorithm:
  /// time ~ bytes/bw + (n-1) hops of latency.
  Result<CollectiveResult> Broadcast(const format::TablePtr& table, int root,
                                     double data_scale) const;

  /// Merge (gather): `root` receives the concatenation of all ranks' tables;
  /// other ranks receive an empty slot (nullptr).
  Result<CollectiveResult> Gather(const std::vector<format::TablePtr>& tables,
                                  int root, const gdf::Context& ctx,
                                  double data_scale) const;

  /// Multicast: rank `root` sends `table` to the given subset of ranks.
  Result<CollectiveResult> Multicast(const format::TablePtr& table, int root,
                                     const std::vector<int>& destinations,
                                     double data_scale) const;

 private:
  /// Runs `body` under the retry policy: before each attempt the fault site
  /// is consulted; transient injected failures back off and retry, anything
  /// else (including body errors) propagates unchanged.
  template <typename Fn>
  Result<CollectiveResult> RunWithRetry(const char* site, Fn&& body) const;

  /// Backoff before retry number `attempt` (0-based), capped and jittered.
  double BackoffSeconds(int attempt) const;

  Result<CollectiveResult> DoAllToAll(
      const std::vector<std::vector<format::TablePtr>>& partitions,
      const gdf::Context& ctx, double data_scale) const;
  Result<CollectiveResult> DoBroadcast(const format::TablePtr& table, int root,
                                       double data_scale) const;
  Result<CollectiveResult> DoGather(const std::vector<format::TablePtr>& tables,
                                    int root, const gdf::Context& ctx,
                                    double data_scale) const;
  Result<CollectiveResult> DoMulticast(const format::TablePtr& table, int root,
                                       const std::vector<int>& destinations,
                                       double data_scale) const;

  int world_size_;
  sim::Link link_;
  fault::FaultInjector* injector_;
  RetryPolicy retry_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TrackId trace_track_ = 0;
  double trace_start_s_ = 0.0;
};

}  // namespace sirius::net
