#include "net/sccl.h"

#include <algorithm>

#include "gdf/copying.h"

namespace sirius::net {

using format::TablePtr;

SIRIUS_FAULT_DEFINE_SITE(kSiteAllToAll, "sccl.alltoall");
SIRIUS_FAULT_DEFINE_SITE(kSiteBroadcast, "sccl.broadcast");
SIRIUS_FAULT_DEFINE_SITE(kSiteGather, "sccl.gather");
SIRIUS_FAULT_DEFINE_SITE(kSiteMulticast, "sccl.multicast");

double Communicator::BackoffSeconds(int attempt) const {
  double delay = retry_.base_backoff_s;
  for (int i = 0; i < attempt && delay < retry_.max_backoff_s; ++i) delay *= 2;
  delay = std::min(delay, retry_.max_backoff_s);
  if (retry_.jitter > 0) {
    // Center the jitter so the expected delay stays on the schedule.
    const double u = injector_->Uniform();
    delay *= 1.0 + retry_.jitter * (u - 0.5);
  }
  return delay;
}

template <typename Fn>
Result<CollectiveResult> Communicator::RunWithRetry(const char* site,
                                                    Fn&& body) const {
  int retries = 0;
  double backoff = 0;
  Status last = Status::OK();
  const int attempts = std::max(1, retry_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Status injected = injector_->Check(site);
    if (injected.ok()) {
      SIRIUS_ASSIGN_OR_RETURN(CollectiveResult result, body());
      result.retries = retries;
      result.backoff_seconds = backoff;
      const double body_seconds = result.seconds;
      result.seconds += backoff;
      if (result.per_rank_seconds.empty()) {
        result.per_rank_seconds.assign(static_cast<size_t>(world_size_),
                                       body_seconds);
      }
      for (double& s : result.per_rank_seconds) s += backoff;
      if (trace_ != nullptr) {
        trace_->AddComplete(
            trace_track_, std::string("collective:") + site, "collective",
            trace_start_s_ + backoff, trace_start_s_ + result.seconds,
            {{"bytes", static_cast<double>(result.bytes)},
             {"retries", static_cast<double>(result.retries)},
             {"backoff_s", result.backoff_seconds},
             {"link_gbps", link_.bandwidth_gbps}});
      }
      return result;
    }
    if (!injected.IsTransient()) return injected;  // hard fault: no retry
    last = injected;
    if (attempt + 1 < attempts) {
      const double delay = BackoffSeconds(attempt);
      if (trace_ != nullptr) {
        // One span per healed transient attempt, covering its backoff: the
        // trace shows exactly the retries the policy reports.
        trace_->AddComplete(trace_track_, std::string("retry:") + site,
                            "retry", trace_start_s_ + backoff,
                            trace_start_s_ + backoff + delay,
                            {{"attempt", static_cast<double>(attempt)}});
      }
      backoff += delay;
      ++retries;
    }
  }
  return last.WithContext("collective '" + std::string(site) + "' failed after " +
                          std::to_string(attempts) + " attempts");
}

Result<CollectiveResult> Communicator::AllToAll(
    const std::vector<std::vector<TablePtr>>& partitions, const gdf::Context& ctx,
    double data_scale) const {
  return RunWithRetry(kSiteAllToAll,
                      [&] { return DoAllToAll(partitions, ctx, data_scale); });
}

Result<CollectiveResult> Communicator::Broadcast(const TablePtr& table, int root,
                                                 double data_scale) const {
  return RunWithRetry(kSiteBroadcast,
                      [&] { return DoBroadcast(table, root, data_scale); });
}

Result<CollectiveResult> Communicator::Gather(const std::vector<TablePtr>& tables,
                                              int root, const gdf::Context& ctx,
                                              double data_scale) const {
  return RunWithRetry(kSiteGather,
                      [&] { return DoGather(tables, root, ctx, data_scale); });
}

Result<CollectiveResult> Communicator::Multicast(
    const TablePtr& table, int root, const std::vector<int>& destinations,
    double data_scale) const {
  return RunWithRetry(kSiteMulticast, [&] {
    return DoMulticast(table, root, destinations, data_scale);
  });
}

Result<CollectiveResult> Communicator::DoAllToAll(
    const std::vector<std::vector<TablePtr>>& partitions, const gdf::Context& ctx,
    double data_scale) const {
  const int n = world_size_;
  if (static_cast<int>(partitions.size()) != n) {
    return Status::Invalid("AllToAll: expected " + std::to_string(n) + " senders");
  }
  CollectiveResult result;
  result.per_rank.resize(n);

  std::vector<uint64_t> sent(n, 0), received(n, 0);
  for (int src = 0; src < n; ++src) {
    if (static_cast<int>(partitions[src].size()) != n) {
      return Status::Invalid("AllToAll: sender " + std::to_string(src) +
                             " has wrong partition count");
    }
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;  // local partition, no network traffic
      uint64_t bytes = partitions[src][dst]->MemoryUsage();
      sent[src] += bytes;
      received[dst] += bytes;
      result.bytes += bytes;
    }
  }
  uint64_t slowest = 0;
  for (int r = 0; r < n; ++r) slowest = std::max({slowest, sent[r], received[r]});
  result.seconds = link_.TransferSeconds(slowest, data_scale);
  // Per-rank completion: each rank is done once its own traffic has moved;
  // lightly-loaded ranks can start downstream work before the collective's
  // modeled wall time (the overlap Theseus-style schedulers chase).
  result.per_rank_seconds.resize(n);
  for (int r = 0; r < n; ++r) {
    result.per_rank_seconds[r] =
        link_.TransferSeconds(std::max(sent[r], received[r]), data_scale);
  }

  for (int dst = 0; dst < n; ++dst) {
    std::vector<TablePtr> incoming;
    incoming.reserve(n);
    for (int src = 0; src < n; ++src) incoming.push_back(partitions[src][dst]);
    SIRIUS_ASSIGN_OR_RETURN(result.per_rank[dst], gdf::ConcatTables(ctx, incoming));
  }
  return result;
}

Result<CollectiveResult> Communicator::DoBroadcast(const TablePtr& table, int root,
                                                   double data_scale) const {
  if (root < 0 || root >= world_size_) return Status::Invalid("Broadcast: bad root");
  CollectiveResult result;
  result.per_rank.assign(world_size_, table);  // in-process: shared pointer
  if (world_size_ > 1) {
    uint64_t bytes = table->MemoryUsage();
    result.bytes = bytes * (world_size_ - 1);
    // Ring broadcast: pipeline hides all but the hop latencies.
    result.seconds = link_.TransferSeconds(bytes, data_scale) +
                     (world_size_ - 2 > 0 ? (world_size_ - 2) : 0) *
                         link_.latency_us * 1e-6;
  }
  return result;
}

Result<CollectiveResult> Communicator::DoGather(const std::vector<TablePtr>& tables,
                                                int root, const gdf::Context& ctx,
                                                double data_scale) const {
  if (static_cast<int>(tables.size()) != world_size_) {
    return Status::Invalid("Gather: wrong rank count");
  }
  if (root < 0 || root >= world_size_) return Status::Invalid("Gather: bad root");
  CollectiveResult result;
  result.per_rank.assign(world_size_, nullptr);
  for (int r = 0; r < world_size_; ++r) {
    if (r == root) continue;
    result.bytes += tables[r]->MemoryUsage();
  }
  result.seconds = link_.TransferSeconds(result.bytes, data_scale);
  // Senders finish after shipping their own table; the root waits for all.
  result.per_rank_seconds.assign(world_size_, result.seconds);
  for (int r = 0; r < world_size_; ++r) {
    if (r != root) {
      result.per_rank_seconds[r] =
          link_.TransferSeconds(tables[r]->MemoryUsage(), data_scale);
    }
  }
  SIRIUS_ASSIGN_OR_RETURN(result.per_rank[root], gdf::ConcatTables(ctx, tables));
  return result;
}

Result<CollectiveResult> Communicator::DoMulticast(
    const TablePtr& table, int root, const std::vector<int>& destinations,
    double data_scale) const {
  CollectiveResult result;
  result.per_rank.assign(world_size_, nullptr);
  result.per_rank[root] = table;
  uint64_t bytes = table->MemoryUsage();
  for (int d : destinations) {
    if (d < 0 || d >= world_size_) return Status::Invalid("Multicast: bad rank");
    result.per_rank[d] = table;
    if (d != root) result.bytes += bytes;
  }
  result.seconds = link_.TransferSeconds(result.bytes, data_scale);
  return result;
}

}  // namespace sirius::net
