// Status: the error-handling backbone of the Sirius reproduction.
//
// Follows the Arrow / RocksDB idiom: functions that can fail return a
// Status (or Result<T>); exceptions never cross public API boundaries.

#pragma once

#include <memory>
#include <string>
#include <utility>

namespace sirius {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotImplemented = 2,
  kOutOfMemory = 3,
  kKeyError = 4,
  kTypeError = 5,
  kIndexError = 6,
  kIOError = 7,
  kParseError = 8,
  kBindError = 9,
  kExecutionError = 10,
  kUnsupportedOnDevice = 11,  ///< triggers graceful CPU fallback (paper 3.2.2)
  kTimeout = 12,
  kInternal = 13,
  kUnavailable = 14,  ///< transient resource failure (link down, node dead)
  kResourceExhausted = 15,  ///< admission shed / reservation budget exceeded
};

/// \brief Returns a human-readable name for a StatusCode ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Success-or-error result of an operation.
///
/// A Status is cheap to pass around: the OK state is a null pointer, and the
/// error state is a small heap allocation (errors are rare and slow-path).
///
/// Marked [[nodiscard]] at class level so that *every* function returning a
/// Status is discard-checked by the compiler; dropping one silently is the
/// bug class sirius_lint's `unchecked-status` rule exists to catch.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Code must not be kOk.
  Status(StatusCode code, std::string msg);

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status UnsupportedOnDevice(std::string msg) {
    return Status(StatusCode::kUnsupportedOnDevice, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// @}

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Message of a non-OK status; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsUnsupportedOnDevice() const {
    return code() == StatusCode::kUnsupportedOnDevice;
  }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  /// Transient failures (link down, node churn) that retry layers may heal.
  bool IsTransient() const { return IsUnavailable() || IsTimeout(); }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of a non-OK status (no-op when OK).
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // null == OK
};

namespace internal {
/// Aborts the process with a readable diagnostic; used by SIRIUS_CHECK.
[[noreturn]] void AbortWithMessage(const char* file, int line, const std::string& msg);
}  // namespace internal

}  // namespace sirius

/// Propagates a non-OK Status to the caller.
#define SIRIUS_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::sirius::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define SIRIUS_CONCAT_IMPL(x, y) x##y
#define SIRIUS_CONCAT(x, y) SIRIUS_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, on failure returns the error Status.
#define SIRIUS_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  auto SIRIUS_CONCAT(_res_, __LINE__) = (rexpr);                             \
  if (!SIRIUS_CONCAT(_res_, __LINE__).ok())                                  \
    return SIRIUS_CONCAT(_res_, __LINE__).status();                          \
  lhs = std::move(SIRIUS_CONCAT(_res_, __LINE__)).ValueOrDie()

/// Aborts if `cond` is false. For programmer errors, not runtime errors.
#define SIRIUS_CHECK(cond)                                                     \
  do {                                                                         \
    if (!(cond))                                                               \
      ::sirius::internal::AbortWithMessage(__FILE__, __LINE__,                 \
                                           "Check failed: " #cond);            \
  } while (0)

/// Aborts if the Status is not OK. For must-succeed call sites (tests, setup).
#define SIRIUS_CHECK_OK(expr)                                                  \
  do {                                                                         \
    ::sirius::Status _st = (expr);                                             \
    if (!_st.ok())                                                             \
      ::sirius::internal::AbortWithMessage(__FILE__, __LINE__, _st.ToString()); \
  } while (0)
