#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace sirius {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kOutOfMemory:
      return "Out of memory";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIndexError:
      return "Index error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kUnsupportedOnDevice:
      return "Unsupported on device";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

namespace internal {

void AbortWithMessage(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[sirius fatal] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace internal

}  // namespace sirius
