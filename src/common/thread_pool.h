// Fixed-size worker thread pool with a global task queue.
//
// This is the substrate both for the "idle CPU threads pull pipeline tasks
// from a global task queue" execution model described in paper §3.2.2 and
// for data-parallel kernel execution inside the simulated GPU device.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sirius {

/// \brief A fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it runs on some worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to roughly 4 chunks per worker to amortize dispatch.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs `fn(begin, end)` over disjoint ranges covering [0, n) and waits.
  /// Preferred for kernels: one call per chunk, not per element.
  void ParallelForRange(size_t n,
                        const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool* Global();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace sirius
