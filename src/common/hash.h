// Hash primitives used by hash joins, hash group-by and hash partitioning.

#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace sirius {

/// 64-bit finalizer from MurmurHash3; a fast, well-mixed integer hash.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines an accumulated hash with a new 64-bit value (boost-style mixing).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (HashMix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Hashes a byte string with a 64-bit FNV-1a then finalizes; good enough for
/// dictionary keys and string join keys at the scales we run.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  // Consume 8-byte blocks for speed.
  while (len >= 8) {
    uint64_t block;
    std::memcpy(&block, p, 8);
    h = (h ^ block) * 0x100000001b3ULL;
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    h = (h ^ *p) * 0x100000001b3ULL;
    ++p;
    --len;
  }
  return HashMix64(h);
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

}  // namespace sirius
