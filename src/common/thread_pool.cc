#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace sirius {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelForRange(size_t n,
                                  const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = threads_.size();
  // Small inputs: not worth dispatching.
  if (n < 1024 || workers == 1) {
    fn(0, n);
    return;
  }
  const size_t chunks = std::min(n, workers * 4);
  const size_t chunk = (n + chunks - 1) / chunks;
  std::atomic<size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t issued = 0;
  for (size_t begin = 0; begin < n; begin += chunk) ++issued;
  remaining.store(issued);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForRange(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  return &pool;
}

}  // namespace sirius
