// Result<T>: a value-or-Status sum type (Arrow idiom).

#pragma once

#include <utility>
#include <variant>

#include "common/status.h"

namespace sirius {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
///
/// Use with SIRIUS_ASSIGN_OR_RETURN to propagate errors:
/// \code
///   SIRIUS_ASSIGN_OR_RETURN(auto table, ReadTable(path));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit on purpose, mirrors Arrow).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs from a non-OK status. Aborts if the status is OK.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    SIRIUS_CHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The error status; OK() when the Result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  /// Returns the value; aborts if the Result holds an error.
  const T& ValueOrDie() const& {
    if (!ok()) {
      internal::AbortWithMessage(__FILE__, __LINE__,
                                 "ValueOrDie on error: " + status().ToString());
    }
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    if (!ok()) {
      internal::AbortWithMessage(__FILE__, __LINE__,
                                 "ValueOrDie on error: " + status().ToString());
    }
    return std::get<T>(v_);
  }
  T ValueOrDie() && {
    if (!ok()) {
      internal::AbortWithMessage(__FILE__, __LINE__,
                                 "ValueOrDie on error: " + status().ToString());
    }
    return std::move(std::get<T>(v_));
  }

  /// Returns the value or `alternative` when holding an error.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(v_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> v_;
};

}  // namespace sirius
