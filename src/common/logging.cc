#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sirius {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace sirius
