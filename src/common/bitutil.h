// Bit manipulation helpers for validity bitmaps and power-of-two sizing.

#pragma once

#include <cstddef>
#include <cstdint>

namespace sirius {
namespace bit {

/// Number of bytes needed to store `bits` bits.
inline size_t BytesForBits(size_t bits) { return (bits + 7) / 8; }

inline bool GetBit(const uint8_t* bits, size_t i) {
  return (bits[i >> 3] >> (i & 7)) & 1;
}

inline void SetBit(uint8_t* bits, size_t i) { bits[i >> 3] |= uint8_t(1u << (i & 7)); }

inline void ClearBit(uint8_t* bits, size_t i) {
  bits[i >> 3] &= uint8_t(~(1u << (i & 7)));
}

inline void SetBitTo(uint8_t* bits, size_t i, bool value) {
  if (value) {
    SetBit(bits, i);
  } else {
    ClearBit(bits, i);
  }
}

/// Smallest power of two >= v (v=0 -> 1).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Number of set bits in the first `n` bits of the bitmap.
inline size_t CountSetBits(const uint8_t* bits, size_t n) {
  size_t count = 0;
  size_t full_bytes = n / 8;
  for (size_t i = 0; i < full_bytes; ++i) count += __builtin_popcount(bits[i]);
  for (size_t i = full_bytes * 8; i < n; ++i) count += GetBit(bits, i);
  return count;
}

}  // namespace bit
}  // namespace sirius
