// Minimal leveled logging. Thread-safe, writes to stderr.

#pragma once

#include <sstream>
#include <string>

namespace sirius {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
/// Default is kWarn so that tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits one line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sirius

#define SIRIUS_LOG(level) \
  ::sirius::internal::LogMessage(::sirius::LogLevel::k##level, __FILE__, __LINE__)
